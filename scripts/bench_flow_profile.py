"""Profile the flow's hot kernels: python reference vs numpy mode.

Runs the cold flow (no result cache, no stage store) under both
``REPRO_KERNEL`` modes and reports, per stage and per kernel span
(``kernel.place.field``, ``kernel.route.search``,
``kernel.extract.elmore``, ``kernel.sta.propagate``):

* **cold** — first run in a fresh interpreter state (imports, numpy
  warmup and all);
* **warm** — best of the repeat runs, the steady-state number the
  sizing/sweep loops actually see.

Both modes must produce bit-identical results (asserted), and the
numpy mode must not be slower end-to-end than the python reference —
the script exits nonzero otherwise, which CI uses as a perf-regression
tripwire (``--smoke`` runs the smaller rv8 core once per mode for
that).

Writes a report to stdout and ``results/bench_flow_profile.txt``::

    PYTHONPATH=src python scripts/bench_flow_profile.py [--smoke]
"""

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core import kernels                      # noqa: E402
from repro.core.cache import result_to_payload      # noqa: E402
from repro.core.config import FlowConfig            # noqa: E402
from repro.core.flow import run_flow                # noqa: E402
from repro.core.telemetry import Tracer             # noqa: E402
from repro.synth import (                           # noqa: E402
    PORTFOLIO,
    RiscvConfig,
    generate_riscv_core,
)

KERNEL_SPANS = (
    "kernel.place.field",
    "kernel.route.search",
    "kernel.extract.elmore",
    "kernel.sta.propagate",
)


class RvFactory:
    """Picklable factory for a scaled-down RISC-V core."""

    def __init__(self, xlen: int) -> None:
        self.xlen = xlen

    def __call__(self):
        return generate_riscv_core(RiscvConfig(
            xlen=self.xlen, nregs=self.xlen, name=f"rv{self.xlen}"))


def run_once(factory) -> dict:
    """One cold flow run; returns timings, kernel spans and the payload."""
    tracer = Tracer(label="bench")
    t0 = time.perf_counter()
    result = run_flow(factory, FlowConfig(), tracer=tracer)
    total = time.perf_counter() - t0
    trace = tracer.finish()
    spans: dict[str, float] = {}
    for span in trace.spans:
        if span.name in KERNEL_SPANS:
            spans[span.name] = spans.get(span.name, 0.0) + \
                (span.duration_s or 0.0)
    return {
        "total": total,
        "stages": trace.stage_times(),
        "kernels": spans,
        "payload": json.dumps(result_to_payload(result), sort_keys=True),
    }


def profile_mode(mode: str, factory, repeats: int) -> dict:
    """Cold run plus ``repeats`` warm runs; warm numbers are the best."""
    import os
    os.environ[kernels.KERNEL_ENV] = mode
    cold = run_once(factory)
    warm = cold
    for _ in range(repeats):
        run = run_once(factory)
        if run["total"] < warm["total"]:
            warm = run
    return {"cold": cold, "warm": warm}


def fmt_table(rows: list[tuple[str, float, float]]) -> list[str]:
    lines = [f"    {'':28s} {'python':>9s} {'numpy':>9s} {'speedup':>8s}"]
    for name, py, np_ in rows:
        ratio = py / np_ if np_ > 0 else float("inf")
        lines.append(f"    {name:28s} {py:8.3f}s {np_:8.3f}s {ratio:7.2f}x")
    return lines


def update_report_file(out: Path, design: str, report: str) -> None:
    """Each profiled design owns one section of the results file."""
    sections: dict[str, str] = {}
    if out.exists():
        for chunk in out.read_text().split("== design: ")[1:]:
            name, _, body = chunk.partition(" ==\n")
            sections[name] = body
    sections[design] = report
    out.write_text("".join(f"== design: {name} ==\n{body}"
                           for name, body in sorted(sections.items())))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="single rv8 run per mode (the CI tripwire)")
    parser.add_argument("--design",
                        choices=("riscv",) + tuple(sorted(PORTFOLIO)),
                        default="riscv",
                        help="benchmark design; 'riscv' is the plain core, "
                             "the portfolio names (rv16_sram, ...) profile "
                             "the macro-aware stages")
    args = parser.parse_args()

    xlen = 8 if args.smoke else 16
    repeats = 1 if args.smoke else 2
    if args.design == "riscv":
        factory = RvFactory(xlen)
        label = f"rv{xlen}"
    else:
        factory = PORTFOLIO[args.design]
        label = args.design

    runs = {mode: profile_mode(mode, factory, repeats)
            for mode in ("python", "numpy")}

    if runs["python"]["warm"]["payload"] != runs["numpy"]["warm"]["payload"]:
        print("FAIL: kernel modes disagree on the flow result")
        return 1

    py_cold, np_cold = (runs[m]["cold"] for m in ("python", "numpy"))
    py_warm, np_warm = (runs[m]["warm"] for m in ("python", "numpy"))

    lines = [
        f"flow kernel profile: {label} cold flow (no caches), "
        f"python reference vs numpy kernels"
        f"{' [smoke]' if args.smoke else ''}",
        f"host: {platform.platform()}, python {platform.python_version()}",
        "",
        "[1] end-to-end wall clock",
        f"    cold: python {py_cold['total']:.2f} s, "
        f"numpy {np_cold['total']:.2f} s "
        f"({py_cold['total'] / np_cold['total']:.2f}x)",
        f"    warm: python {py_warm['total']:.2f} s, "
        f"numpy {np_warm['total']:.2f} s "
        f"({py_warm['total'] / np_warm['total']:.2f}x)",
        "",
        "[2] per-stage wall clock (warm)",
    ]
    stage_rows = [
        (stage, py_warm["stages"].get(stage, 0.0),
         np_warm["stages"].get(stage, 0.0))
        for stage in py_warm["stages"]
    ]
    lines += fmt_table(stage_rows)
    lines += [
        "",
        "[3] kernel spans, summed over the flow (warm; the vectorized",
        "    inner loops themselves, excluding shared model-building)",
    ]
    kernel_rows = [
        (name, py_warm["kernels"].get(name, 0.0),
         np_warm["kernels"].get(name, 0.0))
        for name in KERNEL_SPANS
        if py_warm["kernels"].get(name) or np_warm["kernels"].get(name)
    ]
    lines += fmt_table(kernel_rows)

    slower = np_warm["total"] > py_warm["total"]
    lines += [
        "",
        f"    results bit-identical across modes: yes",
        f"    numpy-not-slower check: "
        f"{'FAIL' if slower else 'PASS'} "
        f"(numpy warm {np_warm['total']:.2f} s vs "
        f"python warm {py_warm['total']:.2f} s)",
    ]

    report = "\n".join(lines) + "\n"
    print(report)
    if not args.smoke:
        out = REPO / "results" / "bench_flow_profile.txt"
        out.parent.mkdir(parents=True, exist_ok=True)
        update_report_file(out, label, report)
        print(f"wrote {out}")
    return 1 if slower else 0


if __name__ == "__main__":
    sys.exit(main())
