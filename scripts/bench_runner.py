"""Benchmark the SweepRunner: warm-cache speedup and pool scaling.

Measures the two acceptance claims for the parallel+cache subsystem:

1. a repeated ``utilization_sweep`` (second invocation, warm cache)
   must be >= 5x faster than the cold first pass;
2. ``jobs=4`` vs ``jobs=1`` wall-clock on a cold Fig. 9-style
   frequency sweep (pool benefit scales with available cores).

Writes a report to stdout and ``results/bench_runner.txt``::

    PYTHONPATH=src python scripts/bench_runner.py
"""

import os
import platform
import tempfile
import time
from pathlib import Path

from repro.core import FlowCache, FlowConfig, SweepRunner
from repro.core.sweeps import frequency_sweep, utilization_sweep
from repro.synth import RiscvConfig, generate_riscv_core

REPO = Path(__file__).resolve().parent.parent
UTILIZATIONS = (0.50, 0.56, 0.62, 0.70, 0.76, 0.80)
FREQ_TARGETS = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)


class Rv16Factory:
    """Picklable factory for the scaled-down (xlen=16) RISC-V core."""

    def __call__(self):
        return generate_riscv_core(RiscvConfig(xlen=16, nregs=16,
                                               name="rv16"))


def bench_cache(lines) -> None:
    config = FlowConfig(arch="ffet", backside_pin_fraction=0.5)
    with tempfile.TemporaryDirectory() as tmp:
        runner = SweepRunner(jobs=1, cache=FlowCache(tmp))
        t0 = time.perf_counter()
        cold = utilization_sweep(Rv16Factory(), config, UTILIZATIONS,
                                 runner=runner)
        cold_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm = utilization_sweep(Rv16Factory(), config, UTILIZATIONS,
                                 runner=runner)
        warm_s = time.perf_counter() - t0

    assert warm == cold, "warm-cache sweep changed the results"
    speedup = cold_s / warm_s
    lines.append(f"[1] utilization_sweep, {len(UTILIZATIONS)} points, rv16")
    lines.append(f"    cold (serial, empty cache): {cold_s:8.2f} s")
    lines.append(f"    warm (second invocation):   {warm_s:8.2f} s")
    lines.append(f"    speedup: {speedup:.0f}x "
                 f"({'PASS' if speedup >= 5 else 'FAIL'}: >= 5x required), "
                 f"results bit-identical")


def bench_jobs(lines) -> None:
    config = FlowConfig(arch="ffet", back_layers=0,
                        backside_pin_fraction=0.0, utilization=0.70)
    timings = {}
    for jobs in (1, 4):
        runner = SweepRunner(jobs=jobs, cache=None)
        t0 = time.perf_counter()
        runs = frequency_sweep(Rv16Factory(), config, FREQ_TARGETS,
                               runner=runner)
        timings[jobs] = time.perf_counter() - t0
        assert all(r.valid for r in runs)
    ratio = timings[1] / timings[4]
    cores = os.cpu_count() or 1
    lines.append(f"[2] cold Fig. 9 frequency sweep, {len(FREQ_TARGETS)} "
                 f"targets, rv16, no cache")
    lines.append(f"    jobs=1 (serial):            {timings[1]:8.2f} s")
    lines.append(f"    jobs=4 (process pool):      {timings[4]:8.2f} s")
    lines.append(f"    jobs=4 speedup over jobs=1: {ratio:.2f}x")
    if cores > 1:
        lines.append(f"    ({'PASS' if ratio > 1 else 'FAIL'}: jobs=4 must "
                     f"beat jobs=1 on this {cores}-core host)")
    else:
        lines.append("    (note: only 1 CPU visible to this host, so the "
                     "pool cannot win here by construction; CI's "
                     "parallel-sweep-smoke job exercises jobs=2 on "
                     "multi-core runners)")


def main() -> None:
    lines = [
        "SweepRunner benchmark",
        f"host: {platform.platform()}, python {platform.python_version()}, "
        f"{os.cpu_count()} cpu(s) visible",
        "",
    ]
    bench_cache(lines)
    lines.append("")
    bench_jobs(lines)
    report = "\n".join(lines) + "\n"
    print(report)
    out = REPO / "results" / "bench_runner.txt"
    out.write_text(report)
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
