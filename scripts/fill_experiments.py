"""Fill EXPERIMENTS.md placeholders from headline_results.json."""

import json
import os

R = {}
for name in ("results/headline_results.json", "headline2_results.json",
             "fig9_results.json"):
    path = os.path.join("/root/repo", name)
    if os.path.exists(path):
        with open(path) as fh:
            R.update(json.load(fh))


def fp(tag):
    d = R[tag]
    return f"{d['achieved_frequency_ghz']:.2f} / {d['total_power_mw']:.2f}"


subs = {}
for t in ("0.5", "1.0", "1.5", "2.0", "3.0"):
    subs[f"FIG9_CFET_{t.replace('.', '').rstrip('0') or '0'}"] = 0  # unused
fig9_map = {"0.5": "05", "1.0": "10", "1.5": "15", "2.0": "20",
            "2.5": "25", "3.0": "30"}
for t, key in fig9_map.items():
    subs[f"FIG9_CFET_{key}"] = fp(f"fig9_cfet_{t}")
    subs[f"FIG9_FM12_{key}"] = fp(f"fig9_fm12_{t}")

cfet_pts = [(R[f"fig9_cfet_{t}"]["achieved_frequency_ghz"],
             R[f"fig9_cfet_{t}"]["total_power_mw"]) for t in fig9_map]
fm12_pts = [(R[f"fig9_fm12_{t}"]["achieved_frequency_ghz"],
             R[f"fig9_fm12_{t}"]["total_power_mw"]) for t in fig9_map]
cfet_fmax = max(f for f, _ in cfet_pts)
fm12_fmax = max(f for f, _ in fm12_pts)
subs["FIG9_FREQ_GAIN"] = f"{fm12_fmax / cfet_fmax - 1:+.1%}"


def interp_power(points, freq):
    points = sorted(points)
    if freq <= points[0][0]:
        return points[0][1]
    for (f0, p0), (f1, p1) in zip(points, points[1:]):
        if f0 <= freq <= f1:
            if f1 == f0:
                return p0
            return p0 + (freq - f0) / (f1 - f0) * (p1 - p0)
    return points[-1][1]


diffs = [p / interp_power(cfet_pts, f) - 1
         for f, p in fm12_pts if f <= cfet_fmax]
subs["FIG9_POWER_GAIN"] = (f"{sum(diffs) / len(diffs):+.1%}"
                           if diffs else "n/a")

# Table III
base = R["t3_base_fm12"]


def t3(tag):
    d = R.get(tag)
    if d is None or not d.get("valid", False):
        return "invalid (DRVs)"
    fdiff = d["achieved_frequency_ghz"] / base["achieved_frequency_ghz"] - 1
    pdiff = d["total_power_mw"] / base["total_power_mw"] - 1
    return f"{fdiff:+.1%} / {pdiff:+.1%}"


subs["T3_FM12BM12"] = t3("t3_fm12bm12")
subs["T3_FP05_FM6BM6"] = t3("t3_fp0.5_FM6BM6")
subs["T3_FP05_FM7BM5"] = t3("t3_fp0.5_FM7BM5")
subs["T3_FP03_FM8BM4"] = t3("t3_fp0.3_FM8BM4")
subs["T3_FP03_FM9BM3"] = t3("t3_fp0.3_FM9BM3")
subs["T3_FP016_FM9BM3"] = t3("t3_fp0.16_FM9BM3")
subs["T3_FP004_FM10BM2"] = t3("t3_fp0.04_FM10BM2")
dual = R["t3_fm12bm12"]
subs["T3_DUAL_GAIN"] = (
    f"{dual['achieved_frequency_ghz'] / base['achieved_frequency_ghz'] - 1:+.1%}"
)

# Fig 12: max util per layer count from the probe points.
probes = {
    12: [(0.86, "fig12_12L_0.86")],
    6: [(0.86, "fig12_6L_0.86")],
    4: [(0.86, "fig12_4L_0.86"), (0.84, "fig12_4L_0.84"),
        (0.80, "fig12_4L_0.8")],
    3: [(0.76, "fig12_3L_0.76"), (0.66, "fig12_3L_0.66"),
        (0.56, "fig12_3L_0.56")],
    2: [(0.66, "fig12_2L_0.66"), (0.56, "fig12_2L_0.56"),
        (0.46, "fig12_2L_0.46")],
}
fig12 = {}
for n, pts in probes.items():
    best = 0.0
    for util, tag in sorted(pts):
        d = R.get(tag)
        if d is not None and d.get("valid", False):
            best = max(best, util)
    fig12[n] = best
for n in (12, 6, 4, 3, 2):
    subs[f"F12_{n}"] = f"{fig12[n]:.0%}" if fig12[n] else "<probe floor"
subs["F12_VERDICT"] = "matches" if fig12[12] >= 0.86 and \
    fig12[2] < fig12[12] else "partial"

# Fig 13
base13 = R["fig13_12L"]
base_eff = base13["power_efficiency"]
for n in (12, 8, 6, 5, 4, 3):
    d = R[f"fig13_{n}L"]
    eff = d["power_efficiency"]
    subs[f"F13_{n}"] = f"{eff:.4f}" + ("" if d["valid"] else " (invalid)")
    subs[f"F13_{n}D"] = f"{eff / base_eff - 1:+.2%}"
five = R["fig13_5L"]["power_efficiency"] / base_eff - 1
subs["F13_VERDICT"] = (
    f"matches — {five:+.2%} at 5 layers per side (paper −0.68 %)"
    if five > -0.05 else
    f"partial — {five:+.2%} at 5 layers per side (paper −0.68 %)"
)

with open("/root/repo/EXPERIMENTS.md") as fh:
    text = fh.read()
for key, value in subs.items():
    text = text.replace("{{" + key + "}}", str(value))
with open("/root/repo/EXPERIMENTS.md", "w") as fh:
    fh.write(text)
import re

left = re.findall(r"\{\{[A-Z0-9_]+\}\}", text)
print("filled; unresolved:", left)
