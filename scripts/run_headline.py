"""Compact full-scale headline runs for EXPERIMENTS.md.

All runs fan out over ``$REPRO_JOBS`` workers through the SweepRunner
and hit the content-addressed result cache on re-runs; set
``REPRO_NO_CACHE=1`` to force recomputation.  The sweep checkpoints to
``headline.ckpt`` (``$REPRO_CHECKPOINT`` overrides), so a killed run
resumes where it stopped instead of starting over; failed points are
quarantined and reported rather than aborting the batch.
"""
import json

from repro.core import FlowConfig, script_runner
from repro.core.io import result_to_dict
from repro.synth import generate_riscv_core

ffet = dict(arch='ffet', backside_pin_fraction=0.5)
fm12 = dict(arch='ffet', back_layers=0, backside_pin_fraction=0.0)
cfet = dict(arch='cfet', back_layers=0, backside_pin_fraction=0.0)

jobs: list[tuple[str, FlowConfig]] = []

# Fig 9: frequency sweep at 0.70 util (valid for all)
for t_ghz in (0.5, 1.0, 1.5, 2.0, 3.0):
    jobs.append((f'fig9_cfet_{t_ghz}',
                 FlowConfig(**cfet, utilization=0.70, target_frequency_ghz=t_ghz)))
    jobs.append((f'fig9_fm12_{t_ghz}',
                 FlowConfig(**fm12, utilization=0.70, target_frequency_ghz=t_ghz)))

# Fig 12: max-util probes per layer count (probe the decision points only)
for n, utils in ((2, (0.56, 0.66)), (3, (0.76, 0.84)), (4, (0.84, 0.86)), (6, (0.86,)), (12, (0.86,))):
    for u in utils:
        jobs.append((f'fig12_{n}L_{u}',
                     FlowConfig(arch='ffet', front_layers=n, back_layers=n,
                                backside_pin_fraction=0.5, utilization=u)))

# Fig 13: efficiency vs layers at 0.76 util
for n in (3, 4, 5, 6, 8, 12):
    jobs.append((f'fig13_{n}L',
                 FlowConfig(arch='ffet', front_layers=n, back_layers=n,
                            backside_pin_fraction=0.5, utilization=0.76)))

# Table III: matched splits at 0.76
jobs.append(('t3_base_fm12', FlowConfig(**fm12, utilization=0.76)))
jobs.append(('t3_fm12bm12', FlowConfig(**ffet, utilization=0.76)))
for fp, (f, b) in ((0.5, (6, 6)), (0.5, (7, 5)), (0.3, (8, 4)), (0.3, (9, 3)), (0.16, (9, 3)), (0.04, (10, 2))):
    jobs.append((f't3_fp{fp}_FM{f}BM{b}',
                 FlowConfig(arch='ffet', front_layers=f, back_layers=b,
                            backside_pin_fraction=fp, utilization=0.76)))

runner = script_runner('headline.ckpt')
records = runner.run_records(generate_riscv_core, [cfg for _tag, cfg in jobs])

results = {}
for (tag, _cfg), rec in zip(jobs, records):
    d = result_to_dict(rec.result)
    d['tag'] = tag
    d['wall_time_s'] = rec.wall_time_s
    d['cache_hit'] = rec.cache_hit
    results[tag] = d
    suffix = f"({rec.wall_time_s:.0f}s{', cached' if rec.cache_hit else ''})"
    if d.get('valid') is not None and 'achieved_frequency_ghz' in d:
        print(f"{tag}: valid={d['valid']} drv={d.get('drv_count')} area={d.get('core_area_um2',0):.0f} "
              f"f={d.get('achieved_frequency_ghz',0):.3f} P={d.get('total_power_mw',0):.2f} {suffix}", flush=True)
    else:
        print(f"{tag}: FAILED {d.get('failure','')[:60]} {suffix}", flush=True)

print(runner.stats.summary(), flush=True)
with open('/root/repo/headline_results.json', 'w') as fh:
    json.dump(results, fh, indent=1)
print('DONE')
