"""Compact full-scale headline runs for EXPERIMENTS.md."""
import json, time
from repro.core import FlowConfig
from repro.core.sweeps import try_run
from repro.core.io import result_to_dict
from repro.synth import generate_riscv_core

factory = lambda: generate_riscv_core()
results = {}

def run(tag, cfg):
    t = time.time()
    r = try_run(factory, cfg)
    d = result_to_dict(r)
    d['tag'] = tag
    results[tag] = d
    if d.get('valid') is not None and 'achieved_frequency_ghz' in d:
        print(f"{tag}: valid={d['valid']} drv={d.get('drv_count')} area={d.get('core_area_um2',0):.0f} "
              f"f={d.get('achieved_frequency_ghz',0):.3f} P={d.get('total_power_mw',0):.2f} ({time.time()-t:.0f}s)", flush=True)
    else:
        print(f"{tag}: FAILED {d.get('failure','')[:60]}", flush=True)

ffet = dict(arch='ffet', backside_pin_fraction=0.5)
fm12 = dict(arch='ffet', back_layers=0, backside_pin_fraction=0.0)
cfet = dict(arch='cfet', back_layers=0, backside_pin_fraction=0.0)

# Fig 9: frequency sweep at 0.70 util (valid for all)
for t_ghz in (0.5, 1.0, 1.5, 2.0, 3.0):
    run(f'fig9_cfet_{t_ghz}', FlowConfig(**cfet, utilization=0.70, target_frequency_ghz=t_ghz))
    run(f'fig9_fm12_{t_ghz}', FlowConfig(**fm12, utilization=0.70, target_frequency_ghz=t_ghz))

# Fig 12: max-util probes per layer count (probe the decision points only)
for n, utils in ((2, (0.56, 0.66)), (3, (0.76, 0.84)), (4, (0.84, 0.86)), (6, (0.86,)), (12, (0.86,))):
    for u in utils:
        run(f'fig12_{n}L_{u}', FlowConfig(arch='ffet', front_layers=n, back_layers=n,
                                          backside_pin_fraction=0.5, utilization=u))

# Fig 13: efficiency vs layers at 0.76 util
for n in (3, 4, 5, 6, 8, 12):
    run(f'fig13_{n}L', FlowConfig(arch='ffet', front_layers=n, back_layers=n,
                                  backside_pin_fraction=0.5, utilization=0.76))

# Table III: matched splits at 0.76
run('t3_base_fm12', FlowConfig(**fm12, utilization=0.76))
run('t3_fm12bm12', FlowConfig(**ffet, utilization=0.76))
for fp, (f, b) in ((0.5, (6, 6)), (0.5, (7, 5)), (0.3, (8, 4)), (0.3, (9, 3)), (0.16, (9, 3)), (0.04, (10, 2))):
    run(f't3_fp{fp}_FM{f}BM{b}', FlowConfig(arch='ffet', front_layers=f, back_layers=b,
                                            backside_pin_fraction=fp, utilization=0.76))

with open('/root/repo/headline_results.json', 'w') as fh:
    json.dump(results, fh, indent=1)
print('DONE')
