"""Benchmark the per-stage artifact store on a Table III layer-split DoE.

The stage graph's claim (docs/architecture.md): the routing-layer
split first enters the stage key chain at ``routing``, so a layer-split
enumeration shares the whole library..legalization prefix — it places
once and routes N times.  This script measures that end to end:

1. **store off** — every split runs the full flow from scratch
   (the pre-stage-graph behavior);
2. **store on, warm prefix** — the first split has seeded the store,
   the remaining splits replay the shared prefix and execute only
   routing..power.

The warm-prefix pass must be >= 2x faster, with bit-identical results.

Writes a report to stdout and ``results/bench_stage_cache.txt``::

    PYTHONPATH=src python scripts/bench_stage_cache.py
"""

import platform
import tempfile
import time
from pathlib import Path

from repro.core import FlowCache, FlowConfig, SweepRunner
from repro.core.cache import result_to_payload
from repro.core.flow import run_flow
from repro.core.stages import StageStore
from repro.core.sweeps import layer_split_sweep
from repro.synth import RiscvConfig, generate_riscv_core

REPO = Path(__file__).resolve().parent.parent

#: The Table III routing-layer-split space at a fixed total of 12.
SPLITS = ((9, 3), (8, 4), (7, 5), (6, 6), (5, 7), (4, 8))


class Rv16Factory:
    """Picklable factory for the scaled-down (xlen=16) RISC-V core."""

    def __call__(self):
        return generate_riscv_core(RiscvConfig(xlen=16, nregs=16,
                                               name="rv16"))


def run_sweep(runner) -> tuple[list, float]:
    t0 = time.perf_counter()
    points = layer_split_sweep(Rv16Factory(), FlowConfig(), SPLITS,
                               runner=runner)
    return points, time.perf_counter() - t0


def main() -> int:
    lines = [
        "stage-store benchmark: Table III layer-split DoE "
        f"({len(SPLITS)} splits, rv16, jobs=1)",
        f"host: {platform.platform()}, python {platform.python_version()}",
        "",
    ]

    off, off_s = run_sweep(SweepRunner(jobs=1))

    with tempfile.TemporaryDirectory() as tmp:
        cache = FlowCache(tmp)
        # Seed only the shared prefix: one partial walk through
        # legalization, exactly what `repro run --stop-after` does.
        t0 = time.perf_counter()
        run_flow(Rv16Factory(), FlowConfig(), store=StageStore(cache),
                 stop_after="legalization")
        seed_s = time.perf_counter() - t0
        prefix_runner = SweepRunner(jobs=1, cache=cache)
        prefix, prefix_s = run_sweep(prefix_runner)
        # Fully warm: re-walk every split against the seeded store,
        # skipping the full-result cache (CLI --refresh).
        warm_runner = SweepRunner(jobs=1, cache=cache, refresh=True)
        warm, warm_s = run_sweep(warm_runner)

    for cold_p, a, b in zip(off, prefix, warm):
        assert (result_to_payload(cold_p.result)
                == result_to_payload(a.result)
                == result_to_payload(b.result)), \
            "stage store changed a result"

    def walks(runner):
        s = runner.stats
        return f"{s.stage_hits} stage replays / " \
               f"{s.stage_hits + s.stage_misses} stage walks"

    lines.append("[1] store off (every split runs the full flow)")
    lines.append(f"    wall: {off_s:8.2f} s")
    lines.append("[2] store on, warm prefix (library..legalization seeded "
                 "by one partial walk;")
    lines.append("    every split replays the prefix and executes only "
                 "routing..power)")
    lines.append(f"    seed: {seed_s:8.2f} s   (one run --stop-after "
                 "legalization)")
    lines.append(f"    wall: {prefix_s:8.2f} s   ({walks(prefix_runner)})")
    lines.append("[3] store on, fully warm (re-walk of an already-swept "
                 "store, full-result cache skipped)")
    lines.append(f"    wall: {warm_s:8.2f} s   ({walks(warm_runner)})")
    speedup = off_s / prefix_s
    warm_speedup = off_s / warm_s
    lines.append("")
    lines.append(f"    warm-prefix speedup over store-off: {speedup:.2f}x "
                 f"({'PASS' if speedup >= 2 else 'FAIL'}: >= 2x required), "
                 "results bit-identical")
    lines.append(f"    fully-warm speedup over store-off:  "
                 f"{warm_speedup:.2f}x")
    rates = warm_runner.stats.stage_hit_rates()
    lines.append("    stages replayed on every warm split: "
                 + ", ".join(sorted(s for s, r in rates.items() if r == 1.0)))

    report = "\n".join(lines) + "\n"
    print(report, end="")
    out = REPO / "results" / "bench_stage_cache.txt"
    out.parent.mkdir(exist_ok=True)
    out.write_text(report)
    print(f"\nwrote {out}")
    return 0 if speedup >= 2 else 1


if __name__ == "__main__":
    raise SystemExit(main())
