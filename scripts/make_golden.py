"""Capture the serial golden PPA numbers into tests/golden/.

Runs every case in tests/golden_cases.py through the plain serial path
(``try_run``, no pool, no cache) and stores the full round-trippable
result payloads.  tests/test_golden_regression.py then asserts that the
serial, parallel and cached paths all reproduce these numbers
bit-for-bit.

Re-run (and commit the diff) only when an intentional flow change moves
the numbers::

    PYTHONPATH=src python scripts/make_golden.py
"""

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO))
sys.path.insert(0, str(REPO / "src"))

from repro.core.cache import result_to_payload      # noqa: E402
from repro.core.sweeps import try_run               # noqa: E402
from tests.golden_cases import CASES, GOLDEN_PATH   # noqa: E402


def main() -> None:
    golden = {}
    for name, (factory, config) in CASES.items():
        result = try_run(factory, config)
        golden[name] = result_to_payload(result)
        data = golden[name]["data"]
        print(f"{name}: f={data['achieved_frequency_ghz']:.4f} GHz "
              f"area={data['core_area_um2']:.2f} um2 "
              f"P={data['power']['switching_mw'] + data['power']['internal_mw'] + data['power']['leakage_mw']:.4f} mW")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
