"""Remaining full-scale runs (fig12 valid probes, fig13, Table III)."""
import json, time
from repro.core import FlowConfig
from repro.core.io import result_to_dict
from repro.core.sweeps import try_run
from repro.synth import generate_riscv_core

factory = generate_riscv_core
results = {}

def run(tag, cfg):
    t = time.time()
    d = result_to_dict(try_run(factory, cfg))
    d['tag'] = tag
    results[tag] = d
    ok = d.get('valid')
    print(f"{tag}: valid={ok} drv={d.get('drv_count')} f={d.get('achieved_frequency_ghz',0):.3f} "
          f"P={d.get('total_power_mw',0):.2f} ({time.time()-t:.0f}s)", flush=True)
    with open('/root/repo/headline2_results.json', 'w') as fh:
        json.dump(results, fh, indent=1)

ffet = dict(arch='ffet', backside_pin_fraction=0.5)
fm12 = dict(arch='ffet', back_layers=0, backside_pin_fraction=0.0)

for n, u in ((12, 0.86), (6, 0.86), (4, 0.86), (4, 0.84), (3, 0.66), (3, 0.56), (2, 0.46)):
    run(f'fig12_{n}L_{u}', FlowConfig(arch='ffet', front_layers=n, back_layers=n,
                                      backside_pin_fraction=0.5, utilization=u))
for n in (3, 4, 5, 6, 8, 12):
    run(f'fig13_{n}L', FlowConfig(arch='ffet', front_layers=n, back_layers=n,
                                  backside_pin_fraction=0.5, utilization=0.76))
run('t3_base_fm12', FlowConfig(**fm12, utilization=0.76))
run('t3_fm12bm12', FlowConfig(**ffet, utilization=0.76))
for fp, (f, b) in ((0.5, (6, 6)), (0.5, (7, 5)), (0.3, (8, 4)), (0.3, (9, 3)), (0.16, (9, 3)), (0.04, (10, 2))):
    run(f't3_fp{fp}_FM{f}BM{b}', FlowConfig(arch='ffet', front_layers=f, back_layers=b,
                                            backside_pin_fraction=fp, utilization=0.76))
print('DONE')
