"""Remaining full-scale runs (fig12 valid probes, fig13, Table III).

Fans out over ``$REPRO_JOBS`` workers; cached points are served from
the content-addressed result cache (``REPRO_NO_CACHE=1`` bypasses it).
"""
import json

from repro.core import FlowConfig, script_runner
from repro.core.io import result_to_dict
from repro.synth import generate_riscv_core

ffet = dict(arch='ffet', backside_pin_fraction=0.5)
fm12 = dict(arch='ffet', back_layers=0, backside_pin_fraction=0.0)

jobs: list[tuple[str, FlowConfig]] = []
for n, u in ((12, 0.86), (6, 0.86), (4, 0.86), (4, 0.84), (3, 0.66), (3, 0.56), (2, 0.46)):
    jobs.append((f'fig12_{n}L_{u}',
                 FlowConfig(arch='ffet', front_layers=n, back_layers=n,
                            backside_pin_fraction=0.5, utilization=u)))
for n in (3, 4, 5, 6, 8, 12):
    jobs.append((f'fig13_{n}L',
                 FlowConfig(arch='ffet', front_layers=n, back_layers=n,
                            backside_pin_fraction=0.5, utilization=0.76)))
jobs.append(('t3_base_fm12', FlowConfig(**fm12, utilization=0.76)))
jobs.append(('t3_fm12bm12', FlowConfig(**ffet, utilization=0.76)))
for fp, (f, b) in ((0.5, (6, 6)), (0.5, (7, 5)), (0.3, (8, 4)), (0.3, (9, 3)), (0.16, (9, 3)), (0.04, (10, 2))):
    jobs.append((f't3_fp{fp}_FM{f}BM{b}',
                 FlowConfig(arch='ffet', front_layers=f, back_layers=b,
                            backside_pin_fraction=fp, utilization=0.76)))

runner = script_runner('headline2.ckpt')
records = runner.run_records(generate_riscv_core, [cfg for _tag, cfg in jobs])

results = {}
for (tag, _cfg), rec in zip(jobs, records):
    d = result_to_dict(rec.result)
    d['tag'] = tag
    d['wall_time_s'] = rec.wall_time_s
    d['cache_hit'] = rec.cache_hit
    results[tag] = d
    print(f"{tag}: valid={d.get('valid')} drv={d.get('drv_count')} "
          f"f={d.get('achieved_frequency_ghz',0):.3f} "
          f"P={d.get('total_power_mw',0):.2f} "
          f"({rec.wall_time_s:.0f}s{', cached' if rec.cache_hit else ''})",
          flush=True)

print(runner.stats.summary(), flush=True)
with open('/root/repo/headline2_results.json', 'w') as fh:
    json.dump(results, fh, indent=1)
print('DONE')
