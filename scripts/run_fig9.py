"""Full-scale Fig. 9 sweep (after the synthesis-guardband change)."""

import json
import time

from repro.core import FlowConfig
from repro.core.io import result_to_dict
from repro.core.sweeps import try_run
from repro.synth import generate_riscv_core


def main() -> None:
    factory = generate_riscv_core
    results = {}
    for target in (0.5, 1.0, 1.5, 2.0, 2.5, 3.0):
        for name, kw in (
            ("cfet", dict(arch="cfet", back_layers=0,
                          backside_pin_fraction=0.0)),
            ("fm12", dict(arch="ffet", back_layers=0,
                          backside_pin_fraction=0.0)),
        ):
            tag = f"fig9_{name}_{target}"
            t = time.time()
            run = try_run(factory, FlowConfig(**kw, utilization=0.70,
                                              target_frequency_ghz=target))
            d = result_to_dict(run)
            d["tag"] = tag
            results[tag] = d
            print(f"{tag}: f={d.get('achieved_frequency_ghz', 0):.3f} "
                  f"P={d.get('total_power_mw', 0):.2f} "
                  f"cells={d.get('cell_count')} ({time.time() - t:.0f}s)",
                  flush=True)
    with open("/root/repo/fig9_results.json", "w") as fh:
        json.dump(results, fh, indent=1)


def extra_probes() -> None:
    """A few extra Fig. 12 probes appended to fig9_results.json."""
    import json
    import time

    from repro.core import FlowConfig
    from repro.core.io import result_to_dict
    from repro.core.sweeps import try_run
    from repro.synth import generate_riscv_core

    with open("/root/repo/fig9_results.json") as fh:
        results = json.load(fh)
    for n, u in ((4, 0.80),):
        tag = f"fig12_{n}L_{u}"
        t = time.time()
        d = result_to_dict(try_run(
            generate_riscv_core,
            FlowConfig(arch="ffet", front_layers=n, back_layers=n,
                       backside_pin_fraction=0.5, utilization=u)))
        d["tag"] = tag
        results[tag] = d
        print(f"{tag}: valid={d.get('valid')} ({time.time() - t:.0f}s)",
              flush=True)
    with open("/root/repo/fig9_results.json", "w") as fh:
        json.dump(results, fh, indent=1)


if __name__ == "__main__":
    main()
    extra_probes()
    print("DONE")
