"""Full-scale Fig. 9 sweep (after the synthesis-guardband change).

Runs fan out over ``$REPRO_JOBS`` worker processes and completed
points are served from the content-addressed result cache; set
``REPRO_NO_CACHE=1`` to force recomputation (see docs/performance.md).
"""

import json

from repro.core import FlowConfig, SweepRunner, script_runner
from repro.core.io import result_to_dict
from repro.synth import generate_riscv_core


def make_runner() -> SweepRunner:
    # Crash-safe: a killed batch resumes from the checkpoint file.
    return script_runner("fig9.ckpt")


def report(tag: str, record) -> dict:
    d = result_to_dict(record.result)
    d["tag"] = tag
    d["wall_time_s"] = record.wall_time_s
    d["cache_hit"] = record.cache_hit
    print(f"{tag}: f={d.get('achieved_frequency_ghz', 0):.3f} "
          f"P={d.get('total_power_mw', 0):.2f} "
          f"cells={d.get('cell_count')} "
          f"({record.wall_time_s:.0f}s{', cached' if record.cache_hit else ''})",
          flush=True)
    return d


def main() -> None:
    runner = make_runner()
    jobs = []
    for target in (0.5, 1.0, 1.5, 2.0, 2.5, 3.0):
        for name, kw in (
            ("cfet", dict(arch="cfet", back_layers=0,
                          backside_pin_fraction=0.0)),
            ("fm12", dict(arch="ffet", back_layers=0,
                          backside_pin_fraction=0.0)),
        ):
            jobs.append((f"fig9_{name}_{target}",
                         FlowConfig(**kw, utilization=0.70,
                                    target_frequency_ghz=target)))

    records = runner.run_records(generate_riscv_core,
                                 [cfg for _tag, cfg in jobs])
    results = {tag: report(tag, rec)
               for (tag, _cfg), rec in zip(jobs, records)}
    print(runner.stats.summary(), flush=True)
    with open("/root/repo/fig9_results.json", "w") as fh:
        json.dump(results, fh, indent=1)


def extra_probes() -> None:
    """A few extra Fig. 12 probes appended to fig9_results.json."""
    runner = make_runner()
    with open("/root/repo/fig9_results.json") as fh:
        results = json.load(fh)
    jobs = [
        (f"fig12_{n}L_{u}",
         FlowConfig(arch="ffet", front_layers=n, back_layers=n,
                    backside_pin_fraction=0.5, utilization=u))
        for n, u in ((4, 0.80),)
    ]
    records = runner.run_records(generate_riscv_core,
                                 [cfg for _tag, cfg in jobs])
    for (tag, _cfg), rec in zip(jobs, records):
        results[tag] = report(tag, rec)
    with open("/root/repo/fig9_results.json", "w") as fh:
        json.dump(results, fh, indent=1)


if __name__ == "__main__":
    main()
    extra_probes()
    print("DONE")
