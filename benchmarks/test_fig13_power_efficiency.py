"""Fig. 13: power efficiency vs symmetric routing-layer count.

Paper: at a 1.5 GHz target and 76 % utilization, the FFET FP0.5BP0.5's
power efficiency degrades by only 0.68 % when the layer count shrinks
from 12 to 5 per side — the cost-friendly design headroom.
"""

from repro.core import FlowConfig, PPAResult
from repro.core.sweeps import layer_count_efficiency_sweep

from conftest import FULL_SCALE, print_header, riscv_factory

LAYER_COUNTS = (3, 4, 5, 6, 8, 10, 12) if FULL_SCALE else (3, 5, 8, 12)
UTIL = 0.70


def run_fig13():
    base = FlowConfig(arch="ffet", backside_pin_fraction=0.5,
                      target_frequency_ghz=1.5, utilization=UTIL)
    return layer_count_efficiency_sweep(riscv_factory, base,
                                        layer_counts=LAYER_COUNTS)


def test_fig13_power_efficiency_vs_layers(benchmark):
    points = benchmark.pedantic(run_fig13, rounds=1, iterations=1)

    baseline = next(p.result for p in points if p.front_layers == 12)
    assert isinstance(baseline, PPAResult)

    print_header("Fig. 13: power efficiency vs layers per side "
                 f"(FFET FP0.5BP0.5, {UTIL:.0%} util, 1.5 GHz target)")
    print(f"{'layers/side':>12}{'GHz/mW':>10}{'vs 12+12':>10}{'valid':>7}")
    for point in points:
        run = point.result
        if not isinstance(run, PPAResult):
            print(f"{point.front_layers:>12}{'--':>10}{'--':>10}{'fail':>7}")
            continue
        diff = run.power_efficiency / baseline.power_efficiency - 1
        print(f"{point.front_layers:>12}{run.power_efficiency:>10.4f}"
              f"{diff:>+9.1%}{str(run.valid):>7}")
    print("\nPaper: only -0.68% efficiency from 12 to 5 layers per side")

    # Efficiency at 5+ layers must be within a few percent of 12+12.
    for point in points:
        if point.front_layers >= 5 and isinstance(point.result, PPAResult):
            diff = point.result.power_efficiency / \
                baseline.power_efficiency - 1
            assert diff > -0.12, f"{point.label}: {diff:+.1%}"
