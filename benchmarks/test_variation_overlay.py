"""Overlay sensitivity: FFET timing spread grows with overlay, CFET's doesn't.

The companion overlay study's headline: FFET routes signals on both
wafer sides, so frontside-backside overlay misalignment degrades its
backside RC and widens the timing distribution; CFET routes signals on
one side only and is *exactly* insensitive to backside overlay.  This
benchmark sweeps the overlay sigma with CD and metal-RC variation
zeroed (isolating the overlay term) and prints the frequency-sigma
table recorded in EXPERIMENTS.md.
"""

from repro.core import FlowConfig
from repro.analysis import sample_stats
from repro.variation import VariationModel, nominal_bundle, run_samples

from conftest import print_header, riscv_factory

OVERLAY_SIGMAS_NM = (0.0, 1.0, 2.0, 4.0)
SAMPLES = 24
SEED = 7
UTIL = 0.50

CONFIGS = {
    "CFET": FlowConfig(arch="cfet", back_layers=0, backside_pin_fraction=0.0,
                       utilization=UTIL),
    "FFET dual": FlowConfig(arch="ffet", utilization=UTIL),
}


def run_overlay_sweep():
    """sigma(frequency) per config per overlay sigma, same seed throughout."""
    spreads = {}
    for name, config in CONFIGS.items():
        bundle = nominal_bundle(riscv_factory, config)
        spreads[name] = []
        for overlay in OVERLAY_SIGMAS_NM:
            model = VariationModel.for_arch(
                config.arch, overlay_sigma_nm=overlay,
                cd_sigma=0.0, rc_sigma=0.0)
            good, bad = run_samples(bundle, config, model, SAMPLES,
                                    seed=SEED, jobs=2)
            assert not bad, f"{name}: {len(bad)} samples quarantined"
            stats = sample_stats([s.achieved_frequency_ghz for s in good])
            spreads[name].append(stats.std)
    return spreads


def test_variation_overlay(benchmark):
    spreads = benchmark.pedantic(run_overlay_sweep, rounds=1, iterations=1)

    print_header(f"Overlay sweep: sigma(f) over {SAMPLES} samples, "
                 f"seed {SEED}")
    print(f"{'overlay sigma nm':>17}" + "".join(
        f"{name:>14}" for name in CONFIGS))
    for i, overlay in enumerate(OVERLAY_SIGMAS_NM):
        print(f"{overlay:>17.1f}" + "".join(
            f"{spreads[name][i]:>14.6f}" for name in CONFIGS))

    ffet = spreads["FFET dual"]
    cfet = spreads["CFET"]

    # Zero overlay means zero spread for both (CD/RC sigmas are zeroed).
    assert ffet[0] == 0.0 and cfet[0] == 0.0

    # FFET: spread strictly grows with the overlay sigma.
    for lo, hi in zip(ffet, ffet[1:]):
        assert hi > lo, f"FFET sigma not monotone: {ffet}"

    # CFET: no backside signal wires, so backside overlay cannot move a
    # single parasitic — the spread is identically zero at every sigma.
    assert cfet == [0.0] * len(OVERLAY_SIGMAS_NM), \
        f"CFET spread moved with overlay: {cfet}"
