"""Fig. 10: frequency-area relationship at a 1.5 GHz synthesis target.

Paper: the FFET FM12 reaches 16.0 % higher frequency than the CFET's
maximum at the same core area, and 23.4 % higher at the respective
maximum frequencies.
"""

from repro.core import FlowConfig, PPAResult
from repro.core.sweeps import frequency_area_sweep

from conftest import UTILIZATIONS, print_header, riscv_factory

CONFIGS = {
    "CFET": FlowConfig(arch="cfet", back_layers=0, backside_pin_fraction=0.0,
                       target_frequency_ghz=1.5),
    "FFET FM12": FlowConfig(arch="ffet", back_layers=0,
                            backside_pin_fraction=0.0,
                            target_frequency_ghz=1.5),
}


def run_fig10():
    return {
        name: frequency_area_sweep(riscv_factory, config, UTILIZATIONS)
        for name, config in CONFIGS.items()
    }


def test_fig10_frequency_area(benchmark):
    sweeps = benchmark.pedantic(run_fig10, rounds=1, iterations=1)

    print_header("Fig. 10: frequency vs core area (1.5 GHz target)")
    print(f"{'util':>6}{'CFET area':>11}{'CFET f':>8}"
          f"{'FFET area':>11}{'FFET f':>8}")
    curves = {name: [] for name in CONFIGS}
    for i, util in enumerate(UTILIZATIONS):
        row = f"{util:>6.2f}"
        for name in CONFIGS:
            run = sweeps[name][i]
            if isinstance(run, PPAResult) and run.valid:
                curves[name].append(run)
                row += f"{run.core_area_um2:>11.1f}" \
                    f"{run.achieved_frequency_ghz:>8.2f}"
            else:
                row += f"{'--':>11}{'--':>8}"
        print(row)

    cfet_fmax = max(r.achieved_frequency_ghz for r in curves["CFET"])
    ffet_fmax = max(r.achieved_frequency_ghz for r in curves["FFET FM12"])
    print(f"\nFFET FM12 vs CFET at respective max frequency: "
          f"{ffet_fmax / cfet_fmax - 1:+.1%} (paper: +23.4%)")

    # Same-core-area comparison: smallest FFET area that is still at
    # least as large as some CFET point.
    cfet_by_area = sorted(curves["CFET"], key=lambda r: r.core_area_um2)
    gains = []
    for ffet_run in curves["FFET FM12"]:
        candidates = [r for r in cfet_by_area
                      if r.core_area_um2 <= ffet_run.core_area_um2]
        if candidates:
            best_cfet = max(c.achieved_frequency_ghz for c in candidates)
            gains.append(ffet_run.achieved_frequency_ghz / best_cfet - 1)
    if gains:
        print(f"FFET FM12 vs CFET max frequency at same (or larger CFET) "
              f"core area: {max(gains):+.1%} (paper: +16.0%)")

    assert ffet_fmax > cfet_fmax
