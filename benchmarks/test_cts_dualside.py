"""Single- vs dual-sided CTS over the Fig. 12 utilization x layer-split
DoE (companion work: Jiang et al., arXiv:2503.12512).

The source paper keeps the clock tree frontside-only; this DoE measures
what partitioning it across both metal stacks does to skew, clock power
and Fmax on the RISC-V core, at two utilizations and two layer splits.
All 8 points run through one sweep call so a cached runner shares each
utilization's placement prefix across modes and splits.
"""

from repro.core import FlowConfig
from repro.core.sweeps import cts_mode_sweep

from conftest import FULL_SCALE, print_header, riscv_factory

UTILIZATIONS = (0.50, 0.62, 0.70, 0.76) if FULL_SCALE else (0.50, 0.70)
SPLITS = ((12, 12), (8, 8), (6, 6)) if FULL_SCALE else ((12, 12), (6, 6))


def run_cts_doe():
    base = FlowConfig(arch="ffet", backside_pin_fraction=0.5,
                      target_frequency_ghz=1.5)
    return cts_mode_sweep(riscv_factory, base, UTILIZATIONS, SPLITS)


def test_cts_dualside_doe(benchmark):
    points = benchmark.pedantic(run_cts_doe, rounds=1, iterations=1)

    print_header("Dual-sided CTS DoE: skew / clock power / Fmax "
                 "(FFET FP0.5BP0.5, single vs dual)")
    print(f"{'point':<16}{'mode':<8}{'fmax GHz':>9}{'skew ps':>9}"
          f"{'power mW':>10}{'wl um':>9}")
    pairs = {}
    for p in points:
        key = (p.utilization, p.front_layers, p.back_layers)
        pairs.setdefault(key, {})[p.cts_mode] = p.result
        r = p.result
        label = f"FM{p.front_layers}BM{p.back_layers} u{p.utilization:.2f}"
        if r.valid:
            print(f"{label:<16}{p.cts_mode:<8}"
                  f"{r.achieved_frequency_ghz:>9.3f}"
                  f"{r.timing.clock_skew_ps:>9.2f}"
                  f"{r.power.total_mw:>10.3f}"
                  f"{r.total_wirelength_um:>9.0f}")
        else:
            print(f"{label:<16}{p.cts_mode:<8}{'failed':>9}")

    # Every point of the DoE completes.
    assert all(p.result.valid for p in points)
    # Each (utilization, split) cell has both modes to compare.
    assert all(len(modes) == 2 for modes in pairs.values())
    # The dual-sided trees stay within the paper-style sanity envelope:
    # skew and power within 2x of the single-sided reference.
    for modes in pairs.values():
        single, dual = modes["single"], modes["dual"]
        assert dual.timing.clock_skew_ps <= \
            max(2.0 * single.timing.clock_skew_ps, 1.0)
        assert dual.power.total_mw <= 2.0 * single.power.total_mw


def test_dual_cts_routes_clock_on_backside(benchmark):
    """Artifact-level check at one DoE point: dual mode really lands
    clock wires on BM* metal."""
    from repro.core.flow import run_flow

    def run():
        return run_flow(riscv_factory,
                        FlowConfig(arch="ffet", utilization=0.5,
                                   cts_mode="dual"),
                        return_artifacts=True)

    artifacts = benchmark.pedantic(run, rounds=1, iterations=1)
    back_clock_nm = sum(
        p.back_wirelength_nm
        for name, p in artifacts.extraction.nets.items()
        if name.startswith("ctsnet_")
    )
    print_header("Dual-sided CTS artifact check (rv core, u=0.50)")
    print(f"backside clock wirelength: {back_clock_nm / 1000.0:.1f} um")
    print(f"tree: {artifacts.cts_report.front_buffers} front / "
          f"{artifacts.cts_report.back_buffers} back buffers, "
          f"est. back fraction {artifacts.cts_report.back_fraction:.2f}")
    assert back_clock_nm > 0.0
