"""Table III: input-pin density x routing-layer co-optimization.

Paper: with the total routing-layer count capped at 12, FFET FP0.5BP0.5
routed FM6BM6 gains +10.6 % frequency without power degradation over
the single-sided FFET FM12 baseline; FP0.7BP0.3 with FM8BM4/FM7BM5
reaches +12.8 % at +1.4 % power.
"""

from repro.core import FlowConfig
from repro.core.doe import cooptimization_table
from repro.core.sweeps import try_run

from conftest import FULL_SCALE, print_header, riscv_factory

FRACTIONS = (0.04, 0.16, 0.3, 0.4, 0.5) if FULL_SCALE else (0.16, 0.3, 0.5)
UTIL = 0.70


def run_table3():
    base = FlowConfig(arch="ffet", backside_pin_fraction=0.5,
                      target_frequency_ghz=1.5)
    rows = cooptimization_table(riscv_factory, base, fractions=FRACTIONS,
                                total_layers=12, utilization=UTIL,
                                keep_top=3)
    # Also report the full FM12BM12 dual-sided reference point.
    dual = try_run(riscv_factory, base.with_(utilization=UTIL))
    baseline = try_run(
        riscv_factory,
        base.with_(front_layers=12, back_layers=0,
                   backside_pin_fraction=0.0, utilization=UTIL),
    )
    return rows, dual, baseline


def test_table3_cooptimization(benchmark):
    rows, dual, baseline = benchmark.pedantic(run_table3, rounds=1,
                                              iterations=1)

    print_header("Table III: layer-split co-optimization vs FFET FM12 "
                 f"baseline at {UTIL:.0%} utilization")
    print(f"{'pin density':<16}{'pattern':<10}"
          f"{'freq diff':>10}{'power diff':>11}")
    for row in rows:
        label = f"FP{1 - row.backside_fraction:g}BP{row.backside_fraction:g}"
        print(f"{label:<16}{row.pattern:<10}"
              f"{row.frequency_diff:>+9.1%}{row.power_diff:>+10.1%}")

    dual_gain = dual.achieved_frequency_ghz / \
        baseline.achieved_frequency_ghz - 1
    dual_power = dual.total_power_mw / baseline.total_power_mw - 1
    print(f"\nFM12BM12 FP0.5BP0.5 reference: freq {dual_gain:+.1%}, "
          f"power {dual_power:+.1%}")
    print("Paper: best split FM6BM6 @ FP0.5BP0.5 = +10.6% freq, no power "
          "degradation; FM8BM4/FM7BM5 @ FP0.7BP0.3 = +12.8% freq, +1.4% "
          "power")

    # Dual-sided signals must deliver a frequency gain over the
    # single-sided baseline (the paper's headline conclusion).  The
    # gain grows with design size; at reduced scale only require it to
    # be non-negative.
    assert dual_gain > (0.02 if FULL_SCALE else 0.0)
    assert rows, "no valid layer splits found"
