"""Fig. 4: standard-cell area comparison, 3.5T FFET vs 4T CFET."""

import pytest

from repro import build_library, make_cfet_node, make_ffet_node
from repro.cells import cell_area_table

from conftest import print_header


def run_fig4():
    ffet = build_library(make_ffet_node())
    cfet = build_library(make_cfet_node())
    return cell_area_table(ffet, cfet)


def test_fig4_cell_area(benchmark):
    rows = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    table = {r["cell"]: r for r in rows}

    print_header("Fig. 4: cell area, FFET vs CFET "
                 "(paper: ~-12.5%, more for MUX/DFF, waste in AOI22/OAI22)")
    print(f"{'cell':<10}{'FFET um2':>12}{'CFET um2':>12}{'diff':>9}")
    for row in rows:
        print(f"{row['cell']:<10}{row['ffet_area_nm2'] / 1e6:>12.5f}"
              f"{row['cfet_area_nm2'] / 1e6:>12.5f}"
              f"{row['area_diff'] * 100:>+8.1f}%")
    mean = sum(r["area_diff"] for r in rows) / len(rows)
    print(f"\nmean area diff: {mean * 100:+.1f}% "
          "(paper headline: -12.5% cell height scaling)")

    assert table["INVD1"]["area_diff"] == pytest.approx(-0.125)
    assert table["MUX2D1"]["area_diff"] < -0.2   # Split Gate
    assert table["DFFD1"]["area_diff"] < -0.2    # Split Gate
    assert table["AOI22D1"]["area_diff"] > -0.05  # Drain Merge waste
