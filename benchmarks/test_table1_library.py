"""Table I: library characterization KPI diffs, FFET vs CFET."""

from repro import build_library, make_cfet_node, make_ffet_node
from repro.cells import (
    TABLE_I_CELLS,
    TABLE_I_KPIS,
    format_kpi_table,
    library_kpi_diff,
)

from conftest import print_header

#: Paper values (percent) for reference printing.
PAPER_TABLE_I = {
    "transition_power": (0.3, 0.3, 0.2, -3.0, -10.9, -11.8),
    "leakage_power": (0.0, 0.0, 0.0, 0.0, 0.0, 0.0),
    "rise_timing": (-2.5, -2.8, 6.8, -10.1, -12.8, -13.6),
    "fall_timing": (-8.1, -9.9, -13.6, -10.7, -14.4, -15.8),
    "rise_transition": (-1.1, -1.2, -4.9, -3.9, -8.4, 9.2),
    "fall_transition": (-4.0, -2.4, -3.4, -5.1, -6.5, -9.7),
}


def run_table1():
    ffet = build_library(make_ffet_node())
    cfet = build_library(make_cfet_node())
    return library_kpi_diff(ffet, cfet)


def test_table1_library_characterization(benchmark):
    table = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    print_header("Table I: FFET library KPI diffs w.r.t. CFET")
    print(format_kpi_table(table))
    print("\nPaper values (%):")
    header = f"{'KPI':<18}" + "".join(f"{c:>9}" for c in TABLE_I_CELLS)
    print(header)
    for kpi in TABLE_I_KPIS:
        row = f"{kpi:<18}"
        for value in PAPER_TABLE_I[kpi]:
            row += f"{value:>+8.1f}%"
        print(row)

    # Shape assertions mirroring the paper's signature.
    for cell in TABLE_I_CELLS:
        assert table[cell]["leakage_power"] == 0.0
        assert table[cell]["fall_timing"] < 0.0
    for cell in ("BUFD1", "BUFD2", "BUFD4"):
        assert table[cell]["transition_power"] < 0.0
    assert table["BUFD4"]["transition_power"] < \
        table["BUFD1"]["transition_power"]
