"""Fig. 12: maximum utilization vs symmetric routing-layer count.

Paper: FFET FP0.5BP0.5 keeps 86 % maximum utilization until the layer
count drops below 4 per side, and still reaches 70 % with only 2
routing layers on each side — the core-area scaling is limited by the
Power Tap Cells, not routability, down to 4+4 layers.
"""

from repro.core import FlowConfig
from repro.core.sweeps import layer_count_utilization_sweep

from conftest import FULL_SCALE, print_header, riscv_factory

LAYER_COUNTS = (2, 3, 4, 6, 8, 12) if FULL_SCALE else (2, 4, 8, 12)
UTIL_GRID = tuple(round(0.46 + 0.04 * i, 2) for i in range(11)) \
    if FULL_SCALE else (0.46, 0.56, 0.66, 0.76)


def run_fig12():
    base = FlowConfig(arch="ffet", backside_pin_fraction=0.5,
                      target_frequency_ghz=1.5)
    return layer_count_utilization_sweep(riscv_factory, base,
                                         layer_counts=LAYER_COUNTS,
                                         utilizations=UTIL_GRID)


def test_fig12_max_utilization_vs_layers(benchmark):
    points = benchmark.pedantic(run_fig12, rounds=1, iterations=1)

    print_header("Fig. 12: maximum utilization vs layers per side "
                 "(FFET FP0.5BP0.5)")
    print(f"{'layers/side':>12}{'max utilization':>17}")
    for point in points:
        print(f"{point.front_layers:>12}{point.max_utilization:>16.0%}")
    print("\nPaper: flat at 86% down to 4+4 layers; 70% at 2+2 "
          "(tap-cell limited, not routability limited)")

    by_layers = {p.front_layers: p.max_utilization for p in points}
    # Monotone non-decreasing with layer count.
    counts = sorted(by_layers)
    for a, b in zip(counts, counts[1:]):
        assert by_layers[a] <= by_layers[b] + 1e-9
    # Plenty of layers: the cap is the tap-cell placement limit.
    assert by_layers[max(counts)] >= 0.7
    # Very few layers hurt routability.
    assert by_layers[2] <= by_layers[max(counts)]
