"""Table II: design rules (layer pitches) of the virtual 5 nm node.

Table II is an *input* to the paper's flow; this benchmark verifies the
stackups reproduce it exactly and prints it in the paper's layout.
"""

from repro.tech import TABLE_II, build_stackup, pitch_for

from conftest import print_header


def run_table2():
    return build_stackup("cfet"), build_stackup("ffet")


def test_table2_design_rules(benchmark):
    cfet, ffet = benchmark.pedantic(run_table2, rounds=1, iterations=1)

    print_header("Table II: design rules (pitch in nm)")
    print(f"{'Layer':<8}{'4T CFET':>10}{'3.5T FFET':>12}")
    for name, (cfet_pitch, ffet_pitch) in TABLE_II.items():
        def fmt(p):
            return f"{p:.0f}" if p is not None else "/"
        print(f"{name:<8}{fmt(cfet_pitch):>10}{fmt(ffet_pitch):>12}")

    # Stackups must reproduce the table exactly.
    for name, (cfet_pitch, ffet_pitch) in TABLE_II.items():
        for stackup, pitch in ((cfet, cfet_pitch), (ffet, ffet_pitch)):
            if pitch is None:
                assert stackup.get(name) is None
            else:
                assert stackup[name].pitch_nm == pitch

    # Footnote c: CFET BM1/BM2 are PDN-only.
    assert not cfet["BM1"].is_routable
    assert not cfet["BM2"].is_routable
    assert ffet["BM1"].is_routable
