"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports, so `pytest benchmarks/
--benchmark-only -s` doubles as the experiment runner.

By default the RISC-V core is scaled down (xlen=16, nregs=16) so the
whole suite finishes in minutes.  Set ``REPRO_FULL_SCALE=1`` to run the
paper-scale 32-bit core (the numbers recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import os

import pytest

from repro.synth import RiscvConfig, generate_riscv_core

FULL_SCALE = os.environ.get("REPRO_FULL_SCALE", "") == "1"

CORE = RiscvConfig() if FULL_SCALE else RiscvConfig(xlen=16, nregs=16,
                                                    name="rv16")

#: Utilization grids — coarser when scaled down to keep runtime sane.
UTILIZATIONS = (0.46, 0.56, 0.66, 0.76, 0.80, 0.84, 0.86) if FULL_SCALE \
    else (0.50, 0.62, 0.70, 0.76)
FIG11_UTILIZATIONS = (0.46, 0.52, 0.58, 0.64, 0.70, 0.76) if FULL_SCALE \
    else (0.52, 0.64, 0.76)
FREQ_TARGETS = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0) if FULL_SCALE \
    else (0.5, 1.5, 3.0)


def riscv_factory():
    return generate_riscv_core(CORE)


@pytest.fixture(scope="session")
def core_factory():
    return riscv_factory


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
