"""Fig. 11: power-frequency clouds for five input-pin density DoEs.

Paper: FP0.5BP0.5 and FP0.6BP0.4 show the best power-frequency
characteristics, followed by FP0.7BP0.3, with FP0.84BP0.16 and
FP0.96BP0.04 trailing; each cloud is a utilization sweep (46-76 %) at a
1.5 GHz target with FM12BM12 routing, summarized by a 50 % confidence
ellipse.
"""

from repro.core import FlowConfig
from repro.core.doe import PIN_DENSITY_DOES, pin_density_doe

from conftest import FIG11_UTILIZATIONS, FULL_SCALE, print_header, riscv_factory

FRACTIONS = PIN_DENSITY_DOES if FULL_SCALE else (0.04, 0.3, 0.5)


def run_fig11():
    base = FlowConfig(arch="ffet", backside_pin_fraction=0.5,
                      target_frequency_ghz=1.5)
    return pin_density_doe(riscv_factory, base, fractions=FRACTIONS,
                           utilizations=FIG11_UTILIZATIONS)


def test_fig11_pin_density_does(benchmark):
    clouds = benchmark.pedantic(run_fig11, rounds=1, iterations=1)

    print_header("Fig. 11: power-frequency clouds per pin-density DoE "
                 "(50% confidence ellipses)")
    print(f"{'DoE':<28}{'pts':>4}{'mean f GHz':>11}{'mean P mW':>10}"
          f"{'f/P':>8}{'ellipse fxP':>22}")
    for cloud in clouds:
        ell = cloud.ellipse
        ell_txt = (f"{ell.semi_major:.3f} x {ell.semi_minor:.3f}"
                   if ell else "n/a")
        print(f"{cloud.label:<28}{len(cloud.results):>4}"
              f"{cloud.mean_frequency_ghz:>11.3f}"
              f"{cloud.mean_power_mw:>10.3f}"
              f"{cloud.merit:>8.3f}{ell_txt:>22}")

    ranked = sorted(clouds, key=lambda c: -c.merit)
    print("\nRanking by frequency-per-power merit:")
    for i, cloud in enumerate(ranked, 1):
        print(f"  {i}. {cloud.label}")
    print("Paper ranking: FP0.5BP0.5 ~ FP0.6BP0.4 > FP0.7BP0.3 > "
          "FP0.84BP0.16 > FP0.96BP0.04")

    by_fraction = {c.backside_fraction: c for c in clouds}
    # The nearly single-sided DoE (BP0.04) may lose its highest-
    # utilization points to pin-access DRVs — that is the paper's point.
    assert all(len(c.results) >= 2 for c in clouds)
    # Balanced pins should not lose to the nearly single-sided DoE.
    assert by_fraction[0.5].merit >= by_fraction[0.04].merit * 0.97
