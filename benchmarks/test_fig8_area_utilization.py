"""Fig. 8: core area vs utilization; maximum utilization per config.

Paper: (a) FFET FM12BM12 reaches 86 % utilization (tap-cell limited),
higher than the CFET; 23.3 % core-area cut at the same utilization and
25.1 % at the respective minimum areas.  (c) FFET FM12 (frontside-only
signals) drops to 76 % maximum utilization.
"""

from repro.core import FlowConfig, PPAResult
from repro.core.sweeps import utilization_sweep

from conftest import UTILIZATIONS, print_header, riscv_factory

CONFIGS = {
    "CFET": FlowConfig(arch="cfet", back_layers=0, backside_pin_fraction=0.0),
    "FFET FM12BM12": FlowConfig(arch="ffet", backside_pin_fraction=0.5),
    "FFET FM12": FlowConfig(arch="ffet", back_layers=0,
                            backside_pin_fraction=0.0),
}


def run_fig8():
    sweeps = {}
    for name, config in CONFIGS.items():
        sweeps[name] = utilization_sweep(riscv_factory, config, UTILIZATIONS)
    return sweeps


def test_fig8_area_vs_utilization(benchmark):
    sweeps = benchmark.pedantic(run_fig8, rounds=1, iterations=1)

    print_header("Fig. 8(a)/(c): core area vs utilization")
    print(f"{'util':>6}", end="")
    for name in CONFIGS:
        print(f"{name:>18}", end="")
    print()
    for i, util in enumerate(UTILIZATIONS):
        print(f"{util:>6.2f}", end="")
        for name in CONFIGS:
            run = sweeps[name][i]
            if isinstance(run, PPAResult):
                mark = "" if run.valid else "*"
                print(f"{run.core_area_um2:>16.1f}{mark:<2}", end="")
            else:
                print(f"{'placement-fail':>18}", end="")
        print()
    print("(* = DRV count >= 10, invalid)")

    def max_valid(name):
        valid = [
            (u, r) for u, r in zip(UTILIZATIONS, sweeps[name])
            if isinstance(r, PPAResult) and r.valid
        ]
        return max(valid, key=lambda t: t[0]) if valid else (0.0, None)

    results = {name: max_valid(name) for name in CONFIGS}
    print("\nMaximum valid utilization:")
    for name, (util, _run) in results.items():
        print(f"  {name}: {util:.0%}")
    print("Paper: FFET FM12BM12 86% > CFET; FFET FM12 76%")

    dual_util, dual_best = results["FFET FM12BM12"]
    cfet_util, cfet_best = results["CFET"]
    fm12_util, _ = results["FFET FM12"]
    assert dual_util >= cfet_util > 0
    assert fm12_util < cfet_util

    # Area comparison at the shared utilization / respective minima.
    shared = min(dual_util, cfet_util)
    i = UTILIZATIONS.index(shared)
    dual_at = sweeps["FFET FM12BM12"][i]
    cfet_at = sweeps["CFET"][i]
    same_util_gain = dual_at.core_area_um2 / cfet_at.core_area_um2 - 1
    min_area_gain = dual_best.core_area_um2 / cfet_best.core_area_um2 - 1
    print(f"\nFFET FM12BM12 vs CFET core area at {shared:.0%} util: "
          f"{same_util_gain:+.1%} (paper: -23.3%)")
    print(f"FFET FM12BM12 vs CFET at respective min area: "
          f"{min_area_gain:+.1%} (paper: -25.1%)")
    assert same_util_gain < -0.10
    assert min_area_gain < -0.10

    # Fig. 8(b) stand-in: layout summary at the shared utilization.
    print(f"\nFig. 8(b) layout summary at {shared:.0%} utilization:")
    for name, run in (("FFET FM12BM12", dual_at), ("CFET", cfet_at)):
        print(f"  {name}: {run.cell_count} cells, "
              f"{run.tap_cell_count} taps/nTSVs, "
              f"core {run.core_area_um2:.1f} um2, "
              f"wirelength {run.total_wirelength_um:.0f} um "
              f"(front {run.front_wirelength_um:.0f} / "
              f"back {run.back_wirelength_um:.0f})")
