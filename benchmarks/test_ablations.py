"""Ablation benchmarks for the design choices DESIGN.md calls out.

* Dual-sided *output* pins (the paper's choice) vs dual-sided *input*
  pins (rejected for pin-density explosion) vs single-sided outputs
  with bridging cells (rejected for area/delay cost).
* Power-stripe pitch around the 64 CPP default.
* Rip-up-and-reroute iteration count.
"""

import pytest

from repro import build_library, make_ffet_node
from repro.cells import (
    redistribute_input_pins,
    single_sided_output_library,
    widen_input_pins,
)
from repro.core import FlowConfig, PPAResult, run_flow
from repro.core.sweeps import try_run
from repro.synth import generate_multiplier
from repro.tech import Side

from conftest import print_header


def mult_factory():
    return generate_multiplier(8)


class TestPinStyleAblation:
    def test_dual_sided_input_pins_double_density(self, benchmark):
        def run():
            base = build_library(make_ffet_node())
            wide = widen_input_pins(base)
            return base, wide

        base, wide = benchmark.pedantic(run, rounds=1, iterations=1)
        base_density = base.mean_pin_density(Side.BACK)
        wide_density = wide.mean_pin_density(Side.BACK)
        print_header("Ablation: dual-sided input pins (Gate Merge)")
        print(f"backside pin density per CPP: base {base_density:.3f}, "
              f"dual-sided inputs {wide_density:.3f} "
              f"({wide_density / base_density:.2f}x)")
        print("Paper III.A: 'the dual-sided input pins will lead to very "
              "high pin density and thus many cells cannot be achieved'")
        assert wide_density > 1.5 * base_density

    def test_bridging_cells_cost_area(self, benchmark):
        def run():
            lib = redistribute_input_pins(
                build_library(make_ffet_node()), 0.5, seed=0)
            bridged_lib = single_sided_output_library(lib)
            native = run_flow(mult_factory,
                              FlowConfig(arch="ffet", utilization=0.6,
                                         backside_pin_fraction=0.5))
            bridged = run_flow(mult_factory,
                               FlowConfig(arch="ffet", utilization=0.6,
                                          backside_pin_fraction=0.5,
                                          allow_bridging=True),
                               library=bridged_lib)
            return native, bridged

        native, bridged = benchmark.pedantic(run, rounds=1, iterations=1)
        print_header("Ablation: bridging cells vs native dual-sided outputs")
        print(f"native:  {native.summary()}")
        print(f"bridged: {bridged.summary()}")
        extra_cells = bridged.cell_count - native.cell_count
        print(f"bridging cells added: {extra_cells}")
        print("Paper: 'to minimize the area cost, we did not use the "
              "bridging cells'")
        assert extra_cells > 0
        assert bridged.cell_area_um2 > native.cell_area_um2


class TestTapPitchAblation:
    def test_stripe_pitch_vs_max_utilization(self, benchmark):
        def run():
            out = {}
            for pitch in (32, 64, 128):
                config = FlowConfig(arch="ffet", backside_pin_fraction=0.5,
                                    utilization=0.70,
                                    power_stripe_pitch_cpp=pitch)
                out[pitch] = try_run(mult_factory, config)
            return out

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        print_header("Ablation: power-stripe pitch (default 64 CPP)")
        for pitch, run_ in results.items():
            if isinstance(run_, PPAResult):
                print(f"  {pitch:>4} CPP: taps={run_.tap_cell_count} "
                      f"area={run_.core_area_um2:.1f}um2 "
                      f"valid={run_.valid}")
            else:
                print(f"  {pitch:>4} CPP: {run_.reason}")
        ok = {p: r for p, r in results.items() if isinstance(r, PPAResult)}
        # Denser stripes -> more tap cells -> less placeable area.  (On
        # a narrow die 64 and 128 CPP may both fit only one VSS stripe.)
        assert ok[32].tap_cell_count > ok[64].tap_cell_count >= \
            ok[128].tap_cell_count


class TestRouterAblation:
    def test_rrr_iterations_improve_congestion(self, benchmark):
        def run():
            out = {}
            for iters in (0, 8):
                config = FlowConfig(arch="ffet", back_layers=0,
                                    backside_pin_fraction=0.0,
                                    utilization=0.72, rrr_iterations=iters)
                out[iters] = run_flow(mult_factory, config)
            return out

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        print_header("Ablation: rip-up-and-reroute iterations")
        for iters, run_ in results.items():
            print(f"  RRR={iters}: drv={run_.drv_count} "
                  f"wl={run_.total_wirelength_um:.0f}um")
        assert results[8].drv_count <= results[0].drv_count


class TestPlacementRefinementAblation:
    def test_refinement_improves_wirelength(self, benchmark):
        from repro.core import run_flow

        def run():
            base = run_flow(mult_factory,
                            FlowConfig(arch="ffet", utilization=0.65,
                                       backside_pin_fraction=0.5))
            refined = run_flow(mult_factory,
                               FlowConfig(arch="ffet", utilization=0.65,
                                          backside_pin_fraction=0.5,
                                          refine_placement=True))
            return base, refined

        base, refined = benchmark.pedantic(run, rounds=1, iterations=1)
        print_header("Ablation: greedy detailed-placement refinement")
        print(f"  base:    wl={base.total_wirelength_um:.0f}um "
              f"f={base.achieved_frequency_ghz:.3f}GHz")
        print(f"  refined: wl={refined.total_wirelength_um:.0f}um "
              f"f={refined.achieved_frequency_ghz:.3f}GHz")
        assert refined.total_wirelength_um <= base.total_wirelength_um
