"""Fig. 9: power-frequency relationship, CFET vs FFET FM12.

Paper: sweeping the synthesis target from 500 MHz to 3 GHz at 76 %
utilization, the FFET FM12 outperforms the CFET by 25 % in frequency
and 11.9 % in power.  The frequency gain is read at matched synthesis
targets; the power gain at matched operating frequency (the curves'
vertical distance).
"""

from repro.core import FlowConfig, PPAResult
from repro.core.sweeps import frequency_sweep

from conftest import FREQ_TARGETS, print_header, riscv_factory

UTIL = 0.70  # valid for both configurations at any scale

CONFIGS = {
    "CFET": FlowConfig(arch="cfet", back_layers=0, backside_pin_fraction=0.0,
                       utilization=UTIL),
    "FFET FM12": FlowConfig(arch="ffet", back_layers=0,
                            backside_pin_fraction=0.0, utilization=UTIL),
}


def run_fig9():
    return {
        name: frequency_sweep(riscv_factory, config, FREQ_TARGETS)
        for name, config in CONFIGS.items()
    }


def _power_at_frequency(points, freq):
    """Linear interpolation of power at a given operating frequency."""
    points = sorted((p.achieved_frequency_ghz, p.total_power_mw)
                    for p in points)
    if freq <= points[0][0]:
        return points[0][1]
    for (f0, p0), (f1, p1) in zip(points, points[1:]):
        if f0 <= freq <= f1:
            if f1 == f0:
                return p0
            t = (freq - f0) / (f1 - f0)
            return p0 + t * (p1 - p0)
    return points[-1][1]


def test_fig9_power_frequency(benchmark):
    sweeps = benchmark.pedantic(run_fig9, rounds=1, iterations=1)

    print_header(f"Fig. 9: power-frequency at {UTIL:.0%} utilization")
    print(f"{'target GHz':>11}"
          f"{'CFET f':>9}{'CFET P':>9}{'FFET f':>9}{'FFET P':>9}")
    cfet_points, ffet_points = [], []
    for i, target in enumerate(FREQ_TARGETS):
        cfet = sweeps["CFET"][i]
        ffet = sweeps["FFET FM12"][i]
        assert isinstance(cfet, PPAResult) and isinstance(ffet, PPAResult)
        cfet_points.append(cfet)
        ffet_points.append(ffet)
        print(f"{target:>11.1f}{cfet.achieved_frequency_ghz:>9.2f}"
              f"{cfet.total_power_mw:>9.2f}"
              f"{ffet.achieved_frequency_ghz:>9.2f}"
              f"{ffet.total_power_mw:>9.2f}")

    cfet_fmax = max(p.achieved_frequency_ghz for p in cfet_points)
    ffet_fmax = max(p.achieved_frequency_ghz for p in ffet_points)
    freq_gain = ffet_fmax / cfet_fmax - 1

    # Power at matched operating frequency: evaluate the CFET curve at
    # each valid FFET point's frequency (within the overlap).
    diffs = []
    for p in ffet_points:
        f = p.achieved_frequency_ghz
        if f <= cfet_fmax:
            diffs.append(p.total_power_mw / _power_at_frequency(
                cfet_points, f) - 1)
    power_gain = sum(diffs) / len(diffs) if diffs else float("nan")

    print(f"\nFFET FM12 vs CFET max achieved frequency: {freq_gain:+.1%} "
          "(paper: +25.0%)")
    print(f"FFET FM12 vs CFET power at matched frequency: {power_gain:+.1%} "
          "(paper: -11.9%)")

    assert freq_gain > 0.05          # FFET clearly faster
    if diffs:
        assert power_gain < 0.02     # no power penalty at iso-frequency
