"""Extension: does the FFET advantage generalize beyond the RISC-V core?

Not a paper figure — an extra study running three different design
styles (control-heavy counter bank, carry-chain multiplier, register-
rich FIR filter) through both technologies at the same utilization.
The paper's conclusion predicts the FFET wins area everywhere and
frequency/efficiency on logic-dominated blocks.
"""

from repro.core import FlowConfig
from repro.core.sweeps import try_run
from repro.synth import generate_counter, generate_fir_filter, generate_multiplier

from conftest import print_header

DESIGNS = {
    "counter32": lambda: generate_counter(32),
    "mult8": lambda: generate_multiplier(8),
    "fir4x6": lambda: generate_fir_filter(4, 6),
}

CONFIGS = {
    "FFET": FlowConfig(arch="ffet", backside_pin_fraction=0.5,
                       utilization=0.70),
    "CFET": FlowConfig(arch="cfet", back_layers=0, backside_pin_fraction=0.0,
                       utilization=0.70),
}


def run_portfolio():
    out = {}
    for design_name, factory in DESIGNS.items():
        for config_name, config in CONFIGS.items():
            out[(design_name, config_name)] = try_run(factory, config)
    return out


def test_design_portfolio(benchmark):
    results = benchmark.pedantic(run_portfolio, rounds=1, iterations=1)

    print_header("Extension: FFET vs CFET across design styles (70% util)")
    print(f"{'design':<12}{'tech':<6}{'area um2':>10}{'f GHz':>8}"
          f"{'P mW':>8}{'GHz/mW':>9}{'valid':>7}")
    for (design, tech), run in results.items():
        print(f"{design:<12}{tech:<6}{run.core_area_um2:>10.1f}"
              f"{run.achieved_frequency_ghz:>8.2f}"
              f"{run.total_power_mw:>8.3f}"
              f"{run.power_efficiency:>9.3f}{str(run.valid):>7}")

    for design in DESIGNS:
        ffet = results[(design, "FFET")]
        cfet = results[(design, "CFET")]
        area_gain = ffet.core_area_um2 / cfet.core_area_um2 - 1
        eff_gain = ffet.power_efficiency / cfet.power_efficiency - 1
        print(f"{design}: area {area_gain:+.1%}, "
              f"efficiency {eff_gain:+.1%}")
        # Cell-height scaling guarantees the area win on every design.
        assert area_gain < -0.08
        # And the FFET should never be less power-efficient.
        assert eff_gain > -0.02
