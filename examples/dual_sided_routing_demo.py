"""Dual-sided routing walkthrough: Algorithm 1, two DEFs, the merge.

Shows the paper's methodology step by step on a small design:

1. redistribute input pins (FP0.5 BP0.5),
2. place the design and synthesize the clock tree,
3. decompose every net into a frontside and a backside subnet,
4. route the two sides independently,
5. write one DEF per side, merge them,
6. run dual-sided RC extraction and STA on the merged view.

Run with::

    python examples/dual_sided_routing_demo.py
"""

from repro import build_library, make_ffet_node
from repro.cells import redistribute_input_pins
from repro.extract import extract_design
from repro.lefdef import def_from_routing, merge_defs, write_def, write_lef
from repro.pnr import (
    FloorplanSpec,
    GlobalRouter,
    assign_layers,
    build_grid,
    decompose_nets,
    legalize,
    place,
    plan_floor,
    plan_power,
    synthesize_clock_tree,
)
from repro.power import analyze_power
from repro.sta import analyze_timing
from repro.synth import generate_multiplier
from repro.tech import Side


def main() -> None:
    # Library with half the input pins on each wafer side.
    library = redistribute_input_pins(
        build_library(make_ffet_node()), backside_fraction=0.5, seed=0
    )
    print("Backside input-pin fraction:",
          f"{library.backside_input_fraction():.0%}")
    print("Modified LEF (excerpt):")
    print("\n".join(write_lef(library).splitlines()[:24]))
    print("...")

    netlist = generate_multiplier(8)
    netlist.bind(library)

    # Physical implementation up to routing.
    die = plan_floor(netlist, library, FloorplanSpec(utilization=0.70))
    powerplan = plan_power(library.tech, die)
    placement = place(netlist, library, die, powerplan, seed=0)
    cts = synthesize_clock_tree(netlist, library, placement, "clk")
    placement = legalize(placement, netlist, library, powerplan)
    print(f"\nPlaced {len(netlist.instances)} cells on a "
          f"{die.rows}x{die.sites_per_row} die; "
          f"{len(powerplan.tap_cells)} Power Tap Cells; "
          f"{cts.buffers} clock buffers.")

    # Algorithm 1: decompose and route each side independently.
    grids = {
        side: build_grid(library.tech, die, side, powerplan)
        for side in (Side.FRONT, Side.BACK)
    }
    decomposition = decompose_nets(netlist, library, placement, grids)
    print(f"Frontside subnets: {len(decomposition.specs[Side.FRONT])}, "
          f"backside subnets: {len(decomposition.specs[Side.BACK])}, "
          f"bridging cells: {len(decomposition.bridges)}")

    defs = {}
    for side in (Side.FRONT, Side.BACK):
        result = GlobalRouter(grids[side]).route_all(decomposition.specs[side])
        assignment = assign_layers(result)
        defs[side] = def_from_routing(netlist, placement, die, result,
                                      assignment, powerplan=powerplan)
        print(f"{side.value}: wirelength "
              f"{result.total_wirelength_nm / 1000:.0f} um, "
              f"DRVs {result.drv_count}")

    merged = merge_defs(defs[Side.FRONT], defs[Side.BACK])
    print(f"\nMerged DEF uses layers: {sorted(merged.layers_used())}")
    print("Merged DEF (excerpt):")
    print("\n".join(write_def(merged).splitlines()[:12]))
    print("...")

    # Dual-sided extraction + PPA on the merged view (Section III.C).
    extraction = extract_design(merged, netlist, library, placement)
    timing = analyze_timing(netlist, library, extraction, period_ps=666.0)
    power = analyze_power(netlist, library, extraction,
                          timing.achieved_frequency_ghz)
    print(f"\nAchieved frequency: {timing.achieved_frequency_ghz:.2f} GHz, "
          f"power: {power.total_mw:.2f} mW, "
          f"clock skew: {timing.clock_skew_ps:.1f} ps")


if __name__ == "__main__":
    main()
