"""Design-space exploration: pin density and BEOL layer co-optimization.

Runs scaled-down versions of the paper's Section IV explorations:

* Fig. 11: power-frequency clouds for several backside input-pin
  densities, summarized by 50 % confidence ellipses,
* Table III: frontside/backside routing-layer splits with the total
  capped at 12 layers, against the single-sided FFET FM12 baseline,
* Fig. 12/13 style: symmetric layer-count reduction.

Run with::

    python examples/design_space_exploration.py
"""

from repro.core import FlowConfig
from repro.core.doe import cooptimization_table, pin_density_doe
from repro.core.sweeps import layer_count_efficiency_sweep
from repro.synth import RiscvConfig, generate_riscv_core


def main() -> None:
    core = RiscvConfig(xlen=8, nregs=16, name="rv8")

    def factory():
        return generate_riscv_core(core)

    base = FlowConfig(arch="ffet", backside_pin_fraction=0.5,
                      target_frequency_ghz=1.5)

    print("== Fig. 11: input-pin density DoEs ==")
    clouds = pin_density_doe(factory, base, fractions=(0.04, 0.3, 0.5),
                             utilizations=(0.5, 0.6, 0.7))
    for cloud in sorted(clouds, key=lambda c: -c.merit):
        ell = cloud.ellipse
        print(f"  {cloud.label}: mean f={cloud.mean_frequency_ghz:.2f} GHz, "
              f"mean P={cloud.mean_power_mw:.2f} mW, "
              f"ellipse area={ell.area:.4f}" if ell else
              f"  {cloud.label}: too few valid points")

    print("\n== Table III: layer-split co-optimization (total = 8) ==")
    rows = cooptimization_table(factory, base, fractions=(0.3, 0.5),
                                total_layers=8, utilization=0.7, keep_top=2)
    for row in rows:
        print(f"  FP{1 - row.backside_fraction:g}BP{row.backside_fraction:g} "
              f"{row.pattern}: freq {row.frequency_diff:+.1%}, "
              f"power {row.power_diff:+.1%}")

    print("\n== Fig. 13: symmetric layer reduction ==")
    points = layer_count_efficiency_sweep(factory,
                                          base.with_(utilization=0.7),
                                          layer_counts=(4, 6, 8, 12))
    baseline = points[-1].result
    for point in points:
        if point.result is None or not point.result.valid:
            print(f"  {point.label}: not routable")
            continue
        eff = point.result.power_efficiency
        diff = eff / baseline.power_efficiency - 1
        print(f"  {point.label}: efficiency {eff:.3f} GHz/mW ({diff:+.2%} "
              "vs FM12BM12)")


if __name__ == "__main__":
    main()
