"""Quickstart: build both libraries, compare them, run one full flow.

Run with::

    python examples/quickstart.py
"""

from repro import build_library, make_cfet_node, make_ffet_node
from repro.cells import cell_area_table, format_kpi_table, library_kpi_diff
from repro.core import FlowConfig, run_flow
from repro.synth import RiscvConfig, generate_riscv_core


def main() -> None:
    # 1. Characterize the 3.5T FFET and 4T CFET libraries on the
    #    virtual 5 nm node (Table II design rules).
    ffet_lib = build_library(make_ffet_node())
    cfet_lib = build_library(make_cfet_node())

    # 2. Library-level comparison: Table I KPIs and Fig. 4 cell areas.
    print(format_kpi_table(library_kpi_diff(ffet_lib, cfet_lib)))
    print()
    print("Cell area, FFET vs CFET (Fig. 4):")
    for row in cell_area_table(ffet_lib, cfet_lib):
        print(f"  {row['cell']:<10} {row['area_diff'] * 100:+6.1f}%")
    print()

    # 3. Run the full physical-implementation + PPA flow on a scaled
    #    RISC-V core (xlen=16 keeps the example fast; use the default
    #    RiscvConfig() for the paper-scale 32-bit core).
    core = RiscvConfig(xlen=16, nregs=16, name="rv16_demo")

    def netlist_factory():
        return generate_riscv_core(core)

    for config in (
        FlowConfig(arch="ffet", backside_pin_fraction=0.5, utilization=0.70),
        FlowConfig(arch="cfet", back_layers=0, backside_pin_fraction=0.0,
                   utilization=0.70),
    ):
        result = run_flow(netlist_factory, config)
        print(result.summary())


if __name__ == "__main__":
    main()
