"""Signoff extras: scan insertion, hold fixing, IR drop, artifact export.

Everything a production hand-off needs beyond the paper's core PPA
numbers, demonstrated on the FIR-filter design:

1. insert a scan chain (DFT) and verify functional mode is unchanged,
2. run the full dual-sided flow,
3. check hold timing and fix violations with delay buffers,
4. check static IR drop of the Power-Tap-Cell PDN,
5. export the LEF/DEF/SPEF/Liberty/Verilog/report file set.

Run with::

    python examples/signoff_extras.py [output_dir]
"""

import sys
import tempfile

from repro.analysis import layout_summary
from repro.core import FlowConfig, run_flow, save_artifacts
from repro.netlist import check_equivalence, parse_verilog, write_verilog
from repro.pnr import analyze_ir_drop
from repro.sta import analyze_hold, fix_hold
from repro.synth import generate_fir_filter, insert_scan_chain


def main() -> None:
    config = FlowConfig(arch="ffet", backside_pin_fraction=0.5,
                        utilization=0.70, target_frequency_ghz=1.5)

    # Scan insertion happens pre-flow, like DFT in a synthesis netlist.
    def factory():
        from repro.core import prepare_library

        library = prepare_library(config)
        netlist = generate_fir_filter(taps=4, width=6)
        netlist.bind(library)
        reference = parse_verilog(write_verilog(netlist))
        reference.bind(library)
        report = insert_scan_chain(netlist, library)
        print(f"scan: stitched {report.flops} flops "
              f"({report.scan_in} -> {report.scan_out})")
        equivalence = check_equivalence(
            netlist, reference, library, vectors=16,
            extra_inputs={"scan_en": False, "scan_in": False},
        )
        assert equivalence.equivalent, "scan broke functional mode!"
        print("scan: functional mode verified equivalent")
        return netlist

    artifacts = run_flow(factory, config, return_artifacts=True)
    print()
    print(layout_summary(artifacts))

    # Hold signoff: analyze, fix with delay buffers, re-check.
    hold = analyze_hold(artifacts.netlist, artifacts.library,
                        artifacts.extraction)
    print(f"\nhold: {hold.violations}/{hold.endpoint_count} violations, "
          f"worst {hold.worst_slack_ps:+.2f} ps")
    if not hold.met:
        fixed = fix_hold(artifacts.netlist, artifacts.library,
                         artifacts.extraction,
                         placement=artifacts.placement)
        buffers = sum(1 for n in artifacts.netlist.instances
                      if n.startswith("holdbuf_"))
        print(f"hold: inserted {buffers} delay buffers, "
              f"worst now {fixed.worst_slack_ps:+.2f} ps")

    # IR-drop signoff on the frontside VSS rails (Power Tap Cells).
    ir = analyze_ir_drop(artifacts.netlist, artifacts.library,
                         artifacts.placement, artifacts.powerplan,
                         artifacts.result.total_power_mw)
    print(f"\nIR drop (VSS): worst {ir.worst_drop_mv:.2f} mV "
          f"({ir.worst_drop_fraction:.2%} of VDD) "
          f"{'OK' if ir.ok else 'VIOLATION'}")

    directory = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="ffet_signoff_")
    files = save_artifacts(artifacts, directory)
    print(f"\nwrote {len(files)} hand-off files to {directory}")


if __name__ == "__main__":
    main()
