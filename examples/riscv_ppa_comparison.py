"""Block-level PPA comparison: FFET vs CFET on the RISC-V core.

Reproduces the paper's Section IV headline comparisons at reduced scale
(pass ``--full`` for the 32-bit, 32-register paper configuration):

* post-P&R core area at the same utilization (Fig. 8),
* achieved frequency and power at the same utilization (Fig. 9),
* the dual-sided FFET against the single-sided baseline.

Run with::

    python examples/riscv_ppa_comparison.py [--full]
"""

import sys

from repro.core import FlowConfig, run_flow
from repro.synth import RiscvConfig, generate_riscv_core


def main() -> None:
    full = "--full" in sys.argv
    core = RiscvConfig() if full else RiscvConfig(xlen=16, nregs=16,
                                                  name="rv16")

    def factory():
        return generate_riscv_core(core)

    util = 0.76
    configs = {
        "CFET (single-sided)": FlowConfig(
            arch="cfet", back_layers=0, backside_pin_fraction=0.0,
            utilization=util),
        "FFET FM12 (single-sided)": FlowConfig(
            arch="ffet", back_layers=0, backside_pin_fraction=0.0,
            utilization=util),
        "FFET FM12BM12 FP0.5BP0.5": FlowConfig(
            arch="ffet", backside_pin_fraction=0.5, utilization=util),
    }

    results = {}
    for name, config in configs.items():
        results[name] = run_flow(factory, config)
        print(results[name].summary())

    cfet = results["CFET (single-sided)"]
    ffet = results["FFET FM12 (single-sided)"]
    dual = results["FFET FM12BM12 FP0.5BP0.5"]
    print()
    print(f"At {util:.0%} utilization (paper Section IV):")
    print(f"  FFET FM12 vs CFET core area: "
          f"{ffet.core_area_um2 / cfet.core_area_um2 - 1:+.1%} "
          "(paper: -23.3% for the dual-sided FFET at same utilization)")
    print(f"  FFET FM12 vs CFET frequency: "
          f"{ffet.achieved_frequency_ghz / cfet.achieved_frequency_ghz - 1:+.1%}"
          " (paper: +25.0%)")
    print(f"  FFET FM12 vs CFET power efficiency: "
          f"{ffet.power_efficiency / cfet.power_efficiency - 1:+.1%}")
    print(f"  Dual-sided vs FFET FM12 frequency: "
          f"{dual.achieved_frequency_ghz / ffet.achieved_frequency_ghz - 1:+.1%}")


if __name__ == "__main__":
    main()
