"""Artifact export tests: the full hand-off file set round-trips."""

import json
import os

import pytest

from repro.core import FlowConfig, run_flow, save_artifacts
from repro.lefdef import parse_def, parse_lef
from repro.extract import parse_spef
from repro.netlist import parse_verilog
from repro.synth import generate_multiplier


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    config = FlowConfig(arch="ffet", utilization=0.6,
                        backside_pin_fraction=0.5)
    artifacts = run_flow(lambda: generate_multiplier(5), config,
                         return_artifacts=True)
    directory = tmp_path_factory.mktemp("artifacts")
    files = save_artifacts(artifacts, str(directory))
    return artifacts, directory, files


class TestSaveArtifacts:
    def test_all_files_written(self, saved):
        _artifacts, directory, files = saved
        names = {os.path.basename(f) for f in files}
        assert names == {
            "multiplier.lib", "multiplier.lef", "multiplier.v",
            "multiplier_front.def", "multiplier_back.def",
            "multiplier_merged.def", "multiplier.spef",
            "multiplier_result.json", "multiplier_report.txt",
        }
        assert all(os.path.getsize(f) > 0 for f in files)

    def test_lef_parses(self, saved):
        artifacts, directory, _files = saved
        macros = parse_lef((directory / "multiplier.lef").read_text())
        assert set(macros) == set(artifacts.library.masters)

    def test_defs_parse_and_merge_consistent(self, saved):
        artifacts, directory, _files = saved
        front = parse_def((directory / "multiplier_front.def").read_text())
        back = parse_def((directory / "multiplier_back.def").read_text())
        merged = parse_def((directory / "multiplier_merged.def").read_text())
        assert set(front.components) == set(back.components) == \
            set(merged.components)
        # Merged nets carry the union of both sides' wirelength.
        assert merged.total_wirelength_nm == pytest.approx(
            front.total_wirelength_nm + back.total_wirelength_nm, rel=1e-6)

    def test_verilog_parses(self, saved):
        artifacts, directory, _files = saved
        netlist = parse_verilog((directory / "multiplier.v").read_text())
        assert len(netlist.instances) == len(artifacts.netlist.instances)

    def test_spef_matches_extraction(self, saved):
        artifacts, directory, _files = saved
        nets = parse_spef((directory / "multiplier.spef").read_text())
        for name, spef_net in list(nets.items())[:20]:
            assert spef_net.total_cap_ff == pytest.approx(
                artifacts.extraction[name].total_cap_ff, abs=1e-4)

    def test_result_json(self, saved):
        artifacts, directory, _files = saved
        data = json.loads((directory / "multiplier_result.json").read_text())
        assert data[0]["valid"] == artifacts.result.valid

    def test_report_contains_sections(self, saved):
        _artifacts, directory, _files = saved
        text = (directory / "multiplier_report.txt").read_text()
        assert "congestion (front):" in text
        assert "congestion (back):" in text
        assert "endpoint:" in text
