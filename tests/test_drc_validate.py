"""DRC/LVS-lite checks and library QA tests."""

import pytest

from repro.cells import validate_library
from repro.core import FlowConfig, run_flow
from repro.lefdef import (
    DefComponent,
    DefDesign,
    RouteSegment,
    check_connectivity,
    check_def,
)
from repro.synth import generate_multiplier
from repro.tech import Side


@pytest.fixture(scope="module")
def flow_artifacts():
    config = FlowConfig(arch="ffet", utilization=0.65,
                        backside_pin_fraction=0.5)
    return run_flow(lambda: generate_multiplier(6), config,
                    return_artifacts=True)


class TestFlowDefsAreClean:
    def test_per_side_defs_pass_drc(self, flow_artifacts):
        art = flow_artifacts
        for side, design in art.defs.items():
            report = check_def(design, art.library, art.netlist, side=side)
            assert report.clean, report.violations[:5]

    def test_merged_def_passes_drc(self, flow_artifacts):
        art = flow_artifacts
        report = check_def(art.merged_def, art.library, art.netlist)
        assert report.clean, report.violations[:5]

    def test_lvs_connectivity(self, flow_artifacts):
        art = flow_artifacts
        report = check_connectivity(art.merged_def, art.netlist)
        assert report.clean, report.violations[:5]


class TestDrcCatchesErrors:
    @pytest.fixture()
    def base(self, ffet_lib):
        design = DefDesign("t", 2000.0, 2000.0)
        design.components["u1"] = DefComponent("u1", "INVD1", 100.0, 52.5)
        return design

    def test_unknown_master(self, ffet_lib, base):
        base.components["bad"] = DefComponent("bad", "NONSENSE", 0.0, 0.0)
        report = check_def(base, ffet_lib)
        assert report.count("component.master") == 1

    def test_component_outside_die(self, ffet_lib, base):
        base.components["u2"] = DefComponent("u2", "INVD1", 9999.0, 0.0)
        report = check_def(base, ffet_lib)
        assert report.count("component.bounds") == 1

    def test_wire_on_unknown_layer(self, ffet_lib, base):
        base.nets["n"] = [RouteSegment("FM99", 0, 0, 100, 0)]
        assert check_def(base, ffet_lib).count("wire.layer") == 1

    def test_wire_on_pdn_layer(self, cfet_lib, base):
        base.nets["n"] = [RouteSegment("BM1", 0, 0, 100, 0)]
        assert check_def(base, cfet_lib).count("wire.purpose") == 1

    def test_wire_on_wrong_side(self, ffet_lib, base):
        base.nets["n"] = [RouteSegment("BM2", 0, 0, 100, 0)]
        report = check_def(base, ffet_lib, side=Side.FRONT)
        assert report.count("wire.side") == 1

    def test_diagonal_wire(self, ffet_lib, base):
        base.nets["n"] = [RouteSegment("FM2", 0, 0, 100, 100)]
        assert check_def(base, ffet_lib).count("wire.orthogonal") == 1

    def test_wire_outside_die(self, ffet_lib, base):
        base.nets["n"] = [RouteSegment("FM2", 0, 0, 99999, 0)]
        assert check_def(base, ffet_lib).count("wire.bounds") == 1

    def test_lvs_missing_and_extra(self, ffet_lib, base, counter8):
        report = check_connectivity(base, counter8)
        assert report.count("lvs.missing") == len(counter8.instances)
        assert report.count("lvs.extra") == 1  # u1 is not in the counter


class TestLibraryQa:
    def test_shipping_libraries_clean(self, ffet_lib, cfet_lib):
        assert validate_library(ffet_lib).clean
        assert validate_library(cfet_lib).clean

    def test_redistributed_library_clean(self, ffet_lib):
        from repro.cells import redistribute_input_pins

        lib = redistribute_input_pins(ffet_lib, 0.5)
        assert validate_library(lib).clean

    def test_catches_backside_pin_in_cfet(self, cfet_lib):
        from dataclasses import replace

        from repro.cells import Library

        broken = Library(tech=cfet_lib.tech)
        for master in cfet_lib:
            broken.add(master)
        inv = broken["INVD1"]
        bad_pins = dict(inv.pins)
        bad_pins["A"] = inv.pins["A"].moved_to(Side.BACK)
        broken.masters["INVD1"] = replace(inv, pins=bad_pins)
        report = validate_library(broken)
        assert not report.clean
        assert any("backside" in issue for issue in report.issues)
