"""Structural Verilog round-trip tests."""

import pytest

from repro.netlist import parse_verilog, write_verilog
from repro.synth import generate_counter


class TestRoundTrip:
    def test_counter_round_trip(self, ffet_lib):
        nl = generate_counter(4)
        nl.bind(ffet_lib)
        text = write_verilog(nl)
        back = parse_verilog(text)
        back.bind(ffet_lib)
        assert back.name == nl.name
        assert set(back.instances) == set(nl.instances)
        assert set(back.nets) == set(nl.nets)
        for name, inst in nl.instances.items():
            assert back.instances[name].master == inst.master
            assert back.instances[name].connections == inst.connections

    def test_ports_preserved(self, ffet_lib):
        nl = generate_counter(4)
        nl.bind(ffet_lib)
        back = parse_verilog(write_verilog(nl))
        assert {n.name for n in back.primary_inputs} == \
            {n.name for n in nl.primary_inputs}
        assert {n.name for n in back.primary_outputs} == \
            {n.name for n in nl.primary_outputs}


class TestWriter:
    def test_contains_module_header(self, counter8):
        text = write_verilog(counter8)
        assert text.startswith("module counter (")
        assert text.rstrip().endswith("endmodule")

    def test_declares_wires(self, counter8):
        text = write_verilog(counter8)
        assert "  wire " in text
        assert "  input en;" in text


class TestParser:
    def test_simple_module(self):
        nl = parse_verilog("""
            // a comment
            module m (a, z);
              input a;
              output z;
              INVD1 u1 (.A(a), .ZN(z));
            endmodule
        """)
        assert nl.name == "m"
        assert nl.instances["u1"].master == "INVD1"

    def test_block_comments_stripped(self):
        nl = parse_verilog(
            "module m (a);/* inline */ input a; endmodule"
        )
        assert nl.name == "m"

    def test_missing_module_rejected(self):
        with pytest.raises(ValueError):
            parse_verilog("wire x;")

    def test_missing_endmodule_rejected(self):
        with pytest.raises(ValueError):
            parse_verilog("module m (a); input a;")

    def test_garbage_statement_rejected(self):
        with pytest.raises(ValueError):
            parse_verilog("module m (a); input a; assign a = 1; endmodule")
