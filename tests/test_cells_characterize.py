"""Characterizer tests: arcs, power, sequential data, Table I deltas."""

import pytest

from repro.cells import TABLE_I_CELLS, cell_kpis, library_kpi_diff
from repro.tech import Side


class TestCharacterizedCells:
    def test_all_cells_have_arcs(self, ffet_lib):
        for master in ffet_lib:
            if master.function in ("TIEHI", "TIELO"):
                assert master.arcs == []
            else:
                assert master.arcs, master.name

    def test_all_cells_have_power(self, ffet_lib):
        for master in ffet_lib:
            assert master.power is not None, master.name
            assert master.power.leakage_nw > 0

    def test_dff_has_only_clock_arc(self, ffet_lib):
        dff = ffet_lib["DFFD1"]
        assert [a.from_pin for a in dff.arcs] == ["CK"]
        assert dff.sequential is not None

    def test_input_caps_scale_with_drive(self, ffet_lib):
        assert ffet_lib["INVD4"].pin("A").cap_ff > ffet_lib["INVD1"].pin("A").cap_ff

    def test_ffet_outputs_dual_sided(self, ffet_lib):
        for master in ffet_lib:
            for pin in master.output_pins:
                assert pin.on_side(Side.FRONT) and pin.on_side(Side.BACK), \
                    master.name

    def test_cfet_outputs_front_only(self, cfet_lib):
        for master in cfet_lib:
            for pin in master.output_pins:
                assert pin.sides == frozenset({Side.FRONT}), master.name

    def test_buffer_two_stage_slower_than_inverter(self, ffet_lib):
        inv = ffet_lib["INVD1"].arcs[0]
        buf = ffet_lib["BUFD1"].arcs[0]
        assert buf.worst_delay(10.0, 2.0) > inv.worst_delay(10.0, 2.0)


class TestTableIDeltas:
    """The Table I signature must hold qualitatively."""

    @pytest.fixture(scope="class")
    def diffs(self, ffet_lib, cfet_lib):
        return library_kpi_diff(ffet_lib, cfet_lib)

    def test_all_table_cells_covered(self, diffs):
        assert set(diffs) == set(TABLE_I_CELLS)

    def test_leakage_identical(self, diffs):
        for cell in TABLE_I_CELLS:
            assert diffs[cell]["leakage_power"] == pytest.approx(0.0)

    def test_inv_transition_power_roughly_flat(self, diffs):
        # Paper: +0.3 / +0.3 / +0.2 %; the Drain Merge offsets savings.
        for cell in ("INVD1", "INVD2", "INVD4"):
            assert -0.01 < diffs[cell]["transition_power"] < 0.03

    def test_buf_transition_power_improves(self, diffs):
        # Paper: -3.0 / -10.9 / -11.8 %.
        for cell in ("BUFD1", "BUFD2", "BUFD4"):
            assert diffs[cell]["transition_power"] < 0.0

    def test_buf_power_gain_grows_with_drive(self, diffs):
        assert diffs["BUFD4"]["transition_power"] < \
            diffs["BUFD2"]["transition_power"] < \
            diffs["BUFD1"]["transition_power"]

    def test_timing_improves_everywhere(self, diffs):
        for cell in TABLE_I_CELLS:
            assert diffs[cell]["fall_timing"] < 0.0
            assert diffs[cell]["rise_timing"] < 0.0

    def test_fall_improves_more_than_rise(self, diffs):
        # The FFET rise path keeps the Drain Merge penalty (backside p).
        for cell in TABLE_I_CELLS:
            assert diffs[cell]["fall_timing"] < diffs[cell]["rise_timing"]

    def test_timing_gain_grows_with_drive(self, diffs):
        assert diffs["INVD4"]["fall_timing"] < diffs["INVD1"]["fall_timing"]
        assert diffs["BUFD4"]["fall_timing"] < diffs["BUFD1"]["fall_timing"]

    def test_kpis_positive(self, ffet_lib):
        kpis = cell_kpis(ffet_lib, "INVD1")
        assert kpis.transition_power > 0
        assert kpis.rise_timing > 0
