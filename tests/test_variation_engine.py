"""Monte-Carlo engine: determinism, caching, quarantine, signoff, CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import FlowCache, FlowConfig, Tracer
from repro.synth import generate_counter
from repro.variation import (
    FailedSample,
    SampleResult,
    VariationModel,
    format_signoff,
    nominal_bundle,
    run_monte_carlo,
    run_samples,
    sigma_comparison_table,
    signoff,
)
from repro.variation.engine import NOMINAL_BLOB_KIND, _chunk_indices


def counter_factory():
    return generate_counter(8)


CONFIG = FlowConfig(utilization=0.5)
MODEL = VariationModel.for_arch("ffet", overlay_sigma_nm=2.0)


@pytest.fixture(scope="module")
def bundle():
    return nominal_bundle(counter_factory, CONFIG)


class TestEngine:
    def test_jobs_do_not_change_results(self, bundle):
        serial, _ = run_samples(bundle, CONFIG, MODEL, 8, seed=11, jobs=1)
        pooled, _ = run_samples(bundle, CONFIG, MODEL, 8, seed=11, jobs=4)
        assert serial == pooled

    def test_samples_are_index_ordered_and_seeded(self, bundle):
        good, bad = run_samples(bundle, CONFIG, MODEL, 6, seed=5, jobs=1)
        assert not bad
        assert [s.index for s in good] == list(range(6))
        assert len({s.seed for s in good}) == 6

    def test_zero_samples_is_empty_not_an_error(self, bundle):
        good, bad = run_samples(bundle, CONFIG, MODEL, 0, seed=0)
        assert good == [] and bad == []
        with pytest.raises(ValueError):
            run_samples(bundle, CONFIG, MODEL, -1, seed=0)

    def test_zero_sigma_reproduces_the_nominal_point(self, bundle):
        nothing = VariationModel.for_arch("ffet", overlay_sigma_nm=0.0,
                                          cd_sigma=0.0, rc_sigma=0.0)
        good, _ = run_samples(bundle, CONFIG, nothing, 3, seed=0)
        for sample in good:
            assert sample.achieved_frequency_ghz == pytest.approx(
                bundle.result.achieved_frequency_ghz)
            assert sample.total_power_mw == pytest.approx(
                bundle.result.total_power_mw)

    def test_failed_sample_is_quarantined_not_fatal(self, bundle,
                                                    monkeypatch):
        import repro.variation.engine as engine_mod

        real = engine_mod.evaluate_sample

        def flaky(netlist, library, extraction, config, sample):
            if sample.index == 1:
                raise RuntimeError("injected sample failure")
            return real(netlist, library, extraction, config, sample)

        monkeypatch.setattr(engine_mod, "evaluate_sample", flaky)
        good, bad = run_samples(bundle, CONFIG, MODEL, 4, seed=2, jobs=1)
        assert [s.index for s in good] == [0, 2, 3]
        assert len(bad) == 1 and isinstance(bad[0], FailedSample)
        assert bad[0].index == 1
        assert bad[0].cause == "RuntimeError"

    def test_chunking_covers_every_index_once(self):
        for n in (1, 7, 16, 33):
            for chunks in (1, 3, 16, 50):
                ranges = _chunk_indices(n, chunks)
                flat = [i for r in ranges for i in r]
                assert flat == list(range(n))

    def test_nominal_bundle_round_trips_the_cache(self, tmp_path):
        cache = FlowCache(tmp_path / "cache")
        cold = nominal_bundle(counter_factory, CONFIG, cache=cache)
        assert not cold.cached
        warm = nominal_bundle(counter_factory, CONFIG, cache=cache)
        assert warm.cached
        assert warm.result == cold.result
        # And the blob is invalidated with everything else on clear().
        assert cache.clear() > 0
        assert cache.get_blob(cache.key_for(
            CONFIG, "whatever"), NOMINAL_BLOB_KIND) is None

    def test_run_monte_carlo_traces_and_counts(self):
        tracer = Tracer(label="mc test")
        mc = run_monte_carlo(counter_factory, CONFIG, model=MODEL,
                             samples=4, seed=1, jobs=1, tracer=tracer)
        assert len(mc.samples) == 4
        assert mc.seed == 1
        trace = tracer.finish()
        names = [s.name for s in trace.spans]
        assert "mc.nominal" in names
        assert "mc.samples" in names
        assert trace.counters["mc.samples"] == 4

    def test_default_seed_is_the_config_seed(self):
        mc = run_monte_carlo(counter_factory, CONFIG.with_(seed=9),
                             model=MODEL, samples=2, jobs=1)
        assert mc.seed == 9


class TestSignoff:
    @pytest.fixture(scope="class")
    def mc(self, bundle):
        good, bad = run_samples(bundle, CONFIG, MODEL, 12, seed=4, jobs=1)
        from repro.variation.engine import MonteCarloResult
        return MonteCarloResult(config=CONFIG, model=MODEL, seed=4,
                                nominal=bundle.result, samples=good,
                                failed=bad)

    def test_report_fields(self, mc):
        report = signoff(mc)
        assert report.samples == 12
        assert report.metrics["frequency_ghz"].n == 12
        assert report.fmax_3sigma_ghz == pytest.approx(
            report.metrics["frequency_ghz"].mean
            - 3 * report.metrics["frequency_ghz"].std)
        assert 0.0 <= report.timing_yield <= 1.0
        assert report.ellipse is not None

    def test_report_is_json_safe_and_deterministic(self, mc):
        a = json.dumps(signoff(mc).to_dict(), sort_keys=True)
        b = json.dumps(signoff(mc).to_dict(), sort_keys=True)
        assert a == b

    def test_formatting_smoke(self, mc):
        report = signoff(mc)
        text = format_signoff(report)
        assert "3-sigma Fmax" in text
        assert "frequency_ghz" in text
        table = sigma_comparison_table([report, report])
        assert table.count(report.label) == 2

    def test_empty_study_refuses_signoff(self, mc):
        from repro.variation.engine import MonteCarloResult
        empty = MonteCarloResult(config=CONFIG, model=MODEL, seed=0,
                                 nominal=mc.nominal)
        with pytest.raises(ValueError):
            signoff(empty)


class TestCliMc:
    SMALL = ["mc", "--xlen", "4", "--nregs", "4", "--utilization", "0.5",
             "--samples", "4", "--seed", "3"]

    @pytest.fixture(autouse=True)
    def _cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def test_mc_command_writes_deterministic_json(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main([*self.SMALL, "--jobs", "1", "--json", str(a)]) == 0
        assert main([*self.SMALL, "--jobs", "2", "--json", str(b)]) == 0
        assert a.read_text() == b.read_text()
        payload = json.loads(a.read_text())
        assert payload["samples"] == 4
        assert len(payload["sample_rows"]) == 4
        out = capsys.readouterr().out
        assert "variation signoff" in out
        assert "nominal flow served from the cache" in out  # second run

    def test_mc_trace_written(self, capsys, tmp_path):
        trace_dir = tmp_path / "traces"
        assert main([*self.SMALL, "--no-cache",
                     "--trace", str(trace_dir)]) == 0
        assert list(trace_dir.glob("*.jsonl"))
