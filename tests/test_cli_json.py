"""Machine-readable CLI output: cache info --json, trace report --json."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import FlowCache, Tracer
from repro.core.ppa import FailedRun

CACHE_INFO_KEYS = {
    "directory", "exists", "entries", "total_bytes", "oldest_mtime",
    "newest_mtime", "stale_tmp_files", "blob_entries", "blob_bytes",
    "max_bytes", "live_locks", "stale_locks",
}


class TestCacheInfoJson:
    def test_missing_directory(self, tmp_path, capsys):
        assert main(["cache", "info", "--json",
                     "--cache-dir", str(tmp_path / "nope")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == CACHE_INFO_KEYS
        assert payload["exists"] is False
        assert payload["entries"] == 0

    def test_counts_entries_and_blobs(self, tmp_path, capsys):
        cache = FlowCache(tmp_path)
        cache.put("ab" + "0" * 62,
                  FailedRun(label="x", target_utilization=0.9, reason="tap"))
        cache.put_blob("cd" + "1" * 62, "mc-nominal", {"some": "payload"})
        assert main(["cache", "info", "--json",
                     "--cache-dir", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exists"] is True
        assert payload["entries"] == 1
        assert payload["blob_entries"] == 1
        assert payload["blob_bytes"] > 0

    def test_text_mode_mentions_blobs(self, tmp_path, capsys):
        cache = FlowCache(tmp_path)
        cache.put_blob("cd" + "1" * 62, "mc-nominal", [1, 2, 3])
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        assert "blob" in capsys.readouterr().out


class TestTraceReportJson:
    @pytest.fixture()
    def trace_dir(self, tmp_path):
        tracer = Tracer(label="unit")
        with tracer.span("synth"):
            pass
        tracer.count("mc.samples", 3)
        tracer.finish().write(tmp_path / "run-0000.jsonl")
        return tmp_path

    def test_report_schema(self, trace_dir, capsys):
        assert main(["trace", "report", "--json", str(trace_dir)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"path", "traces", "runs", "total_s",
                                "stage_time_s", "counters"}
        assert payload["traces"] == 1
        assert payload["counters"]["mc.samples"] == 3
        assert "synth" in payload["stage_time_s"]

    def test_empty_directory_fails_to_stderr(self, tmp_path, capsys):
        assert main(["trace", "report", "--json", str(tmp_path)]) == 1
        out, err = capsys.readouterr()
        # stdout stays parseable-or-empty in json mode.
        assert out == ""
        assert "no traces" in err
