"""Report rendering and BEOL cost model tests."""

import numpy as np
import pytest

from repro.analysis import (
    ascii_heatmap,
    beol_cost,
    congestion_map,
    cost_efficiency,
    layout_summary,
    placement_density_map,
)
from repro.tech import make_cfet_node, make_ffet_node


class TestHeatmap:
    def test_shape(self):
        art = ascii_heatmap(np.ones((4, 8)))
        lines = art.splitlines()
        assert len(lines) == 4
        assert all(len(line) == 8 for line in lines)

    def test_intensity_ramp(self):
        values = np.array([[0.0, 0.5, 1.0]])
        art = ascii_heatmap(values)
        assert art[0] == " "
        assert art[-1] == "@"

    def test_downsampling(self):
        art = ascii_heatmap(np.ones((2, 200)), max_width=50)
        assert len(art.splitlines()[0]) <= 50

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.ones(5))

    def test_row_zero_at_bottom(self):
        values = np.zeros((2, 1))
        values[0, 0] = 1.0  # row 0 should render at the bottom
        lines = ascii_heatmap(values).splitlines()
        assert lines[-1] == "@"
        assert lines[0] == " "


class TestFlowReports:
    @pytest.fixture(scope="class")
    def artifacts(self):
        from repro.core import FlowConfig, run_flow
        from repro.synth import generate_multiplier

        config = FlowConfig(arch="ffet", utilization=0.6,
                            backside_pin_fraction=0.5)
        return run_flow(lambda: generate_multiplier(6), config,
                        return_artifacts=True)

    def test_layout_summary(self, artifacts):
        text = layout_summary(artifacts)
        assert "utilization" in text
        assert "DRVs" in text and "GHz" in text

    def test_congestion_map(self, artifacts):
        from repro.tech import Side

        art = congestion_map(artifacts.routing_results[Side.FRONT])
        assert len(art.splitlines()) == \
            artifacts.routing_results[Side.FRONT].grid.rows

    def test_density_map(self, artifacts):
        art = placement_density_map(artifacts.placement, artifacts.netlist,
                                    artifacts.library, bins=16)
        assert len(art.splitlines()) == 16


class TestBeolCost:
    def test_more_layers_cost_more(self):
        cheap = beol_cost(make_ffet_node(4, 4))
        rich = beol_cost(make_ffet_node(12, 12))
        assert rich.total > cheap.total

    def test_backside_enablement_charged_once(self):
        single = beol_cost(make_ffet_node(12, 0))
        dual = beol_cost(make_ffet_node(6, 6))
        assert single.backside_enablement == 0.0
        assert dual.backside_enablement > 0.0

    def test_split_cheaper_than_two_full_stacks(self):
        split = beol_cost(make_ffet_node(6, 6))
        full = beol_cost(make_ffet_node(12, 12))
        assert split.total < full.total

    def test_fine_pitch_layers_cost_more(self):
        # FM2 (30 nm) needs EUV double patterning, FM1 (34 nm) EUV single.
        two = beol_cost(make_ffet_node(2, 0))
        assert two.front_passes == pytest.approx(4.0 + 2.5)

    def test_cfet_backside_free(self):
        cost = beol_cost(make_cfet_node())
        assert cost.back_passes == 0.0
        assert cost.backside_enablement == 0.0

    def test_cost_efficiency_metric(self):
        class Stub:
            achieved_frequency_ghz = 2.0
            total_power_mw = 4.0

        tech = make_ffet_node(6, 6)
        value = cost_efficiency(Stub(), tech)
        assert value == pytest.approx(
            2.0 / (4.0 * beol_cost(tech).total))
