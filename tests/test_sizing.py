"""High-fanout buffering and timing-driven sizing tests."""

import pytest

from repro.netlist import Netlist
from repro.synth import buffer_high_fanout, size_for_target


def high_fanout_netlist(fanout=50):
    nl = Netlist("hifan")
    nl.add_net("clk", primary_input=True, clock=True)
    nl.add_net("a", primary_input=True)
    nl.add_instance("drv", "INVD1", {"A": "a", "ZN": "big"})
    for i in range(fanout):
        nl.add_instance(f"ff{i}", "DFFD1",
                        {"D": "big", "CK": "clk", "Q": f"q{i}"})
        nl.add_net(f"q{i}", primary_output=True)
    return nl


class TestFanoutBuffering:
    def test_fanout_capped(self, ffet_lib):
        nl = high_fanout_netlist(50)
        nl.bind(ffet_lib)
        added = buffer_high_fanout(nl, ffet_lib, max_fanout=16)
        assert added >= 4  # 50 sinks need at least ceil(50/16) leaves
        for name, net in nl.nets.items():
            if net.is_clock:
                continue
            assert len(net.sinks) <= 16, name

    def test_connectivity_preserved(self, ffet_lib):
        nl = high_fanout_netlist(40)
        nl.bind(ffet_lib)
        buffer_high_fanout(nl, ffet_lib, max_fanout=8)
        # Every flop's D must still trace back to the original driver.
        for i in range(40):
            net = nl.instances[f"ff{i}"].connections["D"]
            seen = set()
            while True:
                driver = nl.nets[net].driver
                assert driver is not None
                inst = nl.instances[driver[0]]
                if inst.name == "drv":
                    break
                assert inst.master.startswith("BUF")
                assert inst.name not in seen
                seen.add(inst.name)
                net = inst.connections["A"]

    def test_clock_left_alone(self, ffet_lib):
        nl = high_fanout_netlist(50)
        nl.bind(ffet_lib)
        buffer_high_fanout(nl, ffet_lib, max_fanout=16)
        assert len(nl.nets["clk"].sinks) == 50  # CTS's job, not ours

    def test_no_op_below_threshold(self, ffet_lib):
        nl = high_fanout_netlist(10)
        nl.bind(ffet_lib)
        assert buffer_high_fanout(nl, ffet_lib, max_fanout=16) == 0


class TestSizing:
    def chain(self, depth):
        nl = Netlist("chain")
        nl.add_net("clk", primary_input=True, clock=True)
        nl.add_instance("ff0", "DFFD1",
                        {"D": "loop", "CK": "clk", "Q": "n0"})
        prev = "n0"
        for i in range(depth):
            nl.add_instance(f"g{i}", "INVD1", {"A": prev, "ZN": f"n{i+1}"})
            prev = f"n{i+1}"
        nl.add_instance("ff1", "DFFD1",
                        {"D": prev, "CK": "clk", "Q": "loop"})
        return nl

    def test_loose_target_no_upsizing(self, ffet_lib):
        nl = self.chain(8)
        nl.bind(ffet_lib)
        report = size_for_target(nl, ffet_lib, target_period_ps=5000.0)
        assert report.met
        assert report.upsized == 0

    def test_tight_target_upsizes(self, ffet_lib):
        nl = self.chain(20)
        nl.bind(ffet_lib)
        report = size_for_target(nl, ffet_lib, target_period_ps=50.0)
        assert report.upsized > 0
        drives = {nl.instances[f"g{i}"].master for i in range(20)}
        assert drives != {"INVD1"}  # something got stronger

    def test_sizing_improves_timing(self, ffet_lib):
        from repro.extract import estimate_parasitics
        from repro.sta import analyze_timing

        baseline = self.chain(20)
        baseline.bind(ffet_lib)
        before = analyze_timing(
            baseline, ffet_lib, estimate_parasitics(baseline, ffet_lib),
            1000.0)

        sized = self.chain(20)
        sized.bind(ffet_lib)
        size_for_target(sized, ffet_lib, target_period_ps=50.0)
        after = analyze_timing(
            sized, ffet_lib, estimate_parasitics(sized, ffet_lib), 1000.0)
        assert after.achieved_period_ps <= before.achieved_period_ps

    def test_sizing_costs_area(self, ffet_lib):
        relaxed = self.chain(20)
        relaxed.bind(ffet_lib)
        size_for_target(relaxed, ffet_lib, target_period_ps=5000.0)
        tight = self.chain(20)
        tight.bind(ffet_lib)
        size_for_target(tight, ffet_lib, target_period_ps=50.0)
        assert tight.total_cell_area_nm2(ffet_lib) > \
            relaxed.total_cell_area_nm2(ffet_lib)

    def test_bad_target_rejected(self, ffet_lib):
        nl = self.chain(4)
        nl.bind(ffet_lib)
        with pytest.raises(ValueError):
            size_for_target(nl, ffet_lib, target_period_ps=0.0)


class TestScanAndFir:
    def test_scan_chain_shifts(self, ffet_lib):
        from repro.synth import generate_counter, insert_scan_chain

        nl = generate_counter(5)
        nl.bind(ffet_lib)
        report = insert_scan_chain(nl, ffet_lib)
        assert report.flops == 5
        # Shift a single 1 through the whole chain: after 5 ticks it
        # must appear at scan_out.
        state = {i.name: False for i in nl.sequential_instances(ffet_lib)}
        inputs = {"en": False, "scan_en": True, "scan_in": False}
        state = nl.next_state(ffet_lib, inputs | {"scan_in": True}, state)
        for _ in range(4):
            state = nl.next_state(ffet_lib, inputs, state)
        values = nl.simulate(ffet_lib, inputs, state)
        assert values["scan_out"] is True

    def test_scan_functional_mode_unchanged(self, ffet_lib):
        from repro.synth import generate_counter, insert_scan_chain

        nl = generate_counter(4)
        nl.bind(ffet_lib)
        insert_scan_chain(nl, ffet_lib)
        state = {i.name: False for i in nl.sequential_instances(ffet_lib)}
        inputs = {"en": True, "scan_en": False, "scan_in": False}
        state = nl.next_state(ffet_lib, inputs, state)
        values = nl.simulate(ffet_lib, inputs, state)
        count = sum(int(values[f"count[{i}]"]) << i for i in range(4))
        assert count == 1  # still counts

    def test_fir_impulse_response(self, ffet_lib):
        from repro.synth import generate_fir_filter

        taps, width = 3, 4
        nl = generate_fir_filter(taps, width)
        nl.bind(ffet_lib)
        coeffs = [3, 5, 7]
        inputs = {}
        for t, c in enumerate(coeffs):
            for i in range(width):
                inputs[f"c{t}[{i}]"] = bool((c >> i) & 1)
        state = {i.name: False for i in nl.sequential_instances(ffet_lib)}

        def tick(x):
            nonlocal state
            step = dict(inputs)
            for i in range(width):
                step[f"x[{i}]"] = bool((x >> i) & 1)
            state = nl.next_state(ffet_lib, step, state)
            values = nl.simulate(ffet_lib, step, state)
            y_bits = [k for k in values if k.startswith("y[")]
            return sum(int(values[f"y[{i}]"]) << i for i in range(len(y_bits)))

        # Impulse input: the outputs replay the coefficients.
        outputs = [tick(1)] + [tick(0) for _ in range(taps + 2)]
        assert coeffs[0] in outputs
        assert coeffs[1] in outputs
        assert coeffs[2] in outputs
