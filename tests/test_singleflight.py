"""Cross-process single-flight on the stage store, plus stress tests.

The acceptance bar from the robustness issue: concurrent processes
sharing one cold store compute each stage key exactly once, results are
byte-identical to a serial run (with the quota forcing eviction
mid-sweep), and ``fsck`` finds zero defects afterwards — including
under injected lock-holder-death.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time

from repro.core import FlowCache, FlowConfig, SweepRunner, telemetry
from repro.core.cache import result_to_payload
from repro.core.faults import DIE_EXIT_CODE, FAULTS_ENV
from repro.core.locking import LOCK_TIMEOUT_ENV
from repro.core.ppa import FailedRun, PPAResult
from repro.core.stages import StageStore
from repro.core.sweeps import utilization_sweep

from .golden_cases import MultiplierFactory

FACTORY = MultiplierFactory(4)
BASE = FlowConfig(arch="ffet", backside_pin_fraction=0.5, utilization=0.5)
KEY = "ab" + "0" * 62
KEYS = [f"{i:02x}" + "0" * 62 for i in range(8)]


class TestFetchOrLease:
    def test_hit_returns_artifact_without_lease(self, tmp_path):
        store = StageStore(FlowCache(tmp_path))
        store.put("routing", KEY, {"x": 1})
        artifact, lease = store.fetch_or_lease("routing", KEY)
        assert artifact == {"x": 1}
        assert lease is None
        assert store.hits == 1

    def test_miss_wins_a_lease(self, tmp_path):
        store = StageStore(FlowCache(tmp_path))
        artifact, lease = store.fetch_or_lease("routing", KEY)
        assert artifact is None
        assert lease is not None
        assert store.cache.locks.lock(KEY).exists()
        lease.release()
        assert not store.cache.locks.lock(KEY).exists()

    def test_unlocked_store_never_coordinates(self, tmp_path):
        store = StageStore(FlowCache(tmp_path), locked=False)
        artifact, lease = store.fetch_or_lease("routing", KEY)
        assert artifact is None and lease is None
        assert not (tmp_path / "locks").exists()

    def test_uncontended_path_emits_no_singleflight_counters(self, tmp_path):
        tracer = telemetry.Tracer(label="t")
        with telemetry.activate(tracer):
            store = StageStore(FlowCache(tmp_path))
            _, lease = store.fetch_or_lease("routing", KEY)
            store.put("routing", KEY, {"x": 1})
            lease.release()
            store.fetch_or_lease("routing", KEY)
        trace = tracer.finish()
        flights = [k for k in trace.counters
                   if k.startswith("stage_cache.singleflight.")]
        assert flights == []
        assert store.counters().get("stage_cache.singleflight.wait") is None

    def test_waiter_loads_published_artifact(self, tmp_path, monkeypatch):
        monkeypatch.setenv(LOCK_TIMEOUT_ENV, "30")
        cache = FlowCache(tmp_path)
        owner = StageStore(cache)
        _, lease = owner.fetch_or_lease("routing", KEY)
        assert lease is not None
        waiter = StageStore(FlowCache(tmp_path))
        got: list = []

        def wait_side():
            got.append(waiter.fetch_or_lease("routing", KEY))

        thread = threading.Thread(target=wait_side)
        thread.start()
        time.sleep(0.2)  # let the waiter reach the poll loop
        owner.put("routing", KEY, {"x": 42})
        lease.release()
        thread.join(timeout=30)
        artifact, waiter_lease = got[0]
        assert artifact == {"x": 42}
        assert waiter_lease is None
        assert waiter.singleflight["wait"] == 1
        assert waiter.hits == 1

    def test_waiter_takes_over_when_holder_fails(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv(LOCK_TIMEOUT_ENV, "30")
        owner = StageStore(FlowCache(tmp_path))
        _, lease = owner.fetch_or_lease("routing", KEY)
        waiter = StageStore(FlowCache(tmp_path))
        got: list = []

        def wait_side():
            got.append(waiter.fetch_or_lease("routing", KEY))

        thread = threading.Thread(target=wait_side)
        thread.start()
        time.sleep(0.2)
        lease.release()  # "stage failed": released without publishing
        thread.join(timeout=30)
        artifact, takeover = got[0]
        assert artifact is None
        assert takeover is not None  # the waiter now owns the compute
        assert waiter.singleflight["compute"] == 1
        takeover.release()

    def test_wait_timeout_degrades_to_independent(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv(LOCK_TIMEOUT_ENV, "0.2")
        cache = FlowCache(tmp_path)
        holder = cache.locks.lock(KEY)
        assert holder.try_acquire()  # a live, wedged-looking holder
        store = StageStore(FlowCache(tmp_path))
        artifact, lease = store.fetch_or_lease("routing", KEY)
        assert artifact is None and lease is None  # compute on your own
        assert store.singleflight["timeout"] == 1
        assert store.counters()["stage_cache.singleflight.timeout"] == 1.0
        holder.release()

    def test_stale_lock_is_stolen(self, tmp_path, monkeypatch):
        import socket
        monkeypatch.setenv(LOCK_TIMEOUT_ENV, "30")
        proc = multiprocessing.Process(target=lambda: None)
        proc.start()
        dead = proc.pid
        proc.join()
        cache = FlowCache(tmp_path)
        lock_path = tmp_path / "locks" / f"{KEY}.lock"
        lock_path.parent.mkdir(parents=True)
        lock_path.write_text(json.dumps({
            "pid": dead, "host": socket.gethostname(),
            "created": time.time()}))
        store = StageStore(cache)
        store.cache._opened = True  # keep the open-sweep from racing us
        artifact, lease = store.fetch_or_lease("routing", KEY)
        assert artifact is None
        assert lease is not None
        assert store.singleflight["steal"] == 1
        lease.release()


def _die_holding_lease(cache_dir):
    # Module-level multiprocessing target: wins the lease for KEY and
    # exits hard via the lock.acquire:die fault, orphaning the lock.
    store = StageStore(FlowCache(cache_dir))
    store.cache._opened = True  # sweep must not hide the crash debris
    store.fetch_or_lease("routing", KEY)  # fires os._exit(86)


class TestLockHolderDeathFault:
    def test_steal_after_injected_death(self, tmp_path, monkeypatch):
        ctx = multiprocessing.get_context()
        proc = ctx.Process(target=_die_holding_lease, args=(tmp_path,))
        monkeypatch.setenv(FAULTS_ENV, "lock.acquire:die")
        proc.start()
        proc.join(timeout=60)
        monkeypatch.delenv(FAULTS_ENV)
        assert proc.exitcode == DIE_EXIT_CODE
        orphan = tmp_path / "locks" / f"{KEY}.lock"
        assert orphan.exists()  # the dead holder's lock is still there
        monkeypatch.setenv(LOCK_TIMEOUT_ENV, "30")
        store = StageStore(FlowCache(tmp_path))
        store.cache._opened = True  # exercise the steal, not the sweep
        artifact, lease = store.fetch_or_lease("routing", KEY)
        assert artifact is None
        assert lease is not None  # stolen and taken over
        assert store.singleflight["steal"] == 1
        store.put("routing", KEY, {"x": 1})
        lease.release()
        assert store.cache.fsck()["clean"]

    def test_open_sweep_clears_orphaned_lock(self, tmp_path, monkeypatch):
        ctx = multiprocessing.get_context()
        monkeypatch.setenv(FAULTS_ENV, "lock.acquire:die")
        proc = ctx.Process(target=_die_holding_lease, args=(tmp_path,))
        proc.start()
        proc.join(timeout=60)
        monkeypatch.delenv(FAULTS_ENV)
        cache = FlowCache(tmp_path)
        cache.get(KEY)  # first use triggers the open sweep
        assert cache.swept_locks == 1
        assert not (tmp_path / "locks" / f"{KEY}.lock").exists()


def _run_flow_worker(cache_dir, barrier, out_path):
    # One of two processes racing the same config over a shared cold
    # store; ships its store counters back as JSON.
    from repro.core.runner import run_once
    store = StageStore(FlowCache(cache_dir))
    barrier.wait()
    result = run_once(FACTORY, BASE, store=store)
    assert isinstance(result, PPAResult)
    out_path.write_text(json.dumps({
        "hits": store.hits, "misses": store.misses,
        "singleflight": store.singleflight,
        "result": result_to_payload(result),
    }))


class TestSingleFlightDedup:
    def test_concurrent_identical_runs_compute_each_stage_once(
            self, tmp_path, monkeypatch):
        from repro.core.cache import netlist_fingerprint
        from repro.core.flow import stage_keys
        monkeypatch.setenv(LOCK_TIMEOUT_ENV, "120")
        cache_dir = tmp_path / "store"
        # Pre-hold the first stage's lock so both workers provably
        # contend on it (the wait counter is deterministic, not a
        # scheduling accident); releasing without publishing hands the
        # lease to one of them.
        gate_key = stage_keys(
            BASE, netlist_fingerprint(FACTORY()))["library"]
        gate = FlowCache(cache_dir).locks.lock(gate_key)
        assert gate.try_acquire()
        outs = [tmp_path / "a.json", tmp_path / "b.json"]
        barrier = multiprocessing.Barrier(2)
        procs = [multiprocessing.Process(
            target=_run_flow_worker, args=(cache_dir, barrier, out))
            for out in outs]
        for p in procs:
            p.start()
        time.sleep(0.5)  # both workers are now waiting on the gate
        gate.release()
        for p in procs:
            p.join(timeout=300)
        assert all(p.exitcode == 0 for p in procs)
        reports = [json.loads(out.read_text()) for out in outs]
        # Exactly one process computed each of the 13 stages; the other
        # replayed them all from the store after waiting its turn.
        assert sum(r["misses"] for r in reports) == 13
        assert sum(r["hits"] for r in reports) == 13
        assert sum(r["singleflight"]["wait"] for r in reports) >= 2
        assert sum(r["singleflight"]["timeout"] for r in reports) == 0
        assert reports[0]["result"] == reports[1]["result"]
        assert FlowCache(cache_dir).fsck()["clean"]


def _hammer_store(cache_dir, barrier, worker_index):
    # Concurrent put/get/put_blob/get_blob/fsck on overlapping keys
    # with a quota small enough to force eviction under the readers.
    cache = FlowCache(cache_dir, max_bytes=4096)
    barrier.wait()
    for round_ in range(25):
        key = KEYS[(worker_index + round_) % len(KEYS)]
        cache.put(key, FailedRun(label=f"w{worker_index}",
                                 target_utilization=0.9, reason="tap"))
        got = cache.get(KEYS[round_ % len(KEYS)])
        assert got is None or isinstance(got, FailedRun)  # never torn
        cache.put_blob(key, "stage-sta",
                       {"stage": "sta", "artifact": {"pad": "x" * 64}})
        blob = cache.get_blob(KEYS[(round_ + 3) % len(KEYS)], "stage-sta")
        assert blob is None or isinstance(blob, dict)
        if round_ % 8 == worker_index % 8:
            report = cache.fsck()  # read-only audit under fire
            assert isinstance(report["defects"], list)
    assert cache.corrupt == 0  # atomic writes: no torn reads, ever


class TestMultiprocessStress:
    def test_hammer_one_store(self, tmp_path):
        workers = 4
        barrier = multiprocessing.Barrier(workers)
        procs = [multiprocessing.Process(
            target=_hammer_store, args=(tmp_path, barrier, i))
            for i in range(workers)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
        assert all(p.exitcode == 0 for p in procs)
        cache = FlowCache(tmp_path)
        report = cache.fsck()
        assert report["clean"], report["defects"]
        assert cache.info()["live_locks"] == 0


class TestQuotaSweepParity:
    def test_jobs_parity_with_eviction_mid_sweep(self, tmp_path):
        # The quota is sized to evict stage blobs mid-sweep; eviction
        # must cost only recomputation, never a single result bit.
        utils = [0.5, 0.55, 0.6]
        quota = 16 * 1024
        serial_cache = FlowCache(tmp_path / "serial", max_bytes=quota)
        serial = utilization_sweep(
            FACTORY, BASE, utils,
            runner=SweepRunner(jobs=1, cache=serial_cache))
        parallel = utilization_sweep(
            FACTORY, BASE, utils,
            runner=SweepRunner(jobs=4, cache=FlowCache(
                tmp_path / "par", max_bytes=quota)))
        assert [result_to_payload(r) for r in serial] == \
               [result_to_payload(r) for r in parallel]
        assert serial_cache.evictions > 0  # the quota actually bit
        assert FlowCache(tmp_path / "par").fsck()["clean"]
