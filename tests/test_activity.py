"""Switching-activity propagation tests."""

import pytest

from repro.extract import estimate_parasitics
from repro.netlist import Netlist
from repro.power import analyze_power, propagate_activities


def gate_netlist(master, pins):
    nl = Netlist("t")
    nl.add_net("clk", primary_input=True, clock=True)
    for pin, net in pins.items():
        if net not in nl.nets and not net.startswith("z"):
            nl.add_net(net, primary_input=True)
    nl.add_net("z", primary_output=True)
    nl.add_instance("g", master, pins)
    # A flop keeps the design clocked so endpoints exist elsewhere.
    nl.add_instance("ff", "DFFD1", {"D": "z", "CK": "clk", "Q": "q"})
    nl.add_net("q", primary_output=True)
    return nl


class TestGateActivities:
    def test_and_reduces_activity(self, ffet_lib):
        nl = gate_netlist("AND2D1", {"A": "a", "B": "b", "Z": "z"})
        nl.bind(ffet_lib)
        acts = propagate_activities(nl, ffet_lib, input_density=0.25)
        # Each input is sensitized only when the other is 1 (p = 0.5):
        # D(z) = 0.5*0.25 + 0.5*0.25 = 0.25... for AND at p=0.5 the
        # sensitization probability is 0.5 per input.
        assert acts["z"] == pytest.approx(0.25, abs=0.01)

    def test_xor_amplifies_activity(self, ffet_lib):
        nl = gate_netlist("XOR2D1", {"A": "a", "B": "b", "Z": "z"})
        nl.bind(ffet_lib)
        acts = propagate_activities(nl, ffet_lib, input_density=0.25)
        # XOR is always sensitized to both inputs: D(z) = 0.5.
        assert acts["z"] == pytest.approx(0.5, abs=0.01)

    def test_inverter_preserves_activity(self, ffet_lib):
        nl = gate_netlist("INVD1", {"A": "a", "ZN": "z"})
        nl.bind(ffet_lib)
        acts = propagate_activities(nl, ffet_lib, input_density=0.25)
        assert acts["z"] == pytest.approx(0.25, abs=0.01)

    def test_tie_cells_never_toggle(self, ffet_lib):
        nl = Netlist("t")
        nl.add_net("clk", primary_input=True, clock=True)
        nl.add_instance("tie", "TIEHI", {"Z": "one"})
        nl.add_instance("g", "BUFD1", {"A": "one", "Z": "z"})
        nl.add_instance("ff", "DFFD1", {"D": "z", "CK": "clk", "Q": "q"})
        nl.add_net("q", primary_output=True)
        nl.bind(ffet_lib)
        acts = propagate_activities(nl, ffet_lib)
        assert acts["one"] == 0.0
        assert acts["z"] == 0.0

    def test_flop_output_rate(self, ffet_lib):
        nl = Netlist("t")
        nl.add_net("clk", primary_input=True, clock=True)
        nl.add_net("d", primary_input=True)
        nl.add_instance("ff", "DFFD1", {"D": "d", "CK": "clk", "Q": "q"})
        nl.add_net("q", primary_output=True)
        nl.bind(ffet_lib)
        acts = propagate_activities(nl, ffet_lib,
                                    input_probability=0.5)
        # Q toggles when D != Q: 2 p (1-p) = 0.5 at p = 0.5.
        assert acts["q"] == pytest.approx(0.5, abs=0.01)

    def test_densities_bounded(self, ffet_lib, mult4):
        acts = propagate_activities(mult4, ffet_lib)
        assert all(0.0 <= v <= 2.0 for v in acts.values())

    def test_clock_excluded(self, ffet_lib, counter8):
        acts = propagate_activities(counter8, ffet_lib)
        assert "clk" not in acts


class TestPowerWithActivities:
    def test_power_uses_propagated_rates(self, ffet_lib, mult4):
        extraction = estimate_parasitics(mult4, ffet_lib)
        acts = propagate_activities(mult4, ffet_lib)
        flat = analyze_power(mult4, ffet_lib, extraction, 1.0)
        prop = analyze_power(mult4, ffet_lib, extraction, 1.0,
                             activities=acts)
        assert prop.total_mw != flat.total_mw
        assert prop.leakage_mw == flat.leakage_mw

    def test_zero_activity_kills_data_switching(self, ffet_lib, counter8):
        extraction = estimate_parasitics(counter8, ffet_lib)
        zeros = {name: 0.0 for name in counter8.nets}
        report = analyze_power(counter8, ffet_lib, extraction, 1.0,
                               activities=zeros)
        # Only the clock cone (and flop CK pins) still burns power.
        full = analyze_power(counter8, ffet_lib, extraction, 1.0)
        assert report.switching_mw < full.switching_mw
