"""Telemetry: tracer mechanics, JSONL well-formedness, PPA neutrality.

The contract under test is the one ``docs/observability.md`` documents:
tracing a run never changes its PPA (the instrumentation only reads),
every stage span closes with a non-negative duration, and the emitted
top-level stage list is exactly :data:`repro.core.flow.FLOW_STAGES`.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FLOW_STAGES,
    FlowConfig,
    NULL_TRACER,
    Trace,
    Tracer,
    current_tracer,
    run_flow,
)
from repro.core import telemetry
from repro.synth import generate_multiplier

from .golden_cases import MultiplierFactory

FACTORY = MultiplierFactory(4)


class TestTracer:
    def test_span_nesting(self):
        tracer = Tracer(label="t")
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner2"):
                pass
        trace = tracer.finish()
        names = [(s.name, s.depth) for s in trace.spans]
        assert names == [("outer", 0), ("inner", 1), ("inner2", 1)]
        assert trace.spans[1].parent == 0
        assert trace.spans[2].parent == 0
        assert trace.spans[0].parent is None
        assert trace.stage_list() == ["outer"]

    def test_durations_non_negative_and_nested_within_parent(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        trace = tracer.finish()
        a, b = trace.spans
        assert 0.0 <= b.duration_s <= a.duration_s
        assert a.start_s <= b.start_s
        assert b.end_s <= a.end_s

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.spans[0].closed

    def test_finish_closes_open_spans(self):
        tracer = Tracer()
        cm = tracer.span("left_open")
        cm.__enter__()
        trace = tracer.finish()
        assert trace.spans[0].closed
        assert trace.spans[0].duration_s >= 0.0

    def test_counters_accumulate_gauges_overwrite(self):
        tracer = Tracer()
        tracer.count("hits")
        tracer.count("hits", 2)
        tracer.gauge("cells", 10)
        tracer.gauge("cells", 20)
        trace = tracer.finish()
        assert trace.counters == {"hits": 3}
        assert trace.gauges == {"cells": 20}

    def test_zero_span_is_instantaneous(self):
        tracer = Tracer()
        span = tracer.zero_span("cache_hit")
        assert span.duration_s == 0.0
        assert tracer.finish().stage_list() == ["cache_hit"]

    def test_repeated_stage_times_sum(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        with tracer.span("s"):
            pass
        trace = tracer.finish()
        assert trace.stage_list() == ["s", "s"]
        assert trace.stage_times()["s"] == pytest.approx(
            sum(s.duration_s for s in trace.spans))


class TestNullTracer:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_null_api_is_noop(self):
        with NULL_TRACER.span("x") as span:
            assert span is None
        NULL_TRACER.count("a")
        NULL_TRACER.gauge("b", 1)
        assert NULL_TRACER.zero_span("c") is None
        assert NULL_TRACER.finish() == Trace()

    def test_activate_restores_previous(self):
        tracer = Tracer()
        with telemetry.activate(tracer):
            assert current_tracer() is tracer
            with telemetry.activate(None):
                assert current_tracer() is NULL_TRACER
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_activate_restores_after_exception(self):
        with pytest.raises(ValueError):
            with telemetry.activate(Tracer()):
                raise ValueError
        assert current_tracer() is NULL_TRACER


class TestJsonl:
    def _sample(self) -> Trace:
        tracer = Tracer(label="sample")
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        tracer.zero_span("cache_hit")
        tracer.count("cache.hits", 2)
        tracer.gauge("cells", 7)
        return tracer.finish()

    def test_round_trip(self):
        trace = self._sample()
        back = Trace.from_jsonl(trace.to_jsonl())
        assert back.label == trace.label
        assert back.counters == trace.counters
        assert back.gauges == trace.gauges
        assert back.total_s == trace.total_s
        assert [(s.name, s.depth, s.parent) for s in back.spans] \
            == [(s.name, s.depth, s.parent) for s in trace.spans]
        assert all(s.closed for s in back.spans)

    def test_every_begin_has_an_end(self):
        events = [json.loads(line)
                  for line in self._sample().to_jsonl().splitlines()]
        begins = {e["id"] for e in events if e["ev"] == "b"}
        ends = {e["id"] for e in events if e["ev"] == "e"}
        assert begins == ends

    def test_end_event_for_unknown_span_rejected(self):
        with pytest.raises(ValueError):
            Trace.from_jsonl('{"ev": "e", "id": 3, "t": 1.0}')

    def test_write_and_load(self, tmp_path):
        trace = self._sample()
        path = trace.write(tmp_path / "traces" / "run.jsonl")
        assert telemetry.load_trace(path).counters == trace.counters
        assert len(telemetry.load_traces(tmp_path / "traces")) == 1


class TestAggregation:
    def test_aggregate_stage_times(self):
        t1 = Tracer()
        with t1.span("a"):
            pass
        t2 = Tracer()
        with t2.span("a"):
            pass
        with t2.span("b"):
            pass
        traces = [t1.finish(), t2.finish()]
        totals = telemetry.aggregate_stage_times(traces)
        assert set(totals) == {"a", "b"}
        assert totals["a"] == pytest.approx(
            traces[0].stage_times()["a"] + traces[1].stage_times()["a"])

    def test_merge_counters(self):
        into: dict[str, float] = {"x": 1}
        telemetry.merge_counters(into, {"x": 2, "y": 5})
        assert into == {"x": 3, "y": 5}

    def test_format_stage_table(self):
        table = telemetry.format_stage_table({"place": 3.0, "route": 1.0})
        assert "place" in table and "route" in table
        assert "75.0%" in table and "25.0%" in table

    def test_format_stage_table_empty(self):
        assert "0.000s total" in telemetry.format_stage_table({})


#: Small, fast, always-placeable configurations for the neutrality
#: property: every draw is a full double flow run, so keep the space
#: tight but meaningfully varied.
CONFIGS = st.builds(
    FlowConfig,
    utilization=st.sampled_from([0.5, 0.6, 0.7]),
    backside_pin_fraction=st.sampled_from([0.0, 0.3, 0.5]),
    target_frequency_ghz=st.sampled_from([1.0, 1.5, 2.5]),
    seed=st.integers(0, 3),
    rrr_iterations=st.integers(1, 4),
    sizing_iterations=st.integers(0, 4),
)


class TestPpaNeutrality:
    """Tracing a run must never change its PPAResult."""

    @given(config=CONFIGS)
    @settings(max_examples=6, deadline=None)
    def test_traced_and_untraced_runs_are_identical(self, config):
        tracer = Tracer(label=config.label)
        traced = run_flow(FACTORY, config, tracer=tracer)
        untraced = run_flow(FACTORY, config)
        assert traced == untraced

    @given(config=CONFIGS)
    @settings(max_examples=4, deadline=None)
    def test_emitted_trace_is_well_formed(self, config):
        tracer = Tracer(label=config.label)
        run_flow(FACTORY, config, tracer=tracer)
        text = tracer.finish().to_jsonl()

        events = [json.loads(line) for line in text.splitlines()]
        begins = {e["id"]: e for e in events if e["ev"] == "b"}
        ends = {e["id"]: e for e in events if e["ev"] == "e"}
        # Every stage span closes...
        assert set(begins) == set(ends)
        # ...with a non-negative duration...
        for span_id, begin in begins.items():
            assert ends[span_id]["t"] >= begin["t"]
        # ...and the top-level stage list is exactly the flow's.
        stages = [e["name"] for e in events
                  if e["ev"] == "b" and e["depth"] == 0]
        assert tuple(stages) == FLOW_STAGES

    def test_null_tracer_leaves_no_current_tracer_behind(self):
        run_flow(FACTORY, FlowConfig(utilization=0.6))
        assert current_tracer() is NULL_TRACER


class TestFlowTelemetry:
    @pytest.fixture(scope="class")
    def traced(self):
        tracer = Tracer(label="probe")
        artifacts = run_flow(lambda: generate_multiplier(4),
                             FlowConfig(utilization=0.6),
                             return_artifacts=True, tracer=tracer)
        return artifacts, tracer.finish()

    def test_artifacts_carry_the_trace(self, traced):
        artifacts, trace = traced
        assert tuple(artifacts.trace.stage_list()) == FLOW_STAGES
        assert artifacts.trace.counters == trace.counters

    def test_subsystem_gauges_recorded(self, traced):
        _, trace = traced
        for gauge in ("placement.cells", "cts.buffers",
                      "decompose.nets.front", "decompose.nets.back",
                      "route.front.wirelength_um", "route.back.wirelength_um",
                      "merge.components", "extract.nets",
                      "sta.endpoints", "power.total_mw"):
            assert gauge in trace.gauges, gauge
        assert trace.gauges["placement.cells"] > 0
        assert trace.gauges["route.front.drv"] >= 0

    def test_nested_spans_present(self, traced):
        _, trace = traced
        names = {s.name for s in trace.spans if s.depth == 1}
        assert {"grids", "decompose",
                "route.front", "route.back",
                "def_export.front", "def_export.back"} <= names

    def test_untraced_artifacts_have_empty_trace(self):
        artifacts = run_flow(lambda: generate_multiplier(4),
                             FlowConfig(utilization=0.6),
                             return_artifacts=True)
        assert artifacts.trace == Trace()
