"""Shared golden-regression case table.

Used by ``scripts/make_golden.py`` (fixture capture) and
``tests/test_golden_regression.py`` (assertions), so the two can never
drift apart.  Factories are module-level classes so the same cases run
through the process pool unchanged.
"""

from __future__ import annotations

from pathlib import Path

from repro.core import FlowConfig
from repro.synth import (
    RiscvConfig,
    generate_multiplier,
    generate_riscv_core,
    generate_rv16_sram,
)

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "headline_ppa.json"


class MultiplierFactory:
    """Picklable netlist factory for the n-bit array multiplier."""

    def __init__(self, bits: int) -> None:
        self.bits = bits

    def __call__(self):
        return generate_multiplier(self.bits)


class RiscvTinyFactory:
    """Picklable factory for the scaled-down RISC-V core."""

    def __call__(self):
        return generate_riscv_core(RiscvConfig(xlen=8, nregs=8,
                                               name="rv_tiny"))


class SramCoreFactory:
    """Picklable factory for the SRAM-macro-backed RISC-V core."""

    def __call__(self):
        return generate_rv16_sram()


#: The headline PPA comparison (FFET dual-sided vs FFET FM12 vs CFET)
#: at the default config, plus one RISC-V point — the numbers the
#: parallel and cached paths must reproduce bit-for-bit.
CASES: dict[str, tuple[object, FlowConfig]] = {
    "ffet_dual_mult5": (MultiplierFactory(5), FlowConfig()),
    "ffet_fm12_mult5": (MultiplierFactory(5),
                        FlowConfig(arch="ffet", back_layers=0,
                                   backside_pin_fraction=0.0)),
    "cfet_mult5": (MultiplierFactory(5),
                   FlowConfig(arch="cfet", back_layers=0,
                              backside_pin_fraction=0.0)),
    "ffet_dual_rv8": (RiscvTinyFactory(), FlowConfig()),
    # Dual-sided CTS is opt-in: this pinned variant proves the knob
    # produces stable numbers while every case above (cts_mode="single"
    # by default) stays bit-for-bit unchanged.
    "ffet_dualcts_mult5": (MultiplierFactory(5),
                           FlowConfig(cts_mode="dual")),
    # The macro path: an SRAM hard macro exercises floorplan keep-outs,
    # blockage-aware legalization, derated routing capacity and the
    # macro LEF/DEF emission on every regression run.
    "ffet_dual_rv16_sram": (SramCoreFactory(), FlowConfig()),
}
