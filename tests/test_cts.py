"""Clock tree synthesis tests."""

import pytest

from repro.pnr import (
    FloorplanSpec,
    place,
    plan_floor,
    plan_power,
    synthesize_clock_tree,
)


@pytest.fixture()
def placed(ffet_lib, mult4):
    die = plan_floor(mult4, ffet_lib, FloorplanSpec(0.7))
    powerplan = plan_power(ffet_lib.tech, die)
    placement = place(mult4, ffet_lib, die, powerplan, seed=0)
    return die, powerplan, placement


class TestClockTree:
    def test_every_flop_buffered(self, ffet_lib, mult4, placed):
        _die, _pp, placement = placed
        flops = [i.name for i in mult4.sequential_instances(ffet_lib)]
        synthesize_clock_tree(mult4, ffet_lib, placement, "clk")
        for name in flops:
            ck_net = mult4.instances[name].connections["CK"]
            assert ck_net.startswith("ctsnet_")
            driver_inst, _pin = mult4.nets[ck_net].driver
            assert ffet_lib[mult4.instances[driver_inst].master].function == \
                "CLKBUF"

    def test_root_connected_to_clock_pi(self, ffet_lib, mult4, placed):
        _die, _pp, placement = placed
        report = synthesize_clock_tree(mult4, ffet_lib, placement, "clk")
        root = mult4.instances[report.root_buffer]
        assert root.connections["A"] == "clk"

    def test_fanout_budget(self, ffet_lib, mult4, placed):
        _die, _pp, placement = placed
        max_fanout = 8
        synthesize_clock_tree(mult4, ffet_lib, placement, "clk",
                              max_fanout=max_fanout)
        for net in mult4.nets.values():
            if net.name.startswith("ctsnet_"):
                assert len(net.sinks) <= max_fanout

    def test_report_counts(self, ffet_lib, mult4, placed):
        _die, _pp, placement = placed
        n_flops = len(mult4.sequential_instances(ffet_lib))
        report = synthesize_clock_tree(mult4, ffet_lib, placement, "clk")
        assert report.sinks == n_flops
        assert report.buffers >= 1
        assert report.levels >= 1

    def test_buffers_placed(self, ffet_lib, mult4, placed):
        _die, _pp, placement = placed
        report = synthesize_clock_tree(mult4, ffet_lib, placement, "clk")
        cts_instances = [n for n in mult4.instances if n.startswith("ctsbuf_")]
        assert len(cts_instances) == report.buffers
        for name in cts_instances:
            assert name in placement.locations

    def test_netlist_still_binds(self, ffet_lib, mult4, placed):
        _die, _pp, placement = placed
        synthesize_clock_tree(mult4, ffet_lib, placement, "clk")
        mult4.bind(ffet_lib)  # must not raise

    def test_missing_clock_rejected(self, ffet_lib, mult4, placed):
        _die, _pp, placement = placed
        with pytest.raises(KeyError):
            synthesize_clock_tree(mult4, ffet_lib, placement, "not_a_clock")

    def test_large_tree_has_multiple_levels(self, ffet_lib, placed):
        from repro.synth import generate_multiplier

        nl = generate_multiplier(8)
        nl.bind(ffet_lib)
        die = plan_floor(nl, ffet_lib, FloorplanSpec(0.7))
        powerplan = plan_power(ffet_lib.tech, die)
        placement = place(nl, ffet_lib, die, powerplan, seed=0)
        report = synthesize_clock_tree(nl, ffet_lib, placement, "clk",
                                       max_fanout=4)
        assert report.levels >= 3
