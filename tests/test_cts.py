"""Clock tree synthesis tests: single mode, dual mode, flow-through."""

import pytest

from repro.core import FlowConfig
from repro.pnr import (
    FloorplanSpec,
    place,
    plan_floor,
    plan_power,
    synthesize_clock_tree,
)


@pytest.fixture()
def placed(ffet_lib, mult4):
    die = plan_floor(mult4, ffet_lib, FloorplanSpec(0.7))
    powerplan = plan_power(ffet_lib.tech, die)
    placement = place(mult4, ffet_lib, die, powerplan, seed=0)
    return die, powerplan, placement


class TestClockTree:
    def test_every_flop_buffered(self, ffet_lib, mult4, placed):
        _die, _pp, placement = placed
        flops = [i.name for i in mult4.sequential_instances(ffet_lib)]
        synthesize_clock_tree(mult4, ffet_lib, placement, "clk")
        for name in flops:
            ck_net = mult4.instances[name].connections["CK"]
            assert ck_net.startswith("ctsnet_")
            driver_inst, _pin = mult4.nets[ck_net].driver
            assert ffet_lib[mult4.instances[driver_inst].master].function == \
                "CLKBUF"

    def test_root_connected_to_clock_pi(self, ffet_lib, mult4, placed):
        _die, _pp, placement = placed
        report = synthesize_clock_tree(mult4, ffet_lib, placement, "clk")
        root = mult4.instances[report.root_buffer]
        assert root.connections["A"] == "clk"

    def test_fanout_budget(self, ffet_lib, mult4, placed):
        _die, _pp, placement = placed
        max_fanout = 8
        synthesize_clock_tree(mult4, ffet_lib, placement, "clk",
                              max_fanout=max_fanout)
        for net in mult4.nets.values():
            if net.name.startswith("ctsnet_"):
                assert len(net.sinks) <= max_fanout

    def test_report_counts(self, ffet_lib, mult4, placed):
        _die, _pp, placement = placed
        n_flops = len(mult4.sequential_instances(ffet_lib))
        report = synthesize_clock_tree(mult4, ffet_lib, placement, "clk")
        assert report.sinks == n_flops
        assert report.buffers >= 1
        assert report.levels >= 1

    def test_buffers_placed(self, ffet_lib, mult4, placed):
        _die, _pp, placement = placed
        report = synthesize_clock_tree(mult4, ffet_lib, placement, "clk")
        cts_instances = [n for n in mult4.instances if n.startswith("ctsbuf_")]
        assert len(cts_instances) == report.buffers
        for name in cts_instances:
            assert name in placement.locations

    def test_netlist_still_binds(self, ffet_lib, mult4, placed):
        _die, _pp, placement = placed
        synthesize_clock_tree(mult4, ffet_lib, placement, "clk")
        mult4.bind(ffet_lib)  # must not raise

    def test_missing_clock_rejected(self, ffet_lib, mult4, placed):
        _die, _pp, placement = placed
        with pytest.raises(KeyError):
            synthesize_clock_tree(mult4, ffet_lib, placement, "not_a_clock")

    def test_large_tree_has_multiple_levels(self, ffet_lib, placed):
        from repro.synth import generate_multiplier

        nl = generate_multiplier(8)
        nl.bind(ffet_lib)
        die = plan_floor(nl, ffet_lib, FloorplanSpec(0.7))
        powerplan = plan_power(ffet_lib.tech, die)
        placement = place(nl, ffet_lib, die, powerplan, seed=0)
        report = synthesize_clock_tree(nl, ffet_lib, placement, "clk",
                                       max_fanout=4)
        assert report.levels >= 3

    def test_single_mode_report_is_all_frontside(self, ffet_lib, mult4,
                                                 placed):
        _die, _pp, placement = placed
        report = synthesize_clock_tree(mult4, ffet_lib, placement, "clk")
        assert report.mode == "single"
        assert report.back_wirelength_nm == 0.0
        assert report.back_buffers == 0
        assert report.back_fraction == 0.0
        assert set(report.net_sides.values()) == {"front"}

    def test_unknown_mode_rejected(self, ffet_lib, mult4, placed):
        _die, _pp, placement = placed
        with pytest.raises(ValueError, match="unknown CTS mode"):
            synthesize_clock_tree(mult4, ffet_lib, placement, "clk",
                                  mode="both")


class TestDualSidedClockTree:
    def test_dual_mode_uses_backside_metal(self, ffet_lib, mult4, placed):
        _die, _pp, placement = placed
        report = synthesize_clock_tree(mult4, ffet_lib, placement, "clk",
                                       max_fanout=4, mode="dual")
        assert report.mode == "dual"
        assert report.back_buffers > 0
        assert report.back_wirelength_nm > 0.0
        assert "back" in set(report.net_sides.values())
        assert report.front_buffers + report.back_buffers == report.buffers

    def test_back_fraction_knob_steers_the_partition(self, ffet_lib, mult4,
                                                     placed):
        _die, _pp, placement = placed
        low = synthesize_clock_tree(mult4, ffet_lib, placement, "clk",
                                    max_fanout=4, mode="dual",
                                    back_fraction=0.0)
        # Fresh design for the second synthesis (CTS mutates in place).
        from repro.synth import generate_multiplier
        nl2 = generate_multiplier(4)
        nl2.bind(ffet_lib)
        die2 = plan_floor(nl2, ffet_lib, FloorplanSpec(0.7))
        pp2 = plan_power(ffet_lib.tech, die2)
        pl2 = place(nl2, ffet_lib, die2, pp2, seed=0)
        high = synthesize_clock_tree(nl2, ffet_lib, pl2, "clk",
                                     max_fanout=4, mode="dual",
                                     back_fraction=1.0)
        assert low.back_fraction <= high.back_fraction
        assert high.back_fraction > 0.0

    def test_skew_report_is_consistent(self, ffet_lib, mult4, placed):
        _die, _pp, placement = placed
        report = synthesize_clock_tree(mult4, ffet_lib, placement, "clk",
                                       max_fanout=4, mode="dual")
        assert report.skew_est_ps == pytest.approx(
            report.max_insertion_ps - report.min_insertion_ps)
        assert len(report.sink_insertion_ps) == report.sinks


class TestDualCtsConfig:
    def test_dual_needs_ffet(self):
        with pytest.raises(ValueError, match="dual-sided CTS"):
            FlowConfig(arch="cfet", back_layers=0, backside_pin_fraction=0.0,
                       cts_mode="dual")

    def test_dual_needs_backside_layers(self):
        with pytest.raises(ValueError, match="dual-sided CTS"):
            FlowConfig(arch="ffet", back_layers=0, backside_pin_fraction=0.0,
                       cts_mode="dual")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="cts_mode"):
            FlowConfig(cts_mode="both")

    def test_fraction_bounds(self):
        with pytest.raises(ValueError, match="cts_back_fraction"):
            FlowConfig(cts_back_fraction=1.5)


class TestDualCtsFlowThrough:
    """Dual-sided CTS reaches routing, DEF, extraction and variation."""

    @pytest.fixture(scope="class")
    def flows(self):
        from repro.core.flow import run_flow
        from repro.synth import generate_multiplier

        def factory():
            return generate_multiplier(5)

        single = run_flow(factory, FlowConfig(), return_artifacts=True)
        dual = run_flow(factory, FlowConfig(cts_mode="dual"),
                        return_artifacts=True)
        return single, dual

    def _clock_nets(self, artifacts):
        return [n for n in artifacts.extraction.nets
                if n.startswith("ctsnet_")]

    def test_backside_clock_wires_reach_extraction(self, flows):
        single, dual = flows
        back = sum(dual.extraction.nets[n].back_wirelength_nm
                   for n in self._clock_nets(dual))
        assert back > 0.0
        assert sum(single.extraction.nets[n].back_wirelength_nm
                   for n in self._clock_nets(single)) == 0.0

    def test_merged_def_routes_clock_on_bm_layers(self, flows):
        _single, dual = flows
        bm_clock_segments = [
            seg for net, segs in dual.merged_def.nets.items()
            if net.startswith("ctsnet_")
            for seg in segs if seg.layer.startswith("BM")
        ]
        assert bm_clock_segments
        assert set(dual.cts_report.net_sides.values()) >= {"back"}

    def test_results_stay_valid_in_both_modes(self, flows):
        single, dual = flows
        assert single.result.valid and dual.result.valid
        assert dual.result.cts_buffers == single.result.cts_buffers

    def test_overlay_perturbs_dual_clock_but_not_single(self, flows):
        """Backside clock wires inherit the FFET overlay RC model; a
        single-sided clock is exactly overlay-insensitive."""
        from repro.variation.models import VariationSample
        from repro.variation.perturb import perturb_extraction

        single, dual = flows
        pitch = single.library.tech.rules.track_pitch_nm
        sample = VariationSample(index=0, seed=0,
                                 overlay_dx_nm=pitch, overlay_dy_nm=0.0,
                                 cell_derate=1.0,
                                 front_rc_scale=1.0, back_rc_scale=1.0)

        pert_dual = perturb_extraction(dual.extraction, sample, pitch)
        changed = [n for n in self._clock_nets(dual)
                   if pert_dual.nets[n].wire_res_kohm
                   != dual.extraction.nets[n].wire_res_kohm]
        assert changed, "no backside clock net saw the overlay RC shift"

        pert_single = perturb_extraction(single.extraction, sample, pitch)
        for n in self._clock_nets(single):
            assert pert_single.nets[n].wire_res_kohm \
                == single.extraction.nets[n].wire_res_kohm
            assert pert_single.nets[n].wire_cap_ff \
                == single.extraction.nets[n].wire_cap_ff
