"""Stage graph, stage keys, the StageStore, and incremental replay.

The stage-graph contract (docs/architecture.md): each stage's key
covers exactly its declared config slice plus its upstream keys, the
store never changes what a run returns, replayed stages re-run their
guard checks, and a layer-split sweep shares the whole
library..legalization prefix.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import FlowCache, FlowConfig, SweepRunner, Tracer
from repro.core.cache import netlist_fingerprint, result_to_payload
from repro.core.errors import FlowError
from repro.core.faults import FaultClause, FaultPlan
from repro.core.flow import FLOW_GRAPH, FLOW_STAGES, run_flow, stage_keys
from repro.core.stages import Stage, StageGraph, StageStore, stage_key

from .golden_cases import MultiplierFactory

FACTORY = MultiplierFactory(5)
BASE = FlowConfig()

#: The stages every Table III layer split shares (everything before
#: the layer counts first enter the key chain, at ``routing``).
PREFIX_STAGES = FLOW_STAGES[:FLOW_STAGES.index("routing")]


def _keys(config: FlowConfig, version: str = "v0") -> dict[str, str]:
    fp = netlist_fingerprint(FACTORY())
    return stage_keys(config, fp, version=version)


class TestStageGraph:
    def test_graph_matches_canonical_stage_list(self):
        assert FLOW_GRAPH.names == FLOW_STAGES

    def test_upstream_closure_is_the_whole_prefix(self):
        assert FLOW_GRAPH.upstream_closure("routing") == PREFIX_STAGES
        assert FLOW_GRAPH.upstream_closure("library") == ()

    def test_layer_fields_first_enter_at_routing(self):
        for name in PREFIX_STAGES:
            fields = FLOW_GRAPH.transitive_fields(name)
            assert "front_layers" not in fields
            assert "back_layers" not in fields
        assert {"front_layers", "back_layers"} <= \
            FLOW_GRAPH.transitive_fields("routing")

    def test_every_stage_slice_names_real_config_fields(self):
        with pytest.raises(ValueError, match="unknown config"):
            StageGraph((Stage("x", frozenset({"no_such_field"}), (),
                              execute=lambda s: None,
                              restore=lambda s, a: None),))

    def test_duplicate_stage_names_rejected(self):
        s = Stage("x", frozenset(), (), execute=lambda s: None,
                  restore=lambda s, a: None)
        with pytest.raises(ValueError, match="duplicate"):
            StageGraph((s, s))

    def test_upstream_must_be_an_earlier_stage(self):
        with pytest.raises(ValueError, match="not an earlier stage"):
            StageGraph((Stage("x", frozenset(), ("y",),
                              execute=lambda s: None,
                              restore=lambda s, a: None),))


class TestStageKey:
    def test_deterministic(self):
        assert _keys(BASE) == _keys(BASE)

    def test_own_field_changes_own_key(self):
        a, b = _keys(BASE), _keys(BASE.with_(utilization=0.6))
        assert a["floorplan"] != b["floorplan"]

    def test_changes_are_transitive_downstream(self):
        a, b = _keys(BASE), _keys(BASE.with_(utilization=0.6))
        floorplan_at = FLOW_STAGES.index("floorplan")
        for name in FLOW_STAGES[:floorplan_at]:
            assert a[name] == b[name]
        for name in FLOW_STAGES[floorplan_at:]:
            assert a[name] != b[name]

    def test_layer_split_shares_the_prefix(self):
        a = _keys(BASE)
        b = _keys(BASE.with_(front_layers=9, back_layers=3))
        for name in PREFIX_STAGES:
            assert a[name] == b[name]
        assert a["routing"] != b["routing"]

    @pytest.mark.parametrize("override", [{"cts_mode": "dual"},
                                          {"cts_back_fraction": 0.25}])
    def test_cts_fields_first_enter_at_cts(self, override):
        """The dual-CTS knobs invalidate the cts key and everything
        after it — and nothing upstream of it."""
        a, b = _keys(BASE), _keys(BASE.with_(**override))
        cts_at = FLOW_STAGES.index("cts")
        for name in FLOW_STAGES[:cts_at]:
            assert a[name] == b[name], name
        for name in FLOW_STAGES[cts_at:]:
            assert a[name] != b[name], name

    def test_cts_fields_in_no_upstream_slice(self):
        for name in FLOW_STAGES[:FLOW_STAGES.index("cts")]:
            fields = FLOW_GRAPH.transitive_fields(name)
            assert "cts_mode" not in fields
            assert "cts_back_fraction" not in fields
        assert {"cts_mode", "cts_back_fraction"} <= \
            FLOW_GRAPH.transitive_fields("cts")

    def test_netlist_fingerprint_spares_the_library(self):
        a = stage_keys(BASE, "fp-one", version="v0")
        b = stage_keys(BASE, "fp-two", version="v0")
        assert a["library"] == b["library"]
        for name in FLOW_STAGES[1:]:
            assert a[name] != b[name]

    def test_version_invalidates_everything(self):
        a, b = _keys(BASE, version="v0"), _keys(BASE, version="v1")
        assert all(a[name] != b[name] for name in FLOW_STAGES)

    def test_kernel_mode_invalidates_everything(self, monkeypatch):
        """Flipping REPRO_KERNEL misses every stored stage artifact, so
        python- and numpy-kernel walks can never replay each other."""
        from repro.core.kernels import KERNEL_ENV

        monkeypatch.setenv(KERNEL_ENV, "numpy")
        a = _keys(BASE, version="v0")
        monkeypatch.setenv(KERNEL_ENV, "python")
        b = _keys(BASE, version="v0")
        assert all(a[name] != b[name] for name in FLOW_STAGES)

    def test_upstream_key_count_is_checked(self):
        with pytest.raises(ValueError, match="upstream"):
            stage_key(FLOW_GRAPH["routing"], BASE, [], version="v0")


class TestStageStore:
    def test_round_trip_and_counters(self, tmp_path):
        store = StageStore(FlowCache(tmp_path))
        assert store.get("placement", "k" * 64) is None
        assert store.put("placement", "k" * 64, {"placement": [1, 2]})
        assert store.get("placement", "k" * 64) == {"placement": [1, 2]}
        assert (store.hits, store.misses) == (1, 1)
        assert store.counters() == {
            "stage_cache.hits": 1.0, "stage_cache.misses": 1.0,
            "stage_cache.hit.placement": 1.0,
            "stage_cache.miss.placement": 1.0,
        }

    def test_key_is_namespaced_by_stage(self, tmp_path):
        store = StageStore(FlowCache(tmp_path))
        store.put("placement", "k" * 64, {"placement": []})
        assert store.get("routing", "k" * 64) is None

    def test_malformed_entry_is_a_miss(self, tmp_path):
        cache = FlowCache(tmp_path)
        store = StageStore(cache)
        cache.put_blob("k" * 64, "stage-placement", {"wrong": "shape"})
        assert store.get("placement", "k" * 64) is None

    def test_tallies_on_the_active_tracer(self, tmp_path):
        store = StageStore(FlowCache(tmp_path))
        tracer = Tracer(label="t")
        from repro.core import telemetry
        with telemetry.activate(tracer):
            store.get("cts", "k" * 64)
        counters = tracer.finish().counters
        assert counters["stage_cache.misses"] == 1
        assert counters["stage_cache.miss.cts"] == 1


class TestIncrementalFlow:
    def test_warm_walk_replays_every_stage_bit_for_bit(self, tmp_path):
        store = StageStore(FlowCache(tmp_path))
        cold = run_flow(FACTORY, BASE, store=store)
        assert store.hits == 0 and store.misses == len(FLOW_STAGES)
        warm = run_flow(FACTORY, BASE, store=store)
        assert result_to_payload(warm) == result_to_payload(cold)
        assert store.hits == len(FLOW_STAGES)

    def test_store_matches_storeless_run(self, tmp_path):
        plain = run_flow(FACTORY, BASE)
        stored = run_flow(FACTORY, BASE, store=StageStore(FlowCache(tmp_path)))
        assert result_to_payload(stored) == result_to_payload(plain)

    def test_stage_status_reports_the_walk(self, tmp_path):
        store = StageStore(FlowCache(tmp_path))
        cold = run_flow(FACTORY, BASE, store=store, return_artifacts=True)
        assert cold.stage_status == {n: "ran" for n in FLOW_STAGES}
        warm = run_flow(FACTORY, BASE, store=store, return_artifacts=True)
        assert warm.stage_status == {n: "cached" for n in FLOW_STAGES}

    def test_stop_after_walks_a_partial_graph(self, tmp_path):
        store = StageStore(FlowCache(tmp_path))
        art = run_flow(FACTORY, BASE, store=store, stop_after="cts")
        walked = FLOW_STAGES[:FLOW_STAGES.index("cts") + 1]
        assert tuple(art.stage_status) == walked
        assert art.result is None
        assert art.placement is not None
        assert art.routing_results is None
        # A later full run replays the partial walk's prefix.
        run_flow(FACTORY, BASE, store=store)
        assert store.hits == len(walked)

    def test_stop_after_final_stage_returns_full_artifacts(self):
        art = run_flow(FACTORY, BASE, stop_after=FLOW_STAGES[-1])
        assert art.result is not None and art.result.valid

    def test_stop_after_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown stage"):
            run_flow(FACTORY, BASE, stop_after="place_and_route")

    def test_replayed_stage_emits_cache_hit_span(self, tmp_path):
        store = StageStore(FlowCache(tmp_path))
        run_flow(FACTORY, BASE, store=store)
        tracer = Tracer(label="warm")
        run_flow(FACTORY, BASE, store=store, tracer=tracer)
        trace = tracer.finish()
        assert trace.stage_list() == list(FLOW_STAGES)
        hits = [s for s in trace.spans if s.name == "cache_hit"]
        assert len(hits) == len(FLOW_STAGES)

    def test_guard_revalidates_replayed_artifacts(self, tmp_path):
        cache = FlowCache(tmp_path)
        store = StageStore(cache)
        run_flow(FACTORY, BASE, store=store)
        # Corrupt the stored placement artifact: drop one instance.
        keys = stage_keys(BASE, netlist_fingerprint(FACTORY()),
                          version=store.version)
        art = store.get("placement", keys["placement"])
        del art["placement"].locations[next(iter(art["placement"].locations))]
        store.put("placement", keys["placement"], art)
        with pytest.raises(FlowError) as err:
            run_flow(FACTORY, BASE, store=StageStore(cache))
        assert err.value.stage == "placement"

    def test_active_faults_bypass_the_store(self, tmp_path):
        store = StageStore(FlowCache(tmp_path))
        # An active-but-never-firing plan must still disable the store.
        plan = FaultPlan((FaultClause(stage="sta", mode="raise", rate=0.0),))
        result = run_flow(FACTORY, BASE, store=store, faults=plan)
        assert result.valid
        assert store.hits == 0 and store.misses == 0

    def test_preset_library_bypasses_the_store(self, tmp_path):
        from repro.core.flow import prepare_library
        store = StageStore(FlowCache(tmp_path))
        library = prepare_library(BASE)
        result = run_flow(FACTORY, BASE, library=library, store=store)
        assert result.valid
        assert store.hits == 0 and store.misses == 0


class TestLayerSplitSweepReplay:
    """The tentpole property: a Table III layer-split enumeration
    places once and routes N times."""

    SPLITS = ((9, 3), (8, 4), (7, 5), (6, 6))

    def test_prefix_executes_exactly_once_across_splits(self, tmp_path):
        runner = SweepRunner(jobs=1, cache=FlowCache(tmp_path))
        configs = [BASE.with_(front_layers=f, back_layers=b)
                   for f, b in self.SPLITS]
        results = runner.run_many(FACTORY, configs)
        assert all(r.valid for r in results)
        counters = runner.stats.stage_counters
        for name in PREFIX_STAGES:
            assert counters.get(f"stage_cache.miss.{name}", 0) == 1, name
            assert counters.get(f"stage_cache.hit.{name}", 0) == \
                len(self.SPLITS) - 1, name
        for name in FLOW_STAGES[FLOW_STAGES.index("routing"):]:
            assert counters.get(f"stage_cache.miss.{name}", 0) == \
                len(self.SPLITS), name
            assert counters.get(f"stage_cache.hit.{name}", 0) == 0, name

    def test_stats_report_per_stage_hit_rates(self, tmp_path):
        runner = SweepRunner(jobs=1, cache=FlowCache(tmp_path))
        configs = [BASE.with_(front_layers=f, back_layers=b)
                   for f, b in self.SPLITS]
        runner.run_many(FACTORY, configs)
        rates = runner.stats.stage_hit_rates()
        assert rates["placement"] == pytest.approx(0.75)
        assert rates["routing"] == 0.0
        assert "stage replays" in runner.stats.summary()

    def test_dual_cts_layer_split_sweep_places_exactly_once(self, tmp_path):
        """The acceptance property of dual-sided CTS as a config-sliced
        stage: a layer-split sweep with ``cts_mode="dual"`` still shares
        the whole library..legalization prefix — placement executes
        exactly once across the splits."""
        runner = SweepRunner(jobs=1, cache=FlowCache(tmp_path))
        configs = [BASE.with_(cts_mode="dual", front_layers=f, back_layers=b)
                   for f, b in self.SPLITS]
        results = runner.run_many(FACTORY, configs)
        assert all(r.valid for r in results)
        counters = runner.stats.stage_counters
        for name in PREFIX_STAGES:
            assert counters.get(f"stage_cache.miss.{name}", 0) == 1, name
            assert counters.get(f"stage_cache.hit.{name}", 0) == \
                len(self.SPLITS) - 1, name

    def test_cts_mode_sweep_shares_the_placement_prefix(self, tmp_path):
        """Flipping only the CTS mode re-runs cts..power and replays
        library..placement — CTS is the first stage whose key differs."""
        runner = SweepRunner(jobs=1, cache=FlowCache(tmp_path))
        configs = [BASE, BASE.with_(cts_mode="dual")]
        results = runner.run_many(FACTORY, configs)
        assert all(r.valid for r in results)
        counters = runner.stats.stage_counters
        cts_at = FLOW_STAGES.index("cts")
        for name in FLOW_STAGES[:cts_at]:
            assert counters.get(f"stage_cache.miss.{name}", 0) == 1, name
            assert counters.get(f"stage_cache.hit.{name}", 0) == 1, name
        for name in FLOW_STAGES[cts_at:]:
            assert counters.get(f"stage_cache.miss.{name}", 0) == 2, name
            assert counters.get(f"stage_cache.hit.{name}", 0) == 0, name

    def test_refreshed_sweep_replays_instead_of_recomputing(self, tmp_path):
        cache = FlowCache(tmp_path)
        configs = [BASE.with_(front_layers=f, back_layers=b)
                   for f, b in self.SPLITS]
        first = SweepRunner(jobs=1, cache=cache)
        cold = first.run_many(FACTORY, configs)
        second = SweepRunner(jobs=1, cache=cache, refresh=True)
        warm = second.run_many(FACTORY, configs)
        assert [result_to_payload(r) for r in warm] == \
            [result_to_payload(r) for r in cold]
        assert second.stats.cache_hits == 0
        assert second.stats.stage_hits == \
            len(self.SPLITS) * len(FLOW_STAGES)
