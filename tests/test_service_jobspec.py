"""Job-spec validation and expansion (`repro.service.jobspec`)."""

from __future__ import annotations

import pickle

import pytest

from repro.core.config import FlowConfig
from repro.core.runner import RetryPolicy
from repro.netlist import Netlist
from repro.service.jobspec import (
    DesignSpec,
    JobSpecError,
    parse_jobspec,
)

MULT = {"type": "multiplier", "bits": 4}
BASE_CONFIG = {"arch": "ffet", "backside_pin_fraction": 0.5,
               "utilization": 0.5}


def spec(**overrides) -> dict:
    doc = {"kind": "run", "design": dict(MULT),
           "config": dict(BASE_CONFIG)}
    doc.update(overrides)
    return doc


class TestRunSpecs:
    def test_minimal_run_expands_to_one_item(self):
        job = parse_jobspec(spec())
        assert job.kind == "run"
        assert len(job.items) == 1
        assert isinstance(job.items[0].config, FlowConfig)
        assert job.items[0].config.utilization == 0.5
        assert job.priority == 0

    def test_empty_config_uses_flowconfig_defaults(self):
        job = parse_jobspec({"kind": "run"})
        assert job.items[0].config == FlowConfig()
        assert job.design.type == "riscv"

    def test_unknown_config_field_is_rejected(self):
        with pytest.raises(JobSpecError, match="unknown config fields"):
            parse_jobspec(spec(config={"utilizzzation": 0.5}))

    def test_invalid_config_value_is_rejected(self):
        with pytest.raises(JobSpecError, match="invalid config"):
            parse_jobspec(spec(config={"arch": "finfet"}))

    def test_non_object_spec_is_rejected(self):
        with pytest.raises(JobSpecError):
            parse_jobspec(["kind", "run"])

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(JobSpecError, match="unknown job kind"):
            parse_jobspec(spec(kind="flow"))


class TestDesigns:
    def test_multiplier_factory_builds_a_netlist(self):
        job = parse_jobspec(spec())
        assert isinstance(job.design(), Netlist)

    def test_design_factory_is_picklable(self):
        design = parse_jobspec(spec()).design
        clone = pickle.loads(pickle.dumps(design))
        assert clone == design
        assert isinstance(clone(), Netlist)

    def test_riscv_design_fields(self):
        job = parse_jobspec(spec(design={"type": "riscv", "xlen": 8,
                                         "nregs": 8}))
        assert job.design == DesignSpec(type="riscv", xlen=8, nregs=8)

    def test_unknown_design_type_is_rejected(self):
        with pytest.raises(JobSpecError, match="unknown design type"):
            parse_jobspec(spec(design={"type": "fpga"}))

    def test_design_bounds_are_enforced(self):
        with pytest.raises(JobSpecError, match="bits"):
            parse_jobspec(spec(design={"type": "multiplier", "bits": 1}))

    def test_portfolio_designs_are_accepted(self):
        for dtype in ("rv16_sram", "rv16_cache", "rv16_tile",
                      "counter", "fir"):
            job = parse_jobspec(spec(design={"type": dtype}))
            assert job.design.type == dtype

    def test_macro_design_factory_declares_its_macros(self):
        design = parse_jobspec(spec(design={"type": "rv16_sram"})).design
        clone = pickle.loads(pickle.dumps(design))
        netlist = clone()
        assert isinstance(netlist, Netlist)
        assert "u_dmem" in netlist.attributes.get("macros", {})


class TestSweepExpansion:
    def test_layers_axis_expands_splits(self):
        job = parse_jobspec(spec(kind="sweep", axis="layers",
                                 splits=["9:3", "8:4"]))
        assert [i.label for i in job.items] == ["FM9BM3", "FM8BM4"]
        assert job.items[0].config.front_layers == 9
        assert job.items[0].config.back_layers == 3
        # Non-split knobs come from the shared config block.
        assert all(i.config.utilization == 0.5 for i in job.items)

    def test_utilization_axis_expands_points(self):
        job = parse_jobspec(spec(kind="sweep", axis="utilization",
                                 points=[0.5, 0.6]))
        assert [i.config.utilization for i in job.items] == [0.5, 0.6]

    def test_frequency_axis_expands_targets(self):
        job = parse_jobspec(spec(kind="sweep", axis="frequency",
                                 targets=[1.0, 2.0]))
        assert [i.config.target_frequency_ghz
                for i in job.items] == [1.0, 2.0]

    def test_cts_axis_is_the_full_cross_product(self):
        job = parse_jobspec(spec(kind="sweep", axis="cts",
                                 points=[0.5], splits=["6:6", "12:12"]))
        assert len(job.items) == 4  # 1 util x 2 splits x 2 modes
        assert {i.config.cts_mode for i in job.items} == \
            {"single", "dual"}

    def test_unknown_axis_is_rejected(self):
        with pytest.raises(JobSpecError, match="unknown sweep axis"):
            parse_jobspec(spec(kind="sweep", axis="voltage"))

    def test_bad_split_is_rejected(self):
        with pytest.raises(JobSpecError, match="invalid layer split"):
            parse_jobspec(spec(kind="sweep", axis="layers",
                               splits=["9x3"]))

    def test_list_splits_are_accepted(self):
        job = parse_jobspec(spec(kind="sweep", axis="layers",
                                 splits=[[7, 5]]))
        assert job.items[0].config.front_layers == 7


class TestMcSpecs:
    def test_mc_defaults(self):
        job = parse_jobspec(spec(kind="mc"))
        assert job.mc.samples == 32
        assert len(job.items) == 1

    def test_mc_params(self):
        job = parse_jobspec(spec(kind="mc",
                                 mc={"samples": 8, "seed": 3,
                                     "overlay_sigma_nm": 1.0}))
        assert (job.mc.samples, job.mc.seed) == (8, 3)
        assert job.mc.overlay_sigma_nm == 1.0

    def test_mc_sample_bounds(self):
        with pytest.raises(JobSpecError, match="samples"):
            parse_jobspec(spec(kind="mc", mc={"samples": 0}))


class TestPriorityAndQuota:
    def test_priority_bounds(self):
        assert parse_jobspec(spec(priority=7)).priority == 7
        with pytest.raises(JobSpecError, match="priority"):
            parse_jobspec(spec(priority=101))
        with pytest.raises(JobSpecError, match="priority"):
            parse_jobspec(spec(priority=1.5))

    def test_quota_builds_the_retry_policy(self):
        job = parse_jobspec(spec(quota={"retries": 2, "timeout_s": 9}),
                            default_retry=RetryPolicy())
        assert job.retry.max_attempts == 2
        assert job.retry.timeout_s == 9.0

    def test_quota_defaults_pass_through(self):
        default = RetryPolicy(max_attempts=5, timeout_s=60.0)
        job = parse_jobspec(spec(), default_retry=default)
        assert job.retry is default

    def test_quota_bounds(self):
        with pytest.raises(JobSpecError, match="retries"):
            parse_jobspec(spec(quota={"retries": 0}))
        with pytest.raises(JobSpecError, match="timeout_s"):
            parse_jobspec(spec(quota={"timeout_s": -1}))

    def test_max_runs_quota_rejects_big_jobs(self):
        doc = spec(kind="sweep", axis="utilization",
                   points=[0.5, 0.6, 0.7])
        with pytest.raises(JobSpecError, match="per-job quota"):
            parse_jobspec(doc, max_runs=2)
        assert len(parse_jobspec(doc, max_runs=3).items) == 3

    def test_tag_length_is_bounded(self):
        with pytest.raises(JobSpecError, match="tag"):
            parse_jobspec(spec(tag="x" * 201))


class TestFingerprint:
    def test_fingerprint_is_content_stable(self):
        a = parse_jobspec(spec(tag="a"))
        b = parse_jobspec(spec(tag="a"))
        c = parse_jobspec(spec(tag="b"))
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()
