"""Auxiliary design generators: counter and array multiplier."""

import pytest

from repro.synth import generate_counter, generate_multiplier


class TestCounter:
    def test_counts_up_when_enabled(self, ffet_lib):
        nl = generate_counter(6)
        nl.bind(ffet_lib)
        state = {i.name: False for i in nl.sequential_instances(ffet_lib)}
        for expected in range(1, 9):
            state = nl.next_state(ffet_lib, {"en": True}, state)
            values = nl.simulate(ffet_lib, {"en": True}, state)
            count = sum(
                int(values[f"count[{i}]"]) << i for i in range(6)
            )
            assert count == expected

    def test_holds_when_disabled(self, ffet_lib):
        nl = generate_counter(4)
        nl.bind(ffet_lib)
        state = {i.name: False for i in nl.sequential_instances(ffet_lib)}
        state = nl.next_state(ffet_lib, {"en": True}, state)
        frozen = nl.next_state(ffet_lib, {"en": False}, state)
        assert frozen == state

    def test_wraps(self, ffet_lib):
        nl = generate_counter(2)
        nl.bind(ffet_lib)
        state = {i.name: False for i in nl.sequential_instances(ffet_lib)}
        for _ in range(4):
            state = nl.next_state(ffet_lib, {"en": True}, state)
        assert all(not v for v in state.values())  # back to zero

    def test_width_validated(self):
        with pytest.raises(ValueError):
            generate_counter(0)


class TestMultiplier:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (3, 5), (7, 7),
                                     (15, 9), (12, 13), (15, 15)])
    def test_products(self, ffet_lib, a, b):
        nl = generate_multiplier(4, registered=False)
        nl.bind(ffet_lib)
        inputs = {f"a[{i}]": bool((a >> i) & 1) for i in range(4)}
        inputs |= {f"x[{i}]": bool((b >> i) & 1) for i in range(4)}
        values = nl.simulate(ffet_lib, inputs)
        product = sum(int(values[f"p[{i}]"]) << i for i in range(8))
        assert product == a * b

    def test_registered_pipeline(self, ffet_lib):
        nl = generate_multiplier(3, registered=True)
        nl.bind(ffet_lib)
        inputs = {f"a[{i}]": bool((5 >> i) & 1) for i in range(3)}
        inputs |= {f"x[{i}]": bool((6 >> i) & 1) for i in range(3)}
        state = {i.name: False for i in nl.sequential_instances(ffet_lib)}
        state = nl.next_state(ffet_lib, inputs, state)   # capture operands
        state = nl.next_state(ffet_lib, inputs, state)   # capture product
        values = nl.simulate(ffet_lib, inputs, state)
        product = sum(int(values[f"p[{i}]"]) << i for i in range(6))
        assert product == 30

    def test_width_validated(self):
        with pytest.raises(ValueError):
            generate_multiplier(1)

    def test_has_flops_when_registered(self, ffet_lib):
        nl = generate_multiplier(4, registered=True)
        nl.bind(ffet_lib)
        assert len(nl.sequential_instances(ffet_lib)) == 4 + 4 + 8


class TestPortfolio:
    def test_registry_names_and_factories(self):
        from repro.synth import PORTFOLIO
        expected = {"counter", "multiplier", "fir", "rv16_sram",
                    "rv16_cache", "rv16_tile"}
        assert set(PORTFOLIO) == expected
        for name, factory in PORTFOLIO.items():
            assert callable(factory), name

    def test_cache_design_has_two_macros(self):
        from repro.synth import generate_rv16_cache
        nl = generate_rv16_cache(xlen=8, nregs=8, words=8, cache_words=4)
        macros = nl.attributes["macros"]
        assert set(macros) == {"u_dmem", "u_icache"}
        # Asymmetric sizes: the I-cache is the smaller array.
        assert macros["u_icache"].words < macros["u_dmem"].words
        assert any(n.startswith("icache_rdata")
                   for n in nl.nets if nl.nets[n].is_primary_output)

    def test_tile_prefixes_everything_but_the_clock(self):
        from repro.synth import generate_rv16_tile
        nl = generate_rv16_tile(cores=2, xlen=8, nregs=8, words=8)
        macros = nl.attributes["macros"]
        assert set(macros) == {"c0/u_dmem", "c1/u_dmem"}
        assert "clk" in nl.nets and nl.nets["clk"].is_clock
        prefixed = [n for n in nl.instances if not n.startswith(("c0/", "c1/"))]
        assert prefixed == []

    def test_tile_validates_core_count(self):
        from repro.synth import generate_rv16_tile
        with pytest.raises(ValueError):
            generate_rv16_tile(cores=0)
