"""Auxiliary design generators: counter and array multiplier."""

import pytest

from repro.synth import generate_counter, generate_multiplier


class TestCounter:
    def test_counts_up_when_enabled(self, ffet_lib):
        nl = generate_counter(6)
        nl.bind(ffet_lib)
        state = {i.name: False for i in nl.sequential_instances(ffet_lib)}
        for expected in range(1, 9):
            state = nl.next_state(ffet_lib, {"en": True}, state)
            values = nl.simulate(ffet_lib, {"en": True}, state)
            count = sum(
                int(values[f"count[{i}]"]) << i for i in range(6)
            )
            assert count == expected

    def test_holds_when_disabled(self, ffet_lib):
        nl = generate_counter(4)
        nl.bind(ffet_lib)
        state = {i.name: False for i in nl.sequential_instances(ffet_lib)}
        state = nl.next_state(ffet_lib, {"en": True}, state)
        frozen = nl.next_state(ffet_lib, {"en": False}, state)
        assert frozen == state

    def test_wraps(self, ffet_lib):
        nl = generate_counter(2)
        nl.bind(ffet_lib)
        state = {i.name: False for i in nl.sequential_instances(ffet_lib)}
        for _ in range(4):
            state = nl.next_state(ffet_lib, {"en": True}, state)
        assert all(not v for v in state.values())  # back to zero

    def test_width_validated(self):
        with pytest.raises(ValueError):
            generate_counter(0)


class TestMultiplier:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (3, 5), (7, 7),
                                     (15, 9), (12, 13), (15, 15)])
    def test_products(self, ffet_lib, a, b):
        nl = generate_multiplier(4, registered=False)
        nl.bind(ffet_lib)
        inputs = {f"a[{i}]": bool((a >> i) & 1) for i in range(4)}
        inputs |= {f"x[{i}]": bool((b >> i) & 1) for i in range(4)}
        values = nl.simulate(ffet_lib, inputs)
        product = sum(int(values[f"p[{i}]"]) << i for i in range(8))
        assert product == a * b

    def test_registered_pipeline(self, ffet_lib):
        nl = generate_multiplier(3, registered=True)
        nl.bind(ffet_lib)
        inputs = {f"a[{i}]": bool((5 >> i) & 1) for i in range(3)}
        inputs |= {f"x[{i}]": bool((6 >> i) & 1) for i in range(3)}
        state = {i.name: False for i in nl.sequential_instances(ffet_lib)}
        state = nl.next_state(ffet_lib, inputs, state)   # capture operands
        state = nl.next_state(ffet_lib, inputs, state)   # capture product
        values = nl.simulate(ffet_lib, inputs, state)
        product = sum(int(values[f"p[{i}]"]) << i for i in range(6))
        assert product == 30

    def test_width_validated(self):
        with pytest.raises(ValueError):
            generate_multiplier(1)

    def test_has_flops_when_registered(self, ffet_lib):
        nl = generate_multiplier(4, registered=True)
        nl.bind(ffet_lib)
        assert len(nl.sequential_instances(ffet_lib)) == 4 + 4 + 8
