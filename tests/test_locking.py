"""Advisory file locks: acquisition, staleness, stealing, timeouts."""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.core import telemetry
from repro.core.locking import (
    DEFAULT_LOCK_TIMEOUT,
    LOCK_TIMEOUT_ENV,
    UNREADABLE_GRACE_S,
    FileLock,
    LockManager,
    lock_timeout,
    pid_alive,
)


def _dead_pid() -> int:
    """A pid that provably belonged to a process that has exited."""
    proc = multiprocessing.Process(target=lambda: None)
    proc.start()
    pid = proc.pid
    proc.join()
    return pid


def _write_lockfile(path, pid, created=None) -> None:
    import socket
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({
        "pid": pid, "host": socket.gethostname(),
        "created": created if created is not None else time.time(),
    }))


class TestLockTimeout:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(LOCK_TIMEOUT_ENV, raising=False)
        assert lock_timeout() == DEFAULT_LOCK_TIMEOUT

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(LOCK_TIMEOUT_ENV, "2.5")
        assert lock_timeout() == 2.5

    def test_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv(LOCK_TIMEOUT_ENV, "soon")
        assert lock_timeout() == DEFAULT_LOCK_TIMEOUT

    def test_negative_clamps_to_zero(self, monkeypatch):
        monkeypatch.setenv(LOCK_TIMEOUT_ENV, "-3")
        assert lock_timeout() == 0.0


class TestPidAlive:
    def test_self_is_alive(self):
        assert pid_alive(os.getpid())

    def test_dead_child_is_dead(self):
        assert not pid_alive(_dead_pid())

    def test_nonpositive_is_dead(self):
        assert not pid_alive(0)
        assert not pid_alive(-1)


class TestFileLock:
    def test_acquire_is_exclusive(self, tmp_path):
        a = FileLock(tmp_path / "k.lock")
        b = FileLock(tmp_path / "k.lock")
        assert a.try_acquire()
        assert not b.try_acquire()
        a.release()
        assert b.try_acquire()
        b.release()

    def test_release_removes_lockfile(self, tmp_path):
        lock = FileLock(tmp_path / "k.lock")
        assert lock.try_acquire()
        assert lock.path.exists()
        lock.release()
        assert not lock.path.exists()
        lock.release()  # idempotent

    def test_owner_payload(self, tmp_path):
        lock = FileLock(tmp_path / "k.lock")
        assert lock.owner() is None
        assert lock.try_acquire()
        owner = lock.owner()
        assert owner.pid == os.getpid()
        assert owner.age_s >= 0.0
        lock.release()

    def test_context_manager(self, tmp_path):
        with FileLock(tmp_path / "k.lock") as lock:
            assert lock.held
            assert lock.path.exists()
        assert not lock.path.exists()

    def test_context_manager_timeout_raises(self, tmp_path, monkeypatch):
        monkeypatch.setenv(LOCK_TIMEOUT_ENV, "0.1")
        holder = FileLock(tmp_path / "k.lock")
        assert holder.try_acquire()
        with pytest.raises(TimeoutError):
            with FileLock(tmp_path / "k.lock"):
                pass
        holder.release()

    def test_live_holder_is_not_stale(self, tmp_path):
        lock = FileLock(tmp_path / "k.lock")
        assert lock.try_acquire()
        assert not FileLock(lock.path).is_stale()
        lock.release()

    def test_dead_holder_is_stale(self, tmp_path):
        path = tmp_path / "k.lock"
        _write_lockfile(path, _dead_pid())
        assert FileLock(path).is_stale()

    def test_unreadable_lock_needs_grace(self, tmp_path):
        path = tmp_path / "k.lock"
        path.write_text("")  # torn: writer died between open and write
        lock = FileLock(path)
        assert not lock.is_stale()  # fresh: give the writer its grace
        old = time.time() - UNREADABLE_GRACE_S - 5
        os.utime(path, (old, old))
        assert lock.is_stale()

    def test_foreign_host_never_stale(self, tmp_path):
        path = tmp_path / "k.lock"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({
            "pid": 1, "host": "some-other-machine",
            "created": time.time()}))
        assert not FileLock(path).is_stale()

    def test_steal_dead_holder(self, tmp_path):
        path = tmp_path / "k.lock"
        _write_lockfile(path, _dead_pid())
        lock = FileLock(path)
        assert lock.steal()
        assert lock.held
        assert lock.owner().pid == os.getpid()
        lock.release()

    def test_concurrent_steal_has_one_winner(self, tmp_path):
        path = tmp_path / "k.lock"
        _write_lockfile(path, _dead_pid())
        wins = []
        barrier = threading.Barrier(8)

        def stealer():
            lock = FileLock(path)
            barrier.wait()
            if lock.steal():
                wins.append(lock)

        threads = [threading.Thread(target=stealer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        wins[0].release()

    def test_acquire_timeout_counts(self, tmp_path):
        holder = FileLock(tmp_path / "k.lock")
        assert holder.try_acquire()
        tracer = telemetry.Tracer(label="t")
        with telemetry.activate(tracer):
            assert not FileLock(tmp_path / "k.lock").acquire(timeout=0.15)
        trace = tracer.finish()
        assert trace.counters.get("lock.waits") == 1
        assert trace.counters.get("lock.timeouts") == 1
        holder.release()

    def test_acquire_steals_stale_lock(self, tmp_path):
        path = tmp_path / "k.lock"
        _write_lockfile(path, _dead_pid())
        lock = FileLock(path)
        assert lock.acquire(timeout=5.0)
        assert lock.held
        lock.release()


class TestLockManager:
    def test_lock_path_is_flat_keyed(self, tmp_path):
        mgr = LockManager(tmp_path / "locks")
        lock = mgr.lock("ab" * 32)
        assert lock.path == tmp_path / "locks" / f"{'ab' * 32}.lock"

    def test_live_keys_excludes_stale(self, tmp_path):
        mgr = LockManager(tmp_path / "locks")
        live = mgr.lock("live")
        assert live.try_acquire()
        _write_lockfile(tmp_path / "locks" / "dead.lock", _dead_pid())
        assert mgr.live_keys() == {"live"}
        assert mgr.survey() == (1, 1)
        live.release()

    def test_sweep_removes_only_stale(self, tmp_path):
        mgr = LockManager(tmp_path / "locks")
        live = mgr.lock("live")
        assert live.try_acquire()
        _write_lockfile(tmp_path / "locks" / "dead.lock", _dead_pid())
        assert mgr.sweep_stale() == 1
        assert live.path.exists()
        assert not (tmp_path / "locks" / "dead.lock").exists()
        live.release()

    def test_clear_removes_everything(self, tmp_path):
        mgr = LockManager(tmp_path / "locks")
        assert mgr.lock("a").try_acquire()
        _write_lockfile(tmp_path / "locks" / "b.lock", _dead_pid())
        assert mgr.clear() == 2
        assert mgr.survey() == (0, 0)

    def test_empty_directory(self, tmp_path):
        mgr = LockManager(tmp_path / "locks")
        assert mgr.live_keys() == set()
        assert mgr.survey() == (0, 0)
        assert mgr.sweep_stale() == 0
        assert mgr.clear() == 0


def _hold_and_count(path, counter_file, barrier):
    # Module-level so multiprocessing can run it.  Each process
    # increments a plain text counter under the lock; any lost update
    # proves mutual exclusion is broken.
    barrier.wait()
    for _ in range(10):
        lock = FileLock(path)
        assert lock.acquire(timeout=30.0)
        try:
            value = int(counter_file.read_text())
            time.sleep(0.001)
            counter_file.write_text(str(value + 1))
        finally:
            lock.release()


class TestCrossProcess:
    def test_mutual_exclusion_under_contention(self, tmp_path):
        path = tmp_path / "k.lock"
        counter = tmp_path / "counter.txt"
        counter.write_text("0")
        workers = 4
        barrier = multiprocessing.Barrier(workers)
        procs = [multiprocessing.Process(
            target=_hold_and_count, args=(path, counter, barrier))
            for _ in range(workers)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
        assert all(p.exitcode == 0 for p in procs)
        assert int(counter.read_text()) == workers * 10
        assert not path.exists()
