"""Global router tests: connectivity, congestion, rip-up-and-reroute."""

import numpy as np
import pytest

from repro.pnr.routing.grid import RoutingGrid
from repro.pnr.routing.router import GlobalRouter, NetSpec, _norm_edge
from repro.tech import Side, make_ffet_node


def uniform_grid(cols=10, rows=10, cap=4.0):
    tech = make_ffet_node()
    layers = tech.routing_layers(Side.FRONT)
    grid = RoutingGrid(side=Side.FRONT, cols=cols, rows=rows,
                       gcell_nm=480.0, layers=layers)
    grid.cap_h = np.full((rows, cols - 1), cap)
    grid.cap_v = np.full((rows - 1, cols), cap)
    return grid


def tree_is_connected(route):
    """All terminals reachable through the route's edges."""
    if len(route.terminals) < 2:
        return True
    adj = {}
    for a, b in route.edges:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set()).add(a)
    seen = {route.terminals[0]}
    stack = [route.terminals[0]]
    while stack:
        node = stack.pop()
        for nxt in adj.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return all(t in seen for t in route.terminals)


class TestBasicRouting:
    def test_two_terminal_net(self):
        router = GlobalRouter(uniform_grid())
        result = router.route_all([NetSpec("n", Side.FRONT, [(0, 0), (5, 5)])])
        route = result.routes["n"]
        assert tree_is_connected(route)
        assert route.wirelength_gcells == 10  # Manhattan distance

    def test_multi_terminal_net(self):
        router = GlobalRouter(uniform_grid())
        spec = NetSpec("n", Side.FRONT, [(0, 0), (9, 0), (0, 9), (9, 9), (5, 5)])
        result = router.route_all([spec])
        assert tree_is_connected(result.routes["n"])

    def test_single_terminal_net_empty(self):
        router = GlobalRouter(uniform_grid())
        result = router.route_all([NetSpec("n", Side.FRONT, [(3, 3)])])
        assert result.routes["n"].edges == set()

    def test_all_nets_connected(self):
        import random

        rng = random.Random(1)
        specs = [
            NetSpec(f"n{i}", Side.FRONT,
                    [(rng.randrange(10), rng.randrange(10)) for _ in range(3)])
            for i in range(40)
        ]
        result = GlobalRouter(uniform_grid(cap=16.0)).route_all(specs)
        for spec in specs:
            assert tree_is_connected(result.routes[spec.name]), spec.name

    def test_deterministic(self):
        specs = [
            NetSpec("a", Side.FRONT, [(0, 0), (9, 9)]),
            NetSpec("b", Side.FRONT, [(0, 9), (9, 0)]),
        ]
        r1 = GlobalRouter(uniform_grid()).route_all(specs)
        r2 = GlobalRouter(uniform_grid()).route_all(specs)
        assert r1.routes["a"].edges == r2.routes["a"].edges


class TestCongestion:
    def test_overflow_reported(self):
        # Capacity 1 per edge, many parallel nets along one row.
        grid = uniform_grid(cap=1.0)
        specs = [
            NetSpec(f"n{i}", Side.FRONT, [(0, 5), (9, 5)]) for i in range(5)
        ]
        result = GlobalRouter(grid).route_all(specs)
        # All nets still connect even when capacity is insufficient...
        for spec in specs:
            assert tree_is_connected(result.routes[spec.name])
        # ...but with 5 nets crossing a 10-row grid of capacity 1 each,
        # the rip-up pass spreads them over distinct rows.
        assert result.overflow_edges <= 4

    def test_rrr_reduces_overflow(self):
        grid1 = uniform_grid(cap=1.0)
        specs = [
            NetSpec(f"n{i}", Side.FRONT, [(0, 5), (9, 5)]) for i in range(4)
        ]
        no_rrr = GlobalRouter(uniform_grid(cap=1.0), rrr_iterations=0)
        with_rrr = GlobalRouter(grid1, rrr_iterations=5)
        before = no_rrr.route_all(specs)
        after = with_rrr.route_all(specs)
        assert after.total_overflow < before.total_overflow
        # Terminals share one node with only three incident unit-capacity
        # edges, so 4 nets cannot avoid overflow entirely: 2 is optimal.
        assert after.total_overflow <= 2

    def test_wirelength_accounting(self):
        grid = uniform_grid()
        result = GlobalRouter(grid).route_all(
            [NetSpec("n", Side.FRONT, [(0, 0), (3, 0)])]
        )
        assert result.total_wirelength_nm == pytest.approx(3 * 480.0)

    def test_drv_includes_pin_access(self):
        grid = uniform_grid()
        grid.pin_access_drvs = 7
        result = GlobalRouter(grid).route_all(
            [NetSpec("n", Side.FRONT, [(0, 0), (1, 0)])]
        )
        assert result.drv_count == 7 + result.overflow_edges


class TestRouteGeometry:
    def test_bends_counted(self):
        router = GlobalRouter(uniform_grid())
        result = router.route_all([NetSpec("n", Side.FRONT, [(0, 0), (4, 4)])])
        assert result.routes["n"].bends() >= 1

    def test_h_v_steps_sum_to_wirelength(self):
        router = GlobalRouter(uniform_grid())
        result = router.route_all(
            [NetSpec("n", Side.FRONT, [(0, 0), (5, 3)])]
        )
        route = result.routes["n"]
        assert route.h_steps() + route.v_steps() == route.wirelength_gcells

    def test_norm_edge(self):
        assert _norm_edge((1, 0), (0, 0)) == ((0, 0), (1, 0))
