"""IR-drop and hold-analysis tests."""

import pytest

from repro.extract import estimate_parasitics
from repro.pnr import (
    FloorplanSpec,
    analyze_ir_drop,
    place,
    plan_floor,
    plan_power,
    synthesize_clock_tree,
)
from repro.sta import analyze_hold, analyze_timing


@pytest.fixture()
def implemented(ffet_lib, mult4):
    die = plan_floor(mult4, ffet_lib, FloorplanSpec(0.7))
    powerplan = plan_power(ffet_lib.tech, die)
    placement = place(mult4, ffet_lib, die, powerplan, seed=0)
    synthesize_clock_tree(mult4, ffet_lib, placement, "clk")
    from repro.pnr import legalize

    placement = legalize(placement, mult4, ffet_lib, powerplan)
    return die, powerplan, placement


class TestIrDrop:
    def test_report_fields(self, ffet_lib, mult4, implemented):
        _die, powerplan, placement = implemented
        report = analyze_ir_drop(mult4, ffet_lib, placement, powerplan,
                                 total_power_mw=1.0)
        assert report.net == "VSS"
        assert report.worst_drop_mv > 0
        assert report.worst_drop_mv >= report.mean_drop_mv
        assert report.total_current_ma == pytest.approx(1.0 / 0.7)

    def test_drop_scales_with_power(self, ffet_lib, mult4, implemented):
        _die, powerplan, placement = implemented
        lo = analyze_ir_drop(mult4, ffet_lib, placement, powerplan, 0.5)
        hi = analyze_ir_drop(mult4, ffet_lib, placement, powerplan, 2.0)
        assert hi.worst_drop_mv == pytest.approx(4 * lo.worst_drop_mv,
                                                 rel=1e-6)

    def test_denser_stripes_less_drop(self, ffet_lib, mult4):
        from repro.pnr import legalize

        die = plan_floor(mult4, ffet_lib, FloorplanSpec(0.6))
        drops = {}
        for pitch in (16, 64):
            powerplan = plan_power(ffet_lib.tech, die, stripe_pitch_cpp=pitch)
            placement = place(mult4, ffet_lib, die, powerplan, seed=0)
            report = analyze_ir_drop(mult4, ffet_lib, placement, powerplan,
                                     1.0)
            drops[pitch] = report.worst_drop_mv
        assert drops[16] <= drops[64]

    def test_signoff_bound(self, ffet_lib, mult4, implemented):
        _die, powerplan, placement = implemented
        report = analyze_ir_drop(mult4, ffet_lib, placement, powerplan, 0.2)
        assert report.ok  # a 0.2 mW multiplier is comfortably within 5%


class TestHold:
    def test_hold_fixing_closes_violations(self, ffet_lib, mult4,
                                           implemented):
        from repro.sta import fix_hold

        _die, _powerplan, placement = implemented
        extraction = estimate_parasitics(mult4, ffet_lib, placement)
        report = analyze_hold(mult4, ffet_lib, extraction)
        assert report.endpoint_count > 0
        before = len(mult4.instances)
        fixed = fix_hold(mult4, ffet_lib, extraction)
        assert fixed.met, fixed.worst_endpoint
        if not report.met:
            # Fixing inserted delay buffers.
            assert len(mult4.instances) > before

    def test_hold_slack_finite(self, ffet_lib, counter8):
        extraction = estimate_parasitics(counter8, ffet_lib)
        report = analyze_hold(counter8, ffet_lib, extraction)
        assert abs(report.worst_slack_ps) < 1e6

    def test_violations_counted(self, ffet_lib, counter8):
        extraction = estimate_parasitics(counter8, ffet_lib)
        report = analyze_hold(counter8, ffet_lib, extraction)
        assert report.violations >= 0
        if report.met:
            assert report.violations == 0

    def test_setup_and_hold_consistent(self, ffet_lib, mult4, implemented):
        _die, _powerplan, placement = implemented
        extraction = estimate_parasitics(mult4, ffet_lib, placement)
        setup = analyze_timing(mult4, ffet_lib, extraction, 2000.0)
        hold = analyze_hold(mult4, ffet_lib, extraction)
        # Min-path arrivals cannot exceed max-path arrivals.
        assert hold.worst_slack_ps < setup.worst_arrival_ps

    def test_no_endpoints_rejected(self, ffet_lib):
        from repro.netlist import Netlist

        nl = Netlist("comb")
        nl.add_net("a", primary_input=True)
        nl.add_net("z", primary_output=True)
        nl.add_instance("g", "INVD1", {"A": "a", "ZN": "z"})
        nl.bind(ffet_lib)
        extraction = estimate_parasitics(nl, ffet_lib)
        with pytest.raises(ValueError):
            analyze_hold(nl, ffet_lib, extraction)
