"""Variation models: seed derivation, draw determinism, perturbations."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.extract import Extraction
from repro.extract.rc import NetParasitics
from repro.sta import scale_extraction, scale_extraction_sided
from repro.variation import (
    CDVariationModel,
    MetalRCVariationModel,
    OverlayModel,
    VariationModel,
    VariationSample,
    overlay_rc_factor,
    perturb_extraction,
    mc_corner,
    sample_seed,
    splitmix64,
)


def _net(name="n", wl=1000.0, back=0.0, cap=2.0, res=0.5):
    return NetParasitics(
        net=name, wire_cap_ff=cap, wire_res_kohm=res, pin_cap_ff=1.0,
        sink_elmore_ps={("i", "A"): 3.0}, wirelength_nm=wl,
        back_wirelength_nm=back)


class TestSeeds:
    def test_splitmix_is_deterministic_and_64bit(self):
        assert splitmix64(0) == splitmix64(0)
        assert 0 <= splitmix64(12345) < 2 ** 64

    def test_sample_seeds_differ_by_index_and_root(self):
        seeds = {sample_seed(0, i) for i in range(1000)}
        assert len(seeds) == 1000
        assert sample_seed(0, 7) != sample_seed(1, 7)

    def test_seed_is_pure_function_of_root_and_index(self):
        # Not of call order: any worker partition sees the same seeds.
        forward = [sample_seed(42, i) for i in range(16)]
        backward = [sample_seed(42, i) for i in reversed(range(16))]
        assert forward == list(reversed(backward))


class TestModels:
    def test_draw_is_deterministic(self):
        model = VariationModel.for_arch("ffet")
        assert model.draw(3, 5) == model.draw(3, 5)
        assert model.draw(3, 5) != model.draw(3, 6)

    def test_cfet_overlay_shift_is_exactly_zero(self):
        model = VariationModel.for_arch("cfet", overlay_sigma_nm=10.0)
        for i in range(50):
            sample = model.draw(0, i)
            assert sample.overlay_dx_nm == 0.0
            assert sample.overlay_dy_nm == 0.0
            assert sample.overlay_shift_nm == 0.0

    def test_overlay_shift_scales_linearly_with_sigma(self):
        # Same seed -> same underlying deviates -> the shift magnitude
        # scales exactly with sigma (jitter scales along in for_arch).
        lo = VariationModel.for_arch("ffet", overlay_sigma_nm=1.0)
        hi = VariationModel.for_arch("ffet", overlay_sigma_nm=2.0)
        for i in range(20):
            a, b = lo.draw(9, i), hi.draw(9, i)
            assert b.overlay_shift_nm == pytest.approx(
                2.0 * a.overlay_shift_nm)

    def test_changing_one_sigma_leaves_other_draws_untouched(self):
        # Fixed draw order: the CD and metal deviates are identical
        # whatever the overlay sigma is.
        a = VariationModel.for_arch("ffet", overlay_sigma_nm=0.5).draw(1, 3)
        b = VariationModel.for_arch("ffet", overlay_sigma_nm=5.0).draw(1, 3)
        assert a.cell_derate == b.cell_derate
        assert a.front_rc_scale == b.front_rc_scale
        assert a.back_rc_scale == b.back_rc_scale

    def test_zero_sigma_is_the_nominal_sample(self):
        model = VariationModel.for_arch("ffet", overlay_sigma_nm=0.0,
                                        cd_sigma=0.0, rc_sigma=0.0)
        sample = model.draw(0, 0)
        assert sample.overlay_shift_nm == 0.0
        assert sample.cell_derate == 1.0
        assert sample.front_rc_scale == 1.0
        assert sample.back_rc_scale == 1.0

    def test_derate_floors_hold_under_extreme_sigma(self):
        cd = CDVariationModel(sigma_rel=50.0)
        metal = MetalRCVariationModel(front_sigma_rel=50.0,
                                      back_sigma_rel=50.0)
        rng = random.Random(0)
        for _ in range(200):
            assert cd.sample(rng) >= cd.floor
            front, back = metal.sample(rng)
            assert front >= metal.floor and back >= metal.floor

    def test_validation(self):
        with pytest.raises(ValueError):
            OverlayModel(sigma_x_nm=-1.0)
        with pytest.raises(ValueError):
            OverlayModel(sides=3)
        with pytest.raises(ValueError):
            CDVariationModel(sigma_rel=-0.1)
        with pytest.raises(ValueError):
            MetalRCVariationModel(floor=0.0)


class TestPerturb:
    def test_overlay_rc_factor_grows_with_shift(self):
        near = VariationSample(0, 0, 1.0, 0.0, 1.0, 1.0, 1.0)
        far = VariationSample(0, 0, 8.0, 6.0, 1.0, 1.0, 1.0)
        pitch = 16.0
        assert overlay_rc_factor(far, pitch) > overlay_rc_factor(near, pitch)
        zero = VariationSample(0, 0, 0.0, 0.0, 1.0, 1.0, 1.0)
        assert overlay_rc_factor(zero, pitch) == 1.0
        with pytest.raises(ValueError):
            overlay_rc_factor(zero, 0.0)

    def test_mc_corner_wraps_cell_derate(self):
        sample = VariationSample(7, 0, 0.0, 0.0, 1.05, 1.0, 1.0)
        corner = mc_corner(sample)
        assert corner.cell_derate == 1.05
        assert corner.wire_derate == 1.0

    def test_frontside_only_net_ignores_overlay(self):
        extraction = Extraction()
        extraction.nets["n"] = _net(back=0.0)
        shifted = VariationSample(0, 0, 10.0, 0.0, 1.0, 1.0, 1.0)
        out = perturb_extraction(extraction, shifted, pitch_nm=16.0)
        assert out.nets["n"] == extraction.nets["n"]

    def test_backside_net_rc_grows_with_overlay(self):
        extraction = Extraction()
        extraction.nets["n"] = _net(back=1000.0)  # fully backside
        shifted = VariationSample(0, 0, 8.0, 0.0, 1.0, 1.0, 1.0)
        out = perturb_extraction(extraction, shifted, pitch_nm=16.0)
        assert out.nets["n"].wire_cap_ff > extraction.nets["n"].wire_cap_ff
        assert out.nets["n"].wire_res_kohm > \
            extraction.nets["n"].wire_res_kohm
        # Pin caps belong to the cells: untouched.
        assert out.nets["n"].pin_cap_ff == extraction.nets["n"].pin_cap_ff


class TestSidedScaling:
    def test_equal_factors_match_plain_scaling(self):
        extraction = Extraction()
        extraction.nets["a"] = _net("a", back=300.0)
        extraction.nets["b"] = _net("b", back=0.0)
        plain = scale_extraction(extraction, 1.3)
        sided = scale_extraction_sided(extraction, 1.3, 1.3)
        for name in extraction.nets:
            assert sided.nets[name] == plain.nets[name]

    def test_back_fraction_weights_the_factor(self):
        extraction = Extraction()
        extraction.nets["half"] = _net("half", wl=1000.0, back=500.0)
        out = scale_extraction_sided(extraction, 1.0, 2.0)
        assert out.nets["half"].wire_cap_ff == pytest.approx(2.0 * 1.5)

    def test_unrouted_net_is_untouched(self):
        extraction = Extraction()
        extraction.nets["n"] = _net(wl=0.0, back=0.0)
        out = scale_extraction_sided(extraction, 1.0, 3.0)
        assert out.nets["n"] == extraction.nets["n"]

    def test_noop_returns_same_object(self):
        extraction = Extraction()
        extraction.nets["n"] = _net()
        assert scale_extraction_sided(extraction, 1.0, 1.0) is extraction

    @given(st.floats(0.5, 2.0), st.floats(0.5, 2.0),
           st.floats(0.0, 1.0))
    def test_front_factor_exact_on_front_nets(self, front, back, frac):
        extraction = Extraction()
        extraction.nets["n"] = _net(wl=1000.0, back=0.0)
        out = scale_extraction_sided(extraction, front, back)
        assert out.nets["n"].wire_cap_ff == 2.0 * front


class TestBackFraction:
    def test_back_fraction_bounds(self):
        assert _net(wl=0.0, back=0.0).back_fraction == 0.0
        assert _net(wl=100.0, back=25.0).back_fraction == 0.25
        assert _net(wl=100.0, back=500.0).back_fraction == 1.0
