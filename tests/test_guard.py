"""Flow guard: corrupted artifacts are caught; healthy runs untouched."""

from __future__ import annotations

import dataclasses
import math
import warnings

import pytest

from repro.core import FlowConfig, run_flow
from repro.core.errors import GuardViolation
from repro.core.faults import FaultPlan
from repro.core.guard import GUARD_ENV, FlowGuard, default_mode

from .golden_cases import MultiplierFactory

FACTORY = MultiplierFactory(4)
BASE = FlowConfig(arch="ffet", backside_pin_fraction=0.5, utilization=0.5)


class TestModes:
    def test_default_is_strict(self, monkeypatch):
        monkeypatch.delenv(GUARD_ENV, raising=False)
        assert default_mode() == "strict"
        assert FlowGuard().mode == "strict"

    def test_env_selects_mode(self, monkeypatch):
        monkeypatch.setenv(GUARD_ENV, "warn")
        assert FlowGuard().mode == "warn"

    def test_garbage_env_means_strict(self, monkeypatch):
        monkeypatch.setenv(GUARD_ENV, "yolo")
        assert default_mode() == "strict"

    def test_unknown_explicit_mode_rejected(self):
        with pytest.raises(ValueError):
            FlowGuard(mode="sometimes")


#: Each corruptible stage and the stage name the guard reports.
CORRUPTIONS = [
    ("placement:corrupt", "placement"),
    ("routing:corrupt", "routing"),
    ("def_merge:corrupt", "def_merge"),
    ("power:corrupt", "power"),
]


class TestStrictCatchesCorruption:
    @pytest.mark.parametrize("spec,stage", CORRUPTIONS)
    def test_corruption_raises_guard_violation(self, spec, stage):
        plan = FaultPlan.from_spec(spec)
        guard = FlowGuard(mode="strict")
        with pytest.raises(GuardViolation) as info:
            run_flow(FACTORY, BASE, guard=guard, faults=plan)
        assert info.value.stage == stage
        assert not info.value.transient  # fatal: no pointless retries

    def test_off_mode_lets_corruption_through(self):
        """Sanity check on the harness itself: without the guard, the
        damaged artifact flows on (or yields a nonsense result)."""
        plan = FaultPlan.from_spec("power:corrupt")
        result = run_flow(FACTORY, BASE, guard=FlowGuard(mode="off"),
                          faults=plan)
        assert result.power.total_mw < 0  # the corruption went unnoticed


class TestWarnMode:
    def test_warn_records_and_continues(self):
        plan = FaultPlan.from_spec("power:corrupt")
        guard = FlowGuard(mode="warn")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_flow(FACTORY, BASE, guard=guard, faults=plan)
        assert result is not None  # run completed despite the violation
        assert guard.violations
        assert any("flow guard" in str(w.message) for w in caught)


class TestResultSanity:
    def _healthy(self):
        return run_flow(FACTORY, BASE)

    def test_healthy_result_passes(self):
        FlowGuard(mode="strict").check_result(self._healthy())

    @pytest.mark.parametrize("patch,fragment", [
        ({"achieved_frequency_ghz": 0.0}, "achieved_frequency_ghz"),
        ({"achieved_frequency_ghz": math.nan}, "achieved_frequency_ghz"),
        ({"achieved_frequency_ghz": 5000.0}, "achieved_frequency_ghz"),
        ({"total_wirelength_um": -1.0}, "total_wirelength_um"),
        ({"core_area_um2": 0.0}, "core_area_um2"),
    ])
    def test_absurd_numbers_violate(self, patch, fragment):
        result = dataclasses.replace(self._healthy(), **patch)
        with pytest.raises(GuardViolation) as info:
            FlowGuard(mode="strict").check_result(result)
        assert fragment in str(info.value)

    def test_zero_drv_is_legal(self):
        result = self._healthy()
        assert result.drv_count >= 0
        FlowGuard(mode="strict").check_result(
            dataclasses.replace(result, drv_count=0))


class TestNeutrality:
    """Guarding a healthy run never changes its PPAResult."""

    def test_strict_equals_off_bit_for_bit(self):
        off = run_flow(FACTORY, BASE, guard=FlowGuard(mode="off"))
        strict = run_flow(FACTORY, BASE, guard=FlowGuard(mode="strict"))
        warn = run_flow(FACTORY, BASE, guard=FlowGuard(mode="warn"))
        assert off == strict == warn

    def test_healthy_run_records_no_violations(self):
        guard = FlowGuard(mode="strict")
        run_flow(FACTORY, BASE, guard=guard)
        assert guard.violations == []
