"""Structured flow errors: hierarchy, classification, wrapping, pickling."""

from __future__ import annotations

import pickle

import pytest

from repro.core.errors import (
    DecompositionError,
    FatalError,
    FlowError,
    GuardViolation,
    InjectedFault,
    MergeError,
    RoutingError,
    RunTimeout,
    TransientError,
    classify,
    is_transient,
    wrap_stage_error,
)


class TestHierarchy:
    def test_everything_is_a_flow_error(self):
        for cls in (TransientError, FatalError, RunTimeout, RoutingError,
                    MergeError, DecompositionError, GuardViolation,
                    InjectedFault):
            assert issubclass(cls, FlowError)
            assert issubclass(cls, RuntimeError)

    def test_transient_split(self):
        assert TransientError.transient
        assert RunTimeout.transient
        assert InjectedFault.transient
        assert not FatalError.transient
        assert not RoutingError.transient
        assert not GuardViolation.transient

    def test_merge_and_decomposition_stay_value_errors(self):
        """Callers that caught the historical ValueError still catch."""
        assert issubclass(MergeError, ValueError)
        assert issubclass(DecompositionError, ValueError)

    def test_context_fields(self):
        err = RoutingError("no path", "routing", "cfg-a", "abc123",
                           cause="RoutingError")
        assert err.stage == "routing"
        assert err.config_label == "cfg-a"
        assert err.config_digest == "abc123"
        assert str(err) == "no path"

    def test_one_line_is_structured(self):
        err = RoutingError("no path to sink", "routing", "cfg-a")
        line = err.one_line()
        assert "stage=routing" in line
        assert "config='cfg-a'" in line
        assert "no path to sink" in line
        assert "\n" not in line


class TestClassify:
    def test_native_transients(self):
        assert is_transient(OSError("disk"))
        assert is_transient(MemoryError())
        assert classify(ConnectionError()) == "transient"

    def test_native_fatals(self):
        assert not is_transient(ValueError("bad"))
        assert classify(KeyError("x")) == "fatal"

    def test_flow_errors_use_their_own_flag(self):
        assert classify(InjectedFault("x")) == "transient"
        assert classify(GuardViolation("x")) == "fatal"


class TestWrapStageError:
    def test_wraps_native_exception(self):
        exc = ValueError("bad geometry")
        err = wrap_stage_error(exc, "placement", "cfg")
        assert isinstance(err, FatalError)
        assert err.stage == "placement"
        assert err.config_label == "cfg"
        assert err.cause == "ValueError"
        assert err.__cause__ is exc

    def test_wraps_native_transient(self):
        err = wrap_stage_error(OSError("fork failed"), "routing")
        assert isinstance(err, TransientError)
        assert err.cause == "OSError"

    def test_annotates_flow_error_in_place(self):
        exc = RoutingError("no path")
        err = wrap_stage_error(exc, "routing", "cfg")
        assert err is exc
        assert err.stage == "routing"
        assert err.config_label == "cfg"

    def test_does_not_clobber_existing_context(self):
        exc = RoutingError("no path", "routing", "original")
        err = wrap_stage_error(exc, "outer_stage", "other")
        assert err.stage == "routing"
        assert err.config_label == "original"


class TestPickling:
    """Errors cross the process-pool boundary; pickling must keep context."""

    @pytest.mark.parametrize("cls", [
        FlowError, TransientError, FatalError, RunTimeout, RoutingError,
        MergeError, DecompositionError, GuardViolation, InjectedFault])
    def test_round_trip_keeps_fields(self, cls):
        err = cls("boom", "sta", "cfg-x", "digest", cause="Boom")
        back = pickle.loads(pickle.dumps(err))
        assert type(back) is cls
        assert str(back) == "boom"
        assert back.stage == "sta"
        assert back.config_label == "cfg-x"
        assert back.config_digest == "digest"
        assert back.cause == "Boom"
        assert back.transient == cls.transient
