"""CLI surfaces of the stage-graph engine: ``repro stages``,
``repro run --stop-after``, ``repro sweep layers`` and ``--refresh``."""

from __future__ import annotations

import json

from repro.cli import main
from repro.core.flow import FLOW_STAGES

FAST = ["--xlen", "4", "--nregs", "4"]


class TestStagesCommand:
    def test_lists_every_stage(self, capsys):
        assert main(["stages"]) == 0
        out = capsys.readouterr().out
        for name in FLOW_STAGES:
            assert name in out
        assert "docs/architecture.md" in out

    def test_json_mode_matches_the_graph(self, capsys):
        assert main(["stages", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["name"] for r in rows] == list(FLOW_STAGES)
        by_name = {r["name"]: r for r in rows}
        assert by_name["netlist"]["uses_netlist"] is True
        assert "front_layers" in by_name["routing"]["config_fields"]
        assert "front_layers" not in by_name["placement"]["transitive_fields"]


class TestStopAfter:
    def test_partial_walk_then_replay(self, tmp_path, capsys):
        args = ["run", "--stop-after", "cts",
                "--cache-dir", str(tmp_path)] + FAST
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert cold.count("ran") == FLOW_STAGES.index("cts") + 1
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert warm.count("replayed from stage store") == \
            FLOW_STAGES.index("cts") + 1

    def test_no_cache_walks_without_a_store(self, capsys):
        assert main(["run", "--stop-after", "floorplan",
                     "--no-cache"] + FAST) == 0
        out = capsys.readouterr().out
        assert "floorplan" in out and "replayed" not in out

    def test_unknown_stage_rejected(self, capsys):
        try:
            main(["run", "--stop-after", "detail_route"] + FAST)
        except SystemExit as exc:
            assert exc.code == 2
        else:
            raise AssertionError("argparse should reject unknown stages")


class TestLayerSweep:
    def test_splits_share_the_prefix(self, tmp_path, capsys):
        assert main(["sweep", "layers", "--splits", "9:3", "6:6",
                     "--jobs", "1", "--cache-dir", str(tmp_path)]
                    + FAST) == 0
        out = capsys.readouterr().out
        assert "FM9BM3" in out and "FM6BM6" in out
        assert "stage replays" in out

    def test_malformed_split_is_an_error(self, tmp_path, capsys):
        assert main(["sweep", "layers", "--splits", "9-3",
                     "--cache-dir", str(tmp_path)] + FAST) == 2
        assert "FRONT:BACK" in capsys.readouterr().err

    def test_refresh_replays_every_stage(self, tmp_path, capsys):
        args = ["sweep", "layers", "--splits", "9:3", "--jobs", "1",
                "--cache-dir", str(tmp_path)] + FAST
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--refresh"]) == 0
        out = capsys.readouterr().out
        replays = len(FLOW_STAGES)
        assert f"{replays}/{replays} stage replays" in out
