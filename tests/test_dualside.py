"""Dual-sided routing decomposition tests (Algorithm 1)."""

import pytest

from repro import build_library, make_ffet_node
from repro.cells import (
    redistribute_input_pins,
    single_sided_output_library,
)
from repro.pnr import (
    FloorplanSpec,
    build_grid,
    decompose_nets,
    place,
    plan_floor,
    plan_power,
)
from repro.synth import generate_multiplier
from repro.tech import Side


def setup_design(library, width=4, util=0.6):
    netlist = generate_multiplier(width)
    netlist.bind(library)
    die = plan_floor(netlist, library, FloorplanSpec(util))
    powerplan = plan_power(library.tech, die)
    placement = place(netlist, library, die, powerplan, seed=0)
    sides = [Side.FRONT]
    if library.tech.uses_backside_signals:
        sides.append(Side.BACK)
    grids = {
        side: build_grid(library.tech, die, side, powerplan)
        for side in sides
    }
    return netlist, placement, grids


class TestDecomposition:
    def test_all_front_when_pins_front(self, ffet_lib):
        netlist, placement, grids = setup_design(ffet_lib)
        decomposition = decompose_nets(netlist, ffet_lib, placement, grids)
        assert decomposition.specs[Side.BACK] == []
        assert len(decomposition.specs[Side.FRONT]) > 0

    def test_split_follows_pin_sides(self, ffet_lib):
        lib = redistribute_input_pins(ffet_lib, 0.5, seed=0)
        netlist, placement, grids = setup_design(lib)
        decomposition = decompose_nets(netlist, lib, placement, grids)
        assert len(decomposition.specs[Side.BACK]) > 0
        # Every backside sink's pin really is on the backside.
        for (net, side), sinks in decomposition.side_sinks.items():
            for inst, pin_name in sinks:
                master = lib[netlist.instances[inst].master]
                assert master.pin(pin_name).on_side(side)

    def test_every_sink_covered_exactly_once(self, ffet_lib):
        lib = redistribute_input_pins(ffet_lib, 0.3, seed=1)
        netlist, placement, grids = setup_design(lib)
        decomposition = decompose_nets(netlist, lib, placement, grids)
        for net_name, net in netlist.nets.items():
            covered = (
                decomposition.sinks_on(net_name, Side.FRONT)
                + decomposition.sinks_on(net_name, Side.BACK)
            )
            assert sorted(covered) == sorted(net.sinks), net_name

    def test_no_bridges_with_dual_sided_outputs(self, ffet_lib):
        lib = redistribute_input_pins(ffet_lib, 0.5, seed=0)
        netlist, placement, grids = setup_design(lib)
        decomposition = decompose_nets(netlist, lib, placement, grids)
        assert decomposition.bridges == []

    def test_backside_sink_without_back_grid_rejected(self, ffet_lib):
        lib = redistribute_input_pins(ffet_lib, 0.5, seed=0)
        netlist, placement, grids = setup_design(lib)
        del grids[Side.BACK]
        with pytest.raises(ValueError, match="no .*back.* routing"):
            decompose_nets(netlist, lib, placement, grids)


class TestBridging:
    """Ablation: single-sided output pins force bridging cells."""

    @pytest.fixture(scope="class")
    def bridged(self):
        base = build_library(make_ffet_node())
        lib = redistribute_input_pins(base, 0.5, seed=0)
        lib = single_sided_output_library(lib)
        netlist, placement, grids = setup_design(lib)
        decomposition = decompose_nets(netlist, lib, placement, grids,
                                       allow_bridging=True)
        return lib, netlist, decomposition

    def test_bridges_inserted(self, bridged):
        _lib, netlist, decomposition = bridged
        assert len(decomposition.bridges) > 0
        for bridge in decomposition.bridges:
            assert netlist.instances[bridge].master == "BRIDGE"

    def test_netlist_still_consistent(self, bridged):
        lib, netlist, _decomposition = bridged
        netlist.bind(lib)  # must not raise

    def test_bridging_disabled_raises(self):
        base = build_library(make_ffet_node())
        lib = redistribute_input_pins(base, 0.5, seed=0)
        lib = single_sided_output_library(lib)
        netlist, placement, grids = setup_design(lib)
        with pytest.raises(ValueError, match="bridging"):
            decompose_nets(netlist, lib, placement, grids,
                           allow_bridging=False)

    def test_bridges_cost_area(self, bridged):
        """The paper avoids bridging cells for exactly this reason."""
        lib, netlist, decomposition = bridged
        bridge_area = sum(
            lib[netlist.instances[b].master].area_nm2(lib.tech)
            for b in decomposition.bridges
        )
        assert bridge_area > 0
