"""Properties of the content-addressed cache key and payload codec.

The key contract: two configs that could produce different PPA must get
different keys; annotations that cannot reach the flow (``tag``) must
share one entry; and changing the netlist or the code version always
misses.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FlowConfig
from repro.core.cache import (
    NON_PPA_FIELDS,
    FlowCache,
    cache_key,
    config_cache_fields,
    netlist_fingerprint,
    result_from_payload,
    result_to_payload,
)
from repro.core.ppa import FailedRun
from repro.synth import generate_counter, generate_multiplier

BASE = FlowConfig()          # ffet FM12BM12, bp=0.5 — every field mutable
NETLIST_FP = "f" * 64

#: One hypothesis strategy of fresh values per PPA-relevant field.  Every
#: draw differs from the BASE value, so a perturbation must change the key.
FIELD_VALUES = {
    "arch": st.nothing(),    # cross-field constraints; covered explicitly
    "front_layers": st.integers(2, 11),
    "back_layers": st.integers(1, 11),
    "backside_pin_fraction": st.floats(0.0, 1.0)
        .map(lambda x: x + 0.0)  # normalize -0.0 -> 0.0 for json stability
        .filter(lambda x: x != BASE.backside_pin_fraction),
    "utilization": st.floats(0.3, 0.95)
        .filter(lambda x: x != BASE.utilization),
    "aspect_ratio": st.floats(0.5, 2.0)
        .filter(lambda x: x != BASE.aspect_ratio),
    "target_frequency_ghz": st.floats(0.2, 4.0)
        .filter(lambda x: x != BASE.target_frequency_ghz),
    "seed": st.integers(1, 10_000),
    "clock": st.sampled_from(["ck", "clock", "clk2"]),
    "gcell_tracks": st.integers(4, 64).filter(lambda x: x != BASE.gcell_tracks),
    "max_fanout": st.integers(2, 64).filter(lambda x: x != BASE.max_fanout),
    "cts_mode": st.just("dual"),
    "cts_back_fraction": st.floats(0.0, 1.0)
        .map(lambda x: x + 0.0)
        .filter(lambda x: x != BASE.cts_back_fraction),
    "activity": st.floats(0.01, 1.0).filter(lambda x: x != BASE.activity),
    "macro_halo_cpp": st.integers(0, 8)
        .filter(lambda x: x != BASE.macro_halo_cpp),
    "allow_bridging": st.just(True),
    "power_stripe_pitch_cpp": st.integers(4, 64),
    "rrr_iterations": st.integers(0, 32)
        .filter(lambda x: x != BASE.rrr_iterations),
    "sizing_iterations": st.integers(0, 32)
        .filter(lambda x: x != BASE.sizing_iterations),
    "refine_placement": st.just(True),
    "refine_iterations": st.integers(1, 5000)
        .filter(lambda x: x != BASE.refine_iterations),
}

PPA_FIELDS = sorted(set(FIELD_VALUES) - {"arch"})


def test_every_config_field_is_classified():
    names = {f.name for f in dataclasses.fields(FlowConfig)}
    assert names == set(FIELD_VALUES) | NON_PPA_FIELDS, (
        "new FlowConfig field: decide whether it is PPA-relevant and add "
        "it to FIELD_VALUES (or NON_PPA_FIELDS + the cache exclusion)")


@given(data=st.data())
@settings(max_examples=200, deadline=None)
def test_ppa_relevant_field_changes_the_key(data):
    field = data.draw(st.sampled_from(PPA_FIELDS))
    value = data.draw(FIELD_VALUES[field])
    if getattr(BASE, field) == value:
        return
    changed = BASE.with_(**{field: value})
    assert cache_key(changed, NETLIST_FP, version="v") \
        != cache_key(BASE, NETLIST_FP, version="v"), field


@given(tag=st.text(max_size=40))
@settings(max_examples=50, deadline=None)
def test_tag_only_difference_keeps_the_key(tag):
    assert cache_key(BASE.with_(tag=tag), NETLIST_FP, version="v") \
        == cache_key(BASE, NETLIST_FP, version="v")
    assert "tag" not in config_cache_fields(BASE)


@given(data=st.data())
@settings(max_examples=50, deadline=None)
def test_two_distinct_perturbations_differ(data):
    """Any two configs differing in some PPA field hash differently."""
    f1 = data.draw(st.sampled_from(PPA_FIELDS))
    f2 = data.draw(st.sampled_from(PPA_FIELDS))
    c1 = BASE.with_(**{f1: data.draw(FIELD_VALUES[f1])})
    c2 = BASE.with_(**{f2: data.draw(FIELD_VALUES[f2])})
    k1 = cache_key(c1, NETLIST_FP, version="v")
    k2 = cache_key(c2, NETLIST_FP, version="v")
    assert (k1 == k2) == (config_cache_fields(c1) == config_cache_fields(c2))


def test_arch_changes_the_key():
    cfet = FlowConfig(arch="cfet", back_layers=0, backside_pin_fraction=0.0)
    ffet = FlowConfig(arch="ffet", back_layers=0, backside_pin_fraction=0.0)
    assert cache_key(cfet, NETLIST_FP, version="v") \
        != cache_key(ffet, NETLIST_FP, version="v")


def test_netlist_and_version_participate():
    k = cache_key(BASE, NETLIST_FP, version="v1")
    assert cache_key(BASE, "0" * 64, version="v1") != k
    assert cache_key(BASE, NETLIST_FP, version="v2") != k


def test_kernel_mode_participates(monkeypatch):
    """python- and numpy-kernel results can never share a cache entry.

    The modes are equivalent by construction, but that equivalence is
    an invariant under test, not an axiom — so the active REPRO_KERNEL
    is part of the key chain."""
    from repro.core.kernels import KERNEL_ENV

    monkeypatch.setenv(KERNEL_ENV, "numpy")
    k_numpy = cache_key(BASE, NETLIST_FP, version="v")
    monkeypatch.setenv(KERNEL_ENV, "python")
    k_python = cache_key(BASE, NETLIST_FP, version="v")
    assert k_numpy != k_python
    # The default (unset) mode is numpy and hashes identically to it.
    monkeypatch.delenv(KERNEL_ENV)
    assert cache_key(BASE, NETLIST_FP, version="v") == k_numpy


class TestNetlistFingerprint:
    def test_stable_across_regeneration(self):
        assert netlist_fingerprint(generate_multiplier(4)) \
            == netlist_fingerprint(generate_multiplier(4))

    def test_different_designs_differ(self):
        assert netlist_fingerprint(generate_multiplier(4)) \
            != netlist_fingerprint(generate_multiplier(5))
        assert netlist_fingerprint(generate_multiplier(4)) \
            != netlist_fingerprint(generate_counter(8))


class TestPayloadCodec:
    def test_failed_run_round_trips(self):
        failed = FailedRun(label="x", target_utilization=0.9, reason="tap")
        assert result_from_payload(result_to_payload(failed)) == failed

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = FlowCache(tmp_path)
        key = "ab" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_info_on_missing_directory_is_clean_and_empty(self, tmp_path):
        """`repro cache info` must report empty, not crash, pre-creation."""
        cache = FlowCache(tmp_path / "never" / "created")
        info = cache.info()
        assert info["exists"] is False
        assert info["entries"] == 0
        assert info["total_bytes"] == 0
        assert info["oldest_mtime"] is None
        assert len(cache) == 0

    def test_info_counts_entries_and_bytes(self, tmp_path):
        cache = FlowCache(tmp_path)
        failed = FailedRun(label="x", target_utilization=0.9, reason="tap")
        cache.put("ab" + "0" * 62, failed)
        cache.put("cd" + "1" * 62, failed)
        info = cache.info()
        assert info["exists"] is True
        assert info["entries"] == 2
        assert info["total_bytes"] > 0
        assert info["newest_mtime"] >= info["oldest_mtime"]

    def test_cli_cache_info_on_missing_directory(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["cache", "info",
                     "--cache-dir", str(tmp_path / "nope")]) == 0
        out = capsys.readouterr().out
        assert "empty" in out

    def test_invalidate_and_clear(self, tmp_path):
        cache = FlowCache(tmp_path)
        failed = FailedRun(label="x", target_utilization=0.9, reason="tap")
        key = "cd" + "1" * 62
        cache.put(key, failed)
        assert len(cache) == 1
        assert cache.invalidate(key)
        assert not cache.invalidate(key)
        cache.put(key, failed)
        assert cache.clear() == 1
        assert len(cache) == 0
