"""Pin model tests, including dual-sided constructs."""

import pytest

from repro.cells import Pin, PinDirection, dual_pin, front_pin
from repro.tech import Side


class TestPinBasics:
    def test_front_pin(self):
        pin = front_pin("A", PinDirection.INPUT, cap_ff=0.2)
        assert pin.is_input and not pin.is_output
        assert pin.side is Side.FRONT
        assert pin.cap_ff == 0.2

    def test_dual_pin(self):
        pin = dual_pin("ZN", PinDirection.OUTPUT)
        assert pin.is_dual_sided
        assert pin.on_side(Side.FRONT) and pin.on_side(Side.BACK)

    def test_dual_pin_has_no_unique_side(self):
        with pytest.raises(ValueError):
            _ = dual_pin("ZN", PinDirection.OUTPUT).side

    def test_clock_is_input(self):
        pin = front_pin("CK", PinDirection.CLOCK)
        assert pin.is_clock and pin.is_input

    def test_empty_sides_rejected(self):
        with pytest.raises(ValueError):
            Pin("A", PinDirection.INPUT, frozenset())

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            Pin("A", PinDirection.INPUT, frozenset({Side.FRONT}), cap_ff=-1.0)


class TestPinMoves:
    def test_moved_to_back(self):
        pin = front_pin("A", PinDirection.INPUT, cap_ff=0.3)
        moved = pin.moved_to(Side.BACK)
        assert moved.side is Side.BACK
        assert moved.cap_ff == 0.3          # electrical data preserved
        assert pin.side is Side.FRONT       # original untouched

    def test_widened(self):
        pin = front_pin("A", PinDirection.INPUT)
        wide = pin.widened()
        assert wide.is_dual_sided

    def test_move_is_idempotent(self):
        pin = front_pin("A", PinDirection.INPUT)
        assert pin.moved_to(Side.FRONT).sides == pin.sides
