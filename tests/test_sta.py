"""Static timing analysis tests."""

import pytest

from repro.extract import estimate_parasitics
from repro.netlist import Netlist
from repro.sta import analyze_timing


def pipeline_netlist(depth=6):
    """DFF -> INV chain -> DFF."""
    nl = Netlist("pipe")
    nl.add_net("clk", primary_input=True, clock=True)
    nl.add_instance("ff_in", "DFFD1", {"D": "dloop", "CK": "clk", "Q": "n0"})
    prev = "n0"
    for i in range(depth):
        nl.add_instance(f"g{i}", "INVD1", {"A": prev, "ZN": f"n{i + 1}"})
        prev = f"n{i + 1}"
    nl.add_instance("ff_out", "DFFD1", {"D": prev, "CK": "clk", "Q": "dloop"})
    return nl


class TestSetupAnalysis:
    def test_loose_period_met(self, ffet_lib):
        nl = pipeline_netlist()
        nl.bind(ffet_lib)
        extraction = estimate_parasitics(nl, ffet_lib)
        report = analyze_timing(nl, ffet_lib, extraction, period_ps=5000.0)
        assert report.met
        assert report.wns_ps > 0

    def test_tight_period_fails(self, ffet_lib):
        nl = pipeline_netlist(depth=30)
        nl.bind(ffet_lib)
        extraction = estimate_parasitics(nl, ffet_lib)
        report = analyze_timing(nl, ffet_lib, extraction, period_ps=10.0)
        assert not report.met
        assert report.tns_ps < 0

    def test_achieved_period_consistent(self, ffet_lib):
        nl = pipeline_netlist()
        nl.bind(ffet_lib)
        extraction = estimate_parasitics(nl, ffet_lib)
        r1 = analyze_timing(nl, ffet_lib, extraction, period_ps=100.0)
        r2 = analyze_timing(nl, ffet_lib, extraction, period_ps=400.0)
        # Arrival times do not depend on the period, so achieved period
        # (period - wns) must be identical.
        assert r1.achieved_period_ps == pytest.approx(r2.achieved_period_ps)

    def test_deeper_pipeline_slower(self, ffet_lib):
        results = []
        for depth in (4, 12):
            nl = pipeline_netlist(depth)
            nl.bind(ffet_lib)
            extraction = estimate_parasitics(nl, ffet_lib)
            results.append(
                analyze_timing(nl, ffet_lib, extraction, 1000.0)
            )
        assert results[1].achieved_period_ps > results[0].achieved_period_ps

    def test_critical_path_traced(self, ffet_lib):
        nl = pipeline_netlist(depth=5)
        nl.bind(ffet_lib)
        extraction = estimate_parasitics(nl, ffet_lib)
        report = analyze_timing(nl, ffet_lib, extraction, 1000.0)
        assert report.worst_endpoint in ("ff_in", "ff_out")
        assert any("g4" in hop or "g0" in hop for hop in report.critical_path)

    def test_no_endpoints_rejected(self, ffet_lib):
        nl = Netlist("comb")
        nl.add_net("a", primary_input=True)
        nl.add_instance("g", "INVD1", {"A": "a", "ZN": "z"})
        nl.bind(ffet_lib)
        extraction = estimate_parasitics(nl, ffet_lib)
        with pytest.raises(ValueError):
            analyze_timing(nl, ffet_lib, extraction, 1000.0)

    def test_primary_output_endpoint(self, ffet_lib):
        nl = Netlist("comb")
        nl.add_net("a", primary_input=True)
        nl.add_net("z", primary_output=True)
        nl.add_instance("g", "INVD1", {"A": "a", "ZN": "z"})
        nl.bind(ffet_lib)
        extraction = estimate_parasitics(nl, ffet_lib)
        report = analyze_timing(nl, ffet_lib, extraction, 1000.0)
        assert report.worst_endpoint == "PO:z"


class TestUnateness:
    def test_inverter_chain_alternates_edges(self, ffet_lib):
        """Through 2 inverters the gap rise-vs-fall should persist,
        demonstrating edge-aware propagation (not worst-casing)."""
        nl = pipeline_netlist(depth=2)
        nl.bind(ffet_lib)
        extraction = estimate_parasitics(nl, ffet_lib)
        report = analyze_timing(nl, ffet_lib, extraction, 1000.0)
        # Sanity: arrival exists and is positive.
        assert report.worst_arrival_ps > 0

    def test_worst_casing_would_be_slower(self, ffet_lib):
        """Edge-aware STA gives arrivals <= taking max(rise, fall) at
        every stage."""
        nl = pipeline_netlist(depth=10)
        nl.bind(ffet_lib)
        extraction = estimate_parasitics(nl, ffet_lib)
        report = analyze_timing(nl, ffet_lib, extraction, 1000.0)

        # Manual worst-case estimate: every stage takes the max delay.
        arc = ffet_lib["INVD1"].arcs[0]
        load = extraction["n1"].total_cap_ff
        stage_worst = arc.worst_delay(10.0, load)
        assert report.worst_arrival_ps < 10 * stage_worst * 1.5


class TestClockTreeTiming:
    def test_skew_and_insertion_reported(self, ffet_lib, mult4):
        from repro.pnr import (
            FloorplanSpec, place, plan_floor, plan_power,
            synthesize_clock_tree,
        )

        die = plan_floor(mult4, ffet_lib, FloorplanSpec(0.7))
        pp = plan_power(ffet_lib.tech, die)
        placement = place(mult4, ffet_lib, die, pp)
        synthesize_clock_tree(mult4, ffet_lib, placement, "clk")
        extraction = estimate_parasitics(mult4, ffet_lib, placement)
        report = analyze_timing(mult4, ffet_lib, extraction, 1000.0)
        assert report.insertion_delay_ps > 0   # buffers add delay
        assert report.clock_skew_ps >= 0


class TestCorners:
    def test_corner_ordering(self, ffet_lib):
        from repro.sta import analyze_corners, worst_corner
        from repro.extract import estimate_parasitics

        nl = pipeline_netlist(depth=12)
        nl.bind(ffet_lib)
        extraction = estimate_parasitics(nl, ffet_lib)
        reports = analyze_corners(nl, ffet_lib, extraction, 500.0)
        assert set(reports) == {"ss_0p63v_125c", "tt_0p70v_25c",
                                "ff_0p77v_m40c"}
        ss = reports["ss_0p63v_125c"]
        tt = reports["tt_0p70v_25c"]
        ff = reports["ff_0p77v_m40c"]
        assert ss.worst_arrival_ps > tt.worst_arrival_ps > \
            ff.worst_arrival_ps
        name, worst = worst_corner(reports)
        assert name == "ss_0p63v_125c"
        assert worst.wns_ps <= tt.wns_ps

    def test_typical_matches_base(self, ffet_lib):
        from repro.sta import analyze_corners
        from repro.extract import estimate_parasitics

        nl = pipeline_netlist(depth=6)
        nl.bind(ffet_lib)
        extraction = estimate_parasitics(nl, ffet_lib)
        base = analyze_timing(nl, ffet_lib, extraction, 1000.0)
        tt = analyze_corners(nl, ffet_lib, extraction, 1000.0)[
            "tt_0p70v_25c"]
        assert tt.worst_arrival_ps == pytest.approx(base.worst_arrival_ps)

    def test_scale_extraction(self, ffet_lib):
        from repro.sta import scale_extraction
        from repro.extract import estimate_parasitics

        nl = pipeline_netlist(depth=4)
        nl.bind(ffet_lib)
        extraction = estimate_parasitics(nl, ffet_lib)
        scaled = scale_extraction(extraction, 1.5)
        for name in extraction.nets:
            assert scaled[name].wire_cap_ff == pytest.approx(
                extraction[name].wire_cap_ff * 1.5)
            assert scaled[name].pin_cap_ff == pytest.approx(
                extraction[name].pin_cap_ff)
