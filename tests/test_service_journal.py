"""The job journal: replay, torn tails, identity binding."""

from __future__ import annotations

import json

from repro.service.journal import JobJournal

SPEC = {"kind": "run", "design": {"type": "multiplier", "bits": 4},
        "config": {"arch": "ffet", "backside_pin_fraction": 0.5,
                   "utilization": 0.5}}
RECORD = {"label": "run", "ok": True, "result": {"valid": True},
          "wall_s": 0.1, "via": "executed", "attempts": 1}


def test_replay_rebuilds_jobs_runs_and_states(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    journal.job_submitted("j0001", SPEC, 123.0)
    journal.run_settled("j0001", 0, RECORD)
    journal.job_state("j0001", "completed")
    journal.job_submitted("j0002", SPEC, 124.0)
    journal.run_settled("j0002", 1, dict(RECORD, label="u0.6"))
    journal.close()

    jobs = {j.id: j for j in JobJournal(path).replay()}
    assert set(jobs) == {"j0001", "j0002"}
    assert jobs["j0001"].state == "completed"
    assert jobs["j0001"].records == {0: RECORD}
    assert jobs["j0001"].submitted_s == 123.0
    assert jobs["j0002"].state == ""  # interrupted: no terminal event
    assert jobs["j0002"].records[1]["label"] == "u0.6"


def test_no_resume_starts_fresh(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    journal.job_submitted("j0001", SPEC, 1.0)
    journal.close()
    assert JobJournal(path, resume=False).replay() == []
    # And the old content really is gone, not just skipped.
    assert JobJournal(path).replay() == []


def test_torn_tail_is_discarded(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    journal.job_submitted("j0001", SPEC, 1.0)
    journal.run_settled("j0001", 0, RECORD)
    journal.close()
    with open(path, "a") as handle:  # simulated mid-write SIGKILL
        handle.write('{"ev": "run", "job": "j0001", "ind')

    jobs = JobJournal(path).replay()
    assert len(jobs) == 1
    assert jobs[0].records == {0: RECORD}


def test_malformed_event_truncates_the_replay_there(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    journal.job_submitted("j0001", SPEC, 1.0)
    journal.close()
    with open(path, "a") as handle:
        handle.write(json.dumps({"ev": "run", "job": "j0001",
                                 "index": "zero", "record": {}}) + "\n")
        handle.write(json.dumps({"ev": "state", "job": "j0001",
                                 "state": "completed"}) + "\n")

    jobs = JobJournal(path).replay()
    # The bad run line and everything after it are dropped.
    assert jobs[0].records == {}
    assert jobs[0].state == ""


def test_identity_mismatch_starts_fresh(tmp_path, monkeypatch):
    path = tmp_path / "journal.jsonl"
    monkeypatch.setenv("REPRO_KERNEL", "python")
    journal = JobJournal(path)
    journal.job_submitted("j0001", SPEC, 1.0)
    journal.close()
    # Same file under the other kernel: results are content-addressed
    # by kernel mode, so the journal must not replay.
    monkeypatch.setenv("REPRO_KERNEL", "numpy")
    assert JobJournal(path).replay() == []


def test_events_for_unknown_jobs_are_dropped(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    journal.run_settled("j9999", 0, RECORD)
    journal.job_state("j9999", "completed")
    journal.close()
    assert JobJournal(path).replay() == []


def test_append_after_replay_extends_the_same_file(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = JobJournal(path)
    journal.job_submitted("j0001", SPEC, 1.0)
    journal.close()

    second = JobJournal(path)
    assert len(second.replay()) == 1
    second.run_settled("j0001", 0, RECORD)
    second.close()

    jobs = JobJournal(path).replay()
    assert jobs[0].records == {0: RECORD}
