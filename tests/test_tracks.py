"""Track-assignment tests."""

import numpy as np
import pytest

from repro.pnr.routing.grid import RoutingGrid
from repro.pnr.routing.layers import assign_layers
from repro.pnr.routing.router import GlobalRouter, NetSpec
from repro.pnr.routing.tracks import assign_tracks
from repro.tech import Side, make_ffet_node


def small_grid(cap=20.0):
    tech = make_ffet_node()
    layers = tech.routing_layers(Side.FRONT)
    grid = RoutingGrid(side=Side.FRONT, cols=8, rows=8, gcell_nm=480.0,
                       layers=layers)
    grid.cap_h = np.full((8, 7), cap)
    grid.cap_v = np.full((7, 8), cap)
    return grid


def route(specs, cap=20.0):
    result = GlobalRouter(small_grid(cap)).route_all(specs)
    return result, assign_layers(result)


class TestTrackAssignment:
    def test_single_net_no_conflicts(self):
        result, layers = route([NetSpec("n", Side.FRONT, [(0, 0), (5, 0)])])
        tracks = assign_tracks(result, layers)
        assert tracks.total_conflicts == 0
        assert any(s.assigned_segments > 0 for s in tracks.stats.values())

    def test_parallel_nets_share_layer_tracks(self):
        specs = [NetSpec(f"n{i}", Side.FRONT, [(0, 3), (7, 3)])
                 for i in range(4)]
        result, layers = route(specs)
        tracks = assign_tracks(result, layers)
        # 4 nets on one row: whatever layers they got must carry them.
        assert tracks.total_conflicts == 0
        assert max(s.peak_occupancy for s in tracks.stats.values()) > 0

    def test_occupancy_bounded(self):
        import random

        rng = random.Random(2)
        specs = [
            NetSpec(f"n{i}", Side.FRONT,
                    [(rng.randrange(8), rng.randrange(8)) for _ in range(3)])
            for i in range(30)
        ]
        result, layers = route(specs)
        tracks = assign_tracks(result, layers)
        for stat in tracks.stats.values():
            assert 0.0 <= stat.mean_occupancy <= stat.peak_occupancy <= 1.0

    def test_overload_produces_conflicts(self):
        # Force many nets through one boundary; the top tier has a
        # single 720 nm-pitch track per gcell, so crowding must show up
        # either as conflicts or as near-full occupancy.
        specs = [NetSpec(f"n{i}", Side.FRONT, [(0, 3), (7, 3)])
                 for i in range(40)]
        result, layers = route(specs, cap=50.0)
        tracks = assign_tracks(result, layers)
        peak = max(s.peak_occupancy for s in tracks.stats.values())
        assert tracks.total_conflicts > 0 or peak == 1.0

    def test_deterministic(self):
        specs = [NetSpec(f"n{i}", Side.FRONT, [(0, i), (7, i)])
                 for i in range(5)]
        r1, l1 = route(specs)
        r2, l2 = route(specs)
        t1 = assign_tracks(r1, l1)
        t2 = assign_tracks(r2, l2)
        assert t1.stats.keys() == t2.stats.keys()
        for name in t1.stats:
            assert t1.stats[name] == t2.stats[name]

    def test_conflict_fraction(self):
        result, layers = route([NetSpec("n", Side.FRONT, [(0, 0), (3, 0)])])
        tracks = assign_tracks(result, layers)
        for stat in tracks.stats.values():
            assert stat.conflict_fraction == 0.0
