"""Netlist data structure tests: binding, traversal, simulation."""

import pytest

from repro.netlist import Netlist


def tiny_netlist():
    """clk -> DFF -> INV -> out, with a NAND mixing in a PI."""
    nl = Netlist("tiny")
    nl.add_net("clk", primary_input=True, clock=True)
    nl.add_net("a", primary_input=True)
    nl.add_net("out", primary_output=True)
    nl.add_instance("ff", "DFFD1", {"D": "n2", "CK": "clk", "Q": "q"})
    nl.add_instance("g1", "INVD1", {"A": "q", "ZN": "n1"})
    nl.add_instance("g2", "NAND2D1", {"A": "n1", "B": "a", "ZN": "n2"})
    nl.add_instance("g3", "BUFD1", {"A": "q", "Z": "out"})
    return nl


class TestBinding:
    def test_bind_resolves_drivers(self, ffet_lib):
        nl = tiny_netlist()
        nl.bind(ffet_lib)
        assert nl.nets["n1"].driver == ("g1", "ZN")
        assert ("g2", "A") in nl.nets["n1"].sinks

    def test_clock_marked(self, ffet_lib):
        nl = tiny_netlist()
        nl.bind(ffet_lib)
        assert nl.nets["clk"].is_clock

    def test_unconnected_pin_rejected(self, ffet_lib):
        nl = Netlist("bad")
        nl.add_instance("g", "NAND2D1", {"A": "x", "ZN": "y"})  # B missing
        nl.add_net("x", primary_input=True)
        with pytest.raises(ValueError, match="unconnected"):
            nl.bind(ffet_lib)

    def test_multiple_drivers_rejected(self, ffet_lib):
        nl = Netlist("bad")
        nl.add_net("x", primary_input=True)
        nl.add_instance("g1", "INVD1", {"A": "x", "ZN": "y"})
        nl.add_instance("g2", "INVD1", {"A": "x", "ZN": "y"})
        with pytest.raises(ValueError, match="multiply driven"):
            nl.bind(ffet_lib)

    def test_undriven_net_rejected(self, ffet_lib):
        nl = Netlist("bad")
        nl.add_instance("g", "INVD1", {"A": "floating", "ZN": "y"})
        nl.add_net("y", primary_output=True)
        with pytest.raises(ValueError, match="no driver"):
            nl.bind(ffet_lib)

    def test_dangling_nets_pruned(self, ffet_lib):
        nl = tiny_netlist()
        nl.add_net("orphan")
        nl.bind(ffet_lib)
        assert "orphan" not in nl.nets


class TestQueries:
    def test_cell_counts(self, ffet_lib):
        nl = tiny_netlist()
        nl.bind(ffet_lib)
        counts = nl.cell_counts()
        assert counts["DFFD1"] == 1 and counts["INVD1"] == 1

    def test_sequential_split(self, ffet_lib):
        nl = tiny_netlist()
        nl.bind(ffet_lib)
        assert [i.name for i in nl.sequential_instances(ffet_lib)] == ["ff"]
        assert len(nl.combinational_instances(ffet_lib)) == 3

    def test_total_area_positive(self, ffet_lib):
        nl = tiny_netlist()
        nl.bind(ffet_lib)
        assert nl.total_cell_area_nm2(ffet_lib) > 0

    def test_net_degree(self, ffet_lib):
        nl = tiny_netlist()
        nl.bind(ffet_lib)
        q = nl.nets["q"]
        assert q.fanout == 2 and q.degree == 3


class TestTopologicalOrder:
    def test_respects_dependencies(self, ffet_lib):
        nl = tiny_netlist()
        nl.bind(ffet_lib)
        order = [i.name for i in nl.topological_order(ffet_lib)]
        assert order.index("g1") < order.index("g2")

    def test_loop_detected(self, ffet_lib):
        nl = Netlist("loop")
        nl.add_instance("g1", "INVD1", {"A": "b", "ZN": "a"})
        nl.add_instance("g2", "INVD1", {"A": "a", "ZN": "b"})
        nl.bind(ffet_lib)
        with pytest.raises(ValueError, match="loop"):
            nl.topological_order(ffet_lib)


class TestSimulation:
    def test_combinational_eval(self, ffet_lib):
        nl = tiny_netlist()
        nl.bind(ffet_lib)
        values = nl.simulate(ffet_lib, {"a": True}, state={"ff": True})
        # q=1 -> n1=0 -> n2 = !(0 & 1) = 1; out follows q.
        assert values["n1"] is False
        assert values["n2"] is True
        assert values["out"] is True

    def test_next_state_captures_d(self, ffet_lib):
        nl = tiny_netlist()
        nl.bind(ffet_lib)
        state = {"ff": False}
        nxt = nl.next_state(ffet_lib, {"a": True}, state)
        # q=0 -> n1=1 -> n2 = !(1&1) = 0
        assert nxt["ff"] is False
        nxt2 = nl.next_state(ffet_lib, {"a": False}, {"ff": False})
        assert nxt2["ff"] is True

    def test_missing_input_rejected(self, ffet_lib):
        nl = tiny_netlist()
        nl.bind(ffet_lib)
        with pytest.raises(KeyError):
            nl.simulate(ffet_lib, {})


class TestNetlistStats:
    def test_counter_stats(self, ffet_lib, counter8):
        from repro.netlist import netlist_stats

        stats = netlist_stats(counter8, ffet_lib)
        assert stats.flops == 8
        assert stats.instances == len(counter8.instances)
        assert stats.combinational == stats.instances - 8
        assert stats.logic_depth >= 2       # incrementer chain
        assert stats.cell_area_um2 > 0
        assert stats.cell_histogram["DFFD1"] == 8
        assert "instances:" in stats.format()

    def test_riscv_depth_reasonable(self, ffet_lib, rv_tiny):
        from repro.netlist import netlist_stats

        stats = netlist_stats(rv_tiny, ffet_lib)
        # Kogge-Stone keeps depth logarithmic-ish; a tiny core should
        # stay well below a ripple-carry depth.
        assert 5 <= stats.logic_depth <= 60
        assert stats.max_fanout >= 8
