"""Netlist builder helpers: gates, adders, muxes, shifters."""

import pytest

from repro.synth import NetlistBuilder, master_base


def evaluate(builder, lib, inputs):
    builder.netlist.bind(lib)
    return builder.netlist.simulate(lib, inputs)


def word_value(values, nets):
    return sum(int(values[n]) << i for i, n in enumerate(nets))


class TestPrimitives:
    def test_master_base(self):
        assert master_base("NAND2D4") == "NAND2"
        assert master_base("INVD1") == "INV"
        assert master_base("TIEHI") == "TIEHI"

    def test_scope_prefixes_names(self, ffet_lib):
        b = NetlistBuilder("t")
        with b.scope("alu"):
            net = b.inv(b.input("a"))
        assert net.startswith("alu/")

    def test_tie_cells(self, ffet_lib):
        b = NetlistBuilder("t")
        hi = b.tie(True)
        lo = b.tie(False)
        b.output(hi, "h")
        b.output(lo, "l")
        values = evaluate(b, ffet_lib, {})
        assert values["h"] is True and values["l"] is False

    @pytest.mark.parametrize("op,expect", [
        ("nand2", lambda a, b: not (a and b)),
        ("nor2", lambda a, b: not (a or b)),
        ("and2", lambda a, b: a and b),
        ("or2", lambda a, b: a or b),
        ("xor2", lambda a, b: a != b),
        ("xnor2", lambda a, b: a == b),
    ])
    def test_two_input_gates(self, ffet_lib, op, expect):
        b = NetlistBuilder("t")
        a_in, b_in = b.input("a"), b.input("b")
        out = getattr(b, op)(a_in, b_in)
        b.output(out, "z")
        for va in (False, True):
            for vb in (False, True):
                values = evaluate_fresh(ffet_lib, op, va, vb)
                assert values == bool(expect(va, vb)), (op, va, vb)


def evaluate_fresh(lib, op, va, vb):
    b = NetlistBuilder("t")
    out = getattr(b, op)(b.input("a"), b.input("b"))
    b.output(out, "z")
    b.netlist.bind(lib)
    return b.netlist.simulate(lib, {"a": va, "b": vb})["z"]


class TestDatapath:
    @pytest.mark.parametrize("x,y", [(0, 0), (3, 5), (7, 9), (15, 15)])
    def test_ripple_adder(self, ffet_lib, x, y):
        b = NetlistBuilder("t")
        a = b.inputs("a", 4)
        c = b.inputs("c", 4)
        s, cout = b.ripple_adder(a, c)
        b.outputs(s, "s")
        b.output(cout, "co")
        inputs = {f"a[{i}]": bool((x >> i) & 1) for i in range(4)}
        inputs |= {f"c[{i}]": bool((y >> i) & 1) for i in range(4)}
        b.netlist.bind(ffet_lib)
        v = b.netlist.simulate(ffet_lib, inputs)
        total = word_value(v, [f"s[{i}]" for i in range(4)])
        total += int(v["co"]) << 4
        assert total == x + y

    @pytest.mark.parametrize("x,y", [(9, 4), (4, 9), (15, 15), (0, 1)])
    def test_subtractor(self, ffet_lib, x, y):
        b = NetlistBuilder("t")
        a = b.inputs("a", 4)
        c = b.inputs("c", 4)
        d, _ = b.subtractor(a, c)
        b.outputs(d, "d")
        inputs = {f"a[{i}]": bool((x >> i) & 1) for i in range(4)}
        inputs |= {f"c[{i}]": bool((y >> i) & 1) for i in range(4)}
        b.netlist.bind(ffet_lib)
        v = b.netlist.simulate(ffet_lib, inputs)
        assert word_value(v, [f"d[{i}]" for i in range(4)]) == (x - y) % 16

    def test_incrementer(self, ffet_lib):
        for x in (0, 5, 14, 15):
            b = NetlistBuilder("t")
            a = b.inputs("a", 4)
            out = b.incrementer(a)
            b.outputs(out, "q")
            b.netlist.bind(ffet_lib)
            inputs = {f"a[{i}]": bool((x >> i) & 1) for i in range(4)}
            v = b.netlist.simulate(ffet_lib, inputs)
            assert word_value(v, [f"q[{i}]" for i in range(4)]) == (x + 1) % 16

    def test_mux_tree_selects_each_word(self, ffet_lib):
        b = NetlistBuilder("t")
        words = [[b.tie(bool((w >> i) & 1)) for i in range(2)] for w in range(4)]
        sel = [b.input("s0"), b.input("s1")]
        out = b.mux_tree(words, sel)
        b.outputs(out, "z")
        b.netlist.bind(ffet_lib)
        for code in range(4):
            v = b.netlist.simulate(
                ffet_lib, {"s0": bool(code & 1), "s1": bool(code >> 1)}
            )
            assert word_value(v, ["z[0]", "z[1]"]) == code

    def test_mux_tree_word_count_checked(self, ffet_lib):
        b = NetlistBuilder("t")
        with pytest.raises(ValueError):
            b.mux_tree([[b.tie(False)]], [b.input("s0")])

    def test_decoder_one_hot(self, ffet_lib):
        b = NetlistBuilder("t")
        sel = [b.input("s0"), b.input("s1")]
        outs = b.decoder(sel)
        for i, net in enumerate(outs):
            b.output(net, f"d[{i}]")
        b.netlist.bind(ffet_lib)
        for code in range(4):
            v = b.netlist.simulate(
                ffet_lib, {"s0": bool(code & 1), "s1": bool(code >> 1)}
            )
            hot = [i for i in range(4) if v[f"d[{i}]"]]
            assert hot == [code]

    def test_equals_const(self, ffet_lib):
        b = NetlistBuilder("t")
        word = b.inputs("a", 3)
        out = b.equals_const(word, 5)
        b.output(out, "eq")
        b.netlist.bind(ffet_lib)
        for x in range(8):
            v = b.netlist.simulate(
                ffet_lib, {f"a[{i}]": bool((x >> i) & 1) for i in range(3)}
            )
            assert v["eq"] == (x == 5)

    @pytest.mark.parametrize("value,shamt,right,arith,expect", [
        (0b0110, 1, False, False, 0b1100),
        (0b0110, 2, True, False, 0b0001),
        (0b1000, 1, True, True, 0b1100),   # arithmetic: sign extends
        (0b1000, 1, True, False, 0b0100),  # logical
        (0b0101, 0, False, False, 0b0101),
    ])
    def test_barrel_shifter(self, ffet_lib, value, shamt, right, arith, expect):
        b = NetlistBuilder("t")
        word = b.inputs("a", 4)
        sh = b.inputs("sh", 2)
        r = b.input("r")
        ar = b.input("ar")
        out = b.barrel_shifter(word, sh, r, ar)
        b.outputs(out, "z")
        b.netlist.bind(ffet_lib)
        inputs = {f"a[{i}]": bool((value >> i) & 1) for i in range(4)}
        inputs |= {f"sh[{i}]": bool((shamt >> i) & 1) for i in range(2)}
        inputs |= {"r": right, "ar": arith}
        v = b.netlist.simulate(ffet_lib, inputs)
        assert word_value(v, [f"z[{i}]" for i in range(4)]) == expect

    def test_reduce_tree_empty_rejected(self, ffet_lib):
        b = NetlistBuilder("t")
        with pytest.raises(ValueError):
            b.and_tree([])

    def test_adder_width_mismatch(self, ffet_lib):
        b = NetlistBuilder("t")
        with pytest.raises(ValueError):
            b.ripple_adder(b.inputs("a", 2), b.inputs("c", 3))
