"""Dependency-completeness of the stage graph's config slices.

Each stage declares the :class:`~repro.core.config.FlowConfig` fields
it reads (its slice); the store shares a stage's artifact across any
two configs that agree on the stage's *transitive* slice.  That is only
sound if the slices are complete — if a stage's artifact really is a
pure function of its declared fields (plus upstream artifacts and the
netlist).  These tests enforce it empirically: perturb one config field
at a time, re-execute the flow (no store), and require every stage
whose transitive slice does *not* contain the field to produce a
byte-identical pickled artifact.

A failure here means a stage reads a config field it does not declare —
exactly the bug that would let the store replay a stale artifact.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.core import FlowCache, FlowConfig
from repro.core.cache import netlist_fingerprint
from repro.core.flow import FLOW_GRAPH, FLOW_STAGES, run_flow, stage_keys
from repro.core.stages import StageStore

from .golden_cases import MultiplierFactory

FACTORY = MultiplierFactory(5)
BASE = FlowConfig()

#: One valid alternate value per perturbable field.  ``arch`` and
#: ``seed`` sit in the root (``library``) slice so every stage key
#: already covers them; ``clock`` would rename a net the generated
#: design does not have.  ``backside_pin_fraction`` is likewise in the
#: root slice.  Everything else must leave out-of-slice stages
#: byte-identical.
PERTURBATIONS = {
    "front_layers": 9,
    "back_layers": 3,
    "utilization": 0.6,
    "aspect_ratio": 1.5,
    "target_frequency_ghz": 2.0,
    "gcell_tracks": 12,
    "max_fanout": 10,
    "cts_mode": "dual",
    "cts_back_fraction": 0.25,
    "activity": 0.5,
    "macro_halo_cpp": 4,
    "allow_bridging": True,
    "power_stripe_pitch_cpp": 24,
    "rrr_iterations": 4,
    "sizing_iterations": 6,
    "refine_placement": True,
    "refine_iterations": 100,
    "tag": "perturbed",
}

_SKIPPED = {"arch", "seed", "backside_pin_fraction", "clock"}


def test_every_config_field_is_covered():
    """The perturbation table tracks FlowConfig: no field slips by
    unexercised when one is added."""
    fields = {f.name for f in dataclasses.fields(FlowConfig)}
    assert fields == set(PERTURBATIONS) | _SKIPPED


def test_skipped_fields_really_are_in_the_root_slice():
    """Skipping a field is only sound if every stage key already
    depends on it (``clock`` aside, which cannot be renamed)."""
    root = FLOW_GRAPH.transitive_fields(FLOW_STAGES[0])
    assert _SKIPPED - {"clock"} <= root


def _stage_artifacts(config: FlowConfig, tmp_path, tag: str
                     ) -> dict[str, bytes]:
    """Run the flow once and return each stage's pickled artifact."""
    cache = FlowCache(tmp_path / tag)
    store = StageStore(cache)
    run_flow(FACTORY, config, store=store)
    keys = stage_keys(config, netlist_fingerprint(FACTORY()),
                      version=store.version)
    return {name: pickle.dumps(store.get(name, keys[name]))
            for name in FLOW_STAGES}


@pytest.fixture(scope="module")
def baseline(tmp_path_factory) -> dict[str, bytes]:
    return _stage_artifacts(BASE, tmp_path_factory.mktemp("base"), "base")


@pytest.mark.parametrize("field", sorted(PERTURBATIONS))
def test_out_of_slice_stages_are_invariant(field, baseline,
                                           tmp_path_factory):
    perturbed = _stage_artifacts(
        BASE.with_(**{field: PERTURBATIONS[field]}),
        tmp_path_factory.mktemp(field), field)
    invariant = [name for name in FLOW_STAGES
                 if field not in FLOW_GRAPH.transitive_fields(name)]
    assert invariant, f"no stage is out-of-slice for {field}"
    for name in invariant:
        assert perturbed[name] == baseline[name], (
            f"stage {name!r} changed when {field!r} (not in its "
            "transitive config slice) was perturbed — the stage reads "
            "an undeclared field")
