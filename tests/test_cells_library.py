"""Library container and Fig. 4 cell-area comparison tests."""

import pytest

from repro.cells import cell_area_table
from repro.tech import Side


class TestLibraryQueries:
    def test_lookup_by_name(self, ffet_lib):
        assert ffet_lib["INVD1"].function == "INV"

    def test_missing_cell(self, ffet_lib):
        with pytest.raises(KeyError):
            ffet_lib["INVD99"]

    def test_cells_of_sorted_by_drive(self, ffet_lib):
        drives = [m.drive for m in ffet_lib.cells_of("INV")]
        assert drives == sorted(drives) == [1, 2, 4, 8]

    def test_cell_by_function_and_drive(self, ffet_lib):
        assert ffet_lib.cell("NAND2", 2).name == "NAND2D2"

    def test_strongest(self, ffet_lib):
        assert ffet_lib.strongest("BUF").name == "BUFD8"

    def test_next_drive_up(self, ffet_lib):
        assert ffet_lib.next_drive_up(ffet_lib["INVD2"]).name == "INVD4"
        assert ffet_lib.next_drive_up(ffet_lib["INVD8"]) is None

    def test_functions(self, ffet_lib):
        fns = ffet_lib.functions()
        assert {"INV", "BUF", "NAND2", "DFF", "MUX2"} <= fns

    def test_duplicate_add_rejected(self, ffet_lib):
        with pytest.raises(ValueError):
            ffet_lib.add(ffet_lib["INVD1"])


class TestFig4CellAreas:
    """Fig. 4: FFET vs CFET standard-cell areas."""

    @pytest.fixture(scope="class")
    def table(self, ffet_lib, cfet_lib):
        return {r["cell"]: r for r in cell_area_table(ffet_lib, cfet_lib)}

    def test_most_cells_save_12_5_percent(self, table):
        for cell in ("INVD1", "BUFD2", "NAND2D1", "NOR2D1", "XOR2D1"):
            assert table[cell]["area_diff"] == pytest.approx(-0.125)

    def test_split_gate_cells_save_more(self, table):
        # MUX/DFF benefit from the Split Gate (Fig. 3).
        assert table["MUX2D1"]["area_diff"] < -0.2
        assert table["DFFD1"]["area_diff"] < -0.2

    def test_aoi22_wastes_area(self, table):
        # Extra Drain Merge erodes the height gain (Section II.B).
        assert table["AOI22D1"]["area_diff"] > -0.05
        assert table["OAI22D1"]["area_diff"] > -0.05

    def test_average_saving_near_paper(self, table):
        mean = sum(r["area_diff"] for r in table.values()) / len(table)
        assert -0.20 < mean < -0.10

    def test_table_covers_both_libraries(self, table, ffet_lib, cfet_lib):
        base_ffet = {m.name for m in ffet_lib if m.base_name is None}
        base_cfet = {m.name for m in cfet_lib if m.base_name is None}
        assert set(table) == base_ffet & base_cfet


class TestPinDensity:
    def test_ffet_backside_has_output_pins(self, ffet_lib):
        inv = ffet_lib["INVD1"]
        assert inv.pin_count_on(Side.BACK) == 1  # the dual-sided output
        assert inv.pin_count_on(Side.FRONT) == 2  # input + output

    def test_mean_pin_density_positive(self, ffet_lib):
        assert ffet_lib.mean_pin_density(Side.FRONT) > 0

    def test_backside_fraction_initially_zero(self, ffet_lib):
        assert ffet_lib.backside_input_fraction() == 0.0
