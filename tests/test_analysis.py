"""Statistics helpers: confidence ellipses, Pareto fronts."""

import math

import numpy as np
import pytest

from repro.analysis import (confidence_ellipse, pareto_front,
                            quantile, relative_diff, sample_stats)


class TestConfidenceEllipse:
    def test_centered_on_mean(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [10.0, 12.0, 9.0, 13.0]
        e = confidence_ellipse(xs, ys)
        assert e.center_x == pytest.approx(np.mean(xs))
        assert e.center_y == pytest.approx(np.mean(ys))

    def test_contains_center(self):
        e = confidence_ellipse([0, 1, 2, 3], [0, 1, 0, 1])
        assert e.contains(e.center_x, e.center_y)

    def test_higher_confidence_larger(self):
        xs = list(range(10))
        ys = [x * 0.5 + (x % 3) for x in xs]
        e50 = confidence_ellipse(xs, ys, 0.50)
        e95 = confidence_ellipse(xs, ys, 0.95)
        assert e95.area > e50.area

    def test_wider_spread_larger_ellipse(self):
        tight = confidence_ellipse([0, 0.1, 0.2, 0.3], [0, 0.1, 0, 0.1])
        wide = confidence_ellipse([0, 1, 2, 3], [0, 1, 0, 1])
        assert wide.area > tight.area

    def test_orientation_follows_correlation(self):
        xs = np.linspace(0, 10, 20)
        ys = 2 * xs + np.cos(xs)  # strongly positively correlated
        e = confidence_ellipse(xs, ys)
        assert 0 < e.angle_rad < math.pi / 2 or \
            -math.pi < e.angle_rad < -math.pi / 2

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            confidence_ellipse([1, 2], [1, 2])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            confidence_ellipse([1, 2, 3], [1, 2, 3], confidence=1.5)

    def test_coverage_roughly_matches_level(self):
        rng = np.random.default_rng(0)
        xs = rng.normal(size=400)
        ys = rng.normal(size=400)
        e = confidence_ellipse(xs, ys, 0.50)
        covered = sum(e.contains(x, y) for x, y in zip(xs, ys)) / 400
        assert 0.40 < covered < 0.60


class TestParetoAndDiff:
    def test_relative_diff(self):
        assert relative_diff(110, 100) == pytest.approx(0.10)
        assert relative_diff(5, 0) == 0.0

    def test_pareto_front(self):
        points = [(1.0, 1.0), (2.0, 2.0), (2.0, 0.5), (0.5, 0.4)]
        front = pareto_front(points)  # maximize x, minimize y
        assert (2.0, 0.5) in front
        assert (1.0, 1.0) not in front  # dominated by (2.0, 0.5)

    def test_pareto_single_point(self):
        assert pareto_front([(1.0, 1.0)]) == [(1.0, 1.0)]


class TestEllipseDegenerateInputs:
    def test_too_few_points_message_names_the_size(self):
        with pytest.raises(ValueError, match="3"):
            confidence_ellipse([1.0, 2.0], [1.0, 2.0])

    def test_mismatched_shapes_get_their_own_error(self):
        with pytest.raises(ValueError, match="paired"):
            confidence_ellipse([1.0, 2.0, 3.0], [1.0, 2.0])

    def test_identical_cloud_yields_exact_zero_ellipse(self):
        e = confidence_ellipse([2.0] * 5, [7.0] * 5)
        assert e.center_x == 2.0 and e.center_y == 7.0
        assert e.semi_major == 0.0 and e.semi_minor == 0.0
        assert e.angle_rad == 0.0
        assert e.area == 0.0

    def test_zero_ellipse_contains_only_its_center(self):
        e = confidence_ellipse([2.0] * 5, [7.0] * 5)
        assert e.contains(2.0, 7.0)
        assert not e.contains(2.0 + 1e-12, 7.0)
        assert not e.contains(2.0, 7.0 - 1e-12)

    def test_collinear_cloud_still_produces_an_ellipse(self):
        # Degenerate in one axis only: must not raise.
        e = confidence_ellipse([1.0, 2.0, 3.0, 4.0], [5.0] * 4)
        assert e.semi_major > 0.0
        assert e.semi_minor == pytest.approx(0.0, abs=1e-9)


class TestSampleStats:
    def test_basic_moments(self):
        s = sample_stats([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.median == pytest.approx(2.5)

    def test_single_sample_has_zero_std(self):
        s = sample_stats([5.0])
        assert s.n == 1 and s.std == 0.0
        assert s.mean == s.minimum == s.maximum == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sample_stats([])

    def test_quantiles_interpolate_like_numpy(self):
        values = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.3]
        for q in (0.01, 0.05, 0.50, 0.95, 0.99):
            assert quantile(sorted(values), q) == pytest.approx(
                np.quantile(values, q))

    def test_mean_minus_sigmas(self):
        s = sample_stats([1.0, 2.0, 3.0, 4.0])
        assert s.mean_minus_sigmas(3.0) == pytest.approx(s.mean - 3 * s.std)

    def test_to_dict_is_json_safe(self):
        import json

        payload = sample_stats([1.0, 2.0, 3.0]).to_dict()
        round_trip = json.loads(json.dumps(payload))
        assert round_trip["n"] == 3
        assert "0.5" in round_trip["quantiles"]
