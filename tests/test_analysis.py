"""Statistics helpers: confidence ellipses, Pareto fronts."""

import math

import numpy as np
import pytest

from repro.analysis import confidence_ellipse, pareto_front, relative_diff


class TestConfidenceEllipse:
    def test_centered_on_mean(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [10.0, 12.0, 9.0, 13.0]
        e = confidence_ellipse(xs, ys)
        assert e.center_x == pytest.approx(np.mean(xs))
        assert e.center_y == pytest.approx(np.mean(ys))

    def test_contains_center(self):
        e = confidence_ellipse([0, 1, 2, 3], [0, 1, 0, 1])
        assert e.contains(e.center_x, e.center_y)

    def test_higher_confidence_larger(self):
        xs = list(range(10))
        ys = [x * 0.5 + (x % 3) for x in xs]
        e50 = confidence_ellipse(xs, ys, 0.50)
        e95 = confidence_ellipse(xs, ys, 0.95)
        assert e95.area > e50.area

    def test_wider_spread_larger_ellipse(self):
        tight = confidence_ellipse([0, 0.1, 0.2, 0.3], [0, 0.1, 0, 0.1])
        wide = confidence_ellipse([0, 1, 2, 3], [0, 1, 0, 1])
        assert wide.area > tight.area

    def test_orientation_follows_correlation(self):
        xs = np.linspace(0, 10, 20)
        ys = 2 * xs + np.cos(xs)  # strongly positively correlated
        e = confidence_ellipse(xs, ys)
        assert 0 < e.angle_rad < math.pi / 2 or \
            -math.pi < e.angle_rad < -math.pi / 2

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            confidence_ellipse([1, 2], [1, 2])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            confidence_ellipse([1, 2, 3], [1, 2, 3], confidence=1.5)

    def test_coverage_roughly_matches_level(self):
        rng = np.random.default_rng(0)
        xs = rng.normal(size=400)
        ys = rng.normal(size=400)
        e = confidence_ellipse(xs, ys, 0.50)
        covered = sum(e.contains(x, y) for x, y in zip(xs, ys)) / 400
        assert 0.40 < covered < 0.60


class TestParetoAndDiff:
    def test_relative_diff(self):
        assert relative_diff(110, 100) == pytest.approx(0.10)
        assert relative_diff(5, 0) == 0.0

    def test_pareto_front(self):
        points = [(1.0, 1.0), (2.0, 2.0), (2.0, 0.5), (0.5, 0.4)]
        front = pareto_front(points)  # maximize x, minimize y
        assert (2.0, 0.5) in front
        assert (1.0, 1.0) not in front  # dominated by (2.0, 0.5)

    def test_pareto_single_point(self):
        assert pareto_front([(1.0, 1.0)]) == [(1.0, 1.0)]
