"""Layer assignment (tiering) tests."""

import numpy as np
import pytest

from repro.pnr.routing.grid import RoutingGrid
from repro.pnr.routing.layers import assign_layers, build_tiers
from repro.pnr.routing.router import GlobalRouter, NetSpec
from repro.tech import Side, make_ffet_node


def grid_with_layers(n_layers):
    tech = make_ffet_node(n_layers, 0)
    layers = tech.routing_layers(Side.FRONT)
    grid = RoutingGrid(side=Side.FRONT, cols=12, rows=12,
                       gcell_nm=480.0, layers=layers)
    grid.cap_h = np.full((12, 11), 50.0)
    grid.cap_v = np.full((11, 12), 50.0)
    return grid


class TestTiers:
    def test_pairing(self):
        tiers = build_tiers(make_ffet_node().routing_layers(Side.FRONT))
        assert len(tiers) == 6
        assert tiers[0].horizontal.name == "FM2"
        assert tiers[0].vertical.name == "FM1"
        assert tiers[-1].horizontal.name == "FM12"

    def test_via_stack_grows(self):
        tiers = build_tiers(make_ffet_node().routing_layers(Side.FRONT))
        stacks = [t.via_stack for t in tiers]
        assert stacks == sorted(stacks)
        assert stacks[0] == 1

    def test_odd_layer_count(self):
        tiers = build_tiers(make_ffet_node(5, 0).routing_layers(Side.FRONT))
        assert len(tiers) == 3  # (1,2) (3,4) (5)
        last = tiers[-1]
        assert last.horizontal.name == last.vertical.name == "FM5"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_tiers([])


class TestAssignment:
    def route_mixed(self, grid):
        specs = (
            [NetSpec(f"short{i}", Side.FRONT, [(i, 0), (i, 1)])
             for i in range(8)]
            + [NetSpec(f"long{i}", Side.FRONT, [(0, i), (11, i)])
               for i in range(4)]
        )
        return GlobalRouter(grid).route_all(specs)

    def test_short_nets_low_long_nets_high(self):
        result = self.route_mixed(grid_with_layers(12))
        assignment = assign_layers(result)
        short_tier = assignment.tier_of("short0").index
        long_tier = assignment.tier_of("long3").index
        assert short_tier <= long_tier

    def test_every_net_assigned(self):
        result = self.route_mixed(grid_with_layers(12))
        assignment = assign_layers(result)
        assert set(assignment.net_tier) == set(result.routes)

    def test_fewer_layers_compresses_tiers(self):
        result = self.route_mixed(grid_with_layers(4))
        assignment = assign_layers(result)
        assert all(t.index < 2 for t in assignment.net_tier.values())

    def test_tier_layers_on_grid_side(self):
        result = self.route_mixed(grid_with_layers(6))
        assignment = assign_layers(result)
        for tier in assignment.tiers:
            assert tier.horizontal.side is Side.FRONT
            assert tier.vertical.side is Side.FRONT
