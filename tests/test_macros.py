"""Property tests for the SRAM macro compiler and macro-aware stages.

The compiler contract: pins land on the macro boundary on the CPP
grid, obstructions stay inside the outline and respect the tech's
sidedness, and compilation is a pure function of (spec, tech).  The
physical contract: legalization never parks a standard cell inside a
macro keep-out, and the floorplanner's utilization accounting stays
meaningful with macros on the die.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_library, make_cfet_node, make_ffet_node
from repro.macros import (
    DECODER_SITES,
    FOLD_MUX,
    FOLD_THRESHOLD_WORDS,
    PERIPHERY_ROWS,
    MacroSpec,
    attach_macros,
    compile_macro,
    macro_name,
)
from repro.pnr import (
    FloorplanSpec,
    achieved_utilization,
    global_place,
    legalize,
    plan_floor,
    plan_power,
)
from repro.synth import generate_rv16_sram
from repro.tech import Side

SPECS = st.builds(
    MacroSpec,
    words=st.sampled_from([4, 8, 16, 32, 64, 128]),
    bits=st.integers(1, 32),
)


@pytest.fixture(scope="module")
def ffet_tech():
    return make_ffet_node()


@pytest.fixture(scope="module")
def cfet_tech():
    return make_cfet_node()


@pytest.fixture(scope="module")
def macro_lib():
    """A private library: attach_macros mutates it (adds SRAM masters),
    which must not leak into the session-scoped ``ffet_lib``."""
    return build_library(make_ffet_node())


class TestMacroSpec:
    def test_rejects_non_power_of_two_words(self):
        with pytest.raises(ValueError):
            MacroSpec(words=12)
        with pytest.raises(ValueError):
            MacroSpec(words=2)

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            MacroSpec(bits=0)

    @given(spec=SPECS)
    def test_name_encodes_parameters(self, spec):
        assert macro_name(spec) == f"SRAM{spec.words}X{spec.bits}"
        assert spec.addr_bits == int(math.log2(spec.words))


class TestCompileMacro:
    @given(spec=SPECS)
    @settings(max_examples=40, deadline=None)
    def test_pins_sit_on_the_boundary_on_grid(self, spec, ffet_tech):
        m = compile_macro(spec, ffet_tech)
        cpp = ffet_tech.cpp_nm
        width_nm = m.width_sites * cpp
        height_nm = m.height_rows * ffet_tech.cell_height_nm
        for name, (dx, dy) in m.pin_offsets.items():
            x = dx + width_nm / 2
            y = dy + height_nm / 2
            # Bottom edge for inputs, top edge for the Q outputs.
            assert y == pytest.approx(0.0 if not name.startswith("Q")
                                      else height_nm)
            assert 0.0 <= x <= width_nm
            assert x / cpp == pytest.approx(round(x / cpp)), (name, x)

    @given(spec=SPECS)
    @settings(max_examples=40, deadline=None)
    def test_pin_map_is_complete(self, spec, ffet_tech):
        m = compile_macro(spec, ffet_tech)
        expected = ({"CK", "WE"}
                    | {f"A{i}" for i in range(spec.addr_bits)}
                    | {f"D{i}" for i in range(spec.bits)}
                    | {f"Q{i}" for i in range(spec.bits)})
        assert set(m.pins) == expected
        assert set(m.pin_offsets) == expected
        # One CK->Q arc per output bit; the macro is sequential.
        assert len(m.arcs) == spec.bits
        assert m.sequential is not None

    @given(spec=SPECS)
    @settings(max_examples=40, deadline=None)
    def test_obstructions_stay_inside_the_outline(self, spec, ffet_tech):
        m = compile_macro(spec, ffet_tech)
        width_nm = m.width_sites * ffet_tech.cpp_nm
        height_nm = m.height_rows * ffet_tech.cell_height_nm
        assert m.obstructions
        for layer, x0, y0, x1, y1 in m.obstructions:
            assert 0.0 <= x0 < x1 <= width_nm, layer
            assert 0.0 <= y0 < y1 <= height_nm, layer

    @given(spec=SPECS)
    @settings(max_examples=20, deadline=None)
    def test_sidedness_follows_the_tech(self, spec, ffet_tech, cfet_tech):
        dual = compile_macro(spec, ffet_tech)
        single = compile_macro(spec, cfet_tech)
        assert Side.BACK in dual.pins["CK"].sides
        assert any(l.startswith("B") for l, *_ in dual.obstructions)
        assert single.pins["CK"].sides == frozenset({Side.FRONT})
        assert not any(l.startswith("B") for l, *_ in single.obstructions)

    @given(spec=SPECS)
    @settings(max_examples=20, deadline=None)
    def test_compilation_is_deterministic(self, spec, ffet_tech):
        a = compile_macro(spec, ffet_tech)
        b = compile_macro(spec, ffet_tech)
        assert a.name == b.name
        assert (a.width_sites, a.height_rows) == (b.width_sites, b.height_rows)
        assert a.pin_offsets == b.pin_offsets
        assert a.obstructions == b.obstructions

    @given(spec=SPECS)
    @settings(max_examples=20, deadline=None)
    def test_folding_bounds_the_aspect(self, spec, ffet_tech):
        m = compile_macro(spec, ffet_tech)
        mux = FOLD_MUX if spec.words >= FOLD_THRESHOLD_WORDS else 1
        assert m.width_sites == DECODER_SITES + spec.bits * mux
        assert m.height_rows == spec.words // mux + PERIPHERY_ROWS
        assert m.width_cpp == float(m.width_sites)


class TestAttachMacros:
    def test_idempotent_and_shared(self, macro_lib):
        netlist = generate_rv16_sram(xlen=8, nregs=8, words=8)
        first = attach_macros(netlist, macro_lib)
        second = attach_macros(netlist, macro_lib)
        assert [m.name for m in first] == ["SRAM8X8"]
        assert first[0] is second[0]
        assert "SRAM8X8" in macro_lib.masters

    def test_macro_free_netlist_is_a_no_op(self, macro_lib, counter8):
        assert attach_macros(counter8, macro_lib) == []


@pytest.fixture(scope="module")
def bound_sram(macro_lib):
    netlist = generate_rv16_sram(xlen=8, nregs=8, words=16)
    attach_macros(netlist, macro_lib)
    netlist.bind(macro_lib)
    return netlist


class TestMacroFloorplan:
    @given(halo=st.integers(0, 4),
           utilization=st.floats(0.4, 0.8))
    @settings(max_examples=10, deadline=None)
    def test_macros_fixed_inside_die_with_halo(self, halo, utilization,
                                               bound_sram, macro_lib):
        spec = FloorplanSpec(utilization=utilization, macro_halo_cpp=halo)
        die = plan_floor(bound_sram, macro_lib, spec)
        assert len(die.macros) == 1
        m = die.macros[0]
        assert m.halo_nm == halo * macro_lib.tech.cpp_nm
        ko = m.keepout()
        assert 0.0 <= ko.x0_nm and ko.x1_nm <= die.width_nm
        assert 0.0 <= ko.y0_nm and ko.y1_nm <= die.height_nm
        # Obstruction rects are absolute and inside the macro footprint.
        for _layer, rect in m.obstructions:
            assert m.rect.x0_nm <= rect.x0_nm < rect.x1_nm <= m.rect.x1_nm
            assert m.rect.y0_nm <= rect.y0_nm < rect.y1_nm <= m.rect.y1_nm

    @given(utilization=st.floats(0.4, 0.8))
    @settings(max_examples=10, deadline=None)
    def test_achieved_utilization_accounts_for_macros(self, utilization,
                                                      bound_sram, macro_lib):
        spec = FloorplanSpec(utilization=utilization)
        die = plan_floor(bound_sram, macro_lib, spec)
        achieved = achieved_utilization(bound_sram, macro_lib, die)
        assert 0.0 < achieved <= utilization + 1e-9


class TestMacroLegalization:
    @given(halo=st.integers(0, 3), seed=st.integers(0, 3))
    @settings(max_examples=6, deadline=None)
    def test_no_cell_lands_in_a_keepout(self, halo, seed, bound_sram,
                                        macro_lib):
        tech = macro_lib.tech
        die = plan_floor(bound_sram, macro_lib,
                         FloorplanSpec(utilization=0.6, macro_halo_cpp=halo))
        powerplan = plan_power(tech, die)
        rough = global_place(bound_sram, macro_lib, die, seed=seed)
        legal = legalize(rough, bound_sram, macro_lib, powerplan)
        keepouts = [m.keepout() for m in die.macros]
        for name, p in legal.locations.items():
            if name in {m.name for m in die.macros}:
                continue
            for ko in keepouts:
                assert not (ko.x0_nm < p.x_nm < ko.x1_nm
                            and ko.y0_nm < p.y_nm < ko.y1_nm), (
                    f"{name} legalized inside a macro keep-out")

    def test_macros_recommitted_at_floorplan_position(self, bound_sram,
                                                      macro_lib):
        die = plan_floor(bound_sram, macro_lib, FloorplanSpec(utilization=0.6))
        powerplan = plan_power(macro_lib.tech, die)
        rough = global_place(bound_sram, macro_lib, die, seed=0)
        legal = legalize(rough, bound_sram, macro_lib, powerplan)
        for m in die.macros:
            assert legal.locations[m.name] == m.rect.center
