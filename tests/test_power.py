"""Power analysis tests."""

import pytest

from repro.extract import estimate_parasitics
from repro.power import analyze_power


@pytest.fixture()
def counter_power(ffet_lib, counter8):
    extraction = estimate_parasitics(counter8, ffet_lib)
    return counter8, extraction


class TestPowerReport:
    def test_components_positive(self, ffet_lib, counter_power):
        nl, extraction = counter_power
        report = analyze_power(nl, ffet_lib, extraction, 1.0)
        assert report.switching_mw > 0
        assert report.internal_mw > 0
        assert report.leakage_mw > 0
        assert report.total_mw == pytest.approx(
            report.switching_mw + report.internal_mw + report.leakage_mw)

    def test_dynamic_scales_with_frequency(self, ffet_lib, counter_power):
        nl, extraction = counter_power
        p1 = analyze_power(nl, ffet_lib, extraction, 1.0)
        p2 = analyze_power(nl, ffet_lib, extraction, 2.0)
        assert p2.dynamic_mw == pytest.approx(2 * p1.dynamic_mw, rel=1e-6)
        assert p2.leakage_mw == pytest.approx(p1.leakage_mw)

    def test_activity_scales_switching(self, ffet_lib, counter_power):
        nl, extraction = counter_power
        lo = analyze_power(nl, ffet_lib, extraction, 1.0, activity=0.1)
        hi = analyze_power(nl, ffet_lib, extraction, 1.0, activity=0.4)
        # Clock power is activity independent, so the scaling is
        # sub-linear but still strong.
        assert hi.switching_mw > 1.5 * lo.switching_mw

    def test_efficiency_metric(self, ffet_lib, counter_power):
        nl, extraction = counter_power
        report = analyze_power(nl, ffet_lib, extraction, 2.0)
        assert report.efficiency_ghz_per_mw == pytest.approx(
            2.0 / report.total_mw)

    def test_bad_frequency_rejected(self, ffet_lib, counter_power):
        nl, extraction = counter_power
        with pytest.raises(ValueError):
            analyze_power(nl, ffet_lib, extraction, 0.0)

    def test_clock_cone_at_full_activity(self, ffet_lib, counter_power):
        """Clock power must exceed the same net at data activity."""
        nl, extraction = counter_power
        base = analyze_power(nl, ffet_lib, extraction, 1.0)
        # If the clock were treated as a data net, switching would drop.
        fake = analyze_power(nl, ffet_lib, extraction, 1.0,
                             clock="nonexistent")
        assert base.switching_mw > fake.switching_mw

    def test_leakage_matches_library(self, ffet_lib, counter_power):
        nl, extraction = counter_power
        report = analyze_power(nl, ffet_lib, extraction, 1.0)
        expected_nw = sum(
            ffet_lib[i.master].power.leakage_nw for i in nl.instances.values()
        )
        assert report.leakage_mw == pytest.approx(expected_nw * 1e-6)


class TestArchComparison:
    def test_ffet_leakage_equals_cfet(self, ffet_lib, cfet_lib):
        """Table I: leakage identical across architectures."""
        from repro.synth import generate_counter

        reports = []
        for lib in (ffet_lib, cfet_lib):
            nl = generate_counter(8)
            nl.bind(lib)
            extraction = estimate_parasitics(nl, lib)
            reports.append(analyze_power(nl, lib, extraction, 1.0))
        assert reports[0].leakage_mw == pytest.approx(reports[1].leakage_mw)
