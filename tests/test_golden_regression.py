"""Golden regression: the serial headline numbers are pinned.

tests/golden/headline_ppa.json holds the full result payloads captured
by ``scripts/make_golden.py`` from the plain serial path.  These tests
lock today's numbers down and require the parallel and cached execution
paths to reproduce them *bit-for-bit* — which is what makes the
SweepRunner/FlowCache subsystem safe to put under every sweep.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core import FlowCache, SweepRunner, Tracer
from repro.core.cache import result_from_payload, result_to_payload
from repro.core.flow import FLOW_STAGES, run_flow
from repro.core.kernels import KERNEL_ENV, KERNEL_MODES
from repro.core.sweeps import try_run

from .golden_cases import CASES, GOLDEN_PATH, MultiplierFactory


@pytest.fixture(scope="module")
def golden() -> dict:
    assert GOLDEN_PATH.is_file(), \
        "golden fixtures missing; run scripts/make_golden.py"
    return json.loads(GOLDEN_PATH.read_text())


def test_golden_covers_every_case(golden):
    assert set(golden) == set(CASES)


@pytest.mark.parametrize("name", sorted(CASES))
def test_serial_path_matches_golden(golden, name):
    factory, config = CASES[name]
    result = try_run(factory, config)
    assert result_to_payload(result) == golden[name]


@pytest.mark.parametrize("mode", KERNEL_MODES)
@pytest.mark.parametrize("name", sorted(CASES))
def test_both_kernel_modes_match_golden(golden, name, mode, monkeypatch):
    """Each ``REPRO_KERNEL`` mode reproduces the pinned numbers exactly.

    The kernels are operation-order compatible (docs/performance.md),
    so the pinned tolerance is zero: a payload that differs in any bit
    fails.  A deliberate kernel change that moves the numbers must
    re-pin via ``scripts/make_golden.py`` — under *numpy* kernels, the
    default — and both modes must land on the new fixture together.
    """
    monkeypatch.setenv(KERNEL_ENV, mode)
    factory, config = CASES[name]
    result = try_run(factory, config)
    assert result_to_payload(result) == golden[name]


def test_parallel_path_matches_golden(golden):
    """jobs=2 over the pool reproduces the pinned numbers exactly."""
    names = [n for n in sorted(CASES)
             if isinstance(CASES[n][0], MultiplierFactory)]
    assert len(names) >= 2, "need >= 2 same-factory cases to engage the pool"
    factory = CASES[names[0]][0]
    configs = [CASES[n][1] for n in names]
    runner = SweepRunner(jobs=2)
    results = runner.run_many(factory, configs)
    for name, result in zip(names, results):
        assert result_to_payload(result) == golden[name]


def test_cached_path_matches_golden(golden, tmp_path):
    """Both the cache-miss and cache-hit paths reproduce the numbers."""
    name = "ffet_dual_mult5"
    factory, config = CASES[name]
    runner = SweepRunner(jobs=1, cache=FlowCache(tmp_path))

    cold = runner.run_records(factory, [config])[0]
    assert not cold.cache_hit
    assert result_to_payload(cold.result) == golden[name]

    warm = runner.run_records(factory, [config])[0]
    assert warm.cache_hit
    assert result_to_payload(warm.result) == golden[name]
    assert warm.result == cold.result


def test_traced_run_matches_golden(golden):
    """Telemetry is PPA-neutral: tracing a run reproduces the numbers."""
    name = "ffet_dual_mult5"
    factory, config = CASES[name]
    tracer = Tracer(label=name)
    result = run_flow(factory, config, tracer=tracer)
    assert result_to_payload(result) == golden[name]
    assert tracer.finish().stage_list() == list(FLOW_STAGES)


def test_traced_parallel_sweep_matches_golden(golden, tmp_path):
    """jobs=2 with --trace still reproduces the pinned numbers exactly."""
    names = [n for n in sorted(CASES)
             if isinstance(CASES[n][0], MultiplierFactory)]
    factory = CASES[names[0]][0]
    configs = [CASES[n][1] for n in names]
    runner = SweepRunner(jobs=2, trace_dir=tmp_path)
    results = runner.run_many(factory, configs)
    for name, result in zip(names, results):
        assert result_to_payload(result) == golden[name]
    assert len(list(tmp_path.glob("run-*.jsonl"))) == len(names)


@pytest.mark.parametrize("jobs", [1, 4])
def test_stage_store_cold_and_warm_match_golden(golden, tmp_path, jobs):
    """The per-stage artifact store never changes a result: cold walks
    (every stage executed and stored) and warm walks (every stage
    replayed, forced by ``refresh``) both reproduce the pinned numbers
    bit-for-bit, serial and parallel alike."""
    names = [n for n in sorted(CASES)
             if isinstance(CASES[n][0], MultiplierFactory)]
    factory = CASES[names[0]][0]
    configs = [CASES[n][1] for n in names]

    cold = SweepRunner(jobs=jobs, cache=FlowCache(tmp_path))
    for name, result in zip(names, cold.run_many(factory, configs)):
        assert result_to_payload(result) == golden[name]
    assert cold.stats.stage_misses > 0

    warm = SweepRunner(jobs=jobs, cache=FlowCache(tmp_path), refresh=True)
    for name, result in zip(names, warm.run_many(factory, configs)):
        assert result_to_payload(result) == golden[name]
    assert warm.stats.cache_hits == 0
    assert warm.stats.stage_misses == 0
    # The warm pass replays every stage of every case; the cold pass
    # executed or replayed each exactly once (the dual-CTS variant
    # shares its pre-CTS prefix with the default case, so some cold
    # stages are already hits).
    total = len(names) * len(FLOW_STAGES)
    assert warm.stats.stage_hits == total
    assert cold.stats.stage_misses + cold.stats.stage_hits == total


@pytest.mark.parametrize("jobs", [1, 4])
def test_store_disabled_matches_golden(golden, jobs):
    """Without a cache there is no stage store; the plain path still
    reproduces the pinned numbers at any job count."""
    names = [n for n in sorted(CASES)
             if isinstance(CASES[n][0], MultiplierFactory)]
    factory = CASES[names[0]][0]
    runner = SweepRunner(jobs=jobs)
    for name, result in zip(names, runner.run_many(factory,
                                                   [CASES[n][1]
                                                    for n in names])):
        assert result_to_payload(result) == golden[name]
    assert runner.stats.stage_hits == runner.stats.stage_misses == 0


def test_golden_payloads_round_trip(golden):
    """Fixtures deserialize into results equal to their re-serialization."""
    for name, payload in golden.items():
        result = result_from_payload(payload)
        assert result_to_payload(result) == payload
        assert result.valid
