"""NLDM lookup table and timing arc tests."""

import numpy as np
import pytest

from repro.cells import LookupTable, SequentialTiming


def linear_table():
    return LookupTable.from_function(
        lambda s, c: 2.0 * s + 3.0 * c,
        slews_ps=(1.0, 10.0, 100.0),
        loads_ff=(1.0, 5.0, 25.0),
    )


class TestLookupTable:
    def test_exact_grid_points(self):
        table = linear_table()
        assert table(10.0, 5.0) == pytest.approx(2 * 10 + 3 * 5)

    def test_bilinear_is_exact_for_linear_functions(self):
        table = linear_table()
        assert table(5.5, 3.0) == pytest.approx(2 * 5.5 + 3 * 3.0)

    def test_clamps_below_grid(self):
        table = linear_table()
        assert table(0.01, 0.01) == pytest.approx(table(1.0, 1.0))

    def test_clamps_above_grid(self):
        table = linear_table()
        assert table(1e6, 1e6) == pytest.approx(table(100.0, 25.0))

    def test_mean(self):
        table = LookupTable(
            np.array([1.0, 2.0]), np.array([1.0, 2.0]),
            np.array([[1.0, 2.0], [3.0, 4.0]]),
        )
        assert table.mean() == pytest.approx(2.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LookupTable(np.array([1.0, 2.0]), np.array([1.0]),
                        np.zeros((2, 2)))

    def test_non_monotone_axis_rejected(self):
        with pytest.raises(ValueError):
            LookupTable(np.array([2.0, 1.0]), np.array([1.0, 2.0]),
                        np.zeros((2, 2)))


class TestArcsFromLibrary:
    def test_delay_increases_with_load(self, ffet_lib):
        arc = ffet_lib["INVD1"].arcs[0]
        assert arc.delay(10.0, 10.0, rise=True) > arc.delay(10.0, 1.0, rise=True)

    def test_delay_increases_with_slew(self, ffet_lib):
        arc = ffet_lib["INVD1"].arcs[0]
        assert arc.delay(50.0, 5.0, rise=True) > arc.delay(5.0, 5.0, rise=True)

    def test_stronger_drive_is_faster(self, ffet_lib):
        d1 = ffet_lib["INVD1"].arcs[0]
        d4 = ffet_lib["INVD4"].arcs[0]
        assert d4.delay(10.0, 10.0, rise=True) < d1.delay(10.0, 10.0, rise=True)

    def test_rise_slower_than_fall(self, ffet_lib):
        # p-mobility deficit makes rise the slow edge.
        arc = ffet_lib["INVD1"].arcs[0]
        assert arc.delay(10.0, 5.0, rise=True) > arc.delay(10.0, 5.0, rise=False)

    def test_worst_delay(self, ffet_lib):
        arc = ffet_lib["INVD1"].arcs[0]
        worst = arc.worst_delay(10.0, 5.0)
        assert worst == max(arc.delay(10.0, 5.0, True), arc.delay(10.0, 5.0, False))

    def test_transitions_positive(self, ffet_lib):
        arc = ffet_lib["NAND2D1"].arcs[0]
        assert arc.transition(10.0, 5.0, rise=True) > 0


class TestSequentialTiming:
    def test_setup_positive(self, ffet_lib):
        seq = ffet_lib["DFFD1"].sequential
        assert seq is not None
        assert seq.setup_ps > 0

    def test_negative_setup_rejected(self):
        with pytest.raises(ValueError):
            SequentialTiming(setup_ps=-1.0, hold_ps=0.0)
