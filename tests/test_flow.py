"""End-to-end flow tests on small designs."""

import pytest

from repro.core import FlowConfig, prepare_library, run_flow
from repro.pnr import PlacementError
from repro.synth import generate_multiplier
from repro.tech import Side


def factory():
    return generate_multiplier(6)


@pytest.fixture(scope="module")
def ffet_run():
    config = FlowConfig(arch="ffet", utilization=0.65,
                        backside_pin_fraction=0.5, target_frequency_ghz=1.5)
    return run_flow(factory, config, return_artifacts=True)


@pytest.fixture(scope="module")
def cfet_run():
    config = FlowConfig(arch="cfet", back_layers=0, backside_pin_fraction=0.0,
                        utilization=0.65, target_frequency_ghz=1.5)
    return run_flow(factory, config, return_artifacts=True)


class TestFlowConfig:
    def test_label(self):
        cfg = FlowConfig(arch="ffet", front_layers=6, back_layers=6,
                         backside_pin_fraction=0.3)
        assert cfg.label == "FFET FM6BM6 FP0.7BP0.3"

    def test_cfet_label(self):
        cfg = FlowConfig(arch="cfet", back_layers=0, backside_pin_fraction=0.0)
        assert cfg.label == "CFET FM12"

    def test_invalid_combinations(self):
        with pytest.raises(ValueError):
            FlowConfig(arch="cfet", back_layers=12)
        with pytest.raises(ValueError):
            FlowConfig(arch="ffet", back_layers=0, backside_pin_fraction=0.5)
        with pytest.raises(ValueError):
            FlowConfig(arch="finfet")

    def test_with_override(self):
        cfg = FlowConfig().with_(utilization=0.5)
        assert cfg.utilization == 0.5
        assert cfg.arch == "ffet"

    def test_target_period(self):
        assert FlowConfig(target_frequency_ghz=2.0).target_period_ps == 500.0


class TestLibraryPreparation:
    def test_redistribution_applied(self):
        cfg = FlowConfig(arch="ffet", backside_pin_fraction=0.3)
        lib = prepare_library(cfg)
        assert lib.backside_input_fraction() == pytest.approx(0.3, abs=0.03)

    def test_layer_split_invariant_masters(self):
        # Characterization ignores the routing-layer split: two builds
        # of the same (arch, fraction, seed) at different splits agree
        # on every master, which is what lets the library stage's
        # store entry be shared across layer sweeps.  (The old
        # process-global _MASTER_CACHE asserted this via object
        # identity; the stage store asserts it via equality.)
        cfg = FlowConfig(arch="ffet", backside_pin_fraction=0.3)
        a = prepare_library(cfg)
        b = prepare_library(cfg.with_(front_layers=6, back_layers=6))
        assert set(a.masters) == set(b.masters)
        assert a["INVD1"].pins.keys() == b["INVD1"].pins.keys()
        assert a["INVD1"].width_cpp == b["INVD1"].width_cpp
        assert a.backside_input_fraction() == b.backside_input_fraction()
        assert a.tech.routing_label != b.tech.routing_label

    def test_no_process_global_master_cache(self):
        import repro.core.flow as flow_mod
        assert not hasattr(flow_mod, "_MASTER_CACHE")


class TestFlowResults:
    def test_result_fields(self, ffet_run):
        result = ffet_run.result
        assert result.valid
        assert result.achieved_frequency_ghz > 0.1
        assert result.total_power_mw > 0
        assert result.core_area_um2 > result.cell_area_um2
        assert result.cell_count == len(ffet_run.netlist.instances)

    def test_dual_sided_routing_happened(self, ffet_run):
        result = ffet_run.result
        assert result.back_wirelength_um > 0
        assert result.front_wirelength_um > 0
        assert Side.BACK in ffet_run.defs

    def test_two_defs_merged(self, ffet_run):
        merged = ffet_run.merged_def
        front_layers = {l for l in merged.layers_used() if l.startswith("F")}
        back_layers = {l for l in merged.layers_used() if l.startswith("B")}
        assert front_layers and back_layers

    def test_def_component_count(self, ffet_run):
        # Components = standard cells + tap cells.
        merged = ffet_run.merged_def
        expected = len(ffet_run.netlist.instances) + \
            len(ffet_run.powerplan.tap_cells)
        assert len(merged.components) == expected

    def test_cfet_single_sided(self, cfet_run):
        result = cfet_run.result
        assert result.back_wirelength_um == 0
        assert Side.BACK not in cfet_run.defs

    def test_ffet_beats_cfet_area(self, ffet_run, cfet_run):
        assert ffet_run.result.core_area_um2 < cfet_run.result.core_area_um2

    def test_ffet_not_slower(self, ffet_run, cfet_run):
        assert ffet_run.result.achieved_frequency_ghz >= \
            0.95 * cfet_run.result.achieved_frequency_ghz

    def test_determinism(self):
        cfg = FlowConfig(arch="ffet", utilization=0.6,
                         backside_pin_fraction=0.5)
        r1 = run_flow(factory, cfg)
        r2 = run_flow(factory, cfg)
        assert r1.achieved_frequency_ghz == r2.achieved_frequency_ghz
        assert r1.total_power_mw == r2.total_power_mw
        assert r1.drv_count == r2.drv_count

    def test_impossible_utilization_raises(self):
        cfg = FlowConfig(arch="ffet", utilization=0.92,
                         backside_pin_fraction=0.5)
        with pytest.raises(PlacementError):
            run_flow(factory, cfg)

    def test_extraction_covers_all_nets(self, ffet_run):
        for net in ffet_run.netlist.nets:
            assert net in ffet_run.extraction
