"""Golden RV32I model + mini assembler for functional verification.

Matches the generator's documented simplifications: word-wide memory
accesses only, no CSRs/traps.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _mask(xlen: int) -> int:
    return (1 << xlen) - 1


# ---------------------------------------------------------------------------
# Mini assembler (always emits 32-bit RV32I encodings).
# ---------------------------------------------------------------------------
def r_type(funct7, rs2, rs1, funct3, rd, opcode):
    return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | \
        (rd << 7) | opcode


def i_type(imm, rs1, funct3, rd, opcode):
    return ((imm & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) | \
        (rd << 7) | opcode


def s_type(imm, rs2, rs1, funct3, opcode=0b0100011):
    imm &= 0xFFF
    return ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | \
        ((imm & 0x1F) << 7) | opcode


def b_type(imm, rs2, rs1, funct3, opcode=0b1100011):
    imm &= 0x1FFF
    return (((imm >> 12) & 1) << 31) | (((imm >> 5) & 0x3F) << 25) | \
        (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | \
        (((imm >> 1) & 0xF) << 8) | (((imm >> 11) & 1) << 7) | opcode


def u_type(imm, rd, opcode):
    return (imm & 0xFFFFF000) | (rd << 7) | opcode


def j_type(imm, rd, opcode=0b1101111):
    imm &= 0x1FFFFF
    return (((imm >> 20) & 1) << 31) | (((imm >> 1) & 0x3FF) << 21) | \
        (((imm >> 11) & 1) << 20) | (((imm >> 12) & 0xFF) << 12) | \
        (rd << 7) | opcode


def addi(rd, rs1, imm):
    return i_type(imm, rs1, 0b000, rd, 0b0010011)


def slti(rd, rs1, imm):
    return i_type(imm, rs1, 0b010, rd, 0b0010011)


def xori(rd, rs1, imm):
    return i_type(imm, rs1, 0b100, rd, 0b0010011)


def add(rd, rs1, rs2):
    return r_type(0, rs2, rs1, 0b000, rd, 0b0110011)


def sub(rd, rs1, rs2):
    return r_type(0b0100000, rs2, rs1, 0b000, rd, 0b0110011)


def and_(rd, rs1, rs2):
    return r_type(0, rs2, rs1, 0b111, rd, 0b0110011)


def or_(rd, rs1, rs2):
    return r_type(0, rs2, rs1, 0b110, rd, 0b0110011)


def xor(rd, rs1, rs2):
    return r_type(0, rs2, rs1, 0b100, rd, 0b0110011)


def sll(rd, rs1, rs2):
    return r_type(0, rs2, rs1, 0b001, rd, 0b0110011)


def srl(rd, rs1, rs2):
    return r_type(0, rs2, rs1, 0b101, rd, 0b0110011)


def sra(rd, rs1, rs2):
    return r_type(0b0100000, rs2, rs1, 0b101, rd, 0b0110011)


def slt(rd, rs1, rs2):
    return r_type(0, rs2, rs1, 0b010, rd, 0b0110011)


def sltu(rd, rs1, rs2):
    return r_type(0, rs2, rs1, 0b011, rd, 0b0110011)


def lui(rd, imm):
    return u_type(imm, rd, 0b0110111)


def auipc(rd, imm):
    return u_type(imm, rd, 0b0010111)


def beq(rs1, rs2, off):
    return b_type(off, rs2, rs1, 0b000)


def bne(rs1, rs2, off):
    return b_type(off, rs2, rs1, 0b001)


def blt(rs1, rs2, off):
    return b_type(off, rs2, rs1, 0b100)


def bltu(rs1, rs2, off):
    return b_type(off, rs2, rs1, 0b110)


def jal(rd, off):
    return j_type(off, rd)


def jalr(rd, rs1, imm):
    return i_type(imm, rs1, 0b000, rd, 0b1100111)


def lw(rd, rs1, imm):
    return i_type(imm, rs1, 0b010, rd, 0b0000011)


def sw(rs2, rs1, imm):
    return s_type(imm, rs2, rs1, 0b010)


# ---------------------------------------------------------------------------
# Golden executor.
# ---------------------------------------------------------------------------
@dataclass
class GoldenCpu:
    """Reference single-cycle executor for the generated core."""

    xlen: int = 32
    nregs: int = 32
    pc: int = 0
    regs: list[int] = field(default_factory=lambda: [0] * 32)
    memory: dict[int, int] = field(default_factory=dict)

    def _sext(self, value: int, bits: int) -> int:
        value &= (1 << bits) - 1
        if value & (1 << (bits - 1)):
            value -= 1 << bits
        return value & _mask(self.xlen)

    def _signed(self, value: int) -> int:
        value &= _mask(self.xlen)
        if value & (1 << (self.xlen - 1)):
            value -= 1 << self.xlen
        return value

    def step(self, instr: int) -> None:
        m = _mask(self.xlen)
        opcode = instr & 0x7F
        rd = (instr >> 7) & (self.nregs - 1)
        funct3 = (instr >> 12) & 7
        rs1 = (instr >> 15) & (self.nregs - 1)
        rs2 = (instr >> 20) & (self.nregs - 1)
        funct7b5 = (instr >> 30) & 1
        imm_i = self._sext(instr >> 20, 12)
        imm_s = self._sext(((instr >> 25) << 5) | ((instr >> 7) & 0x1F), 12)
        imm_b = self._sext(
            (((instr >> 31) & 1) << 12) | (((instr >> 7) & 1) << 11)
            | (((instr >> 25) & 0x3F) << 5) | (((instr >> 8) & 0xF) << 1), 13)
        imm_u = (instr & 0xFFFFF000) & m
        imm_j = self._sext(
            (((instr >> 31) & 1) << 20) | (((instr >> 12) & 0xFF) << 12)
            | (((instr >> 20) & 1) << 11) | (((instr >> 21) & 0x3FF) << 1), 21)

        a = self.regs[rs1] & m
        b = self.regs[rs2] & m
        next_pc = (self.pc + 4) & m
        result = None

        if opcode == 0b0110111:    # LUI
            result = imm_u
        elif opcode == 0b0010111:  # AUIPC
            result = (self.pc + imm_u) & m
        elif opcode == 0b1101111:  # JAL
            result = (self.pc + 4) & m
            next_pc = (self.pc + imm_j) & m
        elif opcode == 0b1100111:  # JALR
            result = (self.pc + 4) & m
            next_pc = (a + imm_i) & m
        elif opcode == 0b1100011:  # branches
            lt = self._signed(a) < self._signed(b)
            ltu = a < b
            taken = {
                0b000: a == b, 0b001: a != b,
                0b100: lt, 0b101: not lt,
                0b110: ltu, 0b111: not ltu,
            }[funct3]
            if taken:
                next_pc = (self.pc + imm_b) & m
        elif opcode == 0b0000011:  # LW (word only)
            result = self.memory.get((a + imm_i) & m, 0) & m
        elif opcode == 0b0100011:  # SW
            self.memory[(a + imm_s) & m] = b
        elif opcode in (0b0010011, 0b0110011):  # OP-IMM / OP
            is_reg = opcode == 0b0110011
            operand = b if is_reg else imm_i
            shamt_bits = max(1, (self.xlen - 1).bit_length())
            shamt = operand & ((1 << shamt_bits) - 1)
            if funct3 == 0b000:
                if is_reg and funct7b5:
                    result = (a - operand) & m
                else:
                    result = (a + operand) & m
            elif funct3 == 0b001:
                result = (a << shamt) & m
            elif funct3 == 0b010:
                result = int(self._signed(a) < self._signed(operand & m))
            elif funct3 == 0b011:
                result = int(a < (operand & m))
            elif funct3 == 0b100:
                result = (a ^ operand) & m
            elif funct3 == 0b101:
                if funct7b5:
                    result = (self._signed(a) >> shamt) & m
                else:
                    result = (a >> shamt) & m
            elif funct3 == 0b110:
                result = (a | operand) & m
            else:
                result = (a & operand) & m

        if result is not None and rd != 0:
            self.regs[rd] = result & m
        self.pc = next_pc
