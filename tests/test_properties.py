"""Property-based tests (hypothesis) on core data structures."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cells import LookupTable
from repro.extract import RCTree
from repro.pnr.routing.grid import RoutingGrid
from repro.pnr.routing.router import GlobalRouter, NetSpec
from repro.tech import Side, make_ffet_node

slow = settings(max_examples=30,
                suppress_health_check=[HealthCheck.function_scoped_fixture])


# ---------------------------------------------------------------------------
# Lookup tables
# ---------------------------------------------------------------------------
@st.composite
def monotone_tables(draw):
    slews = sorted(draw(st.lists(
        st.floats(0.5, 100.0), min_size=2, max_size=5, unique=True)))
    loads = sorted(draw(st.lists(
        st.floats(0.1, 50.0), min_size=2, max_size=5, unique=True)))
    a = draw(st.floats(0.01, 5.0))
    b = draw(st.floats(0.01, 5.0))
    values = [[a * s + b * c for c in loads] for s in slews]
    return LookupTable(np.array(slews), np.array(loads), np.array(values))


class TestLookupTableProperties:
    @slow
    @given(monotone_tables(), st.floats(0.0, 150.0), st.floats(0.0, 80.0))
    def test_within_corner_bounds(self, table, slew, load):
        value = table(slew, load)
        assert table.values.min() - 1e-9 <= value <= table.values.max() + 1e-9

    @slow
    @given(monotone_tables(), st.floats(0.5, 100.0), st.floats(0.1, 50.0),
           st.floats(0.0, 20.0))
    def test_monotone_in_load(self, table, slew, load, delta):
        assert table(slew, load + delta) >= table(slew, load) - 1e-9

    @slow
    @given(monotone_tables())
    def test_exact_at_grid_points(self, table):
        for i, s in enumerate(table.slews_ps):
            for j, c in enumerate(table.loads_ff):
                assert table(float(s), float(c)) == \
                    pytest.approx(table.values[i, j])


# ---------------------------------------------------------------------------
# RC trees
# ---------------------------------------------------------------------------
@st.composite
def random_rc_trees(draw):
    n = draw(st.integers(2, 12))
    tree = RCTree(root=0)
    for node in range(1, n):
        parent = draw(st.integers(0, node - 1))
        res = draw(st.floats(0.01, 5.0))
        cap = draw(st.floats(0.0, 3.0))
        tree.add_edge(parent, node, res)
        tree.add_cap(node, cap)
    return tree


class TestRCTreeProperties:
    @slow
    @given(random_rc_trees())
    def test_delays_non_negative_and_finite(self, tree):
        for node, delay in tree.elmore_ps().items():
            assert 0.0 <= delay < float("inf")

    @slow
    @given(random_rc_trees())
    def test_child_delay_at_least_parent(self, tree):
        delays = tree.elmore_ps()
        parents = tree.spanning_tree()
        for node, (parent, _res) in parents.items():
            assert delays[node] >= delays[parent] - 1e-12

    @slow
    @given(random_rc_trees())
    def test_total_cap_is_sum(self, tree):
        assert tree.total_cap_ff == pytest.approx(sum(tree.cap_ff.values()))

    @slow
    @given(random_rc_trees(), st.floats(1.1, 3.0))
    def test_delay_scales_with_resistance(self, tree, k):
        base = tree.elmore_ps()
        scaled = RCTree(root=tree.root)
        scaled.cap_ff = dict(tree.cap_ff)
        seen = set()
        for a, neighbors in tree.adj.items():
            for b, res in neighbors:
                key = (min(a, b), max(a, b))
                if key in seen:
                    continue
                seen.add(key)
                scaled.add_edge(a, b, res * k)
        for node, delay in scaled.elmore_ps().items():
            assert delay == pytest.approx(base[node] * k, rel=1e-6)


# ---------------------------------------------------------------------------
# Pin redistribution
# ---------------------------------------------------------------------------
class TestRedistributionProperties:
    @slow
    @given(fraction=st.floats(0.0, 1.0), seed=st.integers(0, 10))
    def test_fraction_achieved(self, ffet_lib, fraction, seed):
        from repro.cells import redistribute_input_pins

        lib = redistribute_input_pins(ffet_lib, fraction, seed=seed)
        assert lib.backside_input_fraction() == pytest.approx(
            fraction, abs=0.03)


# ---------------------------------------------------------------------------
# Router connectivity
# ---------------------------------------------------------------------------
@st.composite
def net_specs(draw):
    n_nets = draw(st.integers(1, 12))
    specs = []
    for i in range(n_nets):
        terminals = draw(st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            min_size=1, max_size=5, unique=True))
        specs.append(NetSpec(f"n{i}", Side.FRONT, terminals))
    return specs


def _connected(route):
    if len(route.terminals) < 2:
        return True
    adj = {}
    for a, b in route.edges:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set()).add(a)
    seen = {route.terminals[0]}
    stack = [route.terminals[0]]
    while stack:
        node = stack.pop()
        for nxt in adj.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return all(t in seen for t in route.terminals)


class TestRouterProperties:
    @slow
    @given(net_specs())
    def test_all_nets_connected(self, specs):
        tech = make_ffet_node()
        grid = RoutingGrid(side=Side.FRONT, cols=8, rows=8, gcell_nm=480.0,
                           layers=tech.routing_layers(Side.FRONT))
        grid.cap_h = np.full((8, 7), 6.0)
        grid.cap_v = np.full((7, 8), 6.0)
        result = GlobalRouter(grid).route_all(specs)
        for spec in specs:
            route = result.routes[spec.name]
            assert _connected(route)

    @slow
    @given(net_specs())
    def test_wirelength_at_least_hpwl(self, specs):
        tech = make_ffet_node()
        grid = RoutingGrid(side=Side.FRONT, cols=8, rows=8, gcell_nm=480.0,
                           layers=tech.routing_layers(Side.FRONT))
        grid.cap_h = np.full((8, 7), 50.0)
        grid.cap_v = np.full((7, 8), 50.0)
        result = GlobalRouter(grid).route_all(specs)
        for spec in specs:
            xs = [t[0] for t in spec.terminals]
            ys = [t[1] for t in spec.terminals]
            hpwl = (max(xs) - min(xs)) + (max(ys) - min(ys))
            assert result.routes[spec.name].wirelength_gcells >= hpwl


# ---------------------------------------------------------------------------
# Adder equivalence
# ---------------------------------------------------------------------------
class TestAdderProperties:
    @slow
    @given(x=st.integers(0, 255), y=st.integers(0, 255), carry=st.booleans())
    def test_fast_adder_matches_arithmetic(self, ffet_lib, x, y, carry):
        from repro.synth import NetlistBuilder

        b = NetlistBuilder("t")
        a_in = b.inputs("a", 8)
        c_in = b.inputs("c", 8)
        cin = b.tie(carry)
        s, cout = b.fast_adder(a_in, c_in, cin=cin)
        b.outputs(s, "s")
        b.output(cout, "co")
        b.netlist.bind(ffet_lib)
        inputs = {f"a[{i}]": bool((x >> i) & 1) for i in range(8)}
        inputs |= {f"c[{i}]": bool((y >> i) & 1) for i in range(8)}
        v = b.netlist.simulate(ffet_lib, inputs)
        total = sum(int(v[f"s[{i}]"]) << i for i in range(8))
        total += int(v["co"]) << 8
        assert total == x + y + int(carry)
