"""Numeric-equivalence harness for the dual-implementation kernels.

Every hot kernel ships a python reference and a numpy implementation
(:mod:`repro.core.kernels`); this suite pins their agreement with
property-based tests.

Tolerance policy (also in docs/performance.md): the implementations
are *operation-order compatible* — every floating-point accumulation
happens in the same order in both — so the pinned tolerance is **zero
ULP everywhere**:

* **NLDM interpolation** — :class:`TableStack` vs scalar
  :class:`LookupTable` calls: bit-equal;
* **Elmore delay** — :func:`elmore_forest` vs per-tree
  :meth:`RCTree.elmore_ps`: bit-equal;
* **maze routing** — both modes settle the same shortest-distance
  field (scalar Dijkstra vs min-plus sweeps; unique fixed point under
  strictly positive costs) and share one deterministic backtrack:
  identical fields, identical routes, identical wirelength/overflow;
* **analytic placement** — scatter/gather sweeps accumulate in entry
  order in both modes: identical coordinates.

Any intentional future divergence must loosen the assertion here *and*
document the new tolerance, in the same change.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cells import LookupTable
from repro.extract.rc import RCTree, elmore_forest
from repro.pnr import FloorplanSpec, global_place, plan_floor
from repro.pnr.routing.grid import RoutingGrid
from repro.pnr.routing.router import GlobalRouter, NetSpec
from repro.sta.nldm import TableStack
from repro.tech import Side

slow = settings(max_examples=25,
                suppress_health_check=[HealthCheck.function_scoped_fixture])


@contextmanager
def kernel_mode(mode: str):
    old = os.environ.get("REPRO_KERNEL")
    os.environ["REPRO_KERNEL"] = mode
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = old


# ---------------------------------------------------------------------------
# NLDM lookup-table interpolation
# ---------------------------------------------------------------------------
@st.composite
def lookup_tables(draw):
    slews = sorted(draw(st.lists(
        st.floats(0.5, 100.0), min_size=2, max_size=6, unique=True)))
    loads = sorted(draw(st.lists(
        st.floats(0.1, 50.0), min_size=2, max_size=6, unique=True)))
    values = draw(st.lists(
        st.lists(st.floats(0.01, 500.0),
                 min_size=len(loads), max_size=len(loads)),
        min_size=len(slews), max_size=len(slews)))
    return LookupTable(np.array(slews), np.array(loads), np.array(values))


class TestNldmStackEquivalence:
    @slow
    @given(st.lists(lookup_tables(), min_size=1, max_size=4),
           st.lists(st.tuples(st.floats(0.0, 150.0), st.floats(0.0, 80.0)),
                    min_size=1, max_size=12))
    def test_stack_matches_scalar_bitwise(self, tables, queries):
        stack = TableStack()
        refs = [stack.add(t) for t in tables]
        n = len(queries)
        for t, (gid, row) in zip(tables, refs):
            gids = np.full(n, gid)
            rows = np.full(n, row)
            slews = np.array([q[0] for q in queries])
            loads = np.array([q[1] for q in queries])
            batch = stack.evaluate(gids, rows, slews, loads)
            for k, (slew, load) in enumerate(queries):
                assert batch[k] == t(slew, load)

    def test_add_is_idempotent_and_groups_shared_axes(self):
        axes = (np.array([1.0, 2.0]), np.array([0.5, 1.5]))
        t1 = LookupTable(axes[0], axes[1], np.array([[1.0, 2.0], [3.0, 4.0]]))
        t2 = LookupTable(axes[0], axes[1], np.array([[5.0, 6.0], [7.0, 8.0]]))
        stack = TableStack()
        assert stack.add(t1) == stack.add(t1)
        g1, _ = stack.add(t1)
        g2, _ = stack.add(t2)
        assert g1 == g2 and stack.single_group


# ---------------------------------------------------------------------------
# Elmore delay over RC forests
# ---------------------------------------------------------------------------
@st.composite
def rc_trees(draw):
    n = draw(st.integers(1, 25))
    tree = RCTree(root=0)
    tree.add_cap(0, draw(st.floats(0.0, 5.0)))
    for i in range(1, n):
        parent = draw(st.integers(0, i - 1))
        tree.add_edge(parent, i, draw(st.floats(1e-6, 3.0)))
        tree.add_cap(i, draw(st.floats(0.0, 5.0)))
    if n > 3 and draw(st.booleans()):
        # A loop edge: Elmore must fall back to the BFS spanning tree.
        tree.add_edge(0, n - 1, draw(st.floats(1e-6, 3.0)))
    return tree


class TestElmoreForestEquivalence:
    @slow
    @given(st.lists(rc_trees(), min_size=1, max_size=6))
    def test_forest_matches_scalar_bitwise(self, trees):
        batch = elmore_forest(trees)
        for tree, forest in zip(trees, batch):
            scalar = tree.elmore_ps()
            assert set(scalar) == set(forest)
            for node, delay in scalar.items():
                assert forest[node] == delay

    @slow
    @given(st.lists(rc_trees(), min_size=1, max_size=4))
    def test_wanted_restriction(self, trees):
        wanted = [list(t.cap_ff)[::2] + ["absent"] for t in trees]
        batch = elmore_forest(trees, wanted=wanted)
        for tree, want, taps in zip(trees, wanted, batch):
            scalar = tree.elmore_ps()
            for node in want:
                if node in scalar:
                    assert taps[node] == scalar[node]
                else:
                    assert node not in taps


# ---------------------------------------------------------------------------
# Maze-routing distance fields and routes
# ---------------------------------------------------------------------------
@st.composite
def congested_routers(draw):
    rows = draw(st.integers(3, 14))
    cols = draw(st.integers(3, 14))
    grid = RoutingGrid(side=Side.FRONT, cols=cols, rows=rows,
                       gcell_nm=480.0, layers=[])
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    grid.cap_h = rng.integers(0, 3, size=(rows, cols - 1)).astype(float)
    grid.cap_v = rng.integers(0, 3, size=(rows - 1, cols)).astype(float)
    router = GlobalRouter(grid)
    router.usage_h = rng.integers(0, 4, size=grid.cap_h.shape).astype(float)
    router.usage_v = rng.integers(0, 4, size=grid.cap_v.shape).astype(float)
    router.history_h = rng.random(grid.cap_h.shape) * 2
    router.history_v = rng.random(grid.cap_v.shape) * 2
    n_terms = draw(st.integers(2, 5))
    terminals = set()
    while len(terminals) < n_terms:
        terminals.add((int(rng.integers(0, cols)), int(rng.integers(0, rows))))
    return router, NetSpec("n", Side.FRONT, sorted(terminals))


class TestMazeKernelEquivalence:
    @slow
    @given(congested_routers())
    def test_distance_fields_bitwise_equal(self, case):
        router, spec = case
        cost_h, cost_v = router._cost_fields()
        box = (0, 0, router.grid.cols - 1, router.grid.rows - 1)
        sources = set(spec.terminals[:-1])
        null = type("T", (), {"enabled": False})()
        d_py = router._dist_field_python(sources, box, cost_h, cost_v)
        d_np = router._dist_field_numpy(sources, box, cost_h, cost_v, null)
        assert np.array_equal(d_py, d_np)

    @slow
    @given(congested_routers())
    def test_maze_routes_identical(self, case):
        router, spec = case
        with kernel_mode("python"):
            route_py = router._maze_route(spec)
        with kernel_mode("numpy"):
            route_np = router._maze_route(spec)
        assert route_py.edges == route_np.edges

    @slow
    @given(congested_routers())
    def test_route_all_wirelength_and_overflow_identical(self, case):
        router, spec = case
        # Fresh routers (route_all owns usage/history), same grid.
        results = {}
        for mode in ("python", "numpy"):
            with kernel_mode(mode):
                results[mode] = GlobalRouter(router.grid).route_all([spec])
        py, np_ = results["python"], results["numpy"]
        assert py.total_wirelength_nm == np_.total_wirelength_nm
        assert py.overflow_edges == np_.overflow_edges
        assert py.total_overflow == np_.total_overflow
        assert {n: r.edges for n, r in py.routes.items()} == \
            {n: r.edges for n, r in np_.routes.items()}

    @slow
    @given(congested_routers())
    def test_cost_fields_match_scalar_edge_cost(self, case):
        router, _spec = case
        cost_h, cost_v = router._cost_fields()
        rows, cols = router.grid.rows, router.grid.cols
        for r in range(rows):
            for c in range(cols - 1):
                edge = ((c, r), (c + 1, r))
                assert cost_h[r, c] == router._edge_cost(edge)
        for r in range(rows - 1):
            for c in range(cols):
                edge = ((c, r), (c, r + 1))
                assert cost_v[r, c] == router._edge_cost(edge)


# ---------------------------------------------------------------------------
# Kernel trace counters: deterministic across process-pool fan-out
# ---------------------------------------------------------------------------
class TestKernelCounterJobsParity:
    def test_counters_identical_at_jobs_1_and_4(self, tmp_path):
        """``kernel.*`` counters measure the workload, not the harness:
        fanning the same sweep over a process pool must reproduce the
        serial totals exactly."""
        from repro.core import FlowConfig, SweepRunner

        from .golden_cases import MultiplierFactory

        configs = [FlowConfig(utilization=u) for u in (0.46, 0.51, 0.56)]
        totals = {}
        for jobs in (1, 4):
            runner = SweepRunner(jobs=jobs, trace_dir=tmp_path / str(jobs))
            runner.run_many(MultiplierFactory(5), configs)
            totals[jobs] = {
                name: value
                for name, value in runner.stats.counters.items()
                if name.startswith("kernel.")
            }
        assert totals[1], "no kernel.* counters traced"
        assert totals[1] == totals[4]


# ---------------------------------------------------------------------------
# Analytic placement field/gradient sweeps
# ---------------------------------------------------------------------------
class TestPlacementKernelEquivalence:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_global_place_identical_coordinates(self, ffet_lib, mult4, seed):
        die = plan_floor(mult4, ffet_lib, FloorplanSpec(0.7))
        with kernel_mode("python"):
            p_py = global_place(mult4, ffet_lib, die, seed=seed)
        with kernel_mode("numpy"):
            p_np = global_place(mult4, ffet_lib, die, seed=seed)
        assert set(p_py.locations) == set(p_np.locations)
        for name, point in p_py.locations.items():
            other = p_np.locations[name]
            assert (point.x_nm, point.y_nm) == (other.x_nm, other.y_nm)
