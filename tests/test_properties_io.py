"""Property-based tests for the file-format round-trips."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lefdef import DefComponent, DefDesign, RouteSegment, parse_def, write_def

slow = settings(max_examples=25,
                suppress_health_check=[HealthCheck.function_scoped_fixture])

_LAYERS = ["FM1", "FM2", "FM5", "FM12", "BM1", "BM2", "BM12"]


@st.composite
def def_designs(draw):
    width = draw(st.integers(1000, 50000))
    height = draw(st.integers(1000, 50000))
    design = DefDesign(f"d{draw(st.integers(0, 99))}", float(width),
                       float(height))
    for i in range(draw(st.integers(0, 6))):
        design.components[f"u{i}"] = DefComponent(
            f"u{i}", draw(st.sampled_from(["INVD1", "NAND2D1", "DFFD1"])),
            float(draw(st.integers(0, width))),
            float(draw(st.integers(0, height))),
            fixed=draw(st.booleans()),
        )
    for n in range(draw(st.integers(0, 5))):
        segments = []
        for _ in range(draw(st.integers(1, 4))):
            x1 = draw(st.integers(0, width))
            y1 = draw(st.integers(0, height))
            horizontal = draw(st.booleans())
            if horizontal:
                x2, y2 = draw(st.integers(0, width)), y1
            else:
                x2, y2 = x1, draw(st.integers(0, height))
            segments.append(RouteSegment(
                draw(st.sampled_from(_LAYERS)),
                float(x1), float(y1), float(x2), float(y2)))
        design.nets[f"net{n}"] = segments
    return design


class TestDefRoundTripProperties:
    @slow
    @given(def_designs())
    def test_round_trip_preserves_everything(self, design):
        back = parse_def(write_def(design))
        assert back.name == design.name
        assert back.die_width_nm == design.die_width_nm
        assert set(back.components) == set(design.components)
        for name, comp in design.components.items():
            parsed = back.components[name]
            assert parsed.master == comp.master
            assert parsed.x_nm == comp.x_nm
            assert parsed.y_nm == comp.y_nm
            assert parsed.fixed == comp.fixed
        assert set(back.nets) == set(design.nets)
        for name, segments in design.nets.items():
            assert back.nets[name] == segments

    @slow
    @given(def_designs())
    def test_wirelength_preserved(self, design):
        back = parse_def(write_def(design))
        assert back.total_wirelength_nm == pytest.approx(
            design.total_wirelength_nm)


class TestLibertyTableProperties:
    @slow
    @given(st.integers(0, 10))
    def test_liberty_tables_roundtrip_exactly(self, ffet_lib, seed):
        """Any cell's tables survive the Liberty text round trip."""
        import random

        from repro.cells import parse_liberty, write_liberty

        rng = random.Random(seed)
        parsed = parse_liberty(write_liberty(ffet_lib), ffet_lib)
        name = rng.choice([m.name for m in ffet_lib if m.arcs])
        orig = ffet_lib[name].arcs[0]
        back = parsed[name].arcs[0]
        slew = rng.uniform(2.0, 80.0)
        load = rng.uniform(0.5, 40.0)
        assert back.delay(slew, load, True) == pytest.approx(
            orig.delay(slew, load, True), abs=1e-3)


@st.composite
def spef_cases(draw):
    """A synthetic netlist + extraction pair covering the SPEF subset."""
    from repro.extract import Extraction
    from repro.extract.rc import NetParasitics
    from repro.netlist import Netlist

    netlist = Netlist(f"d{draw(st.integers(0, 99))}")
    extraction = Extraction()
    for i in range(draw(st.integers(1, 6))):
        name = f"n{i}"
        net = netlist.add_net(name)
        if draw(st.booleans()):
            net.driver = (f"u{i}", "ZN")
        else:
            net.is_primary_input = True
        for s in range(draw(st.integers(0, 4))):
            net.sinks.append(
                (f"u{i}x{s}", draw(st.sampled_from(["A1", "A2", "D", "CP"]))))
        # Values with <= 4 decimal places survive the writer's %.6f.
        extraction.nets[name] = NetParasitics(
            net=name,
            wire_cap_ff=draw(st.integers(0, 10**6)) / 1e4,
            wire_res_kohm=draw(st.integers(0, 10**6)) / 1e4,
            pin_cap_ff=draw(st.integers(0, 10**4)) / 1e4,
            sink_elmore_ps={},
            wirelength_nm=0.0,
        )
    return netlist, extraction


class TestSpefRoundTripProperties:
    @slow
    @given(spef_cases())
    def test_round_trip_preserves_every_net(self, case):
        from repro.extract import parse_spef, write_spef

        netlist, extraction = case
        parsed = parse_spef(write_spef(netlist, extraction))
        assert set(parsed) == set(netlist.nets)
        for name, net in netlist.nets.items():
            spef = parsed[name]
            assert spef.driver == net.driver
            assert spef.sinks == net.sinks
            p = extraction[name]
            assert spef.wire_cap_ff == pytest.approx(p.wire_cap_ff,
                                                     abs=1e-6)
            assert spef.wire_res_kohm == pytest.approx(p.wire_res_kohm,
                                                       abs=1e-6)
            assert spef.total_cap_ff == pytest.approx(p.total_cap_ff,
                                                      abs=1e-6)

    @slow
    @given(spef_cases())
    def test_writer_skips_unextracted_nets(self, case):
        from repro.extract import parse_spef, write_spef

        netlist, extraction = case
        dropped = sorted(extraction.nets)[0]
        del extraction.nets[dropped]
        parsed = parse_spef(write_spef(netlist, extraction))
        assert set(parsed) == set(netlist.nets) - {dropped}
