"""End-to-end tests for ``repro serve``: the job server over HTTP.

The two acceptance-bar tests from the service issue live here:

* **cross-job stage dedup** — two clients submit overlapping
  layer-split sweeps against one cold shared cache; every stage key is
  computed exactly once across both jobs (single-flight counters are
  the witness) and every response is byte-identical to a serial run;
* **journal crash-recovery** — a ``repro serve`` subprocess is
  SIGKILLed mid-sweep (deterministically, via a held stage gate lock),
  restarted with ``--resume``, and must replay the settled runs
  bit-for-bit without recomputing them.
"""

from __future__ import annotations

import asyncio
import heapq
import json
import os
import signal
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.core import FlowCache, FlowConfig, stage_keys
from repro.core.cache import netlist_fingerprint
from repro.core.flow import FLOW_STAGES
from repro.core.io import result_to_dict
from repro.core.runner import run_once
from repro.service import ReproClient, ReproServer, Scheduler, ServiceError
from repro.service.journal import JobJournal

from .golden_cases import MultiplierFactory

FACTORY = MultiplierFactory(4)
MULT = {"type": "multiplier", "bits": 4}
BASE_CONFIG = {"arch": "ffet", "backside_pin_fraction": 0.5,
               "utilization": 0.5}
RUN_SPEC = {"kind": "run", "design": MULT, "config": BASE_CONFIG}


def canonical(doc: dict) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def serial_result(config: FlowConfig) -> dict:
    """The ground truth one config must produce, computed in-process."""
    return result_to_dict(run_once(FACTORY, config))


@contextmanager
def serve(tmp_path: Path, workers: int = 2, cache: bool = True,
          journal: bool = True, max_runs: int = 64):
    """A live server on an ephemeral port, on a background loop."""
    flow_cache = FlowCache(tmp_path / "cache") if cache else None
    job_journal = JobJournal(tmp_path / "journal.jsonl") if journal \
        else None
    scheduler = Scheduler(cache=flow_cache, workers=workers,
                          journal=job_journal, max_runs=max_runs)
    server = ReproServer(scheduler, "127.0.0.1", 0)
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    def main() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        ready.set()
        loop.run_until_complete(server.wait_stopped())
        loop.close()

    thread = threading.Thread(target=main, daemon=True)
    thread.start()
    assert ready.wait(timeout=30), "server failed to start"
    try:
        yield ReproClient(f"http://127.0.0.1:{server.port}"), scheduler
    finally:
        if not server._stopped.is_set():
            asyncio.run_coroutine_threadsafe(server.stop(), loop) \
                .result(timeout=30)
        thread.join(timeout=30)


class TestHttpSurface:
    def test_healthz_stats_and_404(self, tmp_path):
        with serve(tmp_path, cache=False, journal=False) as (client, _):
            health = client.healthz()
            assert health["ok"] is True and health["workers"] == 2
            stats = client.stats()
            assert stats["pool"] in ("process", "thread")
            assert client.jobs() == []
            with pytest.raises(ServiceError) as err:
                client.status("j9999")
            assert err.value.status == 404

    def test_bad_specs_are_structured_400s(self, tmp_path):
        with serve(tmp_path, cache=False, journal=False,
                   max_runs=2) as (client, _):
            with pytest.raises(ServiceError) as err:
                client.submit({"kind": "teleport"})
            assert err.value.status == 400
            assert "unknown job kind" in str(err.value)
            with pytest.raises(ServiceError) as err:
                client.submit({"kind": "sweep", "axis": "utilization",
                               "points": [0.5, 0.6, 0.7], "design": MULT,
                               "config": BASE_CONFIG})
            assert "per-job quota" in str(err.value)
            with pytest.raises(ServiceError) as err:
                client._request("POST", "/jobs")
            assert err.value.status == 400

    def test_run_job_executes_then_caches(self, tmp_path):
        with serve(tmp_path) as (client, scheduler):
            first = client.wait(client.submit(RUN_SPEC)["id"],
                                timeout_s=120)
            assert first["state"] == "completed"
            [run] = first["runs"]
            assert run["via"] == "executed" and run["ok"]
            assert canonical(run["result"]) == \
                canonical(serial_result(FlowConfig(**BASE_CONFIG)))

            second = client.wait(client.submit(RUN_SPEC)["id"],
                                 timeout_s=60)
            assert second["runs"][0]["via"] == "cache"
            assert canonical(second["runs"][0]["result"]) == \
                canonical(run["result"])
            counters = client.stats()["counters"]
            assert counters["service.runs.executed"] == 1
            assert counters["service.runs.cache"] == 1

    def test_events_stream_sees_intermediate_snapshots(self, tmp_path):
        with serve(tmp_path, workers=1) as (client, _):
            spec = {"kind": "sweep", "axis": "layers",
                    "splits": ["9:3", "8:4"], "design": MULT,
                    "config": BASE_CONFIG}
            job_id = client.submit(spec)["id"]
            final = client._stream_until_terminal(job_id, timeout_s=120)
            assert final["state"] == "completed"
            assert final["done"] == 2


class TestCrossJobDedup:
    def test_overlapping_sweeps_compute_each_stage_once(self, tmp_path):
        """Satellite #3: the acceptance-bar dedup test.

        Two clients submit overlapping layer-split sweeps into one cold
        shared cache.  The sum of ``stage_cache.miss.<stage>`` over
        both jobs must equal the number of *unique* stage keys — every
        stage computed exactly once, cross-job — and each settled run
        must be byte-identical to an in-process serial run.
        """
        splits_a = ["9:3", "8:4", "7:5"]
        splits_b = ["8:4", "7:5", "6:6"]

        def sweep(splits):
            return {"kind": "sweep", "axis": "layers", "splits": splits,
                    "design": MULT, "config": BASE_CONFIG}

        with serve(tmp_path, workers=2) as (client, scheduler):
            ids: list[str | None] = [None, None]

            def submit(slot, splits):
                ids[slot] = client.submit(sweep(splits))["id"]

            threads = [threading.Thread(target=submit, args=(0, splits_a)),
                       threading.Thread(target=submit, args=(1, splits_b))]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            finals = [client.wait(jid, timeout_s=300) for jid in ids]
            assert all(f["state"] == "completed" for f in finals)

            # Byte-identical to serial ground truth, per run.
            def split_config(split):
                front, back = split.split(":")
                return FlowConfig(**BASE_CONFIG,
                                  front_layers=int(front),
                                  back_layers=int(back))

            for final, splits in zip(finals, (splits_a, splits_b)):
                for run, split in zip(final["runs"], splits):
                    assert run["ok"], run
                    assert canonical(run["result"]) == \
                        canonical(serial_result(split_config(split)))

            # The two shared splits are executed once and deduped (or
            # cache-served, if the jobs raced past each other) for the
            # other job; the four unique configs execute exactly once.
            counters = scheduler.counters
            assert counters["service.runs.executed"] == 4
            assert counters.get("service.runs.dedup", 0) \
                + counters.get("service.runs.cache", 0) == 2

            # Exactly-once per stage key, across jobs and workers: the
            # miss counter tallies actual computations (single-flight
            # waiters and replays count as hits).
            fingerprint = netlist_fingerprint(FACTORY())
            expected: dict[str, set] = {stage: set()
                                        for stage in FLOW_STAGES}
            for split in set(splits_a) | set(splits_b):
                for stage, key in stage_keys(split_config(split),
                                             fingerprint).items():
                    expected[stage].add(key)
            for stage in FLOW_STAGES:
                assert counters.get(f"stage_cache.miss.{stage}", 0) \
                    == len(expected[stage]), stage
            # The layer split first enters the key chain at routing, so
            # the placement prefix really was shared (1 key) while the
            # routing tail was per-config (4 keys).
            assert len(expected["placement"]) == 1
            assert len(expected["routing"]) == 4


class TestSchedulerSemantics:
    def test_priority_orders_the_heap(self, tmp_path):
        async def scenario():
            scheduler = Scheduler(cache=None, workers=1, journal=None)
            await scheduler.start()
            scheduler._idle = 0  # freeze dispatch: items stay queued
            low = scheduler.submit(dict(RUN_SPEC, priority=0))
            high = scheduler.submit(dict(RUN_SPEC, priority=5))
            mid = scheduler.submit(dict(RUN_SPEC, priority=3))
            order = []
            while scheduler._heap:
                *_ignored, job_id = heapq.heappop(scheduler._heap)
                order.append(job_id)
            scheduler._idle = 1
            await scheduler.stop()
            return order, [high.id, mid.id, low.id]

        order, expected = asyncio.run(scenario())
        assert order == expected

    def test_cancel_skips_unstarted_items(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_TIMEOUT", "60")
        cache_dir = tmp_path / "cache"
        spec = {"kind": "sweep", "axis": "layers",
                "splits": ["9:3", "8:4", "7:5", "6:6"],
                "design": MULT, "config": BASE_CONFIG}
        # Hold the library gate so the first worker blocks immediately
        # and the cancel deterministically lands mid-job.
        gate_key = stage_keys(
            FlowConfig(**BASE_CONFIG, front_layers=9, back_layers=3),
            netlist_fingerprint(FACTORY()))["library"]
        gate = FlowCache(cache_dir).locks.lock(gate_key)
        assert gate.try_acquire()
        try:
            with serve(tmp_path, workers=1,
                       journal=False) as (client, scheduler):
                job_id = client.submit(spec)["id"]
                deadline = time.time() + 30
                while not scheduler._inflight and time.time() < deadline:
                    time.sleep(0.02)
                assert client.cancel(job_id)["state"] == "cancelled"
                gate.release()
                deadline = time.time() + 60
                while (scheduler._idle < scheduler.workers
                       or scheduler._heap) and time.time() < deadline:
                    time.sleep(0.05)
                final = client.status(job_id)
                assert final["state"] == "cancelled"
                # The blocked item may have settled; the rest must not.
                assert final["done"] <= 1
        finally:
            gate.release()


class TestCrashRecovery:
    def test_sigkill_resume_replays_settled_runs(self, tmp_path):
        """Satellite #4: the acceptance-bar crash-recovery test.

        ``repro serve`` is killed (SIGKILL, whole process group)
        mid-sweep with two runs settled and one worker blocked on a
        held stage gate.  The restarted server must resume the job,
        replay the two settled runs from the journal without
        recomputing them, finish the rest, and produce a final job
        JSON identical to an uninterrupted run.
        """
        cache_dir = tmp_path / "cache"
        journal = tmp_path / "journal.jsonl"
        splits = ["9:3", "8:4", "7:5", "6:6", "10:2", "11:1"]
        spec = {"kind": "sweep", "axis": "layers", "splits": splits,
                "design": MULT, "config": BASE_CONFIG}

        def start_server():
            port_file = tmp_path / f"port-{time.time_ns()}"
            env = dict(os.environ,
                       PYTHONPATH=str(Path(__file__).resolve()
                                      .parents[1] / "src"),
                       REPRO_CACHE_DIR=str(cache_dir),
                       REPRO_LOCK_TIMEOUT="120")
            process = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve", "--port", "0",
                 "--port-file", str(port_file), "--workers", "1",
                 "--journal", str(journal)],
                env=env, cwd=str(tmp_path), start_new_session=True,
                stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT)
            deadline = time.time() + 60
            while time.time() < deadline:
                if port_file.exists() and port_file.read_text().strip():
                    break
                assert process.poll() is None, "server died on startup"
                time.sleep(0.05)
            port = int(port_file.read_text().strip())
            return process, ReproClient(f"http://127.0.0.1:{port}")

        # Gate the third split's routing stage: items 0 and 1 settle,
        # item 2 blocks inside its worker, deterministically mid-sweep.
        fingerprint = netlist_fingerprint(FACTORY())
        gate_key = stage_keys(
            FlowConfig(**BASE_CONFIG, front_layers=7, back_layers=5),
            fingerprint)["routing"]
        gate = FlowCache(cache_dir).locks.lock(gate_key)
        assert gate.try_acquire()

        process, client = start_server()
        try:
            job_id = client.submit(spec)["id"]
            deadline = time.time() + 120
            while time.time() < deadline:
                if client.status(job_id)["done"] >= 2:
                    break
                time.sleep(0.05)
            before = client.status(job_id)
            assert before["done"] == 2, before
            os.killpg(process.pid, signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            gate.release()
            if process.poll() is None:
                os.killpg(process.pid, signal.SIGKILL)

        process, client = start_server()
        try:
            jobs = client.jobs()
            assert [job["id"] for job in jobs] == [job_id]
            final = client.wait(job_id, timeout_s=300)
            assert final["state"] == "completed"
            assert final["done"] == len(splits)

            # The two pre-kill runs were replayed, not recomputed: the
            # journaled records survive bit-for-bit (same via, same
            # wall time) and the resumed counter says so.
            for index in (0, 1):
                assert final["runs"][index] == before["runs"][index]
            counters = client.stats()["counters"]
            assert counters["service.runs.resumed"] == 2
            assert counters.get("service.runs.executed", 0) \
                + counters.get("service.runs.cache", 0) \
                == len(splits) - 2

            # And the whole job matches an uninterrupted serial run.
            for run, split in zip(final["runs"], splits):
                front, back = split.split(":")
                truth = serial_result(FlowConfig(
                    **BASE_CONFIG, front_layers=int(front),
                    back_layers=int(back)))
                assert canonical(run["result"]) == canonical(truth)

            # The shared cache survived the kill intact.
            report = FlowCache(cache_dir).fsck()
            assert report["clean"], report["defects"]
            client.shutdown()
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                os.killpg(process.pid, signal.SIGKILL)
