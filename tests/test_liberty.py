"""Liberty writer/parser round-trip tests."""

import pytest

from repro.cells import parse_liberty, write_liberty
from repro.tech import Side


@pytest.fixture(scope="module")
def roundtrip(ffet_lib):
    text = write_liberty(ffet_lib)
    return text, parse_liberty(text, ffet_lib)


class TestWriter:
    def test_header(self, roundtrip):
        text, _ = roundtrip
        assert text.startswith("library (")
        assert 'time_unit : "1ps";' in text
        assert "lu_table_template" in text

    def test_all_cells_emitted(self, ffet_lib, roundtrip):
        text, _ = roundtrip
        for master in ffet_lib:
            assert f"cell ({master.name})" in text

    def test_ff_group_for_sequentials(self, roundtrip):
        text, _ = roundtrip
        assert "ff (IQ, IQN)" in text
        assert "setup_rising" in text

    def test_wafer_side_extension(self, roundtrip):
        text, _ = roundtrip
        assert 'wafer_side : "back+front";' in text  # dual-sided outputs


class TestRoundTrip:
    def test_cells_preserved(self, ffet_lib, roundtrip):
        _, parsed = roundtrip
        assert set(parsed.masters) == set(ffet_lib.masters)

    def test_delays_match(self, ffet_lib, roundtrip):
        _, parsed = roundtrip
        for name in ("INVD1", "NAND2D1", "BUFD4", "XOR2D1"):
            orig = ffet_lib[name].arcs[0]
            back = parsed[name].arcs[0]
            for slew, load in ((5.0, 2.0), (20.0, 10.0)):
                assert back.delay(slew, load, True) == pytest.approx(
                    orig.delay(slew, load, True), abs=1e-3)
                assert back.transition(slew, load, False) == pytest.approx(
                    orig.transition(slew, load, False), abs=1e-3)

    def test_unateness_preserved(self, ffet_lib, roundtrip):
        _, parsed = roundtrip
        assert parsed["INVD1"].arcs[0].unate == "-"
        assert parsed["BUFD1"].arcs[0].unate == "+"
        assert parsed["XOR2D1"].arcs[0].unate == "x"

    def test_pin_caps_match(self, ffet_lib, roundtrip):
        _, parsed = roundtrip
        for name in ("INVD4", "DFFD1"):
            for pin in ffet_lib[name].input_pins:
                assert parsed[name].pin(pin.name).cap_ff == pytest.approx(
                    pin.cap_ff, abs=1e-4)

    def test_pin_sides_preserved(self, ffet_lib, roundtrip):
        _, parsed = roundtrip
        assert parsed["INVD1"].output.is_dual_sided
        assert parsed["INVD1"].pin("A").sides == frozenset({Side.FRONT})

    def test_sequential_constraints(self, ffet_lib, roundtrip):
        _, parsed = roundtrip
        orig = ffet_lib["DFFD1"].sequential
        back = parsed["DFFD1"].sequential
        assert back.setup_ps == pytest.approx(orig.setup_ps, abs=1e-3)
        assert back.hold_ps == pytest.approx(orig.hold_ps, abs=1e-3)

    def test_leakage_preserved(self, ffet_lib, roundtrip):
        _, parsed = roundtrip
        assert parsed["INVD2"].power.leakage_nw == pytest.approx(
            ffet_lib["INVD2"].power.leakage_nw, abs=1e-3)

    def test_redistributed_sides_roundtrip(self, ffet_lib):
        from repro.cells import redistribute_input_pins

        lib = redistribute_input_pins(ffet_lib, 1.0)
        parsed = parse_liberty(write_liberty(lib), lib)
        assert parsed["NAND2D1"].pin("A").sides == frozenset({Side.BACK})
