"""Floorplan stage tests."""

import pytest

from repro.pnr import FloorplanSpec, achieved_utilization, plan_floor


class TestFloorplanSpec:
    def test_defaults(self):
        spec = FloorplanSpec()
        assert spec.utilization == 0.70

    def test_bad_utilization(self):
        with pytest.raises(ValueError):
            FloorplanSpec(utilization=0.0)
        with pytest.raises(ValueError):
            FloorplanSpec(utilization=1.2)

    def test_bad_aspect_ratio(self):
        with pytest.raises(ValueError):
            FloorplanSpec(aspect_ratio=-1.0)


class TestPlanFloor:
    def test_achieved_at_or_below_target(self, ffet_lib, counter8):
        for target in (0.5, 0.7, 0.85):
            die = plan_floor(counter8, ffet_lib,
                             FloorplanSpec(utilization=target))
            achieved = achieved_utilization(counter8, ffet_lib, die)
            assert achieved <= target + 1e-9
            assert achieved > target * 0.75  # not grossly oversized

    def test_higher_target_smaller_die(self, ffet_lib, counter8):
        loose = plan_floor(counter8, ffet_lib, FloorplanSpec(0.5))
        tight = plan_floor(counter8, ffet_lib, FloorplanSpec(0.8))
        assert tight.area_nm2 < loose.area_nm2

    def test_aspect_ratio_respected(self, ffet_lib, mult4):
        tall = plan_floor(mult4, ffet_lib,
                          FloorplanSpec(utilization=0.6, aspect_ratio=2.0))
        wide = plan_floor(mult4, ffet_lib,
                          FloorplanSpec(utilization=0.6, aspect_ratio=0.5))
        assert tall.height_nm / tall.width_nm > 1.4
        assert wide.height_nm / wide.width_nm < 0.7

    def test_die_snapped_to_rows_and_sites(self, ffet_lib, counter8):
        die = plan_floor(counter8, ffet_lib, FloorplanSpec(0.7))
        assert die.height_nm == die.rows * ffet_lib.tech.cell_height_nm
        assert die.width_nm == die.sites_per_row * ffet_lib.tech.cpp_nm

    def test_cfet_die_larger_for_same_netlist(self, ffet_lib, cfet_lib):
        from repro.synth import generate_counter

        nl_f = generate_counter(8)
        nl_f.bind(ffet_lib)
        nl_c = generate_counter(8)
        nl_c.bind(cfet_lib)
        die_f = plan_floor(nl_f, ffet_lib, FloorplanSpec(0.7))
        die_c = plan_floor(nl_c, cfet_lib, FloorplanSpec(0.7))
        assert die_c.area_nm2 > die_f.area_nm2


class TestDie:
    def test_row_site_lookup(self, ffet_lib, counter8):
        die = plan_floor(counter8, ffet_lib, FloorplanSpec(0.7))
        assert die.row_of(-5.0) == 0
        assert die.row_of(die.height_nm + 100) == die.rows - 1
        assert die.site_of(0.0) == 0

    def test_bounds(self, ffet_lib, counter8):
        die = plan_floor(counter8, ffet_lib, FloorplanSpec(0.7))
        rect = die.bounds()
        assert rect.area_nm2 == pytest.approx(die.area_nm2)
