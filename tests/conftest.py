"""Shared fixtures: characterized libraries and small designs."""

from __future__ import annotations

import pytest

from repro import build_library, make_cfet_node, make_ffet_node
from repro.cells import Library
from repro.synth import RiscvConfig, generate_counter, generate_multiplier, generate_riscv_core


@pytest.fixture(scope="session")
def ffet_lib() -> Library:
    return build_library(make_ffet_node())


@pytest.fixture(scope="session")
def cfet_lib() -> Library:
    return build_library(make_cfet_node())


@pytest.fixture(scope="session")
def ffet_fm12_lib() -> Library:
    """FFET with frontside-only signal routing (FM12)."""
    return build_library(make_ffet_node(12, 0))


@pytest.fixture()
def counter8(ffet_lib):
    netlist = generate_counter(8)
    netlist.bind(ffet_lib)
    return netlist


@pytest.fixture()
def mult4(ffet_lib):
    netlist = generate_multiplier(4)
    netlist.bind(ffet_lib)
    return netlist


@pytest.fixture()
def rv_tiny(ffet_lib):
    """A scaled-down RISC-V core that keeps tests fast."""
    netlist = generate_riscv_core(RiscvConfig(xlen=8, nregs=8, name="rv_tiny"))
    netlist.bind(ffet_lib)
    return netlist
