"""`FlowCache.fsck` / `repro cache fsck`: audit, repair, exit codes."""

from __future__ import annotations

import json
import multiprocessing
import shutil

from repro.cli import main
from repro.core import FlowCache
from repro.core.faults import FAULTS_ENV
from repro.core.ppa import FailedRun

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


def _dead_pid() -> int:
    proc = multiprocessing.Process(target=lambda: None)
    proc.start()
    pid = proc.pid
    proc.join()
    return pid


def _seed(cache: FlowCache, key: str = KEY) -> None:
    cache.put(key, FailedRun(label="x", target_utilization=0.9, reason="tap"))


def _kinds(report: dict) -> list[str]:
    return sorted(d["kind"] for d in report["defects"])


class TestFsck:
    def test_clean_store(self, tmp_path):
        cache = FlowCache(tmp_path)
        _seed(cache)
        cache.put_blob(KEY, "stage-routing", {"stage": "routing",
                                              "artifact": {"x": 1}})
        report = cache.fsck()
        assert report["clean"]
        assert report["entries"] == 1
        assert report["blobs"] == 1
        assert report["defects"] == []

    def test_corrupt_entry_detected(self, tmp_path):
        cache = FlowCache(tmp_path)
        _seed(cache)
        path = cache._path(KEY)
        payload = json.loads(path.read_text())
        payload["data"]["reason"] = "edited"
        path.write_text(json.dumps(payload))
        report = cache.fsck()
        assert _kinds(report) == ["corrupt_entry"]
        assert not report["clean"]
        assert path.exists()  # plain fsck never mutates

    def test_truncated_blob_detected(self, tmp_path):
        cache = FlowCache(tmp_path)
        cache.put_blob(KEY, "stage-sta", {"stage": "sta", "artifact": {}})
        blob = cache._blob_path(KEY, "stage-sta")
        blob.write_bytes(blob.read_bytes()[:10])  # torn write
        report = cache.fsck()
        assert _kinds(report) == ["corrupt_blob"]

    def test_orphan_entry_detected(self, tmp_path):
        # An entry copied to a filename that is not its own key can
        # never be served (content-addressing broken): an orphan.
        cache = FlowCache(tmp_path)
        _seed(cache)
        stray = cache._path(OTHER)
        stray.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(cache._path(KEY), stray)
        report = cache.fsck()
        assert _kinds(report) == ["orphan"]

    def test_stale_tmp_detected(self, tmp_path):
        cache = FlowCache(tmp_path)
        _seed(cache)
        stray = tmp_path / "ab" / f"x.json.tmp.{_dead_pid()}.0"
        stray.write_text("{half")
        report = cache.fsck()
        assert _kinds(report) == ["stale_tmp"]

    def test_live_tmp_is_not_a_defect(self, tmp_path):
        import os
        cache = FlowCache(tmp_path)
        _seed(cache)
        (tmp_path / "ab" / f"x.json.tmp.{os.getpid()}.0").write_text("{")
        assert cache.fsck()["clean"]

    def test_stale_lock_detected(self, tmp_path):
        import socket
        import time
        cache = FlowCache(tmp_path)
        _seed(cache)
        lock_dir = tmp_path / "locks"
        lock_dir.mkdir()
        (lock_dir / f"{KEY}.lock").write_text(json.dumps({
            "pid": _dead_pid(), "host": socket.gethostname(),
            "created": time.time()}))
        report = cache.fsck()
        assert _kinds(report) == ["stale_lock"]

    def test_live_lock_is_counted_not_flagged(self, tmp_path):
        cache = FlowCache(tmp_path)
        _seed(cache)
        lock = cache.locks.lock(KEY)
        assert lock.try_acquire()
        report = cache.fsck()
        assert report["clean"]
        assert report["live_locks"] == 1
        lock.release()

    def test_repair_removes_defects(self, tmp_path):
        cache = FlowCache(tmp_path)
        _seed(cache)
        bad = cache._path(KEY)
        bad.write_text("bit rot")
        report = cache.fsck(repair=True)
        assert report["repaired"] == 1
        assert not bad.exists()
        assert cache.fsck()["clean"]


class TestFsckCli:
    def test_clean_exits_zero(self, tmp_path):
        cache = FlowCache(tmp_path)
        _seed(cache)
        assert main(["cache", "fsck", "--cache-dir", str(tmp_path)]) == 0

    def test_defect_exits_nonzero_then_repair(self, tmp_path, capsys):
        cache = FlowCache(tmp_path)
        _seed(cache)
        cache._path(KEY).write_text("bit rot")
        assert main(["cache", "fsck", "--cache-dir", str(tmp_path)]) == 1
        assert "corrupt_entry" in capsys.readouterr().out
        assert main(["cache", "fsck", "--repair",
                     "--cache-dir", str(tmp_path)]) == 0
        assert main(["cache", "fsck", "--cache-dir", str(tmp_path)]) == 0

    def test_json_report_schema(self, tmp_path, capsys):
        cache = FlowCache(tmp_path)
        _seed(cache)
        cache._path(KEY).write_text("bit rot")
        assert main(["cache", "fsck", "--json",
                     "--cache-dir", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"directory", "entries", "blobs",
                                "live_locks", "defects", "repaired", "clean"}
        assert payload["defects"][0]["kind"] == "corrupt_entry"

    def test_missing_directory_is_clean(self, tmp_path):
        assert main(["cache", "fsck",
                     "--cache-dir", str(tmp_path / "nope")]) == 0


class TestCacheFaultPoints:
    """Injected store faults leave exactly the damage fsck must find."""

    def test_torn_write_fault_detected_and_survived(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "cache.put:corrupt")
        cache = FlowCache(tmp_path)
        _seed(cache)  # lands truncated at the final path
        assert not cache.fsck()["clean"]
        # A reader survives: the torn entry reads as corrupt-then-miss.
        assert cache.get(KEY) is None
        assert cache.corrupt == 1
        monkeypatch.delenv(FAULTS_ENV)
        _seed(cache)  # healthy rewrite
        assert isinstance(cache.get(KEY), FailedRun)
        assert cache.fsck()["clean"]

    def test_torn_blob_fault_detected_and_survived(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "cache.put_blob:corrupt")
        cache = FlowCache(tmp_path)
        cache.put_blob(KEY, "stage-sta", {"stage": "sta", "artifact": {}})
        assert [d["kind"] for d in cache.fsck()["defects"]] == ["corrupt_blob"]
        assert cache.get_blob(KEY, "stage-sta") is None  # deleted on read
        assert cache.fsck()["clean"]

    def test_cache_faults_do_not_disable_the_store(self, tmp_path,
                                                   monkeypatch):
        from repro.core import faults as faults_mod
        monkeypatch.setenv(FAULTS_ENV, "cache.put:corrupt,lock.acquire:die")
        assert not faults_mod.faults_active()
        monkeypatch.setenv(FAULTS_ENV, "placement:raise,cache.put:corrupt")
        assert faults_mod.faults_active()  # the flow clause still counts
