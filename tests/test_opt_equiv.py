"""Optimization passes, equivalence checking and path reporting."""

import pytest

from repro.netlist import Netlist, check_equivalence, parse_verilog, write_verilog
from repro.synth import (
    collapse_inverter_pairs,
    generate_multiplier,
    optimize,
    propagate_constants,
    sweep_dead_gates,
)


def snapshot(netlist, library):
    copy = parse_verilog(write_verilog(netlist))
    copy.bind(library)
    return copy


class TestConstantPropagation:
    def test_and_with_tielo_becomes_constant(self, ffet_lib):
        nl = Netlist("t")
        nl.add_net("a", primary_input=True)
        nl.add_net("z", primary_output=True)
        nl.add_instance("tie", "TIELO", {"Z": "zero"})
        nl.add_instance("g", "AND2D1", {"A": "a", "B": "zero", "Z": "z"})
        nl.bind(ffet_lib)
        changed = propagate_constants(nl, ffet_lib)
        assert changed == 1
        driver = nl.nets["z"].driver
        assert nl.instances[driver[0]].master == "TIELO"

    def test_and_with_tiehi_becomes_wire(self, ffet_lib):
        nl = Netlist("t")
        nl.add_net("a", primary_input=True)
        nl.add_net("z", primary_output=True)
        nl.add_instance("tie", "TIEHI", {"Z": "one"})
        nl.add_instance("g", "AND2D1", {"A": "a", "B": "one", "Z": "z"})
        nl.bind(ffet_lib)
        propagate_constants(nl, ffet_lib)
        driver = nl.nets["z"].driver
        assert nl.instances[driver[0]].master == "BUFD1"

    def test_nand_with_tielo_is_constant_one(self, ffet_lib):
        nl = Netlist("t")
        nl.add_net("a", primary_input=True)
        nl.add_net("z", primary_output=True)
        nl.add_instance("tie", "TIELO", {"Z": "zero"})
        nl.add_instance("g", "NAND2D1", {"A": "a", "B": "zero", "ZN": "z"})
        nl.bind(ffet_lib)
        propagate_constants(nl, ffet_lib)
        driver = nl.nets["z"].driver
        assert nl.instances[driver[0]].master == "TIEHI"

    def test_xor_with_tiehi_becomes_inverter(self, ffet_lib):
        nl = Netlist("t")
        nl.add_net("a", primary_input=True)
        nl.add_net("z", primary_output=True)
        nl.add_instance("tie", "TIEHI", {"Z": "one"})
        nl.add_instance("g", "XOR2D1", {"A": "a", "B": "one", "Z": "z"})
        nl.bind(ffet_lib)
        propagate_constants(nl, ffet_lib)
        driver = nl.nets["z"].driver
        assert nl.instances[driver[0]].master == "INVD1"


class TestInverterCollapse:
    def test_pair_collapses(self, ffet_lib):
        nl = Netlist("t")
        nl.add_net("a", primary_input=True)
        nl.add_net("z", primary_output=True)
        nl.add_instance("i1", "INVD1", {"A": "a", "ZN": "n1"})
        nl.add_instance("i2", "INVD1", {"A": "n1", "ZN": "n2"})
        nl.add_instance("g", "BUFD1", {"A": "n2", "Z": "z"})
        nl.bind(ffet_lib)
        changed = collapse_inverter_pairs(nl, ffet_lib)
        assert changed == 1
        assert nl.instances["g"].connections["A"] == "a"

    def test_single_inverter_kept(self, ffet_lib):
        nl = Netlist("t")
        nl.add_net("a", primary_input=True)
        nl.add_net("z", primary_output=True)
        nl.add_instance("i1", "INVD1", {"A": "a", "ZN": "z"})
        nl.bind(ffet_lib)
        assert collapse_inverter_pairs(nl, ffet_lib) == 0


class TestDeadSweep:
    def test_unobserved_gate_removed(self, ffet_lib):
        nl = Netlist("t")
        nl.add_net("a", primary_input=True)
        nl.add_net("z", primary_output=True)
        nl.add_instance("keep", "BUFD1", {"A": "a", "Z": "z"})
        nl.add_instance("dead", "INVD1", {"A": "a", "ZN": "unused"})
        nl.bind(ffet_lib)
        assert sweep_dead_gates(nl, ffet_lib) == 1
        assert "dead" not in nl.instances

    def test_chain_of_dead_gates_removed(self, ffet_lib):
        nl = Netlist("t")
        nl.add_net("a", primary_input=True)
        nl.add_net("z", primary_output=True)
        nl.add_instance("keep", "BUFD1", {"A": "a", "Z": "z"})
        nl.add_instance("d1", "INVD1", {"A": "a", "ZN": "m"})
        nl.add_instance("d2", "INVD1", {"A": "m", "ZN": "unused"})
        nl.bind(ffet_lib)
        assert sweep_dead_gates(nl, ffet_lib) == 2


class TestOptimizeEndToEnd:
    def test_multiplier_function_preserved(self, ffet_lib):
        nl = generate_multiplier(4, registered=False)
        nl.bind(ffet_lib)
        reference = snapshot(nl, ffet_lib)
        report = optimize(nl, ffet_lib)
        assert report.total > 0
        result = check_equivalence(nl, reference, ffet_lib, vectors=48)
        assert result.equivalent, result.mismatches

    def test_counter_function_preserved(self, ffet_lib, counter8):
        reference = snapshot(counter8, ffet_lib)
        optimize(counter8, ffet_lib)
        result = check_equivalence(counter8, reference, ffet_lib, vectors=32)
        assert result.equivalent, result.mismatches


class TestEquivalenceChecker:
    def test_detects_difference(self, ffet_lib):
        a = Netlist("a")
        a.add_net("x", primary_input=True)
        a.add_net("z", primary_output=True)
        a.add_instance("g", "BUFD1", {"A": "x", "Z": "z"})
        a.bind(ffet_lib)
        b = Netlist("b")
        b.add_net("x", primary_input=True)
        b.add_net("z", primary_output=True)
        b.add_instance("g", "INVD1", {"A": "x", "ZN": "z"})
        b.bind(ffet_lib)
        result = check_equivalence(a, b, ffet_lib, vectors=8)
        assert not result.equivalent
        assert "output z" in result.mismatches

    def test_identical_netlists_equivalent(self, ffet_lib, mult4):
        clone = snapshot(mult4, ffet_lib)
        result = check_equivalence(mult4, clone, ffet_lib, vectors=16)
        assert result.equivalent


class TestPathReport:
    def test_path_stages_sum_close_to_arrival(self, ffet_lib, mult4):
        from repro.extract import estimate_parasitics
        from repro.sta import format_path, report_critical_path

        extraction = estimate_parasitics(mult4, ffet_lib)
        path = report_critical_path(mult4, ffet_lib, extraction, 1000.0)
        assert path.stages
        total = path.cell_delay_ps + path.wire_delay_ps
        # Worst-edge re-derivation approximates the edge-aware arrival.
        assert total == pytest.approx(path.arrival_ps, rel=0.5)
        text = format_path(path)
        assert "endpoint" in text and "total" in text
