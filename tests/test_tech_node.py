"""Tech-node factories and routing-layer configuration."""

import pytest

from repro.tech import Side, make_cfet_node, make_ffet_node


class TestCellGeometry:
    def test_ffet_height(self):
        assert make_ffet_node().cell_height_nm == pytest.approx(105.0)

    def test_cfet_height(self):
        assert make_cfet_node().cell_height_nm == pytest.approx(120.0)

    def test_height_ratio_is_fig1_scaling(self):
        # 3.5T / 4T = 12.5 % cell-height scaling (Fig. 1 / Fig. 4).
        ratio = make_ffet_node().cell_height_nm / make_cfet_node().cell_height_nm
        assert ratio == pytest.approx(0.875)

    def test_site_area(self):
        node = make_ffet_node()
        assert node.site_area_nm2 == pytest.approx(50.0 * 105.0)


class TestRoutingConfig:
    def test_default_ffet_dual_sided(self):
        node = make_ffet_node()
        assert node.routing_layer_count == (12, 12)
        assert node.uses_backside_signals

    def test_ffet_frontside_only(self):
        node = make_ffet_node(12, 0)
        assert node.routing_layer_count == (12, 0)
        assert not node.uses_backside_signals
        assert node.routing_layers(Side.BACK) == []

    def test_cfet_never_backside(self):
        node = make_cfet_node()
        assert node.routing_layer_count == (12, 0)
        with pytest.raises(ValueError):
            node.with_routing_layers(12, 2)

    def test_with_routing_layers(self):
        node = make_ffet_node().with_routing_layers(6, 6)
        assert node.routing_layer_count == (6, 6)
        assert node.routing_label == "FM6BM6"

    def test_label_single_sided(self):
        assert make_ffet_node(12, 0).routing_label == "FM12"

    def test_too_many_layers_rejected(self):
        with pytest.raises(ValueError):
            make_ffet_node(13, 0)
        with pytest.raises(ValueError):
            make_ffet_node(12, 13)

    def test_zero_front_rejected(self):
        with pytest.raises(ValueError):
            make_ffet_node().with_routing_layers(0, 4)


class TestDeviceParams:
    def test_same_intrinsic_transistor(self):
        # Section IV: same two-fin device, so identical drive/cap/leakage.
        ffet, cfet = make_ffet_node().device, make_cfet_node().device
        assert ffet.drive_resistance_kohm == cfet.drive_resistance_kohm
        assert ffet.gate_cap_ff == cfet.gate_cap_ff
        assert ffet.leakage_nw == cfet.leakage_nw

    def test_ffet_smaller_intra_parasitics(self):
        ffet, cfet = make_ffet_node().device, make_cfet_node().device
        assert ffet.intra_cap_factor < cfet.intra_cap_factor
        assert ffet.intra_res_factor < cfet.intra_res_factor

    def test_split_gate_only_ffet(self):
        assert make_ffet_node().has_split_gate
        assert not make_cfet_node().has_split_gate

    def test_dual_sided_pins_only_ffet(self):
        assert make_ffet_node().dual_sided_pins
        assert not make_cfet_node().dual_sided_pins
