"""RC tree and extraction tests."""

import pytest

from repro.extract import RCTree, estimate_parasitics, extract_net
from repro.lefdef import RouteSegment
from repro.tech import build_stackup


class TestRCTree:
    def test_single_resistor(self):
        tree = RCTree(root="r")
        tree.add_edge("r", "a", res_kohm=2.0)
        tree.add_cap("a", 3.0)
        assert tree.elmore_ps()["a"] == pytest.approx(6.0)

    def test_series_chain(self):
        tree = RCTree(root="r")
        tree.add_edge("r", "a", 1.0)
        tree.add_edge("a", "b", 1.0)
        tree.add_cap("a", 1.0)
        tree.add_cap("b", 1.0)
        # delay(a) = 1*(1+1) = 2 ; delay(b) = 2 + 1*1 = 3
        delays = tree.elmore_ps()
        assert delays["a"] == pytest.approx(2.0)
        assert delays["b"] == pytest.approx(3.0)

    def test_branching(self):
        tree = RCTree(root="r")
        tree.add_edge("r", "m", 1.0)
        tree.add_edge("m", "x", 1.0)
        tree.add_edge("m", "y", 2.0)
        for node in ("x", "y"):
            tree.add_cap(node, 1.0)
        delays = tree.elmore_ps()
        assert delays["x"] == pytest.approx(2.0 + 1.0)
        assert delays["y"] == pytest.approx(2.0 + 2.0)

    def test_loop_tolerated(self):
        tree = RCTree(root="r")
        tree.add_edge("r", "a", 1.0)
        tree.add_edge("a", "b", 1.0)
        tree.add_edge("b", "r", 1.0)  # loop closes
        tree.add_cap("b", 1.0)
        delays = tree.elmore_ps()
        assert "b" in delays and delays["b"] > 0

    def test_total_cap(self):
        tree = RCTree(root="r")
        tree.add_cap("a", 1.5)
        tree.add_cap("a", 0.5)
        assert tree.total_cap_ff == pytest.approx(2.0)

    def test_connectivity(self):
        tree = RCTree(root="r")
        tree.add_edge("r", "a", 1.0)
        tree.add_node("orphan")
        assert tree.is_connected("a")
        assert not tree.is_connected("orphan")


class TestExtractNet:
    @pytest.fixture(scope="class")
    def stackup(self):
        return build_stackup("ffet")

    def test_simple_net(self, stackup):
        segments = [RouteSegment("FM2", 0.0, 0.0, 1000.0, 0.0)]
        parasitics = extract_net(
            "n", segments, stackup, driver_xy=(0.0, 0.0),
            sinks=[("u1", "A", 0.25, (1000.0, 0.0))],
        )
        layer = stackup["FM2"]
        assert parasitics.wire_cap_ff == pytest.approx(
            layer.capacitance_ff_per_um, rel=1e-6)
        assert parasitics.wire_res_kohm == pytest.approx(
            layer.resistance_kohm_per_um, rel=1e-6)
        assert parasitics.pin_cap_ff == 0.25
        assert parasitics.elmore_to("u1", "A") > 0

    def test_far_sink_slower(self, stackup):
        segments = [RouteSegment("FM2", 0.0, 0.0, 2000.0, 0.0)]
        parasitics = extract_net(
            "n", segments, stackup, (0.0, 0.0),
            [("near", "A", 0.2, (0.0, 0.0)),
             ("far", "A", 0.2, (2000.0, 0.0))],
        )
        assert parasitics.elmore_to("far", "A") > \
            parasitics.elmore_to("near", "A")

    def test_no_segments_zero_wire(self, stackup):
        parasitics = extract_net("n", [], stackup, (0.0, 0.0),
                                 [("u1", "A", 0.3, (10.0, 10.0))])
        assert parasitics.wire_cap_ff == 0.0
        assert parasitics.total_cap_ff == pytest.approx(0.3)

    def test_dual_sided_net_sums_both_sides(self, stackup):
        segments = [
            RouteSegment("FM2", 0.0, 0.0, 1000.0, 0.0),
            RouteSegment("BM2", 0.0, 0.0, 1000.0, 0.0),
        ]
        parasitics = extract_net("n", segments, stackup, (0.0, 0.0), [])
        single = extract_net(
            "n", segments[:1], stackup, (0.0, 0.0), [])
        assert parasitics.wire_cap_ff == pytest.approx(
            2 * single.wire_cap_ff, rel=1e-6)

    def test_higher_layer_less_resistive(self, stackup):
        lo = extract_net("n", [RouteSegment("FM2", 0, 0, 1000, 0)],
                         stackup, (0, 0), [])
        hi = extract_net("n", [RouteSegment("FM12", 0, 0, 1000, 0)],
                         stackup, (0, 0), [])
        assert hi.wire_res_kohm < lo.wire_res_kohm / 10


class TestEstimateParasitics:
    def test_fanout_model_scales(self, ffet_lib, counter8):
        extraction = estimate_parasitics(counter8, ffet_lib)
        fanouts = {
            name: len(net.sinks) for name, net in counter8.nets.items()
        }
        hi = max(fanouts, key=fanouts.get)
        lo = min((n for n in fanouts if fanouts[n] > 0), key=fanouts.get)
        if fanouts[hi] > fanouts[lo]:
            assert extraction[hi].wire_cap_ff > extraction[lo].wire_cap_ff

    def test_placement_model_uses_hpwl(self, ffet_lib, mult4):
        from repro.pnr import FloorplanSpec, place, plan_floor, plan_power

        die = plan_floor(mult4, ffet_lib, FloorplanSpec(0.7))
        pp = plan_power(ffet_lib.tech, die)
        placement = place(mult4, ffet_lib, die, pp)
        extraction = estimate_parasitics(mult4, ffet_lib, placement)
        assert extraction.total_wirelength_nm > 0

    def test_every_net_extracted(self, ffet_lib, counter8):
        extraction = estimate_parasitics(counter8, ffet_lib)
        for name in counter8.nets:
            assert name in extraction
