"""Corner machinery and RC scaling: the knobs the variation engine turns."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.extract import Extraction
from repro.extract.rc import NetParasitics
from repro.sta import (
    CORNERS,
    Corner,
    analyze_corners,
    analyze_timing,
    derate_report,
    scale_extraction,
    worst_corner,
)
from repro.synth import generate_counter
from repro.core import FlowConfig
from repro.core.flow import run_flow


def _net(name="n", cap=2.0, res=0.5, elmore=3.0):
    return NetParasitics(
        net=name, wire_cap_ff=cap, wire_res_kohm=res, pin_cap_ff=1.0,
        sink_elmore_ps={("i", "A"): elmore}, wirelength_nm=1000.0)


@pytest.fixture(scope="module")
def artifacts():
    arts = run_flow(lambda: generate_counter(8),
                    FlowConfig(utilization=0.5), return_artifacts=True)
    return arts.result, arts.netlist, arts.library, arts.extraction


class TestCorners:
    def test_custom_corner_tuple_drives_the_report_keys(self, artifacts):
        _, netlist, library, extraction = artifacts
        mine = (Corner("hot", 1.3, 1.2), Corner("cold", 0.9, 0.95))
        reports = analyze_corners(netlist, library, extraction, 1000.0,
                                  corners=mine)
        assert set(reports) == {"hot", "cold"}
        # More derate -> strictly worse slack on a non-trivial design.
        assert reports["hot"].wns_ps < reports["cold"].wns_ps

    def test_default_corners_order_slow_to_fast(self, artifacts):
        _, netlist, library, extraction = artifacts
        reports = analyze_corners(netlist, library, extraction, 1000.0)
        slacks = [reports[c.name].wns_ps for c in CORNERS]
        assert slacks == sorted(slacks)

    def test_worst_corner_picks_minimum_slack(self, artifacts):
        _, netlist, library, extraction = artifacts
        reports = analyze_corners(netlist, library, extraction, 1000.0)
        name, report = worst_corner(reports)
        assert report.wns_ps == min(r.wns_ps for r in reports.values())
        assert name == "ss_0p63v_125c"

    def test_worst_corner_tie_breaks_by_insertion_order(self, artifacts):
        _, netlist, library, extraction = artifacts
        report = analyze_timing(netlist, library, extraction, 1000.0)
        tied = {"b_corner": report, "a_corner": report}
        name, picked = worst_corner(tied)
        # min() keeps the first key seen on ties: insertion order, not
        # alphabetical order.
        assert name == "b_corner"
        assert picked is report

    def test_unity_derate_report_is_identity(self, artifacts):
        _, netlist, library, extraction = artifacts
        report = analyze_timing(netlist, library, extraction, 1000.0)
        assert derate_report(report, 1.0, 1000.0) == report

    def test_derate_scales_arrival_not_period(self, artifacts):
        _, netlist, library, extraction = artifacts
        report = analyze_timing(netlist, library, extraction, 1000.0)
        slow = derate_report(report, 1.5, 1000.0)
        assert slow.worst_arrival_ps == pytest.approx(
            1.5 * report.worst_arrival_ps)
        assert slow.wns_ps == pytest.approx(
            1000.0 - 1.5 * (1000.0 - report.wns_ps))


class TestScaleExtraction:
    def test_unity_factor_is_a_no_op_identity(self):
        extraction = Extraction()
        extraction.nets["n"] = _net()
        assert scale_extraction(extraction, 1.0) is extraction

    def test_scaling_touches_wire_not_pins(self):
        extraction = Extraction()
        extraction.nets["n"] = _net(cap=2.0, res=0.5, elmore=3.0)
        out = scale_extraction(extraction, 2.0)
        scaled = out.nets["n"]
        assert scaled.wire_cap_ff == 4.0
        assert scaled.wire_res_kohm == 1.0
        assert scaled.sink_elmore_ps[("i", "A")] == 6.0
        assert scaled.pin_cap_ff == extraction.nets["n"].pin_cap_ff
        # Input untouched.
        assert extraction.nets["n"].wire_cap_ff == 2.0

    @given(st.floats(0.5, 2.0), st.floats(0.5, 2.0))
    def test_scaling_composes_multiplicatively(self, a, b):
        extraction = Extraction()
        extraction.nets["n"] = _net(cap=2.0, res=0.5, elmore=3.0)
        once = scale_extraction(extraction, a * b).nets["n"]
        twice = scale_extraction(
            scale_extraction(extraction, a), b).nets["n"]
        assert math.isclose(once.wire_cap_ff, twice.wire_cap_ff,
                            rel_tol=1e-12)
        assert math.isclose(once.wire_res_kohm, twice.wire_res_kohm,
                            rel_tol=1e-12)
        assert math.isclose(once.sink_elmore_ps[("i", "A")],
                            twice.sink_elmore_ps[("i", "A")],
                            rel_tol=1e-12)
