"""Input-pin redistribution (FP_x BP_y) tests."""

import pytest

from repro.cells import (
    parse_pin_density_label,
    pin_density_label,
    redistribute_input_pins,
    single_sided_output_library,
    widen_input_pins,
)
from repro.tech import Side


class TestLabels:
    def test_format(self):
        assert pin_density_label(0.3) == "FP0.7BP0.3"
        assert pin_density_label(0.04) == "FP0.96BP0.04"

    def test_parse_roundtrip(self):
        for frac in (0.04, 0.16, 0.3, 0.4, 0.5):
            assert parse_pin_density_label(pin_density_label(frac)) == \
                pytest.approx(frac)

    def test_parse_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            parse_pin_density_label("FP0.7BP0.4")  # doesn't sum to 1
        with pytest.raises(ValueError):
            parse_pin_density_label("XP0.7BP0.3")


class TestRedistribution:
    @pytest.mark.parametrize("fraction", [0.0, 0.04, 0.3, 0.5, 1.0])
    def test_achieved_fraction_close(self, ffet_lib, fraction):
        lib = redistribute_input_pins(ffet_lib, fraction, seed=1)
        achieved = lib.backside_input_fraction()
        assert achieved == pytest.approx(fraction, abs=0.02)

    def test_deterministic(self, ffet_lib):
        a = redistribute_input_pins(ffet_lib, 0.3, seed=7)
        b = redistribute_input_pins(ffet_lib, 0.3, seed=7)
        for name in a.masters:
            for pin_name, pin in a[name].pins.items():
                assert pin.sides == b[name].pins[pin_name].sides

    def test_seed_changes_assignment(self, ffet_lib):
        a = redistribute_input_pins(ffet_lib, 0.5, seed=0)
        b = redistribute_input_pins(ffet_lib, 0.5, seed=1)
        differs = any(
            a[name].pins[p].sides != b[name].pins[p].sides
            for name in a.masters for p in a[name].pins
        )
        assert differs

    def test_outputs_untouched(self, ffet_lib):
        lib = redistribute_input_pins(ffet_lib, 0.5)
        for master in lib:
            for pin in master.output_pins:
                assert pin.is_dual_sided

    def test_timing_shared_with_base(self, ffet_lib):
        # Section IV: characteristics identical across pin configs.
        lib = redistribute_input_pins(ffet_lib, 0.5)
        assert lib["INVD1"].arcs is ffet_lib["INVD1"].arcs

    def test_cfet_rejected(self, cfet_lib):
        with pytest.raises(ValueError):
            redistribute_input_pins(cfet_lib, 0.3)

    def test_bad_fraction_rejected(self, ffet_lib):
        with pytest.raises(ValueError):
            redistribute_input_pins(ffet_lib, 1.5)


class TestAblationLibraries:
    def test_widen_doubles_input_pin_shapes(self, ffet_lib):
        wide = widen_input_pins(ffet_lib)
        nand = wide["NAND2D1"]
        assert all(p.is_dual_sided for p in nand.input_pins)
        # Pin density rises on both sides vs the base library.
        assert nand.pin_density(Side.BACK) > \
            ffet_lib["NAND2D1"].pin_density(Side.BACK)

    def test_widen_rejects_cfet(self, cfet_lib):
        with pytest.raises(ValueError):
            widen_input_pins(cfet_lib)

    def test_single_sided_outputs(self, ffet_lib):
        lib = single_sided_output_library(ffet_lib)
        assert lib["INVD1"].output.sides == frozenset({Side.FRONT})
        # The BRIDGE via-through cell keeps a dual-sided output.
        assert lib["BRIDGE"].output.is_dual_sided
