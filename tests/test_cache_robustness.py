"""FlowCache integrity: checksums, corrupt-entry handling, tmp hygiene."""

from __future__ import annotations

import json

from repro.core import FlowCache, FlowConfig, SweepRunner
from repro.core import telemetry
from repro.core.cache import netlist_fingerprint
from repro.core.ppa import FailedRun

from .golden_cases import MultiplierFactory

FACTORY = MultiplierFactory(4)
BASE = FlowConfig(arch="ffet", backside_pin_fraction=0.5, utilization=0.5)
KEY = "ab" + "0" * 62


def _seed_entry(cache: FlowCache) -> None:
    cache.put(KEY, FailedRun(label="x", target_utilization=0.9, reason="tap"))


class TestChecksum:
    def test_payload_carries_checksum(self, tmp_path):
        cache = FlowCache(tmp_path)
        _seed_entry(cache)
        payload = json.loads(cache._path(KEY).read_text())
        assert "checksum" in payload

    def test_intact_entry_round_trips(self, tmp_path):
        cache = FlowCache(tmp_path)
        _seed_entry(cache)
        assert isinstance(cache.get(KEY), FailedRun)
        assert cache.corrupt == 0

    def test_tampered_data_is_detected_and_deleted(self, tmp_path):
        cache = FlowCache(tmp_path)
        _seed_entry(cache)
        path = cache._path(KEY)
        payload = json.loads(path.read_text())
        payload["data"]["reason"] = "edited by hand"
        path.write_text(json.dumps(payload))
        assert cache.get(KEY) is None
        assert cache.corrupt == 1
        assert not path.exists()  # corrupt entries are deleted, not kept

    def test_unparseable_entry_counts_as_corrupt(self, tmp_path):
        cache = FlowCache(tmp_path)
        path = cache._path(KEY)
        path.parent.mkdir(parents=True)
        path.write_text("{torn write")
        assert cache.get(KEY) is None
        assert cache.corrupt == 1
        assert not path.exists()

    def test_absent_entry_is_a_plain_miss(self, tmp_path):
        cache = FlowCache(tmp_path)
        assert cache.get(KEY) is None
        assert cache.misses == 1
        assert cache.corrupt == 0

    def test_corruption_counted_on_trace(self, tmp_path):
        cache = FlowCache(tmp_path)
        path = cache._path(KEY)
        path.parent.mkdir(parents=True)
        path.write_text("garbage")
        tracer = telemetry.Tracer(label="t")
        with telemetry.activate(tracer):
            cache.get(KEY)
        trace = tracer.finish()
        assert trace.counters.get("cache.corrupt") == 1

    def test_corrupt_entry_recomputed_through_runner(self, tmp_path):
        """End to end: a damaged entry is replaced by a fresh result."""
        cache = FlowCache(tmp_path)
        runner = SweepRunner(jobs=1, cache=cache)
        first = runner.run_one(FACTORY, BASE)
        key = cache.key_for(BASE, netlist_fingerprint(FACTORY()))
        cache._path(key).write_text("bit rot")
        second = runner.run_one(FACTORY, BASE)
        assert second == first
        assert cache.corrupt == 1
        assert runner.stats.cache_hits == 0
        third = runner.run_one(FACTORY, BASE)
        assert third == first
        assert runner.stats.cache_hits == 1  # rewritten entry serves again


class TestTmpHygiene:
    def _strand_tmp(self, cache: FlowCache):
        stale = cache.directory / "ab" / "deadbeef.tmp.12345"
        stale.parent.mkdir(parents=True, exist_ok=True)
        stale.write_text("{half-written")
        return stale

    def test_info_reports_stale_tmp_files(self, tmp_path):
        cache = FlowCache(tmp_path)
        _seed_entry(cache)
        assert cache.info()["stale_tmp_files"] == 0
        self._strand_tmp(cache)
        assert cache.info()["stale_tmp_files"] == 1
        assert cache.info()["entries"] == 1  # tmp files are not entries

    def test_clear_sweeps_stale_tmp_files(self, tmp_path):
        cache = FlowCache(tmp_path)
        _seed_entry(cache)
        stale = self._strand_tmp(cache)
        assert cache.clear() == 2  # one entry + one stale tmp
        assert not stale.exists()
        assert len(cache) == 0
