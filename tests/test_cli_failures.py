"""CLI failure handling: exit codes, structured messages, new flags."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.faults import FAULTS_ENV
from repro.core.guard import GUARD_ENV


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch, tmp_path):
    """Each test gets a private cache dir and no inherited fault/guard
    state.  setenv (not delenv) so monkeypatch always registers a
    restore: the CLI exports --inject-faults/--guard into os.environ,
    and that must not leak into other test files."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv(FAULTS_ENV, "")  # empty spec == faults inactive
    monkeypatch.setenv(GUARD_ENV, "")   # empty mode == strict default


SMALL = ["--xlen", "4", "--nregs", "4"]
SWEEP = ["sweep", "utilization", *SMALL, "--points", "0.5", "0.6",
         "--retries", "2"]


class TestExitCodes:
    def test_healthy_sweep_exits_zero(self, capsys):
        assert main(SWEEP) == 0

    def test_quarantined_sweep_exits_nonzero(self, capsys):
        assert main([*SWEEP, "--inject-faults", "routing:raise"]) == 1
        out = capsys.readouterr().out
        assert "QUARANTINED" in out
        assert "quarantined" in out  # stats line too

    def test_keep_going_accepts_partial_results(self, capsys):
        assert main([*SWEEP, "--inject-faults", "routing:raise",
                     "--keep-going"]) == 0

    def test_sweep_completes_despite_failures(self, capsys):
        """Quarantine means every point reports, not that the sweep dies."""
        main([*SWEEP, "--inject-faults", "routing:raise"])
        out = capsys.readouterr().out
        assert out.count("QUARANTINED") == 2  # both points accounted for

    def test_bad_fault_spec_is_a_clean_error(self, capsys):
        assert main([*SWEEP, "--inject-faults", "nonsense"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err


class TestStructuredFailureLine:
    def test_failure_line_names_stage_and_cause(self, capsys):
        main([*SWEEP, "--inject-faults", "sta:fatal"])
        out = capsys.readouterr().out
        assert "stage=sta" in out
        assert "cause=FatalError" in out

    def test_run_failure_is_one_line_not_traceback(self, capsys):
        code = main(["run", *SMALL, "--inject-faults", "sta:fatal",
                     "--retries", "1"])
        assert code == 1
        captured = capsys.readouterr()
        assert "stage=sta" in captured.out
        assert "Traceback" not in captured.out + captured.err

    def test_run_keep_going_exits_zero(self, capsys):
        assert main(["run", *SMALL, "--inject-faults", "sta:fatal",
                     "--retries", "1", "--keep-going"]) == 0


class TestResumeFlag:
    def test_checkpoint_then_resume(self, tmp_path, capsys):
        ck = str(tmp_path / "sweep.ckpt")
        assert main([*SWEEP, "--checkpoint", ck, "--no-cache"]) == 0
        assert main([*SWEEP, "--checkpoint", ck, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "2 resumed" in out

    def test_no_resume_recomputes(self, tmp_path, capsys):
        ck = str(tmp_path / "sweep.ckpt")
        main([*SWEEP, "--checkpoint", ck, "--no-cache"])
        main([*SWEEP, "--checkpoint", ck, "--no-cache", "--no-resume"])
        out = capsys.readouterr().out
        assert "resumed" not in out.splitlines()[-1]


class TestGuardFlag:
    def test_warn_mode_completes_with_violation(self, capsys):
        code = main(["run", *SMALL, "--guard", "warn",
                     "--inject-faults", "power:corrupt", "--retries", "1"])
        # warn mode: the run completes (possibly invalid), no quarantine
        captured = capsys.readouterr()
        assert "Traceback" not in captured.out + captured.err
        assert code in (0, 1)

    def test_strict_mode_quarantines_corruption(self, capsys):
        code = main(["run", *SMALL, "--guard", "strict",
                     "--inject-faults", "power:corrupt", "--retries", "1"])
        assert code == 1
        assert "cause=GuardViolation" in capsys.readouterr().out
