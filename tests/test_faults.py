"""Fault injection: grammar, determinism, firing, and healthy-path purity."""

from __future__ import annotations

import pytest

from repro.core import FlowConfig, run_flow
from repro.core import faults as faults_mod
from repro.core.errors import FatalError, FlowError, InjectedFault
from repro.core.faults import FAULTS_ENV, FaultClause, FaultPlan, parse_clause
from repro.core.guard import FlowGuard

from .golden_cases import MultiplierFactory

FACTORY = MultiplierFactory(4)
BASE = FlowConfig(arch="ffet", backside_pin_fraction=0.5, utilization=0.5)


class TestGrammar:
    def test_minimal_clause(self):
        c = parse_clause("placement:raise")
        assert c.stage == "placement"
        assert c.mode == "raise"
        assert c.rate == 1.0
        assert not c.first_attempt_only

    def test_all_options(self):
        c = parse_clause("sta:die:first:rate=0.25:duration=7:seed=3")
        assert (c.stage, c.mode) == ("sta", "die")
        assert c.rate == 0.25
        assert c.first_attempt_only
        assert c.duration_s == 7.0
        assert c.seed == 3

    def test_plan_splits_on_commas(self):
        plan = FaultPlan.from_spec("placement:raise, routing:corrupt")
        assert len(plan.clauses) == 2
        assert plan.active

    def test_empty_spec_is_inert(self):
        assert not FaultPlan.from_spec(None).active
        assert not FaultPlan.from_spec("  ").active

    @pytest.mark.parametrize("bad", [
        "placement", "placement:explode", "placement:raise:rate=2",
        "placement:raise:wat", "placement:raise:color=red"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_clause(bad)


class TestDeterminism:
    def test_rate_draw_is_pure(self):
        c = FaultClause(stage="sta", mode="raise", rate=0.5, seed=11)
        draws = [c.fires("sta", "run-a", 1) for _ in range(5)]
        assert len(set(draws)) == 1

    def test_rate_zero_never_fires(self):
        c = FaultClause(stage="sta", mode="raise", rate=0.0)
        assert not any(c.fires("sta", f"run-{i}", 1) for i in range(20))

    def test_rate_gates_by_run_identity(self):
        c = FaultClause(stage="sta", mode="raise", rate=0.5, seed=0)
        outcomes = {c.fires("sta", f"run-{i}", 1) for i in range(64)}
        assert outcomes == {True, False}  # some fire, some don't

    def test_wildcard_stage(self):
        c = FaultClause(stage="*", mode="raise")
        assert c.fires("placement", "x", 1)
        assert c.fires("sta", "x", 1)

    def test_first_attempt_only(self):
        c = FaultClause(stage="sta", mode="raise", first_attempt_only=True)
        assert c.fires("sta", "x", 1)
        assert not c.fires("sta", "x", 2)


class TestFiring:
    def test_raise_mode_is_transient(self):
        plan = FaultPlan.from_spec("placement:raise")
        with pytest.raises(InjectedFault) as info:
            run_flow(FACTORY, BASE, faults=plan)
        assert info.value.stage == "placement"
        assert info.value.transient

    def test_fatal_mode(self):
        plan = FaultPlan.from_spec("sta:fatal")
        with pytest.raises(FatalError) as info:
            run_flow(FACTORY, BASE, faults=plan)
        assert info.value.stage == "sta"
        assert not info.value.transient

    def test_corrupt_on_unsupported_stage_is_loud(self):
        """corrupt only damages stages that have corruptible artifacts."""
        plan = FaultPlan.from_spec("sta:corrupt")
        with pytest.raises(FlowError):
            run_flow(FACTORY, BASE, faults=plan)

    def test_second_attempt_clean_after_first_only_clause(self):
        plan = FaultPlan.from_spec("placement:raise:first")
        faults_mod.set_attempt(1)
        try:
            with pytest.raises(InjectedFault):
                run_flow(FACTORY, BASE, faults=plan)
            faults_mod.set_attempt(2)
            result = run_flow(FACTORY, BASE, faults=plan)
            assert result.valid
        finally:
            faults_mod.set_attempt(1)


class TestHealthyPathPurity:
    """An inert plan (and the harness being importable at all) must not
    change healthy results bit for bit."""

    def test_inert_plan_is_bit_for_bit_neutral(self):
        baseline = run_flow(FACTORY, BASE)
        with_plan = run_flow(FACTORY, BASE, faults=FaultPlan(),
                             guard=FlowGuard(mode="strict"))
        assert with_plan == baseline

    def test_env_plan_detection(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert not faults_mod.faults_active()
        assert not faults_mod.plan_from_env().active
        monkeypatch.setenv(FAULTS_ENV, "sta:raise")
        assert faults_mod.faults_active()
        assert faults_mod.plan_from_env().active
