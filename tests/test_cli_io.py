"""CLI and result-serialization tests."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core import FlowConfig
from repro.core.io import result_to_dict, results_to_csv, results_to_json
from repro.core.sweeps import try_run
from repro.synth import generate_multiplier


@pytest.fixture(scope="module")
def sample_runs():
    config = FlowConfig(arch="ffet", utilization=0.6,
                        backside_pin_fraction=0.5)
    good = try_run(lambda: generate_multiplier(5), config)
    bad = try_run(lambda: generate_multiplier(5),
                  config.with_(utilization=0.95))
    return [good, bad]


class TestSerialization:
    def test_result_dict_fields(self, sample_runs):
        good = result_to_dict(sample_runs[0])
        assert good["valid"] is True
        assert good["arch"] == "ffet"
        assert good["achieved_frequency_ghz"] > 0
        assert "wns_ps" in good and "switching_mw" in good

    def test_failed_run_dict(self, sample_runs):
        bad = result_to_dict(sample_runs[1])
        assert bad["valid"] is False
        assert "failure" in bad

    def test_json_round_trip(self, sample_runs):
        rows = json.loads(results_to_json(sample_runs))
        assert len(rows) == 2
        assert rows[0]["label"].startswith("FFET")

    def test_csv_has_header_and_rows(self, sample_runs):
        text = results_to_csv(sample_runs)
        lines = text.strip().splitlines()
        assert lines[0].startswith("label,")
        assert len(lines) == 3


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--arch", "cfet",
                                  "--utilization", "0.6"])
        assert args.arch == "cfet"
        assert args.func.__name__ == "cmd_run"

    def test_run_command(self, capsys, tmp_path):
        out = tmp_path / "result.json"
        code = main(["run", "--xlen", "8", "--nregs", "8",
                     "--utilization", "0.6", "--json", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "FFET" in printed
        data = json.loads(out.read_text())
        assert data[0]["valid"] is True

    def test_characterize_command(self, capsys, tmp_path):
        lib_file = tmp_path / "ffet.lib"
        code = main(["characterize", "--liberty", str(lib_file)])
        assert code == 0
        assert "KPI Diff" in capsys.readouterr().out
        assert lib_file.read_text().startswith("library (")

    def test_sweep_command(self, capsys, tmp_path):
        csv_file = tmp_path / "sweep.csv"
        code = main(["sweep", "utilization", "--xlen", "8", "--nregs", "8",
                     "--points", "0.5", "0.6", "--csv", str(csv_file)])
        assert code == 0
        assert csv_file.exists()

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
