"""Placement tests: global placement, legalization, tap-cell blockages."""

import math

import pytest

from repro.pnr import (
    FloorplanSpec,
    PlacementError,
    global_place,
    legalize,
    place,
    plan_floor,
    plan_power,
)


@pytest.fixture()
def placed_mult(ffet_lib, mult4):
    die = plan_floor(mult4, ffet_lib, FloorplanSpec(0.7))
    powerplan = plan_power(ffet_lib.tech, die)
    placement = place(mult4, ffet_lib, die, powerplan, seed=3)
    return die, powerplan, placement


class TestGlobalPlace:
    def test_all_cells_placed(self, ffet_lib, mult4):
        die = plan_floor(mult4, ffet_lib, FloorplanSpec(0.7))
        placement = global_place(mult4, ffet_lib, die, seed=0)
        assert set(placement.locations) == set(mult4.instances)

    def test_cells_inside_die(self, ffet_lib, mult4):
        die = plan_floor(mult4, ffet_lib, FloorplanSpec(0.7))
        placement = global_place(mult4, ffet_lib, die, seed=0)
        for p in placement.locations.values():
            assert 0 <= p.x_nm <= die.width_nm
            assert 0 <= p.y_nm <= die.height_nm

    def test_deterministic(self, ffet_lib, mult4):
        die = plan_floor(mult4, ffet_lib, FloorplanSpec(0.7))
        a = global_place(mult4, ffet_lib, die, seed=5)
        b = global_place(mult4, ffet_lib, die, seed=5)
        assert a.locations == b.locations

    def test_connected_cells_near_each_other(self, ffet_lib, mult4):
        """Placement must beat a random shuffle on HPWL by a wide margin."""
        import random

        die = plan_floor(mult4, ffet_lib, FloorplanSpec(0.7))
        placement = global_place(mult4, ffet_lib, die, seed=0)
        good = placement.hpwl_nm(mult4)
        rng = random.Random(0)
        names = list(placement.locations)
        shuffled = names[:]
        rng.shuffle(shuffled)
        placement.locations = {
            a: placement.locations[b] for a, b in zip(names, shuffled)
        }
        bad = placement.hpwl_nm(mult4)
        assert good < 0.7 * bad

    def test_io_pads_on_periphery(self, ffet_lib, mult4):
        die = plan_floor(mult4, ffet_lib, FloorplanSpec(0.7))
        placement = global_place(mult4, ffet_lib, die, seed=0)
        for pad in placement.io_pins.values():
            on_edge = (
                pad.x_nm in (0.0, die.width_nm)
                or pad.y_nm in (0.0, die.height_nm)
            )
            assert on_edge


class TestLegalize:
    def test_rows_and_no_overlap(self, ffet_lib, mult4, placed_mult):
        die, powerplan, placement = placed_mult
        occupied = {}
        for name, p in placement.locations.items():
            master = ffet_lib[mult4.instances[name].master]
            width = max(1, math.ceil(master.width_cpp))
            row = int(p.y_nm // die.row_height_nm)
            start = round(p.x_nm / die.site_width_nm - width / 2)
            assert 0 <= start and start + width <= die.sites_per_row
            for site in range(start, start + width):
                key = (row, site)
                assert key not in occupied, f"{name} overlaps {occupied.get(key)}"
                occupied[key] = name

    def test_tap_sites_respected(self, ffet_lib, mult4, placed_mult):
        die, powerplan, placement = placed_mult
        blocked = powerplan.blocked_sites()
        for name, p in placement.locations.items():
            master = ffet_lib[mult4.instances[name].master]
            width = max(1, math.ceil(master.width_cpp))
            row = int(p.y_nm // die.row_height_nm)
            start = round(p.x_nm / die.site_width_nm - width / 2)
            assert not blocked[row, start:start + width].any(), name

    def test_y_snapped_to_rows(self, placed_mult):
        die, _powerplan, placement = placed_mult
        for p in placement.locations.values():
            frac = (p.y_nm / die.row_height_nm) % 1.0
            assert frac == pytest.approx(0.5)

    def test_impossible_utilization_raises(self, ffet_lib, mult4):
        from repro.pnr.geometry import Die

        die = Die(rows=2, sites_per_row=10, site_width_nm=50.0,
                  row_height_nm=105.0)
        powerplan = plan_power(ffet_lib.tech, die)
        with pytest.raises(PlacementError):
            place(mult4, ffet_lib, die, powerplan)

    def test_legalization_preserves_locality(self, ffet_lib, mult4):
        die = plan_floor(mult4, ffet_lib, FloorplanSpec(0.7))
        powerplan = plan_power(ffet_lib.tech, die)
        rough = global_place(mult4, ffet_lib, die, seed=0)
        legal = legalize(rough, mult4, ffet_lib, powerplan)
        # Legalization should not blow up wirelength.
        assert legal.hpwl_nm(mult4) < 2.0 * rough.hpwl_nm(mult4)
