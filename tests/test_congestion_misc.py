"""Coverage for congestion derates, routing-result queries and misc APIs."""

import numpy as np
import pytest

from repro.extract import congestion_derates
from repro.pnr.routing.grid import RoutingGrid
from repro.pnr.routing.router import GlobalRouter, NetSpec
from repro.tech import Side, make_ffet_node


def routed(cap=4.0, n_parallel=3):
    tech = make_ffet_node()
    grid = RoutingGrid(side=Side.FRONT, cols=8, rows=8, gcell_nm=480.0,
                       layers=tech.routing_layers(Side.FRONT))
    grid.cap_h = np.full((8, 7), cap)
    grid.cap_v = np.full((7, 8), cap)
    specs = [NetSpec(f"n{i}", Side.FRONT, [(0, 4), (7, 4)])
             for i in range(n_parallel)]
    return GlobalRouter(grid).route_all(specs)


class TestCongestionOf:
    def test_ratio_reflects_sharing(self):
        light = routed(cap=10.0, n_parallel=1)
        heavy = routed(cap=10.0, n_parallel=8)
        assert heavy.congestion_of("n0") > light.congestion_of("n0")

    def test_empty_net_zero(self):
        result = routed()
        result.routes["n0"].edges.clear()
        assert result.congestion_of("n0") == 0.0

    def test_unknown_net_zero(self):
        assert routed().congestion_of("nope") == 0.0


class TestCongestionDerates:
    def test_low_congestion_no_derate(self):
        result = routed(cap=50.0, n_parallel=2)
        derates = congestion_derates({Side.FRONT: result})
        assert all(d == pytest.approx(1.0) for d in derates.values())

    def test_high_congestion_derates(self):
        result = routed(cap=2.0, n_parallel=6)
        derates = congestion_derates({Side.FRONT: result})
        assert max(derates.values()) > 1.2

    def test_worst_side_wins(self):
        light = routed(cap=50.0, n_parallel=2)
        heavy = routed(cap=2.0, n_parallel=6)
        combined = congestion_derates({Side.FRONT: light, Side.BACK: heavy})
        only_heavy = congestion_derates({Side.BACK: heavy})
        for net, factor in only_heavy.items():
            assert combined[net] == pytest.approx(factor)


class TestNetlistAttributes:
    def test_riscv_metadata_present(self, rv_tiny):
        assert rv_tiny.attributes["config"].xlen == 8
        assert len(rv_tiny.attributes["pc_nets"]) == 8
        assert set(rv_tiny.attributes["regfile_nets"]) == set(range(1, 8))

    def test_attributes_default_empty(self, counter8):
        assert counter8.attributes == {}


class TestMiscApi:
    def test_ppa_summary_format(self, ffet_lib):
        from repro.core import FlowConfig, run_flow
        from repro.synth import generate_multiplier

        result = run_flow(lambda: generate_multiplier(4),
                          FlowConfig(arch="ffet", utilization=0.6,
                                     backside_pin_fraction=0.5))
        text = result.summary()
        assert "GHz" in text and "mW" in text and "util" in text

    def test_failed_run_invalid(self):
        from repro.core import FailedRun

        run = FailedRun(label="x", target_utilization=0.9, reason="taps")
        assert not run.valid

    def test_layer_sweep_point_label(self):
        from repro.core.sweeps import LayerSweepPoint

        assert LayerSweepPoint(6, 6, 0.8, None).label == "FM6BM6"
        assert LayerSweepPoint(12, 0, 0.7, None).label == "FM12"

    def test_cli_doe_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["doe", "coopt", "--fractions", "0.5", "--xlen", "8",
             "--nregs", "8"])
        assert args.kind == "coopt"
        assert args.fractions == [0.5]
