"""Sweep and DoE harness tests on a small design."""

import pytest

from repro.core import FlowConfig, PPAResult
from repro.core.doe import (
    CooptRow,
    cooptimization_table,
    layer_splits,
    pin_density_doe,
)
from repro.core.sweeps import (
    frequency_sweep,
    layer_count_efficiency_sweep,
    max_valid_utilization,
    try_run,
    utilization_sweep,
)
from repro.synth import generate_multiplier


def factory():
    return generate_multiplier(5)


BASE = FlowConfig(arch="ffet", backside_pin_fraction=0.5,
                  target_frequency_ghz=1.5)


class TestTryRun:
    def test_success(self):
        run = try_run(factory, BASE.with_(utilization=0.6))
        assert isinstance(run, PPAResult)

    def test_failure_wrapped(self):
        run = try_run(factory, BASE.with_(utilization=0.95))
        assert not run.valid
        assert "Tap" in run.reason or "utilization" in run.reason


class TestUtilizationSweep:
    def test_area_decreases_with_utilization(self):
        runs = utilization_sweep(factory, BASE, (0.5, 0.6, 0.7))
        areas = [r.core_area_um2 for r in runs if isinstance(r, PPAResult)]
        assert areas == sorted(areas, reverse=True)

    def test_max_valid_utilization(self):
        best, runs = max_valid_utilization(
            factory, BASE, utilizations=(0.5, 0.7, 0.95))
        assert best == 0.7
        assert len(runs) == 3


class TestFrequencySweep:
    def test_tight_target_buys_area(self):
        runs = frequency_sweep(factory, BASE.with_(utilization=0.6),
                               targets_ghz=(0.5, 3.0))
        ok = [r for r in runs if isinstance(r, PPAResult)]
        assert len(ok) == 2
        # Gate sizing trades area for speed at aggressive targets.
        assert ok[1].cell_area_um2 >= ok[0].cell_area_um2
        assert all(r.total_power_mw > 0 for r in ok)


class TestLayerSweeps:
    def test_efficiency_sweep_labels(self):
        points = layer_count_efficiency_sweep(
            factory, BASE.with_(utilization=0.6), layer_counts=(6, 12))
        assert [p.label for p in points] == ["FM6BM6", "FM12BM12"]
        assert all(p.result is not None for p in points)


class TestDoe:
    def test_layer_splits(self):
        splits = layer_splits(12)
        assert (6, 6) in splits and (10, 2) in splits
        assert all(f + b == 12 for f, b in splits)

    def test_pin_density_doe_small(self):
        clouds = pin_density_doe(
            factory, BASE, fractions=(0.04, 0.5),
            utilizations=(0.5, 0.6, 0.7),
        )
        assert len(clouds) == 2
        for cloud in clouds:
            assert cloud.label.startswith("FFET FM12BM12 FP")
            assert len(cloud.results) >= 3
            assert cloud.ellipse is not None
            assert cloud.merit > 0

    def test_cooptimization_rows(self):
        rows = cooptimization_table(
            factory, BASE, fractions=(0.5,), total_layers=6,
            utilization=0.6, keep_top=2,
        )
        assert 1 <= len(rows) <= 2
        for row in rows:
            assert isinstance(row, CooptRow)
            assert row.front_layers + row.back_layers == 6
            assert row.pattern.startswith("FM")
