"""Powerplan tests: stripes, Power Tap Cells, nTSVs, capacity derating."""

import pytest

from repro.pnr import (
    FloorplanSpec,
    TAP_CELL_WIDTH_SITES,
    plan_floor,
    plan_power,
)
from repro.tech import make_cfet_node, make_ffet_node


@pytest.fixture()
def ffet_setup(ffet_lib, mult4):
    die = plan_floor(mult4, ffet_lib, FloorplanSpec(0.7))
    return die, plan_power(ffet_lib.tech, die)


class TestStripes:
    def test_interleaved_pattern(self, ffet_setup):
        _die, plan = ffet_setup
        nets = [s.net for s in plan.stripes]
        for a, b in zip(nets, nets[1:]):
            assert a != b  # VSS/VDD alternate

    def test_stripe_pitch(self, ffet_lib, mult4):
        die = plan_floor(mult4, ffet_lib, FloorplanSpec(0.7))
        plan = plan_power(ffet_lib.tech, die)
        xs = [s.x_nm for s in plan.stripes]
        pitch = ffet_lib.tech.rules.power_stripe_pitch_nm
        for a, b in zip(xs, xs[1:]):
            assert b - a == pytest.approx(pitch)

    def test_custom_pitch(self, ffet_lib, mult4):
        die = plan_floor(mult4, ffet_lib, FloorplanSpec(0.7))
        dense = plan_power(ffet_lib.tech, die, stripe_pitch_cpp=32)
        sparse = plan_power(ffet_lib.tech, die, stripe_pitch_cpp=128)
        assert len(dense.stripes) > len(sparse.stripes)

    def test_ffet_stripes_on_top_backside_signal_layer(self, ffet_setup):
        _die, plan = ffet_setup
        assert all(s.layer == "BM12" for s in plan.stripes)

    def test_cfet_stripes_on_pdn_layers(self, cfet_lib, mult4):
        import copy

        from repro.synth import generate_multiplier

        nl = generate_multiplier(4)
        nl.bind(cfet_lib)
        die = plan_floor(nl, cfet_lib, FloorplanSpec(0.7))
        plan = plan_power(cfet_lib.tech, die)
        assert all(s.layer == "BM2" for s in plan.stripes)


class TestTapCells:
    def test_ffet_taps_under_vss_stripes_only(self, ffet_setup):
        die, plan = ffet_setup
        vss_sites = {
            min(die.site_of(s.x_nm), die.sites_per_row - TAP_CELL_WIDTH_SITES)
            for s in plan.stripes if s.net == "VSS"
        }
        assert {t.site for t in plan.tap_cells} == vss_sites
        assert all(t.name.startswith("ptap") for t in plan.tap_cells)

    def test_one_tap_per_row_per_vss_stripe(self, ffet_setup):
        die, plan = ffet_setup
        n_vss = sum(1 for s in plan.stripes if s.net == "VSS")
        assert len(plan.tap_cells) == n_vss * die.rows

    def test_cfet_ntsvs_under_all_stripes(self, cfet_lib):
        from repro.synth import generate_multiplier

        nl = generate_multiplier(4)
        nl.bind(cfet_lib)
        die = plan_floor(nl, cfet_lib, FloorplanSpec(0.7))
        plan = plan_power(cfet_lib.tech, die)
        assert len(plan.tap_cells) == len(plan.stripes) * die.rows
        assert all(t.name.startswith("ntsv") for t in plan.tap_cells)

    def test_cfet_pays_more_placement_overhead(self, ffet_lib, cfet_lib):
        """The CFET taps both BPR polarities -> lower utilization cap."""
        from repro.pnr.geometry import Die

        # Same die geometry for both, wide enough for several stripes.
        die_f = Die(rows=40, sites_per_row=400, site_width_nm=50.0,
                    row_height_nm=105.0)
        die_c = Die(rows=40, sites_per_row=400, site_width_nm=50.0,
                    row_height_nm=120.0)
        plan_f = plan_power(ffet_lib.tech, die_f)
        plan_c = plan_power(cfet_lib.tech, die_c)
        assert plan_c.tap_site_fraction > plan_f.tap_site_fraction
        assert plan_c.max_legal_utilization < plan_f.max_legal_utilization

    def test_blocked_sites_shape(self, ffet_setup):
        die, plan = ffet_setup
        blocked = plan.blocked_sites()
        assert blocked.shape == (die.rows, die.sites_per_row)
        assert blocked.sum() == plan.tap_site_count


class TestCapacityDerating:
    def test_ffet_dual_pdn_derates_top_backside_layers(self, ffet_setup):
        _die, plan = ffet_setup
        assert plan.capacity_factor("BM12") < 1.0
        assert plan.capacity_factor("BM11") < 1.0
        assert plan.capacity_factor("BM5") == 1.0
        assert plan.capacity_factor("FM12") == 1.0

    def test_frontside_only_ffet_no_signal_derating(self, mult4):
        lib_tech = make_ffet_node(12, 0)
        from repro import build_library
        from repro.synth import generate_multiplier

        lib = build_library(lib_tech)
        nl = generate_multiplier(4)
        nl.bind(lib)
        die = plan_floor(nl, lib, FloorplanSpec(0.7))
        plan = plan_power(lib.tech, die)
        assert plan.layer_capacity_factor == {}
