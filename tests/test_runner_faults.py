"""Runner resilience: retry, timeout, pool salvage, checkpoint resume.

Every scenario here injects deterministic faults (REPRO_FAULTS) into
real flows and asserts the sweep still completes with the healthy
points intact — completed work is never lost, failures are quarantined
as structured records, and the stats/counters stay consistent.
"""

from __future__ import annotations

import json

import pytest

from repro.core import (
    FailedRun,
    FlowCache,
    FlowConfig,
    PPAResult,
    RetryPolicy,
    SweepRunner,
)
from repro.core.faults import FAULTS_ENV
from repro.core.runner import SweepCheckpoint

from .golden_cases import MultiplierFactory

FACTORY = MultiplierFactory(4)
BASE = FlowConfig(arch="ffet", backside_pin_fraction=0.5)
CONFIGS = [BASE.with_(utilization=u) for u in (0.5, 0.56, 0.6)]

FAST = RetryPolicy(max_attempts=3, backoff_base_s=0.01, backoff_cap_s=0.05)


def _baseline():
    return SweepRunner(jobs=1).run_many(FACTORY, CONFIGS)


class TestRetry:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_transient_first_attempt_retries_to_success(self, monkeypatch,
                                                        jobs):
        monkeypatch.setenv(FAULTS_ENV, "placement:raise:first")
        runner = SweepRunner(jobs=jobs, retry=FAST)
        results = runner.run_many(FACTORY, CONFIGS)
        assert all(isinstance(r, PPAResult) for r in results)
        assert runner.stats.retries == len(CONFIGS)
        assert runner.stats.failed == 0

    def test_retried_results_match_healthy_baseline(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "placement:raise:first")
        retried = SweepRunner(jobs=1, retry=FAST).run_many(FACTORY, CONFIGS)
        monkeypatch.delenv(FAULTS_ENV)
        assert retried == _baseline()

    def test_persistent_transient_exhausts_into_quarantine(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "routing:raise")
        runner = SweepRunner(jobs=1, retry=FAST)
        result = runner.run_one(FACTORY, CONFIGS[0])
        assert isinstance(result, FailedRun)
        assert result.quarantined
        assert result.attempts == FAST.max_attempts
        assert result.stage == "routing"
        assert result.cause == "InjectedFault"
        assert runner.stats.quarantined == 1
        assert runner.stats.retries == FAST.max_attempts - 1

    def test_fatal_fault_is_not_retried(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "sta:fatal")
        runner = SweepRunner(jobs=1, retry=FAST)
        result = runner.run_one(FACTORY, CONFIGS[0])
        assert isinstance(result, FailedRun)
        assert result.attempts == 1
        assert runner.stats.retries == 0

    def test_backoff_schedule(self):
        policy = RetryPolicy(backoff_base_s=0.25, backoff_factor=2.0,
                             backoff_cap_s=1.0)
        assert policy.backoff_s(1) == 0.25
        assert policy.backoff_s(2) == 0.5
        assert policy.backoff_s(3) == 1.0
        assert policy.backoff_s(9) == 1.0  # capped


class TestTimeout:
    def test_hang_is_quarantined_as_timeout(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "sta:hang")
        runner = SweepRunner(jobs=1, retry=RetryPolicy(
            max_attempts=1, timeout_s=1.0))
        result = runner.run_one(FACTORY, CONFIGS[0])
        assert isinstance(result, FailedRun)
        assert result.cause == "RunTimeout"
        assert runner.stats.timeouts == 1
        assert runner.stats.quarantined == 1

    def test_hang_timeout_in_pool_worker(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "sta:hang")
        runner = SweepRunner(jobs=2, retry=RetryPolicy(
            max_attempts=1, timeout_s=1.0))
        results = runner.run_many(FACTORY, CONFIGS[:2])
        assert all(isinstance(r, FailedRun) and r.cause == "RunTimeout"
                   for r in results)

    def test_healthy_run_unaffected_by_generous_timeout(self):
        runner = SweepRunner(jobs=1, retry=RetryPolicy(timeout_s=600.0))
        assert runner.run_many(FACTORY, CONFIGS) == _baseline()


class TestPoolSalvage:
    def test_worker_death_does_not_lose_completed_results(self, monkeypatch):
        """One config kills its worker once; everything still completes
        and matches the healthy baseline bit for bit."""
        monkeypatch.setenv(FAULTS_ENV, "def_merge:die:first")
        runner = SweepRunner(jobs=2, retry=FAST)
        results = runner.run_many(FACTORY, CONFIGS)
        assert runner.stats.pool_restarts >= 1
        monkeypatch.delenv(FAULTS_ENV)
        assert results == _baseline()

    def test_persistent_worker_death_quarantines_only_the_killer(
            self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "def_merge:die")
        runner = SweepRunner(jobs=2, retry=RetryPolicy(
            max_attempts=2, backoff_base_s=0.01))
        results = runner.run_many(FACTORY, CONFIGS)
        assert all(isinstance(r, FailedRun) for r in results)
        assert all(r.cause == "WorkerDied" and r.quarantined
                   for r in results)
        assert runner.stats.quarantined == len(CONFIGS)
        # The sweep completed: every config has a record, none was lost.
        assert len(results) == len(CONFIGS)

    def test_stats_are_consistent_after_salvage(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "def_merge:die:first")
        runner = SweepRunner(jobs=2, retry=FAST)
        runner.run_many(FACTORY, CONFIGS)
        s = runner.stats
        assert s.runs == len(CONFIGS)
        assert s.executed == len(CONFIGS)
        assert s.cache_hits == 0
        assert s.retries >= 1
        assert s.pool_restarts >= 1


class _CountingCache(FlowCache):
    def __init__(self, directory):
        super().__init__(directory)
        self.puts = 0

    def put(self, key, result):
        self.puts += 1
        super().put(key, result)


class TestCacheInteraction:
    def test_no_double_puts_on_parallel_sweep(self, tmp_path):
        cache = _CountingCache(tmp_path)
        runner = SweepRunner(jobs=2, cache=cache, retry=FAST)
        runner.run_many(FACTORY, CONFIGS)
        assert cache.puts == len(CONFIGS)

    def test_cache_bypassed_while_faults_active(self, tmp_path, monkeypatch):
        cache = _CountingCache(tmp_path)
        healthy = SweepRunner(jobs=1, cache=cache)
        healthy.run_many(FACTORY, CONFIGS[:1])
        assert cache.puts == 1
        monkeypatch.setenv(FAULTS_ENV, "routing:raise")
        faulty = SweepRunner(jobs=1, cache=cache, retry=FAST)
        result = faulty.run_one(FACTORY, CONFIGS[0])
        assert isinstance(result, FailedRun)  # the cached hit was NOT served
        assert faulty.stats.cache_hits == 0
        assert cache.puts == 1  # and the injected failure was NOT stored

    def test_quarantined_failures_never_cached(self, tmp_path, monkeypatch):
        cache = _CountingCache(tmp_path)
        monkeypatch.setenv(FAULTS_ENV, "routing:raise")
        SweepRunner(jobs=1, cache=cache, retry=FAST).run_one(
            FACTORY, CONFIGS[0])
        monkeypatch.delenv(FAULTS_ENV)
        assert cache.puts == 0
        assert len(cache) == 0
        # A later healthy invocation recomputes and gets the real result.
        runner = SweepRunner(jobs=1, cache=cache)
        result = runner.run_one(FACTORY, CONFIGS[0])
        assert isinstance(result, PPAResult)


class TestCheckpoint:
    def test_checkpointed_sweep_matches_baseline(self, tmp_path):
        ck = tmp_path / "sweep.ckpt"
        runner = SweepRunner(jobs=1, checkpoint=ck)
        assert runner.run_many(FACTORY, CONFIGS) == _baseline()
        lines = [json.loads(line) for line in ck.read_text().splitlines()]
        assert lines[0]["ev"] == "sweep"
        assert lines[-1]["ev"] == "end"
        assert sum(1 for p in lines if p["ev"] == "run") == len(CONFIGS)

    def test_full_resume_is_bit_for_bit(self, tmp_path):
        ck = tmp_path / "sweep.ckpt"
        SweepRunner(jobs=1, checkpoint=ck).run_many(FACTORY, CONFIGS)
        resumed = SweepRunner(jobs=1, checkpoint=ck)
        assert resumed.run_many(FACTORY, CONFIGS) == _baseline()
        assert resumed.stats.resumed == len(CONFIGS)
        assert resumed.stats.executed == 0

    def test_truncated_tail_resume(self, tmp_path):
        """A crash mid-write leaves a torn last line; resume keeps the
        intact prefix and recomputes only the rest."""
        ck = tmp_path / "sweep.ckpt"
        SweepRunner(jobs=1, checkpoint=ck).run_many(FACTORY, CONFIGS)
        lines = ck.read_text().splitlines()
        ck.write_text("\n".join(lines[:2]) + "\n" + lines[2][:37])
        resumed = SweepRunner(jobs=1, checkpoint=ck)
        assert resumed.run_many(FACTORY, CONFIGS) == _baseline()
        assert resumed.stats.resumed == 1
        assert resumed.stats.executed == len(CONFIGS) - 1

    def test_checkpoint_of_different_sweep_is_ignored(self, tmp_path):
        ck = tmp_path / "sweep.ckpt"
        SweepRunner(jobs=1, checkpoint=ck).run_many(FACTORY, CONFIGS)
        other = [BASE.with_(utilization=0.66)]
        runner = SweepRunner(jobs=1, checkpoint=ck)
        runner.run_many(FACTORY, other)
        assert runner.stats.resumed == 0
        assert runner.stats.executed == 1

    def test_no_resume_flag_recomputes(self, tmp_path):
        ck = tmp_path / "sweep.ckpt"
        SweepRunner(jobs=1, checkpoint=ck).run_many(FACTORY, CONFIGS)
        runner = SweepRunner(jobs=1, checkpoint=ck, resume=False)
        assert runner.run_many(FACTORY, CONFIGS) == _baseline()
        assert runner.stats.resumed == 0

    def test_parallel_checkpoint_resume(self, tmp_path):
        ck = tmp_path / "sweep.ckpt"
        first = SweepRunner(jobs=4, checkpoint=ck)
        assert first.run_many(FACTORY, CONFIGS) == _baseline()
        resumed = SweepRunner(jobs=4, checkpoint=ck)
        assert resumed.run_many(FACTORY, CONFIGS) == _baseline()
        assert resumed.stats.resumed == len(CONFIGS)

    def test_sweep_id_depends_on_keys(self):
        a = SweepCheckpoint.sweep_id(["k1", "k2"])
        b = SweepCheckpoint.sweep_id(["k1", "k3"])
        assert a != b
        assert a == SweepCheckpoint.sweep_id(["k1", "k2"])
