"""Property-test harness for clock tree synthesis (both modes).

Randomized flop placements drive :func:`synthesize_clock_tree` through
single- and dual-sided synthesis, and every structural invariant of the
tree is checked independently of the implementation:

* every sink is driven exactly once (by a clock buffer),
* the tree is acyclic and rooted at the clock source, covering every
  inserted buffer,
* the reported skew equals a recomputed insertion-delay spread,
* buffer fanout caps are respected,
* per-side wirelength sums to the total, and matches a geometric
  recomputation from the reported side assignment.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pnr import Point, synthesize_clock_tree
from repro.pnr.cts import estimate_insertion_delays
from repro.pnr.placement import Placement
from repro.netlist import Netlist

#: Flop coordinates, nm.  Distinct-count >= 2 keeps the tree non-trivial.
COORDS = st.lists(
    st.tuples(st.integers(0, 200_000), st.integers(0, 200_000)),
    min_size=2, max_size=40,
)
MODES = st.sampled_from(["single", "dual"])
FANOUTS = st.integers(2, 12)
FRACTIONS = st.floats(0.0, 1.0)


def _design(coords):
    """A clock-domain-only netlist: one DFF per coordinate."""
    netlist = Netlist("cts_prop")
    netlist.add_net("clk", primary_input=True, clock=True)
    netlist.add_net("din", primary_input=True)
    placement = Placement(die=None)
    for i, (x, y) in enumerate(coords):
        name = f"ff_{i}"
        netlist.add_instance(name, "DFFD1",
                             {"D": "din", "CK": "clk", "Q": f"q_{i}"})
        placement.locations[name] = Point(float(x), float(y))
    placement.io_pins["clk"] = Point(0.0, 0.0)
    return netlist, placement


def _star_wirelength_nm(netlist, placement, net_name) -> float:
    driver_inst, _pin = netlist.nets[net_name].driver
    src = placement.locations[driver_inst]
    return sum(
        abs(src.x_nm - placement.locations[inst].x_nm)
        + abs(src.y_nm - placement.locations[inst].y_nm)
        for inst, _p in netlist.nets[net_name].sinks
    )


@settings(max_examples=30, deadline=None)
@given(coords=COORDS, mode=MODES, max_fanout=FANOUTS, fraction=FRACTIONS)
def test_tree_invariants(ffet_lib, coords, mode, max_fanout, fraction):
    netlist, placement = _design(coords)
    netlist.bind(ffet_lib)
    flops = [f"ff_{i}" for i in range(len(coords))]

    report = synthesize_clock_tree(netlist, ffet_lib, placement, "clk",
                                   max_fanout=max_fanout, mode=mode,
                                   back_fraction=fraction)

    # 1. Every sink driven exactly once, by a clock buffer.
    assert report.sinks == len(flops)
    for flop in flops:
        appearances = [
            net.name for net in netlist.nets.values()
            if (flop, "CK") in net.sinks
        ]
        assert len(appearances) == 1, flop
        driver_inst, _pin = netlist.nets[appearances[0]].driver
        master = ffet_lib[netlist.instances[driver_inst].master]
        assert master.function == "CLKBUF"

    # 2. Acyclic, rooted at the clock source, covering every buffer.
    all_buffers = {n for n in netlist.instances if n.startswith("ctsbuf_")}
    seen_buffers: set[str] = set()
    reached_flops: set[str] = set()
    frontier = ["clk"]
    visited_nets: set[str] = set()
    while frontier:
        net_name = frontier.pop()
        assert net_name not in visited_nets, "cycle through " + net_name
        visited_nets.add(net_name)
        for inst_name, pin_name in netlist.nets[net_name].sinks:
            inst = netlist.instances[inst_name]
            if ffet_lib[inst.master].is_sequential:
                reached_flops.add(inst_name)
            else:
                assert inst_name not in seen_buffers, \
                    f"buffer {inst_name} re-driven"
                seen_buffers.add(inst_name)
                frontier.append(inst.connections["Z"])
    assert seen_buffers == all_buffers
    assert {netlist.nets[n].driver[0] for n in report.net_sides} \
        == all_buffers
    assert reached_flops == set(flops)
    assert len(all_buffers) == report.buffers
    assert report.front_buffers + report.back_buffers == report.buffers

    # 3. Reported skew equals the recomputed insertion-delay spread.
    delays = estimate_insertion_delays(netlist, ffet_lib, placement, "clk",
                                       net_sides=report.net_sides)
    assert set(delays) == {(flop, "CK") for flop in flops}
    spread = max(delays.values()) - min(delays.values())
    assert abs(spread - report.skew_est_ps) < 1e-9
    assert abs(report.max_insertion_ps - max(delays.values())) < 1e-9
    assert abs(report.min_insertion_ps - min(delays.values())) < 1e-9
    assert report.sink_insertion_ps == delays

    # 4. Fanout caps: leaf nets stay within the budget, trunk nets
    # drive exactly their two subtree buffers (FANOUTS >= 2 covers both).
    for net in netlist.nets.values():
        if net.name.startswith("ctsnet_"):
            assert len(net.sinks) <= max_fanout

    # 5. Per-side wirelength sums to the total and matches geometry.
    front = back = 0.0
    for net_name, side in report.net_sides.items():
        length = _star_wirelength_nm(netlist, placement, net_name)
        if side == "back":
            back += length
        else:
            front += length
    assert abs(front - report.front_wirelength_nm) < 1e-6
    assert abs(back - report.back_wirelength_nm) < 1e-6
    assert abs(report.total_wirelength_nm
               - (report.front_wirelength_nm
                  + report.back_wirelength_nm)) < 1e-9

    # Mode-specific: single keeps everything frontside.
    if mode == "single":
        assert report.back_wirelength_nm == 0.0
        assert report.back_buffers == 0
        assert set(report.net_sides.values()) <= {"front"}
    assert report.mode == mode
    assert 0.0 <= report.back_fraction <= 1.0


@settings(max_examples=15, deadline=None)
@given(coords=COORDS, max_fanout=FANOUTS)
def test_dual_assignment_only_renames_sides(ffet_lib, coords, max_fanout):
    """Dual-sided CTS changes *where* clock nets route, never the tree
    topology: instance set, net set and sink sets match single mode."""
    single_nl, single_pl = _design(coords)
    single_nl.bind(ffet_lib)
    synthesize_clock_tree(single_nl, ffet_lib, single_pl, "clk",
                          max_fanout=max_fanout, mode="single")

    dual_nl, dual_pl = _design(coords)
    dual_nl.bind(ffet_lib)
    synthesize_clock_tree(dual_nl, ffet_lib, dual_pl, "clk",
                          max_fanout=max_fanout, mode="dual")

    assert set(single_nl.instances) == set(dual_nl.instances)
    assert set(single_nl.nets) == set(dual_nl.nets)
    for name, net in single_nl.nets.items():
        assert sorted(net.sinks) == sorted(dual_nl.nets[name].sinks)
    assert single_pl.locations == dual_pl.locations
