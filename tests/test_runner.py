"""SweepRunner: pool fan-out, fallbacks, ordering, stats, caching."""

from __future__ import annotations

import os

import pytest

from repro.core import (
    FLOW_STAGES,
    FailedRun,
    FlowCache,
    FlowConfig,
    PPAResult,
    SweepRunner,
    resolve_jobs,
    results_to_json,
)
from repro.core import telemetry
from repro.core.runner import JOBS_ENV
from repro.core.sweeps import try_run, utilization_sweep
from repro.synth import generate_multiplier

from .golden_cases import MultiplierFactory

FACTORY = MultiplierFactory(4)
BASE = FlowConfig(arch="ffet", backside_pin_fraction=0.5)
#: Utilization beyond the Power-Tap-Cell limit: placement must fail.
IMPOSSIBLE_UTIL = 0.99


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "7")
        assert resolve_jobs(3) == 3

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "5")
        assert resolve_jobs(None) == 5

    def test_serial_without_env(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == 1

    def test_garbage_env_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "lots")
        assert resolve_jobs(None) == 1

    def test_zero_means_all_cores(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(0) == (os.cpu_count() or 1)


class TestSerialPath:
    def test_jobs1_matches_try_run(self):
        configs = [BASE.with_(utilization=u) for u in (0.5, 0.6)]
        runner = SweepRunner(jobs=1)
        results = runner.run_many(FACTORY, configs)
        expected = [try_run(FACTORY, c) for c in configs]
        assert results == expected
        assert runner.stats.parallel_runs == 0
        assert runner.stats.executed == 2

    def test_single_config_stays_serial_even_with_jobs(self):
        runner = SweepRunner(jobs=4)
        runner.run_many(FACTORY, [BASE.with_(utilization=0.5)])
        assert runner.stats.parallel_runs == 0

    def test_wall_time_captured(self):
        runner = SweepRunner(jobs=1)
        rec = runner.run_records(FACTORY, [BASE.with_(utilization=0.5)])[0]
        assert rec.wall_time_s > 0
        assert not rec.cache_hit


class TestPoolPath:
    def test_placement_error_becomes_failed_run(self):
        """A failing worker yields a FailedRun without poisoning the pool."""
        configs = [BASE.with_(utilization=u)
                   for u in (0.5, IMPOSSIBLE_UTIL, 0.6)]
        runner = SweepRunner(jobs=2)
        results = runner.run_many(FACTORY, configs)
        assert isinstance(results[0], PPAResult)
        assert isinstance(results[1], FailedRun)
        assert results[1].target_utilization == IMPOSSIBLE_UTIL
        assert isinstance(results[2], PPAResult)
        assert runner.stats.failed == 1
        assert runner.stats.parallel_runs == 3

    def test_result_order_is_submission_order(self):
        utils = (0.66, 0.5, 0.6, 0.56)
        runner = SweepRunner(jobs=2)
        results = runner.run_many(
            FACTORY, [BASE.with_(utilization=u) for u in utils])
        assert [r.target_utilization for r in results] == list(utils)
        # And identical to the serial reference, bit for bit.
        assert results == [try_run(FACTORY, BASE.with_(utilization=u))
                           for u in utils]

    def test_unpicklable_factory_falls_back_to_serial(self):
        runner = SweepRunner(jobs=2)
        results = runner.run_many(
            lambda: generate_multiplier(4),
            [BASE.with_(utilization=u) for u in (0.5, 0.6)])
        assert all(isinstance(r, PPAResult) for r in results)
        assert runner.stats.serial_fallbacks == 1
        assert runner.stats.parallel_runs == 0


class TestCachedPath:
    def test_second_sweep_is_all_hits(self, tmp_path):
        runner = SweepRunner(jobs=1, cache=FlowCache(tmp_path))
        utils = (0.5, 0.6)
        first = utilization_sweep(FACTORY, BASE, utils, runner=runner)
        second = utilization_sweep(FACTORY, BASE, utils, runner=runner)
        assert first == second
        assert runner.stats.cache_hits == 2
        assert runner.stats.executed == 2

    def test_failed_runs_are_cached_too(self, tmp_path):
        runner = SweepRunner(jobs=1, cache=FlowCache(tmp_path))
        config = BASE.with_(utilization=IMPOSSIBLE_UTIL)
        first = runner.run_one(FACTORY, config)
        second = runner.run_one(FACTORY, config)
        assert isinstance(first, FailedRun)
        assert second == first
        assert runner.stats.cache_hits == 1

    def test_tag_only_difference_hits_same_entry(self, tmp_path):
        runner = SweepRunner(jobs=1, cache=FlowCache(tmp_path))
        runner.run_one(FACTORY, BASE.with_(utilization=0.5, tag="a"))
        runner.run_one(FACTORY, BASE.with_(utilization=0.5, tag="b"))
        assert runner.stats.cache_hits == 1
        assert runner.stats.executed == 1

    def test_stats_summary_mentions_counts(self, tmp_path):
        runner = SweepRunner(jobs=1, cache=FlowCache(tmp_path))
        runner.run_many(FACTORY, [BASE.with_(utilization=0.5)] * 2)
        text = runner.stats.summary()
        assert "1 cached" in text and "1 executed" in text


class TestParallelDeterminism:
    """--jobs must never change results or the traces' stage structure."""

    UTILS = (0.5, 0.56, 0.6, 0.66)

    def test_jobs1_and_jobs4_are_byte_identical(self, tmp_path):
        configs = [BASE.with_(utilization=u) for u in self.UTILS]
        serial = SweepRunner(jobs=1, trace_dir=tmp_path / "serial")
        parallel = SweepRunner(jobs=4, trace_dir=tmp_path / "parallel")
        runs1 = serial.run_many(FACTORY, configs)
        runs4 = parallel.run_many(FACTORY, configs)
        assert runs1 == runs4
        # Byte-identical result sets, not merely equal objects.
        assert results_to_json(runs1) == results_to_json(runs4)

    def test_trace_stage_lists_consistent_across_jobs(self, tmp_path):
        configs = [BASE.with_(utilization=u) for u in self.UTILS[:2]]
        stage_lists = {}
        for jobs in (1, 4):
            runner = SweepRunner(jobs=jobs, trace_dir=tmp_path / str(jobs))
            records = runner.run_records(FACTORY, configs)
            stage_lists[jobs] = [tuple(r.trace.stage_list()) for r in records]
            for rec in records:
                assert rec.trace is not None
                assert tuple(rec.trace.stage_list()) == FLOW_STAGES
        assert stage_lists[1] == stage_lists[4]

    def test_trace_files_written_and_loadable(self, tmp_path):
        runner = SweepRunner(jobs=2, trace_dir=tmp_path / "t")
        runner.run_many(FACTORY,
                        [BASE.with_(utilization=u) for u in (0.5, 0.6)])
        traces = telemetry.load_traces(tmp_path / "t")
        runs = [t for t in traces if t.label != "sweep"]
        assert len(runs) == 2
        for trace in runs:
            assert tuple(trace.stage_list()) == FLOW_STAGES
        assert runner.stats.stage_time_s
        assert set(runner.stats.stage_time_s) >= set(FLOW_STAGES)
        assert "sweep stage breakdown" in runner.stats.stage_summary()

    def test_cache_hit_recorded_as_zero_cost_span(self, tmp_path):
        runner = SweepRunner(jobs=1, cache=FlowCache(tmp_path / "cache"),
                             trace_dir=tmp_path / "t")
        config = BASE.with_(utilization=0.5)
        runner.run_one(FACTORY, config)
        runner.run_one(FACTORY, config)
        traces = telemetry.load_traces(tmp_path / "t")
        hits = [s for t in traces for s in t.spans if s.name == "cache_hit"]
        assert len(hits) == 1
        assert hits[0].duration_s == 0.0
        assert runner.stats.counters.get("cache.hits") == 1
        assert runner.stats.stage_time_s.get("cache_hit") == 0.0

    def test_no_tracing_by_default(self):
        runner = SweepRunner(jobs=1)
        rec = runner.run_records(FACTORY, [BASE.with_(utilization=0.5)])[0]
        assert rec.trace is None
        assert runner.stats.stage_time_s == {}


class TestSweepIntegration:
    def test_max_valid_utilization_through_runner(self):
        from repro.core.sweeps import max_valid_utilization
        runner = SweepRunner(jobs=1)
        best, runs = max_valid_utilization(
            FACTORY, BASE, utilizations=(0.5, 0.7, IMPOSSIBLE_UTIL),
            runner=runner)
        assert best == 0.7
        assert len(runs) == 3
