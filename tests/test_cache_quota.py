"""Byte quota and LRU eviction on the content-addressed store."""

from __future__ import annotations

import os
import time

from repro.core import FlowCache, telemetry
from repro.core.cache import MAX_BYTES_ENV, default_max_bytes
from repro.core.faults import FAULTS_ENV
from repro.core.ppa import FailedRun

KEYS = [f"{i:02x}" + "0" * 62 for i in range(16)]


def _put(cache: FlowCache, key: str) -> None:
    cache.put(key, FailedRun(label="x", target_utilization=0.9, reason="tap"))


def _entry_size(tmp_path) -> int:
    # Approximate: the embedded ``created`` timestamp's repr makes
    # entries jitter by a byte or two, so quota tests that want "N
    # entries fit, N+1 do not" must add _SLACK to N * _entry_size().
    probe = FlowCache(tmp_path / "probe")
    _put(probe, KEYS[0])
    return probe._path(KEYS[0]).stat().st_size


_SLACK = 16


def _age(cache: FlowCache, key: str, seconds: float) -> None:
    """Backdate one entry's access journal deterministically."""
    old = time.time() - seconds
    os.utime(cache._path(key), (old, old))


class TestDefaultMaxBytes:
    def test_unset_is_unbounded(self, monkeypatch):
        monkeypatch.delenv(MAX_BYTES_ENV, raising=False)
        assert default_max_bytes() is None

    def test_env_value(self, monkeypatch):
        monkeypatch.setenv(MAX_BYTES_ENV, "1048576")
        assert default_max_bytes() == 1048576

    def test_scientific_notation(self, monkeypatch):
        monkeypatch.setenv(MAX_BYTES_ENV, "5e6")
        assert default_max_bytes() == 5_000_000

    def test_garbage_and_nonpositive_are_unbounded(self, monkeypatch):
        monkeypatch.setenv(MAX_BYTES_ENV, "lots")
        assert default_max_bytes() is None
        monkeypatch.setenv(MAX_BYTES_ENV, "0")
        assert default_max_bytes() is None

    def test_constructor_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(MAX_BYTES_ENV, "123")
        assert FlowCache(tmp_path, max_bytes=456).max_bytes == 456
        assert FlowCache(tmp_path).max_bytes == 123
        assert FlowCache(tmp_path, max_bytes=0).max_bytes is None


class TestLruEviction:
    def test_unbounded_never_evicts(self, tmp_path):
        cache = FlowCache(tmp_path)
        for key in KEYS[:6]:
            _put(cache, key)
        assert len(cache) == 6
        assert cache.evictions == 0

    def test_oldest_entries_evicted_first(self, tmp_path):
        size = _entry_size(tmp_path)
        cache = FlowCache(tmp_path, max_bytes=3 * size + _SLACK)
        for i, key in enumerate(KEYS[:3]):
            _put(cache, key)
            _age(cache, key, seconds=300 - i)  # KEYS[0] is coldest
        _put(cache, KEYS[3])
        assert cache.evictions == 1
        assert not cache._path(KEYS[0]).exists()
        assert all(cache._path(k).exists() for k in KEYS[1:4])

    def test_hit_bumps_recency(self, tmp_path):
        size = _entry_size(tmp_path)
        cache = FlowCache(tmp_path, max_bytes=3 * size + _SLACK)
        for i, key in enumerate(KEYS[:3]):
            _put(cache, key)
            _age(cache, key, seconds=300 - i)
        assert cache.get(KEYS[0]) is not None  # touch: now the hottest
        _put(cache, KEYS[3])
        assert cache._path(KEYS[0]).exists()
        assert not cache._path(KEYS[1]).exists()  # next-coldest went

    def test_locked_keys_are_pinned(self, tmp_path):
        size = _entry_size(tmp_path)
        cache = FlowCache(tmp_path, max_bytes=2 * size + _SLACK)
        _put(cache, KEYS[0])
        _age(cache, KEYS[0], seconds=300)  # coldest, but pinned below
        lock = cache.locks.lock(KEYS[0])
        assert lock.try_acquire()
        _put(cache, KEYS[1])
        _age(cache, KEYS[1], seconds=200)
        _put(cache, KEYS[2])
        assert cache._path(KEYS[0]).exists()  # pinned survived
        assert not cache._path(KEYS[1]).exists()  # LRU fell on the next
        lock.release()

    def test_blobs_count_toward_quota(self, tmp_path):
        probe = FlowCache(tmp_path / "probe")
        payload = {"stage": "sta", "artifact": {"pad": "y" * 256}}
        probe.put_blob(KEYS[0], "stage-sta", payload)
        blob_size = probe._blob_path(KEYS[0], "stage-sta").stat().st_size
        cache = FlowCache(tmp_path / "store", max_bytes=blob_size)
        cache.put_blob(KEYS[0], "stage-sta", payload)
        cold = cache._blob_path(KEYS[0], "stage-sta")
        old = time.time() - 300
        os.utime(cold, (old, old))
        cache.put_blob(KEYS[1], "stage-sta", payload)
        assert cache.evictions >= 1
        assert not cold.exists()

    def test_eviction_counted_on_trace(self, tmp_path):
        size = _entry_size(tmp_path)
        cache = FlowCache(tmp_path, max_bytes=size + _SLACK)
        _put(cache, KEYS[0])
        _age(cache, KEYS[0], seconds=300)
        victim_bytes = cache._path(KEYS[0]).stat().st_size
        tracer = telemetry.Tracer(label="t")
        with telemetry.activate(tracer):
            _put(cache, KEYS[1])
        trace = tracer.finish()
        assert trace.counters.get("cache.evicted") == 1
        assert trace.counters.get("cache.evicted_bytes") == victim_bytes

    def test_evicted_entry_is_a_clean_miss(self, tmp_path):
        size = _entry_size(tmp_path)
        cache = FlowCache(tmp_path, max_bytes=size + _SLACK)
        _put(cache, KEYS[0])
        _age(cache, KEYS[0], seconds=300)
        _put(cache, KEYS[1])
        assert cache.get(KEYS[0]) is None
        assert cache.corrupt == 0
        assert cache.fsck()["clean"]


class TestEvictRaceFault:
    def test_evict_fault_flushes_unpinned(self, tmp_path, monkeypatch):
        cache = FlowCache(tmp_path)  # unbounded: only the fault evicts
        _put(cache, KEYS[0])
        _put(cache, KEYS[1])
        lock = cache.locks.lock(KEYS[1])
        assert lock.try_acquire()
        monkeypatch.setenv(FAULTS_ENV, "cache.evict:corrupt")
        _put(cache, KEYS[2])
        assert not cache._path(KEYS[0]).exists()
        assert cache._path(KEYS[1]).exists()  # pinned even under the fault
        lock.release()
        monkeypatch.delenv(FAULTS_ENV)
        assert cache.fsck()["clean"]  # mass eviction never corrupts
