"""Unit tests for layer geometry and derived RC parameters."""

import pytest

from repro.tech import Direction, Layer, LayerPurpose, Side, Via


def make_layer(pitch=30.0, name="FM2", side=Side.FRONT, index=2,
               direction=Direction.HORIZONTAL):
    return Layer(name, side, index, pitch, direction)


class TestSide:
    def test_opposite(self):
        assert Side.FRONT.opposite is Side.BACK
        assert Side.BACK.opposite is Side.FRONT

    def test_str(self):
        assert str(Side.FRONT) == "front"


class TestLayerGeometry:
    def test_width_is_half_pitch(self):
        assert make_layer(30.0).width_nm == 15.0

    def test_spacing_is_half_pitch(self):
        assert make_layer(42.0).spacing_nm == 21.0

    def test_thickness_uses_aspect_ratio(self):
        layer = make_layer(30.0)
        assert layer.thickness_nm == pytest.approx(2.0 * layer.width_nm)

    def test_zero_pitch_rejected(self):
        with pytest.raises(ValueError):
            make_layer(0.0)

    def test_negative_pitch_rejected(self):
        with pytest.raises(ValueError):
            make_layer(-5.0)


class TestLayerElectrical:
    def test_narrow_layer_more_resistive(self):
        narrow = make_layer(30.0)
        wide = make_layer(720.0, name="FM12", index=12)
        assert narrow.resistance_kohm_per_um > 10 * wide.resistance_kohm_per_um

    def test_resistance_plausible_for_m2(self):
        # ~0.1-1 kOhm/um at a 15 nm line is the right ballpark for 5 nm.
        r = make_layer(30.0).resistance_kohm_per_um
        assert 0.1 < r < 2.0

    def test_capacitance_plausible(self):
        c = make_layer(30.0).capacitance_ff_per_um
        assert 0.1 < c < 0.5

    def test_capacitance_similar_across_pitches(self):
        # Per-um capacitance is only weakly pitch dependent.
        c_narrow = make_layer(30.0).capacitance_ff_per_um
        c_wide = make_layer(720.0, name="FM12", index=12).capacitance_ff_per_um
        assert 0.3 < c_narrow / c_wide < 3.0


class TestLayerPurpose:
    def test_signal_layers_routable(self):
        assert make_layer().is_routable

    def test_m0_not_routable(self):
        layer = Layer("FM0", Side.FRONT, 0, 28.0, Direction.HORIZONTAL,
                      LayerPurpose.INTRA_CELL)
        assert not layer.is_routable

    def test_power_layer_not_routable(self):
        layer = Layer("BM1", Side.BACK, 1, 3200.0, Direction.VERTICAL,
                      LayerPurpose.POWER)
        assert not layer.is_routable


class TestVia:
    def test_same_side_required(self):
        front = make_layer()
        back = Layer("BM2", Side.BACK, 2, 30.0, Direction.HORIZONTAL)
        with pytest.raises(ValueError):
            Via(front, back)

    def test_resistance_positive(self):
        a = make_layer(30.0, "FM2", index=2)
        b = make_layer(42.0, "FM3", index=3, direction=Direction.VERTICAL)
        assert Via(a, b).resistance_kohm > 0

    def test_small_cut_more_resistive(self):
        lo = make_layer(30.0, "FM2", index=2)
        hi = make_layer(42.0, "FM3", index=3)
        top = make_layer(720.0, "FM12", index=12)
        assert Via(lo, hi).resistance_kohm > Via(hi, top).resistance_kohm

    def test_name(self):
        a = make_layer(30.0, "FM2", index=2)
        b = make_layer(42.0, "FM3", index=3)
        assert Via(a, b).name == "VIA_FM2_FM3"
