"""LEF/DEF writer/parser and DEF merge tests."""

import pytest

from repro.lefdef import (
    DefComponent,
    DefDesign,
    RouteSegment,
    merge_defs,
    parse_def,
    parse_lef,
    write_def,
    write_lef,
)
from repro.tech import Side


class TestLef:
    def test_roundtrip_macros(self, ffet_lib):
        macros = parse_lef(write_lef(ffet_lib))
        assert set(macros) == set(ffet_lib.masters)

    def test_pin_sides_encoded(self, ffet_lib):
        macros = parse_lef(write_lef(ffet_lib))
        inv = macros["INVD1"]
        assert inv.pins["ZN"].sides == {Side.FRONT, Side.BACK}
        assert inv.pins["A"].sides == {Side.FRONT}

    def test_cfet_pins_front_only(self, cfet_lib):
        macros = parse_lef(write_lef(cfet_lib))
        for macro in macros.values():
            for pin in macro.pins.values():
                assert pin.sides == {Side.FRONT}

    def test_sizes_match_library(self, ffet_lib):
        macros = parse_lef(write_lef(ffet_lib))
        tech = ffet_lib.tech
        for name, macro in macros.items():
            master = ffet_lib[name]
            assert macro.width_um == pytest.approx(
                master.width_cpp * tech.cpp_nm / 1000.0, abs=1e-3)
            assert macro.height_um == pytest.approx(
                tech.cell_height_nm / 1000.0, abs=1e-3)

    def test_redistributed_lef_moves_pins(self, ffet_lib):
        from repro.cells import redistribute_input_pins

        lib = redistribute_input_pins(ffet_lib, 1.0)  # everything backside
        macros = parse_lef(write_lef(lib))
        assert macros["NAND2D1"].pins["A"].sides == {Side.BACK}

    def test_directions_and_use(self, ffet_lib):
        macros = parse_lef(write_lef(ffet_lib))
        dff = macros["DFFD1"]
        assert dff.pins["Q"].direction == "OUTPUT"
        assert dff.pins["CK"].use == "CLOCK"


def sample_def():
    design = DefDesign("blk", 5000.0, 4000.0)
    design.components["u1"] = DefComponent("u1", "INVD1", 100.0, 52.5)
    design.components["u2"] = DefComponent("u2", "NAND2D1", 900.0, 157.5)
    design.components["t1"] = DefComponent("t1", "PTAP", 0.0, 52.5, fixed=True)
    design.nets["n1"] = [
        RouteSegment("FM2", 100.0, 52.0, 900.0, 52.0),
        RouteSegment("FM1", 900.0, 52.0, 900.0, 157.0),
    ]
    design.special_nets["VSS"] = [RouteSegment("BM2", 0.0, 0.0, 0.0, 4000.0)]
    return design


class TestDef:
    def test_roundtrip(self):
        design = sample_def()
        back = parse_def(write_def(design))
        assert back.name == "blk"
        assert back.die_width_nm == 5000.0
        assert set(back.components) == set(design.components)
        assert back.components["t1"].fixed
        assert len(back.nets["n1"]) == 2
        assert back.nets["n1"][0].layer == "FM2"
        assert back.special_nets["VSS"][0].layer == "BM2"

    def test_wirelength(self):
        design = sample_def()
        assert design.total_wirelength_nm == pytest.approx(800.0 + 105.0)

    def test_layers_used(self):
        assert sample_def().layers_used() == {"FM1", "FM2"}

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_def("not a def file")


class TestMerge:
    def test_merge_unions_nets(self):
        front = sample_def()
        back = DefDesign("blk_back", 5000.0, 4000.0,
                         components=dict(front.components))
        back.nets["n1"] = [RouteSegment("BM2", 100.0, 52.0, 500.0, 52.0)]
        back.nets["n2"] = [RouteSegment("BM1", 0.0, 0.0, 0.0, 100.0)]
        merged = merge_defs(front, back, name="blk")
        assert len(merged.nets["n1"]) == 3
        assert "n2" in merged.nets
        assert merged.layers_used() == {"FM1", "FM2", "BM1", "BM2"}

    def test_component_mismatch_rejected(self):
        front = sample_def()
        back = DefDesign("b", 5000.0, 4000.0)
        with pytest.raises(ValueError, match="component mismatch"):
            merge_defs(front, back)

    def test_side_layer_mixup_rejected(self):
        front = sample_def()
        bad_back = DefDesign("b", 5000.0, 4000.0,
                             components=dict(front.components))
        bad_back.nets["x"] = [RouteSegment("FM3", 0, 0, 10, 0)]
        with pytest.raises(ValueError, match="side/layer"):
            merge_defs(front, bad_back)

    def test_merge_keeps_specialnets(self):
        front = sample_def()
        back = DefDesign("b", 5000.0, 4000.0,
                         components=dict(front.components))
        back.special_nets["VDD"] = [RouteSegment("BM2", 10, 0, 10, 100)]
        merged = merge_defs(front, back)
        assert set(merged.special_nets) == {"VSS", "VDD"}


def sample_back_def(front: DefDesign) -> DefDesign:
    back = DefDesign("blk_back", front.die_width_nm, front.die_height_nm,
                     components=dict(front.components))
    back.nets["n1"] = [RouteSegment("BM2", 100.0, 52.0, 500.0, 52.0)]
    back.nets["n2"] = [RouteSegment("BM1", 0.0, 0.0, 0.0, 100.0)]
    return back


class TestMergeInvariants:
    """Merging preserves components/nets exactly once, in either order."""

    def test_components_preserved_exactly_once(self):
        front = sample_def()
        back = sample_back_def(front)
        merged = merge_defs(front, back, name="blk")
        assert merged.components == front.components
        assert len(merged.components) == len(front.components)

    def test_every_segment_exactly_once(self):
        front = sample_def()
        back = sample_back_def(front)
        merged = merge_defs(front, back, name="blk")
        for net in set(front.nets) | set(back.nets):
            expected = front.nets.get(net, []) + back.nets.get(net, [])
            assert merged.nets[net] == expected
        total = sum(len(s) for s in merged.nets.values())
        assert total == sum(len(s) for s in front.nets.values()) \
            + sum(len(s) for s in back.nets.values())

    def test_merge_is_argument_order_insensitive(self):
        front = sample_def()
        back = sample_back_def(front)
        assert merge_defs(front, back, name="blk") \
            == merge_defs(back, front, name="blk")

    def test_order_insensitive_default_name(self):
        front = sample_def()
        front.name = "blk_front"
        back = sample_back_def(front)
        assert merge_defs(back, front).name == "blk"
        assert merge_defs(front, back).name == "blk"

    def test_inputs_not_mutated(self):
        front = sample_def()
        back = sample_back_def(front)
        front_nets = {n: list(s) for n, s in front.nets.items()}
        back_nets = {n: list(s) for n, s in back.nets.items()}
        merge_defs(front, back)
        assert front.nets == front_nets
        assert back.nets == back_nets

    def test_merged_view_from_flow_artifacts(self):
        """End-to-end: the flow's own two DEFs obey the same invariants."""
        from repro.core import FlowConfig, run_flow
        from repro.synth import generate_multiplier

        artifacts = run_flow(lambda: generate_multiplier(4),
                             FlowConfig(utilization=0.6),
                             return_artifacts=True)
        front = artifacts.defs[Side.FRONT]
        back = artifacts.defs[Side.BACK]
        remerged = merge_defs(back, front, name=artifacts.merged_def.name)
        assert remerged == artifacts.merged_def
        assert set(remerged.components) == set(front.components)
