"""Functional verification of the generated RISC-V core.

The gate-level netlist is simulated cycle by cycle and compared against
the golden ISA model in :mod:`riscv_golden` for programs covering every
implemented instruction class.
"""

import pytest

from repro.synth import RiscvConfig, generate_riscv_core

from tests.riscv_golden import (
    GoldenCpu,
    add, addi, and_, auipc, beq, blt, bltu, bne, jal, jalr, lui, lw,
    or_, sll, slt, slti, sltu, sra, srl, sub, sw, xor, xori,
)


class CoreHarness:
    """Drives the gate-level core one instruction at a time."""

    def __init__(self, library, config: RiscvConfig):
        self.config = config
        self.netlist = generate_riscv_core(config)
        self.netlist.bind(library)
        self.library = library
        self.state = {
            inst.name: False
            for inst in self.netlist.sequential_instances(library)
        }
        # Map architectural state to flop instances via the Q nets.
        self.reg_flops = {
            r: [self.netlist.nets[net].driver[0] for net in nets]
            for r, nets in self.netlist.attributes["regfile_nets"].items()
        }
        self.pc_flops = [
            self.netlist.nets[net].driver[0]
            for net in self.netlist.attributes["pc_nets"]
        ]
        self.memory: dict[int, int] = {}

    # -- architectural state ------------------------------------------------
    def read_word(self, flops) -> int:
        return sum(int(self.state[f]) << i for i, f in enumerate(flops))

    @property
    def pc(self) -> int:
        return self.read_word(self.pc_flops)

    def reg(self, r: int) -> int:
        if r == 0:
            return 0
        return self.read_word(self.reg_flops[r])

    # -- execution ----------------------------------------------------------
    def _inputs(self, instr: int, rdata: int) -> dict[str, bool]:
        inputs = {f"instr[{i}]": bool((instr >> i) & 1) for i in range(32)}
        for i in range(self.config.xlen):
            inputs[f"dmem_rdata[{i}]"] = bool((rdata >> i) & 1)
        return inputs

    def step(self, instr: int) -> None:
        # Pass 1: resolve the memory address/control with rdata = 0.
        values = self.netlist.simulate(self.library,
                                       self._inputs(instr, 0), self.state)
        addr = sum(
            int(values[f"dmem_addr[{i}]"]) << i
            for i in range(self.config.xlen)
        )
        if values["dmem_we"]:
            wdata = sum(
                int(values[f"dmem_wdata[{i}]"]) << i
                for i in range(self.config.xlen)
            )
            self.memory[addr] = wdata
        rdata = self.memory.get(addr, 0)
        # Pass 2: clock the design with the real read data.
        self.state = self.netlist.next_state(
            self.library, self._inputs(instr, rdata), self.state
        )


def run_and_compare(library, program, config=RiscvConfig(),
                    max_steps=None) -> tuple[CoreHarness, GoldenCpu]:
    """Run `program` on both models, comparing after every step."""
    core = CoreHarness(library, config)
    gold = GoldenCpu(xlen=config.xlen, nregs=config.nregs)
    mask = (1 << config.xlen) - 1
    for step in range(max_steps or len(program)):
        pc = gold.pc
        assert core.pc == pc, f"PC mismatch at step {step}"
        index = (pc // 4) % len(program)
        instr = program[index]
        core.step(instr)
        gold.step(instr)
        for r in range(1, config.nregs):
            assert core.reg(r) == gold.regs[r] & mask, \
                f"x{r} mismatch after step {step} (instr {instr:#010x})"
    assert core.pc == gold.pc
    return core, gold


@pytest.fixture(scope="module")
def lib(ffet_lib):
    return ffet_lib


class TestTinyCore:
    """xlen=8, nregs=8: fast full-coverage runs."""

    CFG = RiscvConfig(xlen=8, nregs=8, name="rv_tiny")

    def test_arithmetic(self, lib):
        program = [
            addi(1, 0, 7),
            addi(2, 0, 5),
            add(3, 1, 2),      # x3 = 12
            sub(4, 1, 2),      # x4 = 2
            xor(5, 1, 2),      # x5 = 2
            or_(6, 1, 2),      # x6 = 7
            and_(7, 1, 2),     # x7 = 5
        ]
        core, gold = run_and_compare(lib, program, self.CFG)
        assert gold.regs[3] == 12 and core.reg(3) == 12

    def test_shifts(self, lib):
        program = [
            addi(1, 0, 0b1011),
            addi(2, 0, 2),
            sll(3, 1, 2),
            srl(4, 1, 2),
            addi(5, 0, -16),   # negative value for arithmetic shift
            sra(6, 5, 2),
        ]
        run_and_compare(lib, program, self.CFG)

    def test_compares(self, lib):
        program = [
            addi(1, 0, -3),
            addi(2, 0, 4),
            slt(3, 1, 2),      # signed: -3 < 4 -> 1
            sltu(4, 1, 2),     # unsigned: 253 < 4 -> 0
            slti(5, 2, 10),    # 4 < 10 -> 1
        ]
        core, gold = run_and_compare(lib, program, self.CFG)
        assert gold.regs[3] == 1 and gold.regs[4] == 0

    def test_branches_taken_and_not(self, lib):
        program = [
            addi(1, 0, 1),
            addi(2, 0, 1),
            beq(1, 2, 8),      # taken: skip next
            addi(3, 0, 99),    # skipped
            bne(1, 2, 8),      # not taken
            addi(4, 0, 42),
            blt(2, 1, 8),      # not taken (equal)
            bltu(0, 1, 8),     # taken
        ]
        core, gold = run_and_compare(lib, program, self.CFG, max_steps=8)
        assert gold.regs[3] == 0 and gold.regs[4] == 42

    def test_memory_roundtrip(self, lib):
        program = [
            addi(1, 0, 55),
            addi(2, 0, 16),
            sw(1, 2, 4),       # mem[20] = 55
            lw(3, 2, 4),       # x3 = 55
        ]
        core, gold = run_and_compare(lib, program, self.CFG)
        assert gold.regs[3] == 55 and core.reg(3) == 55
        assert core.memory[20] == 55


class TestFullCore:
    """Full 32-bit core, paper-scale configuration."""

    def test_mixed_program(self, lib):
        program = [
            lui(1, 0x12345000),
            addi(1, 1, 0x678),     # x1 = 0x12345678
            auipc(2, 0x1000),      # x2 = pc + 0x1000
            addi(3, 0, 100),
            add(4, 1, 3),
            sub(5, 4, 1),          # x5 = 100
            xori(6, 5, 0xFF),
            sll(7, 3, 5),
            jal(8, 12),            # jump over the next two
            addi(9, 0, 1),         # skipped
            addi(9, 0, 2),         # skipped
            addi(10, 0, 77),
            jalr(11, 8, 16),       # return-ish jump
        ]
        core, gold = run_and_compare(lib, program, RiscvConfig(),
                                     max_steps=10)
        assert gold.regs[1] == 0x12345678
        assert gold.regs[5] == 100

    def test_instance_count_paper_scale(self, lib):
        netlist = generate_riscv_core()
        assert len(netlist.instances) > 4000  # a real block, not a toy


class TestRandomPrograms:
    """Randomized instruction fuzzing against the golden model."""

    CFG = RiscvConfig(xlen=8, nregs=8, name="rv_fuzz")

    def _random_program(self, rng, length):
        from tests import riscv_golden as asm

        program = []
        for _ in range(length):
            kind = rng.randrange(6)
            rd = rng.randrange(1, 8)
            rs1 = rng.randrange(8)
            rs2 = rng.randrange(8)
            if kind == 0:
                program.append(asm.addi(rd, rs1, rng.randrange(-32, 32)))
            elif kind == 1:
                op = rng.choice([asm.add, asm.sub, asm.and_, asm.or_,
                                 asm.xor, asm.slt, asm.sltu])
                program.append(op(rd, rs1, rs2))
            elif kind == 2:
                op = rng.choice([asm.sll, asm.srl, asm.sra])
                program.append(op(rd, rs1, rs2))
            elif kind == 3:
                program.append(asm.lui(rd, rng.randrange(0, 1 << 20) << 12))
            elif kind == 4:
                program.append(asm.xori(rd, rs1, rng.randrange(-32, 32)))
            else:
                program.append(asm.slti(rd, rs1, rng.randrange(-32, 32)))
        return program

    @pytest.mark.parametrize("seed", range(6))
    def test_random_arithmetic_programs(self, lib, seed):
        import random

        rng = random.Random(seed)
        program = self._random_program(rng, 12)
        run_and_compare(lib, program, self.CFG)
