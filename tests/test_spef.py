"""SPEF writer/parser tests."""

import pytest

from repro.extract import estimate_parasitics, parse_spef, write_spef


@pytest.fixture()
def spef_text(ffet_lib, counter8):
    extraction = estimate_parasitics(counter8, ffet_lib)
    return counter8, extraction, write_spef(counter8, extraction)


class TestSpef:
    def test_header(self, spef_text):
        _nl, _ext, text = spef_text
        assert '*SPEF "IEEE 1481-1998"' in text
        assert '*DESIGN "counter"' in text
        assert "*C_UNIT 1 FF" in text

    def test_every_net_present(self, spef_text):
        nl, ext, text = spef_text
        parsed = parse_spef(text)
        assert set(parsed) == set(nl.nets)

    def test_total_caps_match(self, spef_text):
        _nl, ext, text = spef_text
        parsed = parse_spef(text)
        for name, net in parsed.items():
            assert net.total_cap_ff == pytest.approx(
                ext[name].total_cap_ff, abs=1e-4)

    def test_connectivity_round_trip(self, spef_text):
        nl, _ext, text = spef_text
        parsed = parse_spef(text)
        for name, net in nl.nets.items():
            spef_net = parsed[name]
            if net.driver is not None:
                assert spef_net.driver == net.driver
            assert sorted(spef_net.sinks) == sorted(net.sinks)

    def test_wire_rc_round_trip(self, spef_text):
        _nl, ext, text = spef_text
        parsed = parse_spef(text)
        for name, spef_net in parsed.items():
            assert spef_net.wire_cap_ff == pytest.approx(
                ext[name].wire_cap_ff, abs=1e-4)
            assert spef_net.wire_res_kohm == pytest.approx(
                ext[name].wire_res_kohm, abs=1e-4)
