"""Stackup construction against the paper's Table II."""

import pytest

from repro.tech import (
    TABLE_II,
    LayerPurpose,
    Side,
    build_stackup,
    pitch_for,
)


@pytest.fixture(scope="module")
def ffet():
    return build_stackup("ffet")


@pytest.fixture(scope="module")
def cfet():
    return build_stackup("cfet")


class TestTableII:
    def test_pitch_lookup(self):
        assert pitch_for("FM2", "ffet") == 30.0
        assert pitch_for("BM1", "cfet") == 3200.0
        assert pitch_for("BM1", "ffet") == 34.0

    def test_absent_layers(self):
        assert pitch_for("BPR", "ffet") is None
        assert pitch_for("BM5", "cfet") is None
        assert pitch_for("BM12", "cfet") is None

    def test_unknown_layer(self):
        with pytest.raises(KeyError):
            pitch_for("FM99", "ffet")

    def test_unknown_tech(self):
        with pytest.raises(ValueError):
            pitch_for("FM2", "finfet")

    def test_frontside_pitches_identical(self):
        for name, (cfet_p, ffet_p) in TABLE_II.items():
            if name.startswith("FM") or name == "Poly":
                assert cfet_p == ffet_p, name


class TestFfetStackup:
    def test_symmetric_metal_counts(self, ffet):
        front = [l for l in ffet.on_side(Side.FRONT) if l.index >= 0]
        back = [l for l in ffet.on_side(Side.BACK) if l.index >= 0]
        assert len(front) == len(back) == 13  # M0..M12

    def test_symmetric_pitches(self, ffet):
        # FFET's process symmetry: FMn pitch differs from BMn by at most
        # the FM1/FM2 asymmetry the table itself carries.
        for i in range(3, 13):
            assert ffet.metal(Side.FRONT, i).pitch_nm == \
                ffet.metal(Side.BACK, i).pitch_nm

    def test_no_bpr(self, ffet):
        assert "BPR" not in ffet

    def test_routing_layers_exclude_m0(self, ffet):
        names = [l.name for l in ffet.routing_layers(Side.FRONT)]
        assert "FM0" not in names
        assert len(names) == 12

    def test_routing_layer_limit(self, ffet):
        names = [l.name for l in ffet.routing_layers(Side.BACK, 6)]
        assert names == [f"BM{i}" for i in range(1, 7)]

    def test_backside_routable(self, ffet):
        assert len(ffet.routing_layers(Side.BACK)) == 12


class TestCfetStackup:
    def test_bpr_present(self, cfet):
        assert cfet["BPR"].purpose is LayerPurpose.POWER

    def test_backside_pdn_only(self, cfet):
        assert cfet.routing_layers(Side.BACK) == []
        assert cfet["BM1"].purpose is LayerPurpose.POWER
        assert cfet["BM2"].purpose is LayerPurpose.POWER

    def test_no_bm0(self, cfet):
        assert "BM0" not in cfet

    def test_frontside_routing(self, cfet):
        assert len(cfet.routing_layers(Side.FRONT)) == 12


class TestStackupInvariants:
    def test_directions_alternate(self, ffet):
        for side in (Side.FRONT, Side.BACK):
            layers = ffet.routing_layers(side)
            for lo, hi in zip(layers, layers[1:]):
                assert lo.direction is not hi.direction

    def test_vias_cover_all_adjacent_pairs(self, ffet):
        vias = ffet.vias(Side.FRONT)
        assert len(vias) == 12  # M0-M1 .. M11-M12

    def test_duplicate_layer_rejected(self, ffet):
        from repro.tech import Stackup

        layer = ffet["FM2"]
        with pytest.raises(ValueError):
            Stackup("dup", [layer, layer])

    def test_unknown_tech_rejected(self):
        with pytest.raises(ValueError):
            build_stackup("gaafet")
