"""Detailed-placement refinement and RUDY congestion estimation tests."""

import math

import numpy as np
import pytest

from repro.pnr import (
    FloorplanSpec,
    place,
    plan_floor,
    plan_power,
    refine_placement,
)
from repro.pnr.routing import rudy_map, peak_congestion_estimate


@pytest.fixture()
def placed(ffet_lib, mult4):
    die = plan_floor(mult4, ffet_lib, FloorplanSpec(0.6))
    powerplan = plan_power(ffet_lib.tech, die)
    placement = place(mult4, ffet_lib, die, powerplan, seed=0)
    return die, powerplan, placement


class TestRefinement:
    def test_hpwl_never_worse(self, ffet_lib, mult4, placed):
        die, powerplan, placement = placed
        report = refine_placement(mult4, ffet_lib, placement, powerplan,
                                  iterations=800, seed=1)
        assert report.hpwl_after_nm <= report.hpwl_before_nm + 1e-6
        assert placement.hpwl_nm(mult4) == pytest.approx(
            report.hpwl_after_nm)

    def test_improves_a_shuffled_placement(self, ffet_lib, mult4, placed):
        import random

        die, powerplan, placement = placed
        # Shuffle same-width cells to destroy locality, keeping legality.
        widths = {}
        for name, inst in mult4.instances.items():
            w = max(1, math.ceil(ffet_lib[inst.master].width_cpp))
            widths.setdefault(w, []).append(name)
        rng = random.Random(0)
        for group in widths.values():
            spots = [placement.locations[n] for n in group]
            rng.shuffle(spots)
            for name, spot in zip(group, spots):
                placement.locations[name] = spot
        report = refine_placement(mult4, ffet_lib, placement, powerplan,
                                  iterations=4000, seed=2)
        assert report.swaps > 0
        assert report.improvement > 0.05

    def test_legality_preserved(self, ffet_lib, mult4, placed):
        die, powerplan, placement = placed
        refine_placement(mult4, ffet_lib, placement, powerplan,
                         iterations=500, seed=3)
        occupied = {}
        blocked = powerplan.blocked_sites()
        for name, p in placement.locations.items():
            master = ffet_lib[mult4.instances[name].master]
            w = max(1, math.ceil(master.width_cpp))
            row = int(p.y_nm // die.row_height_nm)
            start = round(p.x_nm / die.site_width_nm - w / 2)
            for site in range(start, start + w):
                assert not blocked[row, site], name
                assert (row, site) not in occupied
                occupied[(row, site)] = name

    def test_deterministic(self, ffet_lib, mult4, placed):
        die, powerplan, placement = placed
        import copy

        snap = dict(placement.locations)
        r1 = refine_placement(mult4, ffet_lib, placement, powerplan,
                              iterations=300, seed=7)
        placement.locations = snap
        r2 = refine_placement(mult4, ffet_lib, placement, powerplan,
                              iterations=300, seed=7)
        assert r1 == r2


class TestRudy:
    def test_shape_and_positive(self, ffet_lib, mult4, placed):
        die, _powerplan, placement = placed
        demand = rudy_map(mult4, placement, die)
        assert demand.ndim == 2
        assert demand.sum() > 0

    def test_tracks_total_wirelength(self, ffet_lib, mult4, placed):
        die, _powerplan, placement = placed
        demand = rudy_map(mult4, placement, die)
        hpwl = placement.hpwl_nm(mult4)
        # Gcell discretization inflates sub-gcell nets, so the spread
        # demand brackets total HPWL loosely rather than matching it.
        assert 0.5 * hpwl < demand.sum() * 480.0 < 5.0 * hpwl

    def test_peak_estimate_scales_with_capacity(self, ffet_lib, mult4,
                                                placed):
        die, _powerplan, placement = placed
        loose = peak_congestion_estimate(mult4, placement, die, 100.0)
        tight = peak_congestion_estimate(mult4, placement, die, 10.0)
        assert tight == pytest.approx(10 * loose)

    def test_correlates_with_router_usage(self, ffet_lib):
        """RUDY hotspots should coincide with real router hotspots."""
        from repro.core import FlowConfig, run_flow
        from repro.synth import generate_multiplier
        from repro.tech import Side

        art = run_flow(lambda: generate_multiplier(8),
                       FlowConfig(arch="ffet", utilization=0.7,
                                  backside_pin_fraction=0.0,
                                  back_layers=0),
                       return_artifacts=True)
        demand = rudy_map(art.netlist, art.placement, art.die)
        rr = art.routing_results[Side.FRONT]
        usage = np.zeros((rr.grid.rows, rr.grid.cols))
        for route in rr.routes.values():
            for (c1, r1), (c2, r2) in route.edges:
                usage[min(r1, r2), min(c1, c2)] += 1
        h = min(demand.shape[0], usage.shape[0])
        w = min(demand.shape[1], usage.shape[1])
        a = demand[:h, :w].ravel()
        b = usage[:h, :w].ravel()
        if a.std() > 0 and b.std() > 0:
            corr = np.corrcoef(a, b)[0, 1]
            assert corr > 0.3
