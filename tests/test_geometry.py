"""Geometry primitive tests."""

import pytest

from repro.pnr import Die, Point, Rect


class TestPoint:
    def test_manhattan(self):
        assert Point(0, 0).manhattan(Point(3, 4)) == 7

    def test_frozen(self):
        with pytest.raises(Exception):
            Point(0, 0).x_nm = 5


class TestRect:
    def test_dimensions(self):
        r = Rect(1, 2, 4, 8)
        assert r.width_nm == 3
        assert r.height_nm == 6
        assert r.area_nm2 == 18
        assert r.center == Point(2.5, 5.0)

    def test_contains(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains(Point(5, 5))
        assert r.contains(Point(0, 10))   # boundary inclusive
        assert not r.contains(Point(11, 5))

    def test_overlaps(self):
        a = Rect(0, 0, 10, 10)
        assert a.overlaps(Rect(5, 5, 15, 15))
        assert not a.overlaps(Rect(10, 0, 20, 10))  # edge-sharing is open
        assert not a.overlaps(Rect(20, 20, 30, 30))

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            Rect(5, 0, 0, 5)


class TestDie:
    def make(self):
        return Die(rows=10, sites_per_row=100, site_width_nm=50.0,
                   row_height_nm=105.0)

    def test_dimensions(self):
        die = self.make()
        assert die.width_nm == 5000.0
        assert die.height_nm == 1050.0
        assert die.total_sites == 1000
        assert die.area_um2 == pytest.approx(5.25)

    def test_row_site_lookup_clamped(self):
        die = self.make()
        assert die.row_of(52.5) == 0
        assert die.row_of(1e9) == 9
        assert die.site_of(-1.0) == 0
        assert die.site_of(4999.0) == 99

    def test_invalid_die_rejected(self):
        with pytest.raises(ValueError):
            Die(rows=0, sites_per_row=10, site_width_nm=50.0,
                row_height_nm=105.0)

    def test_bounds(self):
        die = self.make()
        assert die.bounds() == Rect(0.0, 0.0, 5000.0, 1050.0)
