"""Analysis helpers: statistics, reports, cost models."""

from .cost import BACKSIDE_ENABLEMENT_COST, BeolCost, beol_cost, cost_efficiency
from .report import (
    ascii_heatmap,
    congestion_map,
    layout_summary,
    placement_density_map,
)
from .stats import (
    Ellipse,
    SampleStats,
    confidence_ellipse,
    pareto_front,
    quantile,
    relative_diff,
    sample_stats,
)

__all__ = [
    "BACKSIDE_ENABLEMENT_COST",
    "BeolCost",
    "Ellipse",
    "SampleStats",
    "ascii_heatmap",
    "beol_cost",
    "confidence_ellipse",
    "congestion_map",
    "cost_efficiency",
    "layout_summary",
    "pareto_front",
    "placement_density_map",
    "quantile",
    "relative_diff",
    "sample_stats",
]
