"""BEOL manufacturing-cost model for layer-count exploration.

The paper motivates reduced layer counts with manufacturing cost
("FM12BM12 faces many challenges and is costly in practical
manufacturing processes", Section IV).  This model makes that argument
quantitative: each metal layer costs one litho/etch/CMP pass whose
price depends on its pitch class (EUV double patterning for the finest
pitches, EUV single, then immersion DUV), plus a wafer-flip/bond
overhead when the backside carries signal layers at all.

Costs are in arbitrary units normalized to one immersion-DUV pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tech import Side, TechNode

#: Relative cost of one patterning pass by minimum pitch (nm).
_PASS_COST = (
    (32.0, 4.0),    # < 32 nm: EUV double patterning
    (48.0, 2.5),    # < 48 nm: EUV single
    (90.0, 1.4),    # < 90 nm: immersion multi-patterning
    (float("inf"), 1.0),  # relaxed immersion
)

#: One-time cost of enabling backside signal processing (flip + bond
#: + backside litho alignment), in pass units.
BACKSIDE_ENABLEMENT_COST = 3.0


def _pass_cost(pitch_nm: float) -> float:
    for limit, cost in _PASS_COST:
        if pitch_nm < limit:
            return cost
    raise AssertionError("unreachable")


@dataclass(frozen=True)
class BeolCost:
    """Cost breakdown of one technology configuration."""

    front_passes: float
    back_passes: float
    backside_enablement: float

    @property
    def total(self) -> float:
        return self.front_passes + self.back_passes + self.backside_enablement


def beol_cost(tech: TechNode) -> BeolCost:
    """Cost of the configured routing stack (signal layers only)."""
    front = sum(
        _pass_cost(layer.pitch_nm)
        for layer in tech.routing_layers(Side.FRONT)
    )
    back_layers = tech.routing_layers(Side.BACK)
    back = sum(_pass_cost(layer.pitch_nm) for layer in back_layers)
    enablement = BACKSIDE_ENABLEMENT_COST if back_layers else 0.0
    return BeolCost(front_passes=front, back_passes=back,
                    backside_enablement=enablement)


def cost_efficiency(result, tech: TechNode) -> float:
    """Frequency per (power x BEOL cost): the cost-aware figure of merit
    behind the paper's Fig. 12/13 argument."""
    return result.achieved_frequency_ghz / (
        result.total_power_mw * beol_cost(tech).total
    )
