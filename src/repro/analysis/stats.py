"""Statistics helpers: confidence ellipses and relative-diff tables.

Fig. 11 of the paper summarizes each DoE's power-frequency cloud with a
50 %-confidence ellipse; :func:`confidence_ellipse` computes the same
construct from sample points (chi-square scaling of the sample
covariance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class Ellipse:
    """A confidence ellipse in the (x, y) plane."""

    center_x: float
    center_y: float
    semi_major: float
    semi_minor: float
    angle_rad: float
    confidence: float

    @property
    def area(self) -> float:
        return math.pi * self.semi_major * self.semi_minor

    def contains(self, x: float, y: float) -> bool:
        dx, dy = x - self.center_x, y - self.center_y
        cos_a, sin_a = math.cos(-self.angle_rad), math.sin(-self.angle_rad)
        u = dx * cos_a - dy * sin_a
        v = dx * sin_a + dy * cos_a
        if self.semi_major == 0 or self.semi_minor == 0:
            return u == 0 and v == 0
        return (u / self.semi_major) ** 2 + (v / self.semi_minor) ** 2 <= 1.0


def confidence_ellipse(xs, ys, confidence: float = 0.50) -> Ellipse:
    """Fit a chi-square-scaled covariance ellipse to 2-D samples.

    The paper uses 50 % confidence for Fig. 11.  Needs at least three
    points; degenerate (collinear) clouds yield a zero-width ellipse.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape or xs.size < 3:
        raise ValueError("need at least 3 paired samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    cov = np.cov(np.vstack([xs, ys]))
    eigvals, eigvecs = np.linalg.eigh(cov)
    eigvals = np.maximum(eigvals, 0.0)
    # eigh returns ascending order; the major axis is the last column.
    k = stats.chi2.ppf(confidence, df=2)
    major = math.sqrt(k * eigvals[1])
    minor = math.sqrt(k * eigvals[0])
    angle = math.atan2(eigvecs[1, 1], eigvecs[0, 1])
    return Ellipse(
        center_x=float(xs.mean()),
        center_y=float(ys.mean()),
        semi_major=major,
        semi_minor=minor,
        angle_rad=angle,
        confidence=confidence,
    )


def relative_diff(value: float, baseline: float) -> float:
    """(value - baseline) / baseline, safe at zero."""
    if baseline == 0:
        return 0.0
    return (value - baseline) / baseline


def pareto_front(points: list[tuple[float, float]],
                 maximize_x: bool = True,
                 minimize_y: bool = True) -> list[tuple[float, float]]:
    """Non-dominated subset, default: maximize frequency, minimize power."""
    front = []
    for p in points:
        dominated = False
        for q in points:
            if q == p:
                continue
            better_x = q[0] >= p[0] if maximize_x else q[0] <= p[0]
            better_y = q[1] <= p[1] if minimize_y else q[1] >= p[1]
            strictly = (q[0] != p[0]) or (q[1] != p[1])
            if better_x and better_y and strictly:
                dominated = True
                break
        if not dominated:
            front.append(p)
    return sorted(front)
