"""Statistics helpers: confidence ellipses and relative-diff tables.

Fig. 11 of the paper summarizes each DoE's power-frequency cloud with a
50 %-confidence ellipse; :func:`confidence_ellipse` computes the same
construct from sample points (chi-square scaling of the sample
covariance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class Ellipse:
    """A confidence ellipse in the (x, y) plane."""

    center_x: float
    center_y: float
    semi_major: float
    semi_minor: float
    angle_rad: float
    confidence: float

    @property
    def area(self) -> float:
        return math.pi * self.semi_major * self.semi_minor

    def contains(self, x: float, y: float) -> bool:
        dx, dy = x - self.center_x, y - self.center_y
        cos_a, sin_a = math.cos(-self.angle_rad), math.sin(-self.angle_rad)
        u = dx * cos_a - dy * sin_a
        v = dx * sin_a + dy * cos_a
        if self.semi_major == 0 or self.semi_minor == 0:
            return u == 0 and v == 0
        return (u / self.semi_major) ** 2 + (v / self.semi_minor) ** 2 <= 1.0


def confidence_ellipse(xs, ys, confidence: float = 0.50) -> Ellipse:
    """Fit a chi-square-scaled covariance ellipse to 2-D samples.

    The paper uses 50 % confidence for Fig. 11.  Needs at least three
    points; degenerate (collinear) clouds yield a zero-width ellipse.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape:
        raise ValueError(
            f"xs and ys must be paired: got shapes {xs.shape} and {ys.shape}")
    if xs.size < 3:
        raise ValueError(
            f"need at least 3 paired samples to fit an ellipse, got {xs.size}")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if np.all(xs == xs[0]) and np.all(ys == ys[0]):
        # An identical cloud has no spread: an exact zero ellipse at the
        # point, not whatever rounding eigh makes of a zero covariance.
        return Ellipse(center_x=float(xs[0]), center_y=float(ys[0]),
                       semi_major=0.0, semi_minor=0.0, angle_rad=0.0,
                       confidence=confidence)
    cov = np.cov(np.vstack([xs, ys]))
    eigvals, eigvecs = np.linalg.eigh(cov)
    eigvals = np.maximum(eigvals, 0.0)
    # eigh returns ascending order; the major axis is the last column.
    k = stats.chi2.ppf(confidence, df=2)
    major = math.sqrt(k * eigvals[1])
    minor = math.sqrt(k * eigvals[0])
    angle = math.atan2(eigvecs[1, 1], eigvecs[0, 1])
    return Ellipse(
        center_x=float(xs.mean()),
        center_y=float(ys.mean()),
        semi_major=major,
        semi_minor=minor,
        angle_rad=angle,
        confidence=confidence,
    )


#: Quantiles the variation signoff reports by default.
DEFAULT_QUANTILES = (0.01, 0.05, 0.50, 0.95, 0.99)


@dataclass(frozen=True)
class SampleStats:
    """Summary statistics of one scalar metric over Monte-Carlo samples.

    ``std`` is the sample (ddof=1) standard deviation, 0.0 for a single
    sample.  ``quantiles`` maps requested levels to linearly
    interpolated values.  Built by :func:`sample_stats` from plain
    Python floats so the result is platform-deterministic and
    JSON-friendly.
    """

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    quantiles: dict[float, float]

    def quantile(self, q: float) -> float:
        return self.quantiles[q]

    @property
    def median(self) -> float:
        return self.quantiles.get(0.50, self.mean)

    def mean_minus_sigmas(self, sigmas: float) -> float:
        """``mean - sigmas * std`` — e.g. the 3-sigma-low metric value."""
        return self.mean - sigmas * self.std

    def to_dict(self) -> dict:
        """JSON-safe rendering (quantile keys become strings)."""
        return {
            "n": self.n, "mean": self.mean, "std": self.std,
            "min": self.minimum, "max": self.maximum,
            "quantiles": {f"{q:g}": v for q, v in self.quantiles.items()},
        }


def quantile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolation quantile of an ascending-sorted list."""
    if not sorted_values:
        raise ValueError("cannot take a quantile of no samples")
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile level must be in [0, 1]")
    pos = q * (len(sorted_values) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return sorted_values[lo]
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def sample_stats(values, quantiles=DEFAULT_QUANTILES) -> SampleStats:
    """Mean / sample sigma / extremes / quantiles of scalar samples."""
    values = [float(v) for v in values]
    if not values:
        raise ValueError("cannot summarize zero samples")
    n = len(values)
    ordered = sorted(values)
    if ordered[0] == ordered[-1]:
        # A constant sample has exactly zero spread; the generic path
        # below can round the mean by an ulp (sum of n identical floats
        # overflows the mantissa) and report a ~1e-15 sigma.
        mean, var = ordered[0], 0.0
    else:
        mean = sum(values) / n
        var = sum((v - mean) ** 2 for v in values) / (n - 1) if n > 1 else 0.0
    return SampleStats(
        n=n,
        mean=mean,
        std=math.sqrt(var),
        minimum=ordered[0],
        maximum=ordered[-1],
        quantiles={q: quantile(ordered, q) for q in quantiles},
    )


def relative_diff(value: float, baseline: float) -> float:
    """(value - baseline) / baseline, safe at zero."""
    if baseline == 0:
        return 0.0
    return (value - baseline) / baseline


def pareto_front(points: list[tuple[float, float]],
                 maximize_x: bool = True,
                 minimize_y: bool = True) -> list[tuple[float, float]]:
    """Non-dominated subset, default: maximize frequency, minimize power."""
    front = []
    for p in points:
        dominated = False
        for q in points:
            if q == p:
                continue
            better_x = q[0] >= p[0] if maximize_x else q[0] <= p[0]
            better_y = q[1] <= p[1] if minimize_y else q[1] >= p[1]
            strictly = (q[0] != p[0]) or (q[1] != p[1])
            if better_x and better_y and strictly:
                dominated = True
                break
        if not dominated:
            front.append(p)
    return sorted(front)
