"""Text reports: layout summaries and ASCII heatmaps.

Stand-ins for the paper's layout screenshots (Fig. 8b): render cell
density, pin density and routing congestion as terminal heatmaps, and
summarize a flow run's physical view.
"""

from __future__ import annotations

import numpy as np

_SHADES = " .:-=+*#%@"


def ascii_heatmap(values: np.ndarray, max_width: int = 64,
                  vmax: float | None = None) -> str:
    """Render a 2-D array as an ASCII heatmap (row 0 at the bottom).

    Values are normalized to ``vmax`` (default: the array maximum) and
    quantized onto a 10-step shade ramp.  Wide arrays are downsampled
    by column averaging to fit ``max_width``.
    """
    if values.ndim != 2:
        raise ValueError("heatmap needs a 2-D array")
    array = np.asarray(values, dtype=float)
    if array.shape[1] > max_width:
        factor = int(np.ceil(array.shape[1] / max_width))
        pad = (-array.shape[1]) % factor
        padded = np.pad(array, ((0, 0), (0, pad)), constant_values=np.nan)
        array = np.nanmean(
            padded.reshape(array.shape[0], -1, factor), axis=2
        )
    top = vmax if vmax is not None else float(np.nanmax(array))
    if top <= 0:
        top = 1.0
    lines = []
    for row in array[::-1]:
        chars = []
        for value in row:
            if np.isnan(value):
                chars.append(" ")
                continue
            level = int(min(value / top, 1.0) * (len(_SHADES) - 1))
            chars.append(_SHADES[level])
        lines.append("".join(chars))
    return "\n".join(lines)


def congestion_map(result) -> str:
    """Heatmap of a routing result's edge usage/capacity ratio."""
    grid = result.grid
    ratio = np.zeros((grid.rows, grid.cols))
    counts = np.zeros((grid.rows, grid.cols))
    if result.usage_h is not None and grid.cap_h.size:
        r = result.usage_h / np.maximum(grid.cap_h, 1e-9)
        ratio[:, :-1] += r
        ratio[:, 1:] += r
        counts[:, :-1] += 1
        counts[:, 1:] += 1
    if result.usage_v is not None and grid.cap_v.size:
        r = result.usage_v / np.maximum(grid.cap_v, 1e-9)
        ratio[:-1, :] += r
        ratio[1:, :] += r
        counts[:-1, :] += 1
        counts[1:, :] += 1
    ratio = np.divide(ratio, np.maximum(counts, 1))
    return ascii_heatmap(ratio, vmax=1.0)


def placement_density_map(placement, netlist, library,
                          bins: int = 32) -> str:
    """Heatmap of placed-cell area density."""
    die = placement.die
    density = np.zeros((bins, bins))
    for name, inst in netlist.instances.items():
        p = placement.locations[name]
        col = min(int(p.x_nm / die.width_nm * bins), bins - 1)
        row = min(int(p.y_nm / die.height_nm * bins), bins - 1)
        density[row, col] += library[inst.master].area_nm2(library.tech)
    return ascii_heatmap(density)


def layout_summary(artifacts) -> str:
    """Fig. 8(b)-style textual layout comparison for one flow run."""
    result = artifacts.result
    die = artifacts.die
    lines = [
        f"design: {artifacts.netlist.name} [{result.label}]",
        f"die: {die.width_nm / 1000:.2f} x {die.height_nm / 1000:.2f} um "
        f"({die.rows} rows x {die.sites_per_row} sites, "
        f"{result.core_area_um2:.1f} um2)",
        f"cells: {result.cell_count} "
        f"(area {result.cell_area_um2:.1f} um2, "
        f"utilization {result.achieved_utilization:.1%})",
        f"power taps / nTSVs: {result.tap_cell_count}; "
        f"CTS buffers: {result.cts_buffers}",
        f"wirelength: front {result.front_wirelength_um:.0f} um, "
        f"back {result.back_wirelength_um:.0f} um",
        f"DRVs: {result.drv_count} "
        f"({'valid' if result.valid else 'INVALID'})",
        f"timing: {result.achieved_frequency_ghz:.3f} GHz achieved "
        f"(target {result.target_frequency_ghz:.2f}), "
        f"skew {result.timing.clock_skew_ps:.1f} ps",
        f"power: {result.power.total_mw:.2f} mW "
        f"(switching {result.power.switching_mw:.2f}, "
        f"internal {result.power.internal_mw:.2f}, "
        f"leakage {result.power.leakage_mw:.3f})",
    ]
    return "\n".join(lines)
