"""Metal layer and via definitions for the virtual 5 nm node.

The paper's Table II only specifies layer *pitches*; electrical RC
parameters are derived here from the pitch with standard interconnect
physics so that narrow layers are resistive and wide top layers are fast:

* wire width ``w = pitch / 2`` (50 % metal density),
* thickness ``t = aspect_ratio * w``,
* resistivity with a size-effect term ``rho_eff = rho * (1 + k_size / w)``
  capturing surface/grain-boundary scattering at narrow line widths,
* capacitance per unit length from parallel-plate coupling to neighbours
  plus up/down plates and a fringe constant.

Units used throughout the package: geometry in **nm**, resistance in
**kOhm**, capacitance in **fF** — so ``R * C`` is directly in **ps**.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

# Physical constants (geometry in nm, capacitance in fF).
_RHO_CU_OHM_NM = 17.1        # bulk copper resistivity, ohm * nm
_K_SIZE_NM = 140.0           # size-effect length scale for rho_eff
_EPS0_FF_PER_NM = 8.854e-6   # vacuum permittivity, fF / nm
_K_ILD = 2.8                 # low-k inter-layer dielectric constant
_ASPECT_RATIO = 2.0          # wire thickness / width
_FRINGE_FF_PER_NM = 4.0e-5   # fringe capacitance floor, fF / nm


class Side(enum.Enum):
    """Which side of the wafer a layer (or pin) lives on."""

    FRONT = "front"
    BACK = "back"

    @property
    def opposite(self) -> "Side":
        return Side.BACK if self is Side.FRONT else Side.FRONT

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class LayerPurpose(enum.Enum):
    """What a layer may legally carry."""

    SIGNAL = "signal"        # inter-cell signal routing
    INTRA_CELL = "intra"     # M0: intra-cell routing + pins only
    POWER = "power"          # PDN only (e.g. CFET BM1/BM2, BPR)
    POLY = "poly"            # gate poly, not routable


class Direction(enum.Enum):
    """Preferred routing direction of a metal layer."""

    HORIZONTAL = "H"
    VERTICAL = "V"

    @property
    def opposite(self) -> "Direction":
        if self is Direction.HORIZONTAL:
            return Direction.VERTICAL
        return Direction.HORIZONTAL


@dataclass(frozen=True)
class Layer:
    """One metal (or poly) layer of the stackup.

    Attributes
    ----------
    name:
        Canonical name, e.g. ``"FM2"`` or ``"BM0"``.
    side:
        Wafer side the layer is on.
    index:
        Metal level within its side (0 for M0, 1 for M1, ...).  Poly and
        BPR use negative indices so they sort below M0.
    pitch_nm:
        Minimum line pitch from Table II.
    direction:
        Preferred routing direction.
    purpose:
        Legal use of the layer.
    """

    name: str
    side: Side
    index: int
    pitch_nm: float
    direction: Direction
    purpose: LayerPurpose = LayerPurpose.SIGNAL

    def __post_init__(self) -> None:
        if self.pitch_nm <= 0:
            raise ValueError(f"layer {self.name}: pitch must be positive")

    # -- derived geometry ------------------------------------------------
    @property
    def width_nm(self) -> float:
        """Drawn wire width (half the pitch)."""
        return self.pitch_nm / 2.0

    @property
    def spacing_nm(self) -> float:
        """Line-to-line spacing (half the pitch)."""
        return self.pitch_nm / 2.0

    @property
    def thickness_nm(self) -> float:
        """Metal thickness from a fixed aspect ratio."""
        return _ASPECT_RATIO * self.width_nm

    # -- derived electrical parameters ------------------------------------
    @property
    def resistance_kohm_per_um(self) -> float:
        """Sheet-derived wire resistance per micron of length."""
        w = self.width_nm
        t = self.thickness_nm
        rho_eff = _RHO_CU_OHM_NM * (1.0 + _K_SIZE_NM / w)
        r_ohm_per_nm = rho_eff / (w * t)
        return r_ohm_per_nm * 1000.0 / 1000.0  # ohm/nm -> kohm/um

    @property
    def capacitance_ff_per_um(self) -> float:
        """Total (coupling + plate + fringe) capacitance per micron."""
        w = self.width_nm
        t = self.thickness_nm
        s = self.spacing_nm
        h_ild = self.width_nm  # ILD thickness scales with the layer
        coupling = 2.0 * t / s
        plates = 2.0 * w / h_ild
        c_ff_per_nm = _K_ILD * _EPS0_FF_PER_NM * (coupling + plates)
        c_ff_per_nm += _FRINGE_FF_PER_NM
        return c_ff_per_nm * 1000.0

    @property
    def is_routable(self) -> bool:
        """True if inter-cell signal routing may use this layer."""
        return self.purpose is LayerPurpose.SIGNAL

    def key(self) -> tuple[str, int]:
        """Sort key: side then metal level."""
        return (self.side.value, self.index)


@dataclass(frozen=True)
class Via:
    """A via (cut) between two adjacent layers on the same side.

    Via resistance scales inversely with the area of the smaller cut,
    i.e. with the lower layer's width squared.
    """

    lower: Layer
    upper: Layer
    resistance_kohm: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.lower.side is not self.upper.side:
            raise ValueError(
                "via must connect layers on the same wafer side: "
                f"{self.lower.name} -> {self.upper.name}"
            )
        w = min(self.lower.width_nm, self.upper.width_nm)
        # ~30 ohm at 15 nm cut width, dropping quadratically with size.
        r_kohm = 0.030 * (15.0 / w) ** 2
        object.__setattr__(self, "resistance_kohm", r_kohm)

    @property
    def name(self) -> str:
        return f"VIA_{self.lower.name}_{self.upper.name}"
