"""Design rules of the virtual 5 nm node — the paper's Table II, verbatim.

``TABLE_II`` maps layer name to pitch (nm) per technology.  ``None``
means the layer does not exist in that technology ("/" in the paper).
Layers marked PDN-only in the paper (CFET BM1/BM2, BPR) carry that
restriction via :class:`~repro.tech.layers.LayerPurpose` when the
stackup is built.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Table II of the paper.  Keys are layer names, values are
#: ``(cfet_pitch_nm, ffet_pitch_nm)``; ``None`` = layer absent.
TABLE_II: dict[str, tuple[float | None, float | None]] = {
    "FM12": (720.0, 720.0),
    "FM11": (126.0, 126.0),
    "FM10": (76.0, 76.0),
    "FM9": (76.0, 76.0),
    "FM8": (76.0, 76.0),
    "FM7": (76.0, 76.0),
    "FM6": (76.0, 76.0),
    "FM5": (76.0, 76.0),
    "FM4": (42.0, 42.0),
    "FM3": (42.0, 42.0),
    "FM2": (30.0, 30.0),
    "FM1": (34.0, 34.0),
    "FM0": (28.0, 28.0),
    "Poly": (50.0, 50.0),
    "BPR": (120.0, None),
    "BM0": (None, 28.0),
    "BM1": (3200.0, 34.0),
    "BM2": (2400.0, 30.0),
    "BM3": (None, 42.0),
    "BM4": (None, 42.0),
    "BM5": (None, 76.0),
    "BM6": (None, 76.0),
    "BM7": (None, 76.0),
    "BM8": (None, 76.0),
    "BM9": (None, 76.0),
    "BM10": (None, 76.0),
    "BM11": (None, 126.0),
    "BM12": (None, 720.0),  # CFET has no BM12
}

#: Contacted poly pitch (nm); 1 CPP is the unit of standard-cell width.
CPP_NM: float = 50.0

#: M2 pitch defines one routing track ("1T = 1 M2 pitch").
TRACK_PITCH_NM: float = 30.0

#: Power stripe pitch used for the BSPDN in both technologies (Section IV).
POWER_STRIPE_PITCH_CPP: int = 64

#: A P&R result is valid only if total DRVs stay below this (Section IV).
MAX_DRV_COUNT: int = 10


@dataclass(frozen=True)
class DesignRules:
    """Block-level legality limits shared by both technologies."""

    cpp_nm: float = CPP_NM
    track_pitch_nm: float = TRACK_PITCH_NM
    power_stripe_pitch_cpp: int = POWER_STRIPE_PITCH_CPP
    max_drv_count: int = MAX_DRV_COUNT

    @property
    def power_stripe_pitch_nm(self) -> float:
        return self.power_stripe_pitch_cpp * self.cpp_nm


def pitch_for(layer_name: str, tech: str) -> float | None:
    """Pitch of ``layer_name`` in technology ``tech`` ('cfet' or 'ffet').

    Returns ``None`` when the layer does not exist in that technology.
    """
    if layer_name not in TABLE_II:
        raise KeyError(f"unknown layer {layer_name!r}")
    cfet, ffet = TABLE_II[layer_name]
    tech = tech.lower()
    if tech == "cfet":
        return cfet
    if tech == "ffet":
        return ffet
    raise ValueError(f"unknown technology {tech!r} (expected 'cfet'/'ffet')")
