"""Virtual 5 nm technology: layers, stackups, design rules, tech nodes."""

from .layers import Direction, Layer, LayerPurpose, Side, Via
from .node import DeviceParams, TechNode, make_cfet_node, make_ffet_node
from .rules import (
    CPP_NM,
    MAX_DRV_COUNT,
    POWER_STRIPE_PITCH_CPP,
    TABLE_II,
    TRACK_PITCH_NM,
    DesignRules,
    pitch_for,
)
from .stackup import Stackup, build_stackup

__all__ = [
    "CPP_NM",
    "MAX_DRV_COUNT",
    "POWER_STRIPE_PITCH_CPP",
    "TABLE_II",
    "TRACK_PITCH_NM",
    "DesignRules",
    "DeviceParams",
    "Direction",
    "Layer",
    "LayerPurpose",
    "Side",
    "Stackup",
    "TechNode",
    "Via",
    "build_stackup",
    "make_cfet_node",
    "make_ffet_node",
    "pitch_for",
]
