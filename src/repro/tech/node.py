"""Technology nodes: 3.5T FFET and 4T CFET on the virtual 5 nm node.

A :class:`TechNode` bundles the stackup, cell geometry, routing-layer
configuration and device parameters that the rest of the framework
consumes.  The two factories :func:`make_ffet_node` and
:func:`make_cfet_node` encode the architectural differences the paper
describes:

* cell height 3.5T vs 4T (1T = one M2 pitch = 30 nm),
* FFET pins may live on both wafer sides; CFET pins are frontside-only,
* FFET supports backside signal routing (BM1..BM12); the CFET backside
  only carries the PDN (BM1/BM2),
* CFET intra-cell routing needs supervias, giving it larger intra-cell
  parasitics (Section II.B) — the source of the Table I deltas,
* FFET has the Split Gate, which shrinks MUX/DFF-class cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .layers import Side
from .rules import CPP_NM, TRACK_PITCH_NM, DesignRules
from .stackup import Stackup, build_stackup


@dataclass(frozen=True)
class DeviceParams:
    """Transistor and intra-cell parasitic parameters for characterization.

    The intrinsic transistor (two-fin, same active footprint in both
    technologies per Section IV) is identical; only the intra-cell
    interconnect parasitics differ between architectures.
    """

    #: Channel resistance of a unit-drive (D1) two-fin device, kOhm.
    drive_resistance_kohm: float = 5.0
    #: Gate capacitance of one unit-drive input, fF.
    gate_cap_ff: float = 0.25
    #: Diffusion (drain) capacitance of one unit-drive output, fF.
    drain_cap_ff: float = 0.15
    #: Leakage power of a unit-drive device, nW.
    leakage_nw: float = 1.2
    #: Multiplier on intra-cell wiring capacitance (CFET supervias = 1.0).
    intra_cap_factor: float = 1.0
    #: Multiplier on intra-cell wiring resistance.
    intra_res_factor: float = 1.0
    #: Extra series resistance of a supervia on internal nets, kOhm.
    supervia_res_kohm: float = 0.0
    #: Baseline intra-cell wire capacitance per CPP of cell width, fF.
    intra_cap_per_cpp_ff: float = 0.055
    #: Baseline intra-cell wire resistance per CPP of cell width, kOhm.
    intra_res_per_cpp_kohm: float = 0.065


@dataclass(frozen=True)
class TechNode:
    """A complete technology description consumed by the whole flow."""

    name: str
    arch: str  # "ffet" | "cfet"
    stackup: Stackup
    cell_height_tracks: float
    device: DeviceParams
    rules: DesignRules = field(default_factory=DesignRules)
    #: Highest frontside metal level used for signal routing (FMn).
    max_front_metal: int = 12
    #: Highest backside metal level used for signal routing (BMn);
    #: 0 disables backside signal routing entirely.
    max_back_metal: int = 0
    #: Number of M0 signal tracks available per side for cell pins.
    m0_signal_tracks_per_side: int = 3
    #: True when standard cells may place pins on the wafer backside.
    dual_sided_pins: bool = False
    #: True when the Split Gate construct is available (FFET only).
    has_split_gate: bool = False

    # -- geometry ----------------------------------------------------------
    @property
    def cpp_nm(self) -> float:
        return self.rules.cpp_nm

    @property
    def track_pitch_nm(self) -> float:
        return self.rules.track_pitch_nm

    @property
    def cell_height_nm(self) -> float:
        return self.cell_height_tracks * self.track_pitch_nm

    @property
    def site_area_nm2(self) -> float:
        """Area of one placement site (1 CPP x cell height)."""
        return self.cpp_nm * self.cell_height_nm

    # -- routing configuration ----------------------------------------------
    @property
    def routing_layer_count(self) -> tuple[int, int]:
        """(frontside, backside) signal routing layer counts."""
        front = len(self.stackup.routing_layers(Side.FRONT, self.max_front_metal))
        back = 0
        if self.max_back_metal > 0:
            back = len(self.stackup.routing_layers(Side.BACK, self.max_back_metal))
        return front, back

    @property
    def uses_backside_signals(self) -> bool:
        return self.max_back_metal > 0

    def routing_layers(self, side: Side):
        """Routable layers on ``side`` honouring the configured limits."""
        if side is Side.FRONT:
            return self.stackup.routing_layers(side, self.max_front_metal)
        if not self.uses_backside_signals:
            return []
        return self.stackup.routing_layers(side, self.max_back_metal)

    def with_routing_layers(self, front: int, back: int = 0) -> "TechNode":
        """A copy of this node routed with FM1..FM<front> / BM1..BM<back>.

        Raises ``ValueError`` when the request exceeds the stackup or asks
        for backside signal routing in a technology without dual-sided
        support.
        """
        if front < 1:
            raise ValueError("at least one frontside routing layer required")
        available_front = self.stackup.routing_layers(Side.FRONT)
        max_front = max(layer.index for layer in available_front)
        if front > max_front:
            raise ValueError(f"frontside supports at most FM{max_front}")
        if back > 0:
            if not self.dual_sided_pins:
                raise ValueError(f"{self.name} does not support backside signals")
            available_back = self.stackup.routing_layers(Side.BACK)
            max_back = max(layer.index for layer in available_back)
            if back > max_back:
                raise ValueError(f"backside supports at most BM{max_back}")
        label = f"FM{front}" + (f"BM{back}" if back else "")
        base = self.name.split(" ")[0]
        return replace(
            self, name=f"{base} {label}", max_front_metal=front, max_back_metal=back
        )

    @property
    def routing_label(self) -> str:
        """Human label like ``FM12BM12`` or ``FM12``."""
        front, back = self.max_front_metal, self.max_back_metal
        return f"FM{front}" + (f"BM{back}" if back else "")


def make_ffet_node(front_layers: int = 12, back_layers: int = 12) -> TechNode:
    """3.5T FFET with dual-sided pins and symmetric intra-cell routing.

    The FFET removes supervias (only the Drain Merge remains), so its
    intra-cell parasitics are smaller than the CFET's (Section II.B).
    """
    device = DeviceParams(
        intra_cap_factor=0.72,
        intra_res_factor=0.70,
        supervia_res_kohm=0.0,
    )
    node = TechNode(
        name="FFET-3.5T",
        arch="ffet",
        stackup=build_stackup("ffet"),
        cell_height_tracks=3.5,
        device=device,
        m0_signal_tracks_per_side=3,
        dual_sided_pins=True,
        has_split_gate=True,
    )
    return node.with_routing_layers(front_layers, back_layers)


def make_cfet_node(front_layers: int = 12) -> TechNode:
    """4T CFET with BPR; pins and signal routing frontside-only."""
    device = DeviceParams(
        intra_cap_factor=1.0,
        intra_res_factor=1.0,
        supervia_res_kohm=0.12,
    )
    node = TechNode(
        name="CFET-4T",
        arch="cfet",
        stackup=build_stackup("cfet"),
        cell_height_tracks=4.0,
        device=device,
        m0_signal_tracks_per_side=4,
        dual_sided_pins=False,
        has_split_gate=False,
    )
    return node.with_routing_layers(front_layers, 0)
