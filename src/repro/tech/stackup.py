"""Stackup: the ordered collection of layers available to a technology."""

from __future__ import annotations

from dataclasses import dataclass, field

from .layers import Direction, Layer, LayerPurpose, Side, Via
from .rules import TABLE_II


def _direction_for(side: Side, index: int) -> Direction:
    """Alternate preferred directions, M0 horizontal on both sides.

    M0 runs along the cell row (horizontal), M1 vertical, M2 horizontal,
    and so on.  Both wafer sides follow the same convention so that the
    FFET's symmetric cell design holds.
    """
    if index % 2 == 0:
        return Direction.HORIZONTAL
    return Direction.VERTICAL


@dataclass
class Stackup:
    """All layers of one technology, with lookup and via helpers."""

    name: str
    layers: list[Layer] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_name = {layer.name: layer for layer in self.layers}
        if len(self._by_name) != len(self.layers):
            raise ValueError("duplicate layer names in stackup")

    # -- lookup ------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Layer:
        return self._by_name[name]

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def get(self, name: str) -> Layer | None:
        return self._by_name.get(name)

    # -- queries -----------------------------------------------------------
    def on_side(self, side: Side) -> list[Layer]:
        """Layers on one wafer side, ordered by metal level."""
        picked = [layer for layer in self.layers if layer.side is side]
        return sorted(picked, key=lambda layer: layer.index)

    def routing_layers(self, side: Side, max_level: int | None = None) -> list[Layer]:
        """Signal-routable layers on ``side`` up to metal level ``max_level``.

        M0 is excluded by construction (it is ``INTRA_CELL``); the paper
        counts routing layers starting from M1.
        """
        result = [
            layer
            for layer in self.on_side(side)
            if layer.is_routable and (max_level is None or layer.index <= max_level)
        ]
        return result

    def metal(self, side: Side, index: int) -> Layer:
        """Layer at metal level ``index`` on ``side``."""
        prefix = "FM" if side is Side.FRONT else "BM"
        return self[f"{prefix}{index}"]

    def vias(self, side: Side) -> list[Via]:
        """Vias between adjacent metal levels on one side."""
        metals = [layer for layer in self.on_side(side) if layer.index >= 0]
        return [Via(lo, hi) for lo, hi in zip(metals, metals[1:])]

    def via_between(self, lower: Layer, upper: Layer) -> Via:
        return Via(lower, upper)


def build_stackup(tech: str) -> Stackup:
    """Construct the full Table II stackup for ``'cfet'`` or ``'ffet'``."""
    tech = tech.lower()
    if tech not in ("cfet", "ffet"):
        raise ValueError(f"unknown technology {tech!r}")
    column = 0 if tech == "cfet" else 1

    layers: list[Layer] = []
    for name, pitches in TABLE_II.items():
        pitch = pitches[column]
        if pitch is None:
            continue
        if name == "Poly":
            layers.append(
                Layer(name, Side.FRONT, -1, pitch, Direction.VERTICAL,
                      LayerPurpose.POLY)
            )
            continue
        if name == "BPR":
            layers.append(
                Layer(name, Side.BACK, -1, pitch, Direction.HORIZONTAL,
                      LayerPurpose.POWER)
            )
            continue
        side = Side.FRONT if name.startswith("F") else Side.BACK
        index = int(name[2:])
        purpose = LayerPurpose.SIGNAL
        if index == 0:
            purpose = LayerPurpose.INTRA_CELL
        if tech == "cfet" and side is Side.BACK and name in ("BM1", "BM2"):
            purpose = LayerPurpose.POWER  # footnote c of Table II
        layers.append(
            Layer(name, side, index, pitch, _direction_for(side, index), purpose)
        )
    return Stackup(name=f"{tech}-5nm", layers=layers)
