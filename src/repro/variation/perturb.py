"""Pure perturbation appliers: artifacts + a drawn sample -> metrics.

The expensive stages of a flow — placement, CTS, routing, DEF merge,
extraction — are overlay-invariant to first order: misalignment does
not move cells or reroute wires, it perturbs the *parasitics* the
routed geometry produces and the *delays* the fabricated cells exhibit.
So a Monte-Carlo sample never re-runs P&R; it re-evaluates STA and
power on perturbed views of the nominal artifacts:

* the overlay shift scales the coupling/area RC of backside wiring
  (weighted per net by its backside wirelength fraction) through
  :func:`~repro.sta.rc_scale.scale_extraction_sided`;
* the per-side metal sigma scales front/back wire RC the same way;
* the CD/gate-length sigma derates cell delays through the existing
  :class:`~repro.sta.corners.Corner` machinery
  (:func:`~repro.sta.corners.derate_report`).

Everything here is a pure function of (artifacts, sample): no RNG, no
global state, no mutation of the nominal artifacts — which is what
makes samples embarrassingly parallel and bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cells import Library
from ..core.config import FlowConfig
from ..extract import Extraction
from ..netlist import Netlist
from ..power import analyze_power
from ..sta import analyze_timing, derate_report, scale_extraction_sided
from ..sta.corners import Corner
from .models import VariationSample

#: Relative backside wire-RC increase per unit of overlay shift over
#: one track pitch.  A shift of a full pitch misplaces a backside wire
#: onto its neighbor's coupling environment, which this first-order
#: coefficient prices at +35 % RC (coupling growth dominates the area
#: loss at these geometries).
OVERLAY_RC_SLOPE = 0.35


def overlay_rc_factor(sample: VariationSample, pitch_nm: float) -> float:
    """Backside RC multiplier induced by this sample's overlay shift."""
    if pitch_nm <= 0:
        raise ValueError("track pitch must be positive")
    return 1.0 + OVERLAY_RC_SLOPE * sample.overlay_shift_nm / pitch_nm


def mc_corner(sample: VariationSample) -> Corner:
    """This sample's CD derate packaged as a one-off PVT corner."""
    return Corner(name=f"mc{sample.index:05d}",
                  cell_derate=sample.cell_derate, wire_derate=1.0)


def perturb_extraction(extraction: Extraction, sample: VariationSample,
                       pitch_nm: float) -> Extraction:
    """The nominal extraction seen through one sample's BEOL draw.

    Frontside wires carry the front metal sigma; backside wires carry
    the back metal sigma *and* the overlay-coupling factor.  A design
    with no backside wiring (CFET, FFET FM-only) is therefore exactly
    insensitive to overlay, whatever the shift.
    """
    front = sample.front_rc_scale
    back = sample.back_rc_scale * overlay_rc_factor(sample, pitch_nm)
    return scale_extraction_sided(extraction, front, back)


@dataclass(frozen=True)
class SampleResult:
    """One Monte-Carlo sample's evaluated metrics — plain, picklable."""

    index: int
    seed: int
    overlay_shift_nm: float
    cell_derate: float
    front_rc_scale: float
    back_rc_scale: float
    achieved_frequency_ghz: float
    wns_ps: float
    tns_ps: float
    total_power_mw: float

    @property
    def met(self) -> bool:
        """Whether this sample closes timing at the target period."""
        return self.wns_ps >= 0.0


@dataclass(frozen=True)
class FailedSample:
    """A sample whose evaluation raised — quarantined, never fatal."""

    index: int
    seed: int
    cause: str
    reason: str


def evaluate_sample(netlist: Netlist, library: Library,
                    extraction: Extraction, config: FlowConfig,
                    sample: VariationSample) -> SampleResult:
    """STA + power under one drawn perturbation (milliseconds, no P&R)."""
    pitch = library.tech.rules.track_pitch_nm
    perturbed = perturb_extraction(extraction, sample, pitch)
    timing = analyze_timing(netlist, library, perturbed,
                            config.target_period_ps, clock=config.clock)
    timing = derate_report(timing, sample.cell_derate,
                           config.target_period_ps)
    power = analyze_power(netlist, library, perturbed,
                          timing.achieved_frequency_ghz,
                          activity=config.activity, clock=config.clock)
    return SampleResult(
        index=sample.index,
        seed=sample.seed,
        overlay_shift_nm=sample.overlay_shift_nm,
        cell_derate=sample.cell_derate,
        front_rc_scale=sample.front_rc_scale,
        back_rc_scale=sample.back_rc_scale,
        achieved_frequency_ghz=timing.achieved_frequency_ghz,
        wns_ps=timing.wns_ps,
        tns_ps=timing.tns_ps,
        total_power_mw=power.total_mw,
    )
