"""The Monte-Carlo engine: one nominal flow, N perturbed evaluations.

Execution model:

1. the **nominal flow** runs once (placement, routing, extraction —
   the expensive part), content-addressed through the
   :class:`~repro.core.cache.FlowCache` blob store so repeated ``repro
   mc`` invocations on the same design never re-place-and-route;
2. N :class:`~repro.variation.models.VariationSample` draws are taken
   with per-sample seeds derived SplitMix-style from the root seed
   (:func:`~repro.variation.models.sample_seed`) — a pure function of
   (root, index), never of scheduling;
3. the perturbed STA+power evaluations fan out over a process pool in
   contiguous chunks (``jobs`` from the same ``--jobs``/``$REPRO_JOBS``
   convention as the :class:`~repro.core.runner.SweepRunner`).  Because
   each sample is seeded by its index, ``jobs=1`` and ``jobs=4``
   produce bit-identical results;
4. a sample whose evaluation raises is quarantined as a
   :class:`~repro.variation.perturb.FailedSample` — one bad draw never
   aborts a study — and counted on the ``mc.failed`` trace counter.

Telemetry: ``mc.nominal`` / ``mc.samples`` spans, and
``mc.samples`` / ``mc.failed`` / ``mc.nominal_cache_hits`` counters.
"""

from __future__ import annotations

import pickle
import time
from concurrent import futures
from dataclasses import dataclass, field

from ..cells import Library
from ..core import faults as faults_mod
from ..core import telemetry
from ..core.cache import FlowCache, netlist_fingerprint
from ..core.config import FlowConfig
from ..core.flow import run_flow
from ..core.ppa import PPAResult
from ..core.runner import resolve_jobs
from ..core.stages import StageStore
from ..extract import Extraction
from ..netlist import Netlist
from .models import VariationModel
from .perturb import FailedSample, SampleResult, evaluate_sample

#: Blob-store kind under which nominal artifacts are cached.
NOMINAL_BLOB_KIND = "mc-nominal"


@dataclass
class NominalBundle:
    """The slice of a flow's artifacts the sampler needs — picklable."""

    result: PPAResult
    netlist: Netlist
    library: Library
    extraction: Extraction
    #: Served from the FlowCache blob store instead of a fresh run.
    cached: bool = False


@dataclass
class MonteCarloResult:
    """A finished variation study: the nominal point plus its cloud."""

    config: FlowConfig
    model: VariationModel
    seed: int
    nominal: PPAResult
    #: Successful samples, ordered by sample index.
    samples: list[SampleResult] = field(default_factory=list)
    #: Quarantined samples, ordered by sample index.
    failed: list[FailedSample] = field(default_factory=list)
    nominal_cached: bool = False
    elapsed_s: float = 0.0

    @property
    def requested(self) -> int:
        return len(self.samples) + len(self.failed)

    def metric(self, name: str) -> list[float]:
        """One metric's values across the successful samples."""
        return [getattr(s, name) for s in self.samples]


def nominal_bundle(netlist_factory, config: FlowConfig,
                   cache: FlowCache | None = None,
                   tracer=None) -> NominalBundle:
    """Run (or fetch) the nominal flow and keep what sampling needs.

    With a cache, the bundle is stored under the same content-addressed
    key recipe as flow results (config + netlist fingerprint + code
    version) in the pickle blob sidecar, and a fresh nominal run goes
    through the cache's per-stage artifact store
    (:class:`~repro.core.stages.StageStore`) so it replays any flow
    prefix an earlier run or sweep already computed.  Active fault
    injection bypasses the cache, mirroring the sweep runner's rule.
    """
    tr = tracer if tracer is not None else telemetry.NULL_TRACER
    if faults_mod.faults_active():
        cache = None
    key = None
    lock = None
    if cache is not None:
        key = cache.key_for(config, netlist_fingerprint(netlist_factory()))
        stored = cache.get_blob(key, NOMINAL_BLOB_KIND)
        if isinstance(stored, NominalBundle):
            tr.count("mc.nominal_cache_hits")
            stored.cached = True
            return stored
        # Single-flight on the nominal run: when several ``repro mc``
        # processes share one cold cache, exactly one runs the
        # expensive flow while the rest wait (bounded by
        # $REPRO_LOCK_TIMEOUT) and load its published bundle; a timed
        # out wait degrades to an independent run, like stage leases.
        lock = cache.locks.lock(key)
        if lock.acquire():
            stored = cache.get_blob(key, NOMINAL_BLOB_KIND)
            if isinstance(stored, NominalBundle):
                lock.release()
                tr.count("mc.nominal_cache_hits")
                stored.cached = True
                return stored
        else:
            lock = None
    store = StageStore(cache) if cache is not None else None
    try:
        with tr.span("mc.nominal"):
            artifacts = run_flow(netlist_factory, config,
                                 return_artifacts=True,
                                 tracer=tracer, store=store)
        bundle = NominalBundle(result=artifacts.result,
                               netlist=artifacts.netlist,
                               library=artifacts.library,
                               extraction=artifacts.extraction)
        if cache is not None and key is not None:
            cache.put_blob(key, NOMINAL_BLOB_KIND, bundle)
    finally:
        if lock is not None:
            lock.release()
    return bundle


def _eval_chunk(netlist: Netlist, library: Library, extraction: Extraction,
                config: FlowConfig, samples: list
                ) -> list[SampleResult | FailedSample]:
    # Module-level so the process pool can pickle it as a task target.
    # Per-sample failures are quarantined here, inside the worker, so a
    # single pathological draw costs one record, not the chunk.
    out: list[SampleResult | FailedSample] = []
    for sample in samples:
        try:
            out.append(evaluate_sample(netlist, library, extraction,
                                       config, sample))
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            out.append(FailedSample(index=sample.index, seed=sample.seed,
                                    cause=type(exc).__name__,
                                    reason=str(exc)))
    return out


def _chunk_indices(n: int, chunks: int) -> list[range]:
    """Split ``range(n)`` into at most ``chunks`` contiguous ranges."""
    chunks = max(1, min(chunks, n))
    base, extra = divmod(n, chunks)
    out = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        out.append(range(start, start + size))
        start += size
    return out


def run_samples(bundle: NominalBundle, config: FlowConfig,
                model: VariationModel, samples: int, seed: int,
                jobs: int | None = None, tracer=None
                ) -> tuple[list[SampleResult], list[FailedSample]]:
    """Evaluate ``samples`` perturbed draws of one nominal design.

    Returns (successful, quarantined), both ordered by sample index and
    independent of ``jobs`` — the partition over workers affects only
    wall time, never a single bit of the results.
    """
    if samples < 0:
        raise ValueError("sample count must be non-negative")
    tr = tracer if tracer is not None else telemetry.NULL_TRACER
    drawn = [model.draw(seed, i) for i in range(samples)]
    jobs = resolve_jobs(jobs)

    outcomes: list[SampleResult | FailedSample] = []
    with tr.span("mc.samples"):
        if jobs > 1 and samples > 1:
            outcomes = _run_pool(bundle, config, drawn, jobs)
        if not outcomes and samples:
            outcomes = _eval_chunk(bundle.netlist, bundle.library,
                                   bundle.extraction, config, drawn)
    outcomes.sort(key=lambda s: s.index)
    good = [s for s in outcomes if isinstance(s, SampleResult)]
    bad = [s for s in outcomes if isinstance(s, FailedSample)]
    tr.count("mc.samples", len(outcomes))
    if bad:
        tr.count("mc.failed", len(bad))
    return good, bad


def _run_pool(bundle: NominalBundle, config: FlowConfig, drawn: list,
              jobs: int) -> list:
    """Chunked pool fan-out; [] when the pool cannot be used at all."""
    payload = (bundle.netlist, bundle.library, bundle.extraction, config)
    try:
        pickle.dumps(payload)
    except Exception:
        return []
    ranges = _chunk_indices(len(drawn), jobs * 4)
    outcomes: list = []
    try:
        with futures.ProcessPoolExecutor(
                max_workers=min(jobs, len(ranges))) as pool:
            tasks = [pool.submit(_eval_chunk, *payload,
                                 [drawn[i] for i in r])
                     for r in ranges if len(r)]
            for task in tasks:
                outcomes.extend(task.result())
    except (OSError, ImportError, futures.process.BrokenProcessPool):
        # The pool is unusable or died mid-study: the serial path
        # recomputes everything — identical results, just slower.
        return []
    return outcomes


def run_monte_carlo(netlist_factory, config: FlowConfig,
                    model: VariationModel | None = None,
                    samples: int = 256, seed: int | None = None,
                    jobs: int | None = None,
                    cache: FlowCache | None = None,
                    tracer=None) -> MonteCarloResult:
    """The full study: nominal flow once, then N perturbed evaluations.

    ``seed`` defaults to the flow config's seed, so a config fully
    determines its study.  See the module docstring for the execution
    model and determinism contract.
    """
    started = time.perf_counter()
    if seed is None:
        seed = config.seed
    if model is None:
        model = VariationModel.for_arch(config.arch)
    with telemetry.activate(tracer) as tr:
        bundle = nominal_bundle(netlist_factory, config, cache=cache,
                                tracer=tracer)
        good, bad = run_samples(bundle, config, model, samples, seed,
                                jobs=jobs, tracer=tr)
    return MonteCarloResult(
        config=config, model=model, seed=seed, nominal=bundle.result,
        samples=good, failed=bad, nominal_cached=bundle.cached,
        elapsed_s=time.perf_counter() - started,
    )
