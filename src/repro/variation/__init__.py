"""Overlay-aware Monte-Carlo variation engine with statistical signoff.

The deterministic flow answers "what PPA does this design achieve?";
this package answers "how robustly?" — the first-order question for
FFET, whose signals live on both wafer sides and therefore see
frontside/backside overlay misalignment that single-sided CFET never
does (cf. the companion overlay study, arXiv:2501.16063).

Layers: seeded variation models (:mod:`.models`), pure perturbation
appliers over a completed flow's artifacts (:mod:`.perturb`), the
parallel Monte-Carlo engine (:mod:`.engine`), and statistical PPA
signoff (:mod:`.signoff`).  CLI: ``repro mc``; docs:
``docs/variation.md``.
"""

from .engine import (
    MonteCarloResult,
    NominalBundle,
    nominal_bundle,
    run_monte_carlo,
    run_samples,
)
from .models import (
    CDVariationModel,
    MetalRCVariationModel,
    OverlayModel,
    VariationModel,
    VariationSample,
    sample_seed,
    splitmix64,
)
from .perturb import (
    OVERLAY_RC_SLOPE,
    FailedSample,
    SampleResult,
    evaluate_sample,
    mc_corner,
    overlay_rc_factor,
    perturb_extraction,
)
from .signoff import (
    SIGNOFF_METRICS,
    SignoffReport,
    format_signoff,
    sigma_comparison_table,
    signoff,
)

__all__ = [
    "CDVariationModel",
    "FailedSample",
    "MetalRCVariationModel",
    "MonteCarloResult",
    "NominalBundle",
    "OVERLAY_RC_SLOPE",
    "OverlayModel",
    "SIGNOFF_METRICS",
    "SampleResult",
    "SignoffReport",
    "VariationModel",
    "VariationSample",
    "evaluate_sample",
    "format_signoff",
    "mc_corner",
    "nominal_bundle",
    "overlay_rc_factor",
    "perturb_extraction",
    "run_monte_carlo",
    "run_samples",
    "sample_seed",
    "sigma_comparison_table",
    "signoff",
    "splitmix64",
]
