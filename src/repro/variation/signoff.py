"""Statistical PPA signoff over a Monte-Carlo variation study.

Where the deterministic flow signs off one number per metric, the
variation engine signs off a *distribution*: mean/sigma/quantiles per
metric, the 3-sigma Fmax (the frequency a 99.87 %-yielding part ships
at), timing yield at the target period, and a 50 %-confidence
frequency-power ellipse (the same Fig. 11 construct the DoE clouds
use).  :func:`sigma_comparison_table` renders the FFET-vs-CFET sigma
comparison that is the related overlay study's headline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.stats import Ellipse, SampleStats, confidence_ellipse, sample_stats
from .engine import MonteCarloResult

#: Metrics summarized per study: attribute on SampleResult -> label.
SIGNOFF_METRICS = {
    "achieved_frequency_ghz": "frequency_ghz",
    "wns_ps": "wns_ps",
    "tns_ps": "tns_ps",
    "total_power_mw": "power_mw",
    "overlay_shift_nm": "overlay_shift_nm",
}


@dataclass(frozen=True)
class SignoffReport:
    """The statistical signoff of one design under one variation model."""

    label: str
    arch: str
    seed: int
    target_period_ps: float
    samples: int
    failed: int
    nominal_frequency_ghz: float
    nominal_power_mw: float
    #: Per-metric distribution summaries, keyed by SIGNOFF_METRICS labels.
    metrics: dict[str, SampleStats] = field(default_factory=dict)
    #: Fraction of *requested* samples that close timing at the target
    #: period (a quarantined sample counts as a miss: a part whose
    #: evaluation is broken is not a yielding part).
    timing_yield: float = 0.0
    #: mean - 3 sigma of the achieved-frequency distribution, GHz.
    fmax_3sigma_ghz: float = 0.0
    #: 50 %-confidence frequency-power ellipse (None below 3 samples).
    ellipse: Ellipse | None = None

    @property
    def frequency_sigma_ghz(self) -> float:
        return self.metrics["frequency_ghz"].std

    @property
    def power_sigma_mw(self) -> float:
        return self.metrics["power_mw"].std

    def to_dict(self) -> dict:
        """JSON-safe rendering; deterministic (no wall times inside)."""
        return {
            "label": self.label,
            "arch": self.arch,
            "seed": self.seed,
            "target_period_ps": self.target_period_ps,
            "samples": self.samples,
            "failed": self.failed,
            "nominal": {
                "frequency_ghz": self.nominal_frequency_ghz,
                "power_mw": self.nominal_power_mw,
            },
            "metrics": {name: stats.to_dict()
                        for name, stats in self.metrics.items()},
            "timing_yield": self.timing_yield,
            "fmax_3sigma_ghz": self.fmax_3sigma_ghz,
            "ellipse": None if self.ellipse is None else {
                "center_x": self.ellipse.center_x,
                "center_y": self.ellipse.center_y,
                "semi_major": self.ellipse.semi_major,
                "semi_minor": self.ellipse.semi_minor,
                "angle_rad": self.ellipse.angle_rad,
                "confidence": self.ellipse.confidence,
            },
        }


def signoff(mc: MonteCarloResult, confidence: float = 0.50) -> SignoffReport:
    """Summarize a finished study into a :class:`SignoffReport`."""
    if not mc.samples:
        raise ValueError(
            "cannot sign off a study with zero successful samples "
            f"({len(mc.failed)} quarantined)")
    metrics = {label: sample_stats(mc.metric(attr))
               for attr, label in SIGNOFF_METRICS.items()}
    met = sum(1 for s in mc.samples if s.met)
    freqs = mc.metric("achieved_frequency_ghz")
    powers = mc.metric("total_power_mw")
    ellipse = confidence_ellipse(freqs, powers, confidence) \
        if len(freqs) >= 3 else None
    freq_stats = metrics["frequency_ghz"]
    return SignoffReport(
        label=mc.config.label,
        arch=mc.config.arch,
        seed=mc.seed,
        target_period_ps=mc.config.target_period_ps,
        samples=len(mc.samples),
        failed=len(mc.failed),
        nominal_frequency_ghz=mc.nominal.achieved_frequency_ghz,
        nominal_power_mw=mc.nominal.total_power_mw,
        metrics=metrics,
        timing_yield=met / mc.requested if mc.requested else 0.0,
        fmax_3sigma_ghz=freq_stats.mean_minus_sigmas(3.0),
        ellipse=ellipse,
    )


def format_signoff(report: SignoffReport) -> str:
    """Human-readable signoff table for one study."""
    lines = [
        f"variation signoff: {report.label} "
        f"(seed={report.seed}, {report.samples} samples"
        + (f", {report.failed} quarantined" if report.failed else "") + ")",
        f"  nominal: f={report.nominal_frequency_ghz:.3f} GHz  "
        f"P={report.nominal_power_mw:.3f} mW",
        f"  {'metric':<18}{'mean':>10}{'sigma':>10}"
        f"{'q05':>10}{'q95':>10}",
    ]
    for name, stats in report.metrics.items():
        lines.append(
            f"  {name:<18}{stats.mean:>10.4f}{stats.std:>10.4f}"
            f"{stats.quantile(0.05):>10.4f}{stats.quantile(0.95):>10.4f}")
    lines.append(
        f"  3-sigma Fmax: {report.fmax_3sigma_ghz:.3f} GHz   "
        f"timing yield @ {1000.0 / report.target_period_ps:.2f} GHz: "
        f"{report.timing_yield:.1%}")
    if report.ellipse is not None:
        lines.append(
            f"  f-P {report.ellipse.confidence:.0%} ellipse: "
            f"center=({report.ellipse.center_x:.3f} GHz, "
            f"{report.ellipse.center_y:.3f} mW) "
            f"axes=({report.ellipse.semi_major:.4f}, "
            f"{report.ellipse.semi_minor:.4f})")
    return "\n".join(lines)


def sigma_comparison_table(reports: list[SignoffReport],
                           metric: str = "frequency_ghz") -> str:
    """Side-by-side sigma comparison (the FFET-vs-CFET headline)."""
    header = (f"{'config':<28}{'mean':>10}{'sigma':>10}{'sigma/mean':>12}"
              f"{'yield':>8}")
    lines = [f"variation comparison: {metric}", header, "-" * len(header)]
    for report in reports:
        stats = report.metrics[metric]
        rel = stats.std / abs(stats.mean) if stats.mean else 0.0
        lines.append(
            f"{report.label:<28}{stats.mean:>10.4f}{stats.std:>10.4f}"
            f"{rel:>11.2%}{report.timing_yield:>8.1%}")
    return "\n".join(lines)
