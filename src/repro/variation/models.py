"""Seeded process-variation models for the Monte-Carlo engine.

Three variation sources, following the overlay-aware FFET robustness
study (arXiv:2501.16063):

* **overlay** — frontside/backside lithography misalignment.  FFET
  patterns signals on *two* wafer sides, so each side gets an
  independent translation draw plus per-axis jitter and the overlay is
  their relative shift; CFET patterns signals on one side only, so the
  same draw exists (keeping the random stream identical across
  architectures) but perturbs nothing — backside wire RC is weighted
  by each net's backside wirelength fraction, which is zero for CFET;
* **CD/gate-length** — a per-sample global cell-delay sigma, applied
  through the :class:`~repro.sta.corners.Corner` derate machinery;
* **metal thickness/width** — per-side wire-RC sigma (thicker/narrower
  metal moves R and C), applied through
  :func:`~repro.sta.rc_scale.scale_extraction_sided`.

Every model is a frozen dataclass with a deterministic
``sample(rng)``: the draw *order* is fixed and independent of the
sigma values, so two models differing only in sigma consume the same
underlying normal deviates — which is what makes sigma-sweep
benchmarks monotonic by construction instead of by luck.

Per-sample seeds derive from the root seed SplitMix-style
(:func:`sample_seed`), so sample ``i`` sees the same stream no matter
how samples are chunked over workers — ``--jobs 1`` and ``--jobs 4``
are bit-identical.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

_MASK64 = (1 << 64) - 1
#: SplitMix64 increment (golden-ratio constant).
_GOLDEN = 0x9E3779B97F4A7C15


def splitmix64(x: int) -> int:
    """One SplitMix64 finalization step: a 64-bit avalanche mix."""
    x = (x + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def sample_seed(root_seed: int, index: int) -> int:
    """The RNG seed of sample ``index`` under ``root_seed``.

    A pure function of (root, index) — never of execution order — so
    any partition of samples over worker processes draws identical
    variates for every sample.
    """
    return splitmix64(splitmix64(root_seed & _MASK64) ^ (index & _MASK64))


@dataclass(frozen=True)
class OverlayModel:
    """Frontside<->backside overlay: translation plus per-axis jitter.

    ``sigma_x_nm``/``sigma_y_nm`` spread the per-side translation draw;
    ``jitter_nm`` adds an isotropic per-axis component on top (local
    alignment-mark noise).  ``sides`` is how many independently
    patterned signal sides the technology has: 2 for FFET, 1 for CFET.
    With one side there is no second draw to misalign against, so the
    overlay shift is exactly zero.
    """

    sigma_x_nm: float = 2.0
    sigma_y_nm: float = 2.0
    jitter_nm: float = 0.5
    sides: int = 2

    def __post_init__(self) -> None:
        if self.sigma_x_nm < 0 or self.sigma_y_nm < 0 or self.jitter_nm < 0:
            raise ValueError("overlay sigmas must be non-negative")
        if self.sides not in (1, 2):
            raise ValueError("a wafer has one or two patterned signal sides")

    def sample(self, rng: random.Random) -> tuple[float, float]:
        """Overlay shift (dx_nm, dy_nm) between the two patterned sides.

        Always draws both sides' variates (same stream for FFET and
        CFET); single-sided technologies return an exact (0, 0).
        """
        shifts = []
        for _side in range(2):
            dx = rng.gauss(0.0, 1.0) * self.sigma_x_nm \
                + rng.gauss(0.0, 1.0) * self.jitter_nm
            dy = rng.gauss(0.0, 1.0) * self.sigma_y_nm \
                + rng.gauss(0.0, 1.0) * self.jitter_nm
            shifts.append((dx, dy))
        if self.sides < 2:
            return (0.0, 0.0)
        return (shifts[1][0] - shifts[0][0], shifts[1][1] - shifts[0][1])


@dataclass(frozen=True)
class CDVariationModel:
    """Critical-dimension / gate-length variation as cell-delay sigma.

    One global per-sample derate drawn from N(1, sigma_rel), floored
    well above zero so a tail draw can never produce a negative delay.
    """

    sigma_rel: float = 0.03
    floor: float = 0.5

    def __post_init__(self) -> None:
        if self.sigma_rel < 0:
            raise ValueError("CD sigma must be non-negative")
        if not 0.0 < self.floor <= 1.0:
            raise ValueError("derate floor must be in (0, 1]")

    def sample(self, rng: random.Random) -> float:
        return max(self.floor, 1.0 + rng.gauss(0.0, 1.0) * self.sigma_rel)


@dataclass(frozen=True)
class MetalRCVariationModel:
    """Metal thickness/width variation as per-side wire-RC sigma.

    Each wafer side's BEOL is processed separately, so the front and
    back stacks draw independent N(1, sigma) RC factors.
    """

    front_sigma_rel: float = 0.04
    back_sigma_rel: float = 0.04
    floor: float = 0.5

    def __post_init__(self) -> None:
        if self.front_sigma_rel < 0 or self.back_sigma_rel < 0:
            raise ValueError("metal RC sigmas must be non-negative")
        if not 0.0 < self.floor <= 1.0:
            raise ValueError("RC floor must be in (0, 1]")

    def sample(self, rng: random.Random) -> tuple[float, float]:
        front = max(self.floor,
                    1.0 + rng.gauss(0.0, 1.0) * self.front_sigma_rel)
        back = max(self.floor,
                   1.0 + rng.gauss(0.0, 1.0) * self.back_sigma_rel)
        return front, back


@dataclass(frozen=True)
class VariationSample:
    """One fully drawn perturbation — plain data, picklable."""

    index: int
    seed: int
    overlay_dx_nm: float
    overlay_dy_nm: float
    cell_derate: float
    front_rc_scale: float
    back_rc_scale: float

    @property
    def overlay_shift_nm(self) -> float:
        """Overlay shift magnitude, nm."""
        return math.hypot(self.overlay_dx_nm, self.overlay_dy_nm)


@dataclass(frozen=True)
class VariationModel:
    """The combined per-sample variation draw.

    Draw order is fixed (overlay, CD, metal) and every component always
    consumes its variates, so changing one sigma never shifts another
    component's stream.
    """

    overlay: OverlayModel = field(default_factory=OverlayModel)
    cd: CDVariationModel = field(default_factory=CDVariationModel)
    metal: MetalRCVariationModel = field(default_factory=MetalRCVariationModel)

    @classmethod
    def for_arch(cls, arch: str, overlay_sigma_nm: float = 2.0,
                 cd_sigma: float = 0.03,
                 rc_sigma: float = 0.04) -> "VariationModel":
        """The standard model for one architecture.

        FFET has two independently patterned signal sides; CFET one
        (its backside carries only power delivery, pre-aligned before
        signal patterning in this comparison).
        """
        sides = 2 if arch == "ffet" else 1
        return cls(
            overlay=OverlayModel(sigma_x_nm=overlay_sigma_nm,
                                 sigma_y_nm=overlay_sigma_nm,
                                 jitter_nm=overlay_sigma_nm * 0.25,
                                 sides=sides),
            cd=CDVariationModel(sigma_rel=cd_sigma),
            metal=MetalRCVariationModel(front_sigma_rel=rc_sigma,
                                        back_sigma_rel=rc_sigma),
        )

    def draw(self, root_seed: int, index: int) -> VariationSample:
        """Sample ``index``'s perturbation under ``root_seed``."""
        seed = sample_seed(root_seed, index)
        rng = random.Random(seed)
        dx, dy = self.overlay.sample(rng)
        cell = self.cd.sample(rng)
        front, back = self.metal.sample(rng)
        return VariationSample(
            index=index, seed=seed,
            overlay_dx_nm=dx, overlay_dy_nm=dy,
            cell_derate=cell,
            front_rc_scale=front, back_rc_scale=back,
        )
