"""Scan-chain insertion (DFT).

Industrial blocks are scan-stitched before P&R; the paper's RISC-V core
would be no exception.  Each flop's D input gets a 2:1 mux selecting
between functional data and the previous flop's Q; the chain is ordered
deterministically (by instance name before placement, or by placement
position when one is provided, which shortens the stitch wires).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cells import Library
from ..netlist import Netlist


@dataclass(frozen=True)
class ScanChainReport:
    """Summary of one scan-insertion pass."""

    flops: int
    muxes_added: int
    scan_in: str
    scan_out: str
    scan_enable: str


def insert_scan_chain(netlist: Netlist, library: Library,
                      placement=None,
                      scan_in: str = "scan_in",
                      scan_out: str = "scan_out",
                      scan_enable: str = "scan_en") -> ScanChainReport:
    """Stitch all flops into a single scan chain (mutates the netlist)."""
    flops = netlist.sequential_instances(library)
    if not flops:
        raise ValueError("no flops to stitch")

    if placement is not None:
        def order_key(inst):
            p = placement.locations[inst.name]
            return (round(p.y_nm), p.x_nm)
    else:
        def order_key(inst):
            return inst.name
    chain = sorted(flops, key=order_key)

    netlist.add_net(scan_in, primary_input=True)
    netlist.add_net(scan_enable, primary_input=True)
    netlist.add_net(scan_out, primary_output=True)

    previous_q = scan_in
    for i, flop in enumerate(chain):
        functional_d = flop.connections["D"]
        mux_out = f"scanmux_net_{i}"
        netlist.add_net(mux_out)
        netlist.add_instance(
            f"scanmux_{i}", "MUX2D1",
            {"A": functional_d, "B": previous_q, "S": scan_enable,
             "Z": mux_out},
        )
        flop.connections["D"] = mux_out
        master = library[flop.master]
        previous_q = flop.connections[master.output.name]

    # Tap the last flop's Q out of the block.
    netlist.add_instance("scanout_buf", "BUFD1",
                         {"A": previous_q, "Z": scan_out})
    netlist.bind(library)
    return ScanChainReport(
        flops=len(chain),
        muxes_added=len(chain),
        scan_in=scan_in,
        scan_out=scan_out,
        scan_enable=scan_enable,
    )
