"""Structural generator for a single-cycle RV32I core.

The paper's benchmark design is "a 32-bit RISC-V core"; this module
generates one as a flat gate-level netlist: fetch (PC + adders), decode,
immediate generation, a register file, an ALU with a barrel shifter,
branch resolution and a writeback mux.  Instruction and data memories
stay external (primary inputs/outputs), as is standard for synthesis
benchmarks.

Simplifications, documented for reproducibility:

* loads/stores move full words (no byte/halfword lanes),
* no CSRs, FENCE, ECALL/EBREAK (decoded as NOPs),
* ``xlen`` and ``nregs`` are parameterizable so tests can run scaled-
  down cores; the paper-scale configuration is ``xlen=32, nregs=32``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..netlist import Netlist
from .builder import NetlistBuilder


@dataclass(frozen=True)
class RiscvConfig:
    """Size knobs for the generated core."""

    xlen: int = 32
    nregs: int = 32
    name: str = "rv32i_core"

    def __post_init__(self) -> None:
        if self.xlen < 4 or self.xlen > 64:
            raise ValueError("xlen must be in [4, 64]")
        if self.nregs < 2 or self.nregs & (self.nregs - 1):
            raise ValueError("nregs must be a power of two >= 2")

    @property
    def reg_bits(self) -> int:
        return int(math.log2(self.nregs))

    @property
    def shamt_bits(self) -> int:
        return max(1, int(math.ceil(math.log2(self.xlen))))


# RV32I opcodes (7-bit).
_OP_LUI = 0b0110111
_OP_AUIPC = 0b0010111
_OP_JAL = 0b1101111
_OP_JALR = 0b1100111
_OP_BRANCH = 0b1100011
_OP_LOAD = 0b0000011
_OP_STORE = 0b0100011
_OP_IMM = 0b0010011
_OP_OP = 0b0110011


def generate_riscv_core(config: RiscvConfig = RiscvConfig()) -> Netlist:
    """Generate the gate-level netlist of the single-cycle core."""
    b = NetlistBuilder(config.name)
    xlen = config.xlen

    instr = b.inputs("instr", 32)
    dmem_rdata = b.inputs("dmem_rdata", xlen)

    with b.scope("decode"):
        opcode = instr[0:7]
        funct3 = instr[12:15]
        funct7b5 = instr[30]
        is_lui = b.equals_const(opcode, _OP_LUI)
        is_auipc = b.equals_const(opcode, _OP_AUIPC)
        is_jal = b.equals_const(opcode, _OP_JAL)
        is_jalr = b.equals_const(opcode, _OP_JALR)
        is_branch = b.equals_const(opcode, _OP_BRANCH)
        is_load = b.equals_const(opcode, _OP_LOAD)
        is_store = b.equals_const(opcode, _OP_STORE)
        is_op_imm = b.equals_const(opcode, _OP_IMM)
        is_op = b.equals_const(opcode, _OP_OP)

        writes_rd = b.or_tree(
            [is_lui, is_auipc, is_jal, is_jalr, is_load, is_op_imm, is_op]
        )

    with b.scope("imm"):
        sign = instr[31]

        def sext(bits: list[str]) -> list[str]:
            bits = bits[:xlen]
            return bits + [sign] * (xlen - len(bits))

        imm_i = sext(instr[20:31])
        imm_s = sext(instr[7:12] + instr[25:31])
        zero = b.tie(False)
        imm_b = sext([zero] + instr[8:12] + instr[25:31] + [instr[7]])
        imm_j = sext([zero] + instr[21:31] + [instr[20]] + instr[12:20])
        # U-type: low 12 bits zero, then instr[12:31]; truncate to xlen.
        imm_u = ([zero] * 12 + instr[12:32])[:xlen]
        if len(imm_u) < xlen:
            imm_u = imm_u + [sign] * (xlen - len(imm_u))

        use_imm_s = is_store
        use_imm_b = is_branch
        use_imm_j = is_jal
        use_imm_u = b.or2(is_lui, is_auipc)
        imm = imm_i
        imm = b.mux_word(imm, imm_s, use_imm_s)
        imm = b.mux_word(imm, imm_b, use_imm_b)
        imm = b.mux_word(imm, imm_j, use_imm_j)
        imm = b.mux_word(imm, imm_u, use_imm_u)

    with b.scope("regfile"):
        rd = instr[7 : 7 + config.reg_bits]
        rs1 = instr[15 : 15 + config.reg_bits]
        rs2 = instr[20 : 20 + config.reg_bits]

        write_onehot = b.decoder(rd)
        zero_word = [b.tie(False) for _ in range(xlen)]
        # wb_data nets are created later; declare placeholders now.
        wb_data = [b.fresh_net("wb") for _ in range(xlen)]

        reg_words: list[list[str]] = [zero_word]  # x0 reads as zero
        for r in range(1, config.nregs):
            we = b.and2(writes_rd, write_onehot[r])
            q_nets = [b.fresh_net(f"x{r}_q") for _ in range(xlen)]
            d_nets = [
                b.mux2(q_nets[i], wb_data[i], we) for i in range(xlen)
            ]
            for i in range(xlen):
                b.dff(d_nets[i], q=q_nets[i])
            reg_words.append(q_nets)

        rs1_data = b.mux_tree(reg_words, rs1)
        rs2_data = b.mux_tree(reg_words, rs2)

    with b.scope("pc"):
        pc_q = [b.fresh_net(f"pc_q{i}") for i in range(xlen)]
        pc_plus4 = b.incrementer(pc_q, amount_bit=2)

    with b.scope("alu"):
        # Operand selection: a = pc for AUIPC, rs1 otherwise; b = imm
        # unless a register-register op.  Jump/branch targets use a
        # dedicated adder in the nextpc block.
        op_a = b.mux_word(rs1_data, pc_q, is_auipc)
        # Register operand for R-type ops and branch compares; the
        # immediate otherwise (I-type, loads/stores, LUI/AUIPC).
        use_rs2 = b.or2(is_op, is_branch)
        op_b = b.mux_word(imm, rs2_data, use_rs2)

        # Subtract for SUB, SLT(U) and all branch compares.
        f3 = funct3
        is_sub = b.and_tree([is_op, funct7b5])
        is_slt_f3 = b.and2(b.inv(f3[2]), f3[1])  # funct3 = 01x -> SLT/SLTU
        alu_sub = b.or_tree([is_sub, b.and2(b.or2(is_op, is_op_imm), is_slt_f3),
                             is_branch])

        b_xor = [b.xor2(bit, alu_sub) for bit in op_b]
        add_out, carry_out = b.fast_adder(op_a, b_xor, cin=alu_sub)

        # Flags for compares: eq, lt (signed), ltu (unsigned).
        diff_is_zero = b.is_zero(add_out)
        a_sign, b_sign = op_a[-1], op_b[-1]
        same_sign = b.xnor2(a_sign, b_sign)
        lt_signed = b.mux2(a_sign, add_out[-1], same_sign)
        ltu = b.inv(carry_out)

        logic_and = [b.and2(x, y) for x, y in zip(op_a, op_b)]
        logic_or = [b.or2(x, y) for x, y in zip(op_a, op_b)]
        logic_xor = [b.xor2(x, y) for x, y in zip(op_a, op_b)]

        shamt = op_b[: config.shamt_bits]
        shift_right = f3[2]                      # SRL/SRA have funct3=101
        shift_arith = funct7b5
        shift_out = b.barrel_shifter(rs1_data, shamt, shift_right, shift_arith)

        slt_bit = b.mux2(lt_signed, ltu, f3[0])  # SLTU has funct3=011
        slt_word = [slt_bit] + [b.tie(False) for _ in range(xlen - 1)]

        # funct3 mux: 000 add/sub, 001 sll, 010 slt, 011 sltu, 100 xor,
        # 101 srl/sra, 110 or, 111 and.
        alu_out = b.mux_tree(
            [add_out, shift_out, slt_word, slt_word,
             logic_xor, shift_out, logic_or, logic_and],
            f3,
        )
        # Non-OP instructions always use the adder result.
        is_alu_op = b.or2(is_op, is_op_imm)
        alu_result = b.mux_word(add_out, alu_out, is_alu_op)

    with b.scope("branch"):
        # funct3: 000 beq, 001 bne, 100 blt, 101 bge, 110 bltu, 111 bgeu.
        lt_for_branch = b.mux2(lt_signed, ltu, f3[1])
        base_cond = b.mux2(diff_is_zero, lt_for_branch, f3[2])
        cond = b.xor2(base_cond, f3[0])          # odd funct3 inverts
        take_branch = b.and2(is_branch, cond)

    with b.scope("nextpc"):
        do_jump = b.or2(is_jal, is_jalr)
        redirect = b.or2(take_branch, do_jump)
        # Target adder: pc + imm for branches/JAL, rs1 + imm for JALR.
        target_base = b.mux_word(pc_q, rs1_data, is_jalr)
        target, _ = b.fast_adder(target_base, imm)
        next_pc = b.mux_word(pc_plus4, target, redirect)
        for i in range(xlen):
            b.dff(next_pc[i], q=pc_q[i])

    with b.scope("writeback"):
        use_pc4 = do_jump
        wb = b.mux_word(alu_result, dmem_rdata, is_load)
        wb = b.mux_word(wb, imm, is_lui)
        wb = b.mux_word(wb, pc_plus4, use_pc4)
        for i in range(xlen):
            b.cell("BUFD1", A=wb[i], Z=wb_data[i])

    b.outputs(pc_q, "pc")
    b.outputs(alu_result, "dmem_addr")
    b.outputs(rs2_data, "dmem_wdata")
    b.output(is_store, "dmem_we")

    netlist = b.netlist
    netlist.attributes["config"] = config
    netlist.attributes["pc_nets"] = list(pc_q)
    netlist.attributes["regfile_nets"] = {
        r: list(reg_words[r]) for r in range(1, config.nregs)
    }
    return netlist
