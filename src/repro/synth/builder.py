"""Netlist builder: structural construction helpers for datapath logic.

Gates are instantiated directly as D1 library cells; the timing-driven
sizing pass (:mod:`repro.synth.sizing`) picks drive strengths later,
mirroring a synthesis tool's map-then-size flow.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..netlist import Netlist


class NetlistBuilder:
    """Builds a flat gate-level netlist with readable hierarchical names."""

    def __init__(self, name: str, clock: str = "clk") -> None:
        self.netlist = Netlist(name)
        self.clock = clock
        self.netlist.add_net(clock, primary_input=True, clock=True)
        self._net_counter = 0
        self._inst_counter = 0
        self._prefix: list[str] = []

    # -- naming ---------------------------------------------------------------
    @contextmanager
    def scope(self, name: str):
        """Prefix instance/net names with ``name/`` inside the block."""
        self._prefix.append(name)
        try:
            yield self
        finally:
            self._prefix.pop()

    def _qualify(self, name: str) -> str:
        if self._prefix:
            return "/".join(self._prefix) + "/" + name
        return name

    def fresh_net(self, hint: str = "n") -> str:
        self._net_counter += 1
        return self._qualify(f"{hint}{self._net_counter}")

    def _fresh_inst(self, master: str) -> str:
        self._inst_counter += 1
        return self._qualify(f"u{self._inst_counter}_{master.lower()}")

    # -- ports ----------------------------------------------------------------
    def input(self, name: str) -> str:
        self.netlist.add_net(name, primary_input=True)
        return name

    def inputs(self, prefix: str, width: int) -> list[str]:
        return [self.input(f"{prefix}[{i}]") for i in range(width)]

    def output(self, net: str, name: str | None = None) -> str:
        """Mark ``net`` as a primary output (optionally via a rename buffer)."""
        if name is not None and name != net:
            self.netlist.add_net(name, primary_output=True)
            self.cell("BUFD1", A=net, Z=name)
            return name
        self.netlist.add_net(net, primary_output=True)
        return net

    def outputs(self, nets: list[str], prefix: str) -> list[str]:
        return [self.output(net, f"{prefix}[{i}]") for i, net in enumerate(nets)]

    # -- primitive gates --------------------------------------------------------
    def cell(self, master: str, **pins: str) -> str:
        """Instantiate ``master``; returns the output net (created if absent).

        The output pin (``ZN``/``Z``/``Q``) may be omitted, in which case a
        fresh net is allocated and returned.
        """
        out_pin = next((c for c in ("ZN", "Z", "Q") if c in pins), None)
        if out_pin is None:
            out_pin = _OUTPUT_PIN[master_base(master)]
            pins[out_pin] = self.fresh_net()
        self.netlist.add_instance(self._fresh_inst(master), master, pins)
        return pins[out_pin]

    def inv(self, a: str) -> str:
        return self.cell("INVD1", A=a)

    def buf(self, a: str) -> str:
        return self.cell("BUFD1", A=a)

    def nand2(self, a: str, b: str) -> str:
        return self.cell("NAND2D1", A=a, B=b)

    def nor2(self, a: str, b: str) -> str:
        return self.cell("NOR2D1", A=a, B=b)

    def nand3(self, a: str, b: str, c: str) -> str:
        return self.cell("NAND3D1", A=a, B=b, C=c)

    def nor3(self, a: str, b: str, c: str) -> str:
        return self.cell("NOR3D1", A=a, B=b, C=c)

    def and2(self, a: str, b: str) -> str:
        return self.cell("AND2D1", A=a, B=b)

    def or2(self, a: str, b: str) -> str:
        return self.cell("OR2D1", A=a, B=b)

    def xor2(self, a: str, b: str) -> str:
        return self.cell("XOR2D1", A=a, B=b)

    def xnor2(self, a: str, b: str) -> str:
        return self.cell("XNOR2D1", A=a, B=b)

    def aoi21(self, a1: str, a2: str, b: str) -> str:
        return self.cell("AOI21D1", A1=a1, A2=a2, B=b)

    def oai21(self, a1: str, a2: str, b: str) -> str:
        return self.cell("OAI21D1", A1=a1, A2=a2, B=b)

    def aoi22(self, a1: str, a2: str, b1: str, b2: str) -> str:
        return self.cell("AOI22D1", A1=a1, A2=a2, B1=b1, B2=b2)

    def oai22(self, a1: str, a2: str, b1: str, b2: str) -> str:
        return self.cell("OAI22D1", A1=a1, A2=a2, B1=b1, B2=b2)

    def mux2(self, a: str, b: str, s: str) -> str:
        """2:1 mux: returns ``b`` when ``s`` else ``a``."""
        return self.cell("MUX2D1", A=a, B=b, S=s)

    def dff(self, d: str, q: str | None = None) -> str:
        pins = {"D": d, "CK": self.clock}
        if q is not None:
            pins["Q"] = q
        return self.cell("DFFD1", **pins)

    def tie(self, value: bool) -> str:
        return self.cell("TIEHI" if value else "TIELO")

    # -- composite datapath helpers -----------------------------------------
    def reduce_tree(self, nets: list[str], op) -> str:
        """Balanced binary reduction of ``nets`` with a 2-input builder op."""
        if not nets:
            raise ValueError("cannot reduce an empty list")
        level = list(nets)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(op(level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def and_tree(self, nets: list[str]) -> str:
        return self.reduce_tree(nets, self.and2)

    def or_tree(self, nets: list[str]) -> str:
        return self.reduce_tree(nets, self.or2)

    def xor_tree(self, nets: list[str]) -> str:
        return self.reduce_tree(nets, self.xor2)

    def half_adder(self, a: str, b: str) -> tuple[str, str]:
        return self.xor2(a, b), self.and2(a, b)

    def full_adder(self, a: str, b: str, cin: str) -> tuple[str, str]:
        axb = self.xor2(a, b)
        s = self.xor2(axb, cin)
        # cout = a*b + cin*(a^b), via AOI + INV for a compact mapping.
        cout_n = self.aoi22(a, b, cin, axb)
        return s, self.inv(cout_n)

    def ripple_adder(self, a: list[str], b: list[str],
                     cin: str | None = None) -> tuple[list[str], str]:
        """LSB-first ripple-carry adder; returns (sum bits, carry out)."""
        if len(a) != len(b):
            raise ValueError("adder operand widths differ")
        carry = cin if cin is not None else self.tie(False)
        sums = []
        for ai, bi in zip(a, b):
            s, carry = self.full_adder(ai, bi, carry)
            sums.append(s)
        return sums, carry

    def fast_adder(self, a: list[str], b: list[str],
                   cin: str | None = None) -> tuple[list[str], str]:
        """Kogge-Stone parallel-prefix adder (LSB-first).

        Logarithmic depth — the mapping a synthesis tool would pick for
        a cycle-critical ALU adder, unlike the linear ripple chain.
        """
        if len(a) != len(b):
            raise ValueError("adder operand widths differ")
        n = len(a)
        p0 = [self.xor2(x, y) for x, y in zip(a, b)]
        g = [self.and2(x, y) for x, y in zip(a, b)]
        if cin is not None:
            g[0] = self.or2(g[0], self.and2(p0[0], cin))
        p = list(p0)
        d = 1
        while d < n:
            new_g = list(g)
            new_p = list(p)
            for i in range(d, n):
                new_g[i] = self.or2(g[i], self.and2(p[i], g[i - d]))
                new_p[i] = self.and2(p[i], p[i - d])
            g, p = new_g, new_p
            d *= 2
        sums = [self.xor2(p0[0], cin) if cin is not None else p0[0]]
        sums += [self.xor2(p0[i], g[i - 1]) for i in range(1, n)]
        return sums, g[n - 1]

    def subtractor(self, a: list[str], b: list[str]) -> tuple[list[str], str]:
        """a - b via two's complement; returns (difference, carry out)."""
        b_inv = [self.inv(bit) for bit in b]
        return self.ripple_adder(a, b_inv, cin=self.tie(True))

    def incrementer(self, a: list[str], amount_bit: int = 0) -> list[str]:
        """a + (1 << amount_bit) using half adders."""
        out = list(a)
        carry = None
        for i in range(len(a)):
            if i < amount_bit:
                continue
            if carry is None:
                out[i] = self.inv(a[i])
                carry = a[i]
            else:
                out[i], carry = self.half_adder(a[i], carry)
        return out

    def mux_word(self, a: list[str], b: list[str], s: str) -> list[str]:
        """Word-wide 2:1 mux (b when s)."""
        if len(a) != len(b):
            raise ValueError("mux operand widths differ")
        return [self.mux2(ai, bi, s) for ai, bi in zip(a, b)]

    def mux_tree(self, words: list[list[str]], select: list[str]) -> list[str]:
        """2^k : 1 word mux; ``select`` is LSB-first, len == log2(len(words))."""
        if len(words) != 1 << len(select):
            raise ValueError(
                f"need {1 << len(select)} words for {len(select)} select bits"
            )
        level = list(words)
        for s_bit in select:
            level = [
                self.mux_word(level[i], level[i + 1], s_bit)
                for i in range(0, len(level), 2)
            ]
        return level[0]

    def decoder(self, select: list[str]) -> list[str]:
        """k-to-2^k one-hot decoder (LSB-first select)."""
        inv_sel = [self.inv(s) for s in select]
        outputs = []
        for code in range(1 << len(select)):
            bits = [
                select[i] if (code >> i) & 1 else inv_sel[i]
                for i in range(len(select))
            ]
            outputs.append(self.and_tree(bits))
        return outputs

    def equals_const(self, nets: list[str], value: int) -> str:
        """1 when the word equals a constant."""
        bits = [
            net if (value >> i) & 1 else self.inv(net)
            for i, net in enumerate(nets)
        ]
        return self.and_tree(bits)

    def is_zero(self, nets: list[str]) -> str:
        return self.inv(self.or_tree(nets))

    def barrel_shifter(self, word: list[str], shamt: list[str],
                       right: str, arith: str) -> list[str]:
        """Logarithmic shifter: left, logical right or arithmetic right.

        ``right`` selects direction, ``arith`` selects sign extension on
        right shifts.  Implemented by pre/post reversal around a right
        shifter, as synthesis tools commonly map it.
        """
        n = len(word)
        fill_right = self.and2(word[-1], arith)  # sign bit when arithmetic
        zero = self.tie(False)
        # Reverse for left shifts so the core shifter is right-only.
        current = [self.mux2(word[n - 1 - i], word[i], right) for i in range(n)]
        for stage, s_bit in enumerate(shamt):
            dist = 1 << stage
            if dist >= n:
                break
            fill = self.mux2(zero, fill_right, right)
            shifted = [
                current[i + dist] if i + dist < n else fill
                for i in range(n)
            ]
            current = self.mux_word(current, shifted, s_bit)
        # Undo the reversal for left shifts.
        return [self.mux2(current[n - 1 - i], current[i], right) for i in range(n)]

    def register(self, d: list[str], name_hint: str = "r") -> list[str]:
        """A word register of DFFs; returns the Q nets."""
        return [self.dff(bit) for bit in d]


_OUTPUT_PIN = {
    "INV": "ZN", "BUF": "Z", "CLKBUF": "Z", "NAND2": "ZN", "NOR2": "ZN",
    "NAND3": "ZN", "NOR3": "ZN", "AND2": "Z", "OR2": "Z", "XOR2": "Z",
    "XNOR2": "Z", "AOI21": "ZN", "OAI21": "ZN", "AOI22": "ZN", "OAI22": "ZN",
    "MUX2": "Z", "DFF": "Q", "TIEHI": "Z", "TIELO": "Z",
}


def master_base(master: str) -> str:
    """Strip the drive suffix: ``NAND2D4`` -> ``NAND2``."""
    if master in ("TIEHI", "TIELO"):
        return master
    head, _, _ = master.rpartition("D")
    return head or master
