"""High-fanout buffering and timing-driven gate sizing.

Plays the role of the synthesis tool's delay optimization: the netlist
comes out of the generators at minimum drive (D1); this pass buffers
high-fanout nets, then iterates wireload-model STA and upsizes cells on
failing paths until the target period is met or sizing saturates.  A
higher synthesis target therefore buys speed with area and power —
the mechanism behind the paper's 500 MHz - 3 GHz sweeps (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cells import Library
from ..extract import estimate_loads, estimate_parasitics
from ..netlist import Netlist
from ..sta import TimingReport, analyze_timing

#: Synthesis guardband: optimize against this fraction of the target
#: period, because wireload-model timing is optimistic against the
#: post-route reality (detours, congestion derates, clock insertion).
SYNTHESIS_GUARDBAND = 0.55


@dataclass
class SizingReport:
    """Outcome of the sizing pass."""

    target_period_ps: float
    iterations: int
    upsized: int
    buffers_added: int
    final_timing: TimingReport

    @property
    def met(self) -> bool:
        return self.final_timing.met


def buffer_high_fanout(netlist: Netlist, library: Library,
                       max_fanout: int = 20, clock: str = "clk") -> int:
    """Split nets with more than ``max_fanout`` sinks with buffer trees.

    The clock net is left to CTS.  Returns the number of buffers added.
    """
    added = 0
    work = [
        name for name, net in netlist.nets.items()
        if len(net.sinks) > max_fanout and name != clock and not net.is_clock
    ]
    counter = 0
    while work:
        net_name = work.pop()
        net = netlist.nets[net_name]
        sinks = sorted(net.sinks)
        if len(sinks) <= max_fanout:
            continue
        groups = [sinks[i:i + max_fanout]
                  for i in range(0, len(sinks), max_fanout)]
        for group in groups:
            counter += 1
            added += 1
            buf_name = f"fobuf_{net_name.replace('/', '_')}_{counter}"
            buf_net = f"fonet_{net_name.replace('/', '_')}_{counter}"
            netlist.add_net(buf_net)
            netlist.add_instance(buf_name, "BUFD4",
                                 {"A": net_name, "Z": buf_net})
            for inst_name, pin_name in group:
                netlist.instances[inst_name].connections[pin_name] = buf_net
        netlist.bind(library)
        # The source net now drives the buffers; it may still exceed the
        # budget if there were many groups.
        if len(netlist.nets[net_name].sinks) > max_fanout:
            work.append(net_name)
    if added:
        netlist.bind(library)
    return added


def _upsize(netlist: Netlist, library: Library, inst_name: str) -> bool:
    """Move one instance to the next drive strength; False at the top."""
    inst = netlist.instances[inst_name]
    master = library[inst.master]
    stronger = library.next_drive_up(master)
    if stronger is None:
        return False
    inst.master = stronger.name
    return True


def size_for_target(netlist: Netlist, library: Library,
                    target_period_ps: float, clock: str = "clk",
                    max_iterations: int = 12,
                    max_fanout: int = 20) -> SizingReport:
    """Buffer, then iteratively upsize the critical path to the target."""
    if target_period_ps <= 0:
        raise ValueError("target period must be positive")
    effective_period_ps = target_period_ps * SYNTHESIS_GUARDBAND
    buffers = buffer_high_fanout(netlist, library, max_fanout, clock)

    upsized = 0
    iterations = 0
    report = None
    for iterations in range(1, max_iterations + 1):
        extraction = estimate_parasitics(netlist, library)
        report = analyze_timing(netlist, library, extraction,
                                effective_period_ps, clock)
        if report.met:
            break
        progressed = False
        # Upsize every instance appearing on the critical path.
        for hop in report.critical_path:
            if "/" not in hop:
                continue
            inst_name = hop.rsplit("/", 1)[0]
            if inst_name in netlist.instances and \
                    _upsize(netlist, library, inst_name):
                upsized += 1
                progressed = True
        # Also upsize overloaded drivers anywhere in the design.  Only
        # the driver loads matter here, so skip the full parasitics
        # build (estimate_loads is bit-equal on total_cap_ff).
        loads = estimate_loads(netlist, library)
        for inst in list(netlist.instances.values()):
            master = library[inst.master]
            outs = master.output_pins
            if not outs:
                continue
            out_net = inst.connections.get(outs[0].name)
            if out_net is None or out_net not in loads:
                continue
            load = loads[out_net]
            if load > 3.0 * master.drive and _upsize(netlist, library,
                                                     inst.name):
                upsized += 1
                progressed = True
        if not progressed:
            break

    if report is None or not report.met:
        extraction = estimate_parasitics(netlist, library)
        report = analyze_timing(netlist, library, extraction,
                                effective_period_ps, clock)
    return SizingReport(
        target_period_ps=target_period_ps,
        iterations=iterations,
        upsized=upsized,
        buffers_added=buffers,
        final_timing=report,
    )
