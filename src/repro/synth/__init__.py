"""Synthesis substrate: netlist builder, RISC-V generator, sizing."""

from .builder import NetlistBuilder, master_base
from .designs import (
    PORTFOLIO,
    generate_counter,
    generate_fir_filter,
    generate_multiplier,
    generate_rv16_cache,
    generate_rv16_sram,
    generate_rv16_tile,
)
from .riscv import RiscvConfig, generate_riscv_core
from .opt import OptReport, collapse_inverter_pairs, optimize, propagate_constants, sweep_dead_gates
from .scan import ScanChainReport, insert_scan_chain
from .sizing import SizingReport, buffer_high_fanout, size_for_target

__all__ = [
    "NetlistBuilder",
    "PORTFOLIO",
    "RiscvConfig",
    "OptReport",
    "SizingReport",
    "buffer_high_fanout",
    "ScanChainReport",
    "generate_counter",
    "generate_fir_filter",
    "generate_multiplier",
    "generate_riscv_core",
    "generate_rv16_cache",
    "generate_rv16_sram",
    "generate_rv16_tile",
    "collapse_inverter_pairs",
    "insert_scan_chain",
    "optimize",
    "propagate_constants",
    "sweep_dead_gates",
    "master_base",
    "size_for_target",
]
