"""Logic optimization passes: the cleanup a synthesis tool runs.

Three classic, function-preserving rewrites:

* **constant propagation** — gates fed by TIEHI/TIELO collapse to
  constants or simpler gates,
* **double-inverter collapse** — INV->INV chains short through,
* **dead-gate sweep** — combinational gates whose outputs reach no
  flop, primary output or clock pin are removed.

Each pass mutates the netlist and re-binds it; the equivalence checker
in :mod:`repro.netlist.equiv` is the intended safety net (and is used
in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cells import Library
from ..netlist import Netlist
from .builder import master_base


@dataclass(frozen=True)
class OptReport:
    """What an optimization run removed or rewired."""

    constants_propagated: int
    inverter_pairs_collapsed: int
    dead_gates_removed: int

    @property
    def total(self) -> int:
        return (self.constants_propagated + self.inverter_pairs_collapsed
                + self.dead_gates_removed)


def _rewire_sinks(netlist: Netlist, old_net: str, new_net: str) -> None:
    for inst_name, pin_name in list(netlist.nets[old_net].sinks):
        netlist.instances[inst_name].connections[pin_name] = new_net
    old = netlist.nets[old_net]
    if old.is_primary_output:
        # Keep the output port alive by re-driving it with a buffer.
        driver = netlist.nets[new_net]
        counter = sum(1 for n in netlist.instances if n.startswith("optbuf_"))
        netlist.add_instance(f"optbuf_{counter}", "BUFD1",
                             {"A": new_net, "Z": old_net})


def propagate_constants(netlist: Netlist, library: Library) -> int:
    """Simplify gates with constant (TIE-driven) inputs.  One sweep."""
    changed = 0
    constant_nets: dict[str, bool] = {}
    for inst in netlist.instances.values():
        base = master_base(inst.master)
        if base == "TIEHI":
            constant_nets[inst.connections["Z"]] = True
        elif base == "TIELO":
            constant_nets[inst.connections["Z"]] = False

    for inst in list(netlist.instances.values()):
        master = library[inst.master]
        if master.is_sequential or master.logic_fn is None:
            continue
        in_pins = master.input_pins
        if not in_pins:
            continue
        known = {
            p.name: constant_nets[inst.connections[p.name]]
            for p in in_pins if inst.connections[p.name] in constant_nets
        }
        if not known:
            continue
        unknown = [p.name for p in in_pins if p.name not in known]
        # Evaluate the function over every assignment of the unknown
        # inputs: a single result means the gate is constant; with one
        # unknown left, two results mean wire or inverter.
        results = set()
        evaluations = []
        for code in range(1 << len(unknown)):
            vector = dict(known)
            vector.update({
                name: bool((code >> i) & 1)
                for i, name in enumerate(unknown)
            })
            value = bool(master.logic_fn(vector))
            results.add(value)
            evaluations.append(value)
        out_net = inst.connections[master.output.name]
        if len(results) == 1:
            value = results.pop()
            del netlist.instances[inst.name]
            netlist.add_instance(f"{inst.name}_const",
                                 "TIEHI" if value else "TIELO",
                                 {"Z": out_net})
            constant_nets[out_net] = value
            changed += 1
        elif len(unknown) == 1:
            src = inst.connections[unknown[0]]
            follows = evaluations == [False, True]
            inverts = evaluations == [True, False]
            if follows or inverts:
                del netlist.instances[inst.name]
                if follows:
                    netlist.add_instance(f"{inst.name}_thru", "BUFD1",
                                         {"A": src, "Z": out_net})
                else:
                    netlist.add_instance(f"{inst.name}_inv", "INVD1",
                                         {"A": src, "ZN": out_net})
                changed += 1
    if changed:
        netlist.bind(library)
    return changed


def collapse_inverter_pairs(netlist: Netlist, library: Library) -> int:
    """Short INV->INV chains through to the original signal."""
    changed = 0
    for inst in list(netlist.instances.values()):
        if master_base(inst.master) != "INV":
            continue
        in_net = inst.connections["A"]
        driver = netlist.nets[in_net].driver
        if driver is None:
            continue
        upstream = netlist.instances[driver[0]]
        if master_base(upstream.master) != "INV":
            continue
        source = upstream.connections["A"]
        out_net = inst.connections["ZN"]
        if netlist.nets[out_net].is_primary_output:
            continue
        _rewire_sinks(netlist, out_net, source)
        del netlist.instances[inst.name]
        changed += 1
    if changed:
        netlist.bind(library)
    return changed


def sweep_dead_gates(netlist: Netlist, library: Library) -> int:
    """Remove combinational gates with no observable fanout."""
    removed_total = 0
    while True:
        removed = 0
        for inst in list(netlist.instances.values()):
            master = library[inst.master]
            if master.is_sequential:
                continue
            outs = master.output_pins
            if not outs:
                continue
            out_net = netlist.nets[inst.connections[outs[0].name]]
            if out_net.is_primary_output or out_net.sinks:
                continue
            del netlist.instances[inst.name]
            removed += 1
        if not removed:
            break
        removed_total += removed
        netlist.bind(library)
    return removed_total


def optimize(netlist: Netlist, library: Library,
             max_passes: int = 4) -> OptReport:
    """Run all passes to a fixed point (bounded by ``max_passes``)."""
    constants = inverters = dead = 0
    for _sweep in range(max_passes):
        c = propagate_constants(netlist, library)
        i = collapse_inverter_pairs(netlist, library)
        d = sweep_dead_gates(netlist, library)
        constants += c
        inverters += i
        dead += d
        if c + i + d == 0:
            break
    return OptReport(
        constants_propagated=constants,
        inverter_pairs_collapsed=inverters,
        dead_gates_removed=dead,
    )
