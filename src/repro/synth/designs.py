"""The benchmark design portfolio beyond the plain RISC-V core.

Besides the small auxiliary blocks (counter, multiplier, FIR), this
module grows the portfolio the paper's block-level claims need:

* :func:`generate_rv16_sram` — a scaled RISC-V core whose data memory
  is an on-die SRAM hard macro (``repro.macros``) instead of primary
  IO, so every physical stage sees real blockage and macro-pin
  pressure;
* :func:`generate_rv16_cache` — the same core with a second SRAM used
  as an instruction/line cache (two macros, asymmetric sizes);
* :func:`generate_rv16_tile` — a 2-core tile sharing one clock, the
  largest macro design (two cores, two SRAMs).

``PORTFOLIO`` maps CLI/service design names to picklable zero-argument
factories; ``repro run --design rv16_sram`` and the sweep/MC/serve
paths resolve through it.
"""

from __future__ import annotations

from ..macros import MacroSpec
from ..netlist import Netlist
from .builder import NetlistBuilder


def generate_counter(width: int = 16, name: str = "counter") -> Netlist:
    """A free-running binary counter with an enable input."""
    if width < 1:
        raise ValueError("width must be positive")
    b = NetlistBuilder(name)
    enable = b.input("en")
    q = [b.fresh_net(f"q{i}") for i in range(width)]
    incremented = b.incrementer(q)
    nxt = b.mux_word(q, incremented, enable)
    for i in range(width):
        b.dff(nxt[i], q=q[i])
    b.outputs(q, "count")
    return b.netlist


def generate_multiplier(width: int = 8, name: str = "multiplier",
                        registered: bool = True) -> Netlist:
    """An array multiplier (``width x width -> 2*width``).

    Deep carry chains make this a good stress case for timing-driven
    sizing and the frequency sweeps.
    """
    if width < 2:
        raise ValueError("width must be at least 2")
    b = NetlistBuilder(name)
    a = b.inputs("a", width)
    x = b.inputs("x", width)
    if registered:
        a = [b.dff(bit) for bit in a]
        x = [b.dff(bit) for bit in x]

    # Partial products, then row-by-row ripple accumulation.
    acc = [b.and2(a[0], xj) for xj in x] + [b.tie(False)] * width
    for i in range(1, width):
        row = [b.and2(a[i], xj) for xj in x]
        segment = acc[i:i + width]
        summed, carry = b.ripple_adder(segment, row)
        acc[i:i + width] = summed
        acc[i + width] = carry

    product = acc[: 2 * width]
    if registered:
        product = [b.dff(bit) for bit in product]
    b.outputs(product, "p")
    return b.netlist


def generate_fir_filter(taps: int = 4, width: int = 6,
                        name: str = "fir") -> Netlist:
    """A transposed-form FIR filter with programmable coefficients.

    Per tap: an array multiplier (input sample x coefficient) and an
    accumulating adder into the delay line — a register-rich, datapath-
    heavy block that exercises CTS and the dual-sided router very
    differently from the control-heavy RISC-V core.
    """
    if taps < 2 or width < 2:
        raise ValueError("need at least 2 taps and 2-bit samples")
    b = NetlistBuilder(name)
    x = [b.dff(bit) for bit in b.inputs("x", width)]
    coeffs = [b.inputs(f"c{t}", width) for t in range(taps)]
    acc_width = 2 * width + max(1, (taps - 1).bit_length())

    def multiply(a, c):
        acc = [b.and2(a[0], cj) for cj in c] + [b.tie(False)] * width
        for i in range(1, width):
            row = [b.and2(a[i], cj) for cj in c]
            summed, carry = b.ripple_adder(acc[i:i + width], row)
            acc[i:i + width] = summed
            acc[i + width] = carry
        return acc[:2 * width]

    def widen(word):
        pad = [b.tie(False)] * (acc_width - len(word))
        return list(word) + pad

    # Transposed form: y_t = x*c0 + z1; z_k = x*ck + z_{k+1}.
    carry_line = widen(multiply(x, coeffs[-1]))
    carry_line = [b.dff(bit) for bit in carry_line]
    for t in range(taps - 2, -1, -1):
        product = widen(multiply(x, coeffs[t]))
        summed, _ = b.fast_adder(carry_line, product)
        carry_line = [b.dff(bit) for bit in summed]
    b.outputs(carry_line, "y")
    return b.netlist


# -- macro designs ------------------------------------------------------------


def _attach_sram(netlist: Netlist, inst_name: str, spec: MacroSpec, *,
                 ck: str, we: str, addr: list[str], data: list[str],
                 q: list[str]) -> None:
    """Wire one SRAM macro instance into an existing netlist.

    ``q`` nets must already exist; if they were primary inputs (the
    core's external-memory ports), they become macro-driven instead.
    """
    if len(addr) < spec.addr_bits or len(data) < spec.bits:
        raise ValueError(f"{inst_name}: not enough address/data nets "
                         f"for {spec.name}")
    if len(q) != spec.bits:
        raise ValueError(f"{inst_name}: need exactly {spec.bits} Q nets")
    connections = {"CK": ck, "WE": we}
    for i in range(spec.addr_bits):
        connections[f"A{i}"] = addr[i]
    for i in range(spec.bits):
        connections[f"D{i}"] = data[i]
    for i in range(spec.bits):
        q_net = netlist.add_net(q[i])
        # The macro now drives this net; a former primary input would
        # otherwise be multiply driven at bind time.
        q_net.is_primary_input = False
        connections[f"Q{i}"] = q[i]
    netlist.add_instance(inst_name, spec.name, connections)
    macros = netlist.attributes.setdefault("macros", {})
    macros[inst_name] = spec


def generate_rv16_sram(xlen: int = 16, nregs: int = 8, words: int = 32,
                       name: str = "rv16_sram") -> Netlist:
    """A scaled RISC-V core with an SRAM-macro data memory.

    The core's ``dmem_*`` ports, external on the plain design, close
    onto an on-die ``SRAM{words}X{xlen}`` hard macro: address/data/WE
    drive the macro's frontside pins, the read data returns from the
    macro's (dual-sided under FFET) Q pins.
    """
    from .riscv import RiscvConfig, generate_riscv_core

    netlist = generate_riscv_core(RiscvConfig(xlen=xlen, nregs=nregs,
                                              name=name))
    _attach_sram(
        netlist, "u_dmem", MacroSpec(words=words, bits=xlen),
        ck="clk",
        we="dmem_we",
        addr=[f"dmem_addr[{i}]" for i in range(xlen)],
        data=[f"dmem_wdata[{i}]" for i in range(xlen)],
        q=[f"dmem_rdata[{i}]" for i in range(xlen)],
    )
    return netlist


def generate_rv16_cache(xlen: int = 16, nregs: int = 8, words: int = 32,
                        cache_words: int = 16,
                        name: str = "rv16_cache") -> Netlist:
    """The SRAM-backed core plus a second SRAM as an instruction cache.

    The cache macro snoops the word-aligned PC as its address and the
    store datapath as its fill port; its read data leaves the block as
    primary outputs.  Two differently sized macros make the floorplan
    genuinely irregular.
    """
    netlist = generate_rv16_sram(xlen=xlen, nregs=nregs, words=words,
                                 name=name)
    cache = MacroSpec(words=cache_words, bits=xlen)
    for i in range(xlen):
        netlist.add_net(f"icache_rdata[{i}]", primary_output=True)
    # Word-aligned fetch: address bits start above the byte offset.
    pc = [f"pc[{i}]" for i in range(xlen)]
    _attach_sram(
        netlist, "u_icache", cache,
        ck="clk",
        we="dmem_we",
        addr=pc[2:2 + cache.addr_bits] if 2 + cache.addr_bits <= xlen
        else pc[:cache.addr_bits],
        data=[f"dmem_wdata[{i}]" for i in range(xlen)],
        q=[f"icache_rdata[{i}]" for i in range(xlen)],
    )
    return netlist


def generate_rv16_tile(cores: int = 2, xlen: int = 16, nregs: int = 8,
                       words: int = 32, name: str = "rv16_tile") -> Netlist:
    """A multi-core tile: ``cores`` SRAM-backed cores on one clock."""
    if cores < 1:
        raise ValueError("tile needs at least one core")
    tile = Netlist(name)
    for k in range(cores):
        core = generate_rv16_sram(xlen=xlen, nregs=nregs, words=words,
                                  name=f"{name}_c{k}")
        _merge_prefixed(tile, core, f"c{k}/")
    return tile


def _merge_prefixed(dst: Netlist, src: Netlist, prefix: str,
                    shared: frozenset[str] = frozenset({"clk"})) -> None:
    """Copy ``src`` into ``dst`` with all names prefixed except ``shared``."""

    def rename(net_name: str) -> str:
        return net_name if net_name in shared else prefix + net_name

    for net in src.nets.values():
        dst.add_net(rename(net.name),
                    primary_input=net.is_primary_input,
                    primary_output=net.is_primary_output,
                    clock=net.is_clock)
    for inst in src.instances.values():
        dst.add_instance(prefix + inst.name, inst.master,
                         {p: rename(n) for p, n in inst.connections.items()})
    for inst_name, spec in src.attributes.get("macros", {}).items():
        dst.attributes.setdefault("macros", {})[prefix + inst_name] = spec


#: Design name -> zero-argument netlist factory (all picklable,
#: module-level functions), the registry behind ``repro run --design``
#: and the service job specs.
PORTFOLIO: dict[str, object] = {
    "counter": generate_counter,
    "multiplier": generate_multiplier,
    "fir": generate_fir_filter,
    "rv16_sram": generate_rv16_sram,
    "rv16_cache": generate_rv16_cache,
    "rv16_tile": generate_rv16_tile,
}
