"""Small auxiliary benchmark designs besides the RISC-V core."""

from __future__ import annotations

from ..netlist import Netlist
from .builder import NetlistBuilder


def generate_counter(width: int = 16, name: str = "counter") -> Netlist:
    """A free-running binary counter with an enable input."""
    if width < 1:
        raise ValueError("width must be positive")
    b = NetlistBuilder(name)
    enable = b.input("en")
    q = [b.fresh_net(f"q{i}") for i in range(width)]
    incremented = b.incrementer(q)
    nxt = b.mux_word(q, incremented, enable)
    for i in range(width):
        b.dff(nxt[i], q=q[i])
    b.outputs(q, "count")
    return b.netlist


def generate_multiplier(width: int = 8, name: str = "multiplier",
                        registered: bool = True) -> Netlist:
    """An array multiplier (``width x width -> 2*width``).

    Deep carry chains make this a good stress case for timing-driven
    sizing and the frequency sweeps.
    """
    if width < 2:
        raise ValueError("width must be at least 2")
    b = NetlistBuilder(name)
    a = b.inputs("a", width)
    x = b.inputs("x", width)
    if registered:
        a = [b.dff(bit) for bit in a]
        x = [b.dff(bit) for bit in x]

    # Partial products, then row-by-row ripple accumulation.
    acc = [b.and2(a[0], xj) for xj in x] + [b.tie(False)] * width
    for i in range(1, width):
        row = [b.and2(a[i], xj) for xj in x]
        segment = acc[i:i + width]
        summed, carry = b.ripple_adder(segment, row)
        acc[i:i + width] = summed
        acc[i + width] = carry

    product = acc[: 2 * width]
    if registered:
        product = [b.dff(bit) for bit in product]
    b.outputs(product, "p")
    return b.netlist


def generate_fir_filter(taps: int = 4, width: int = 6,
                        name: str = "fir") -> Netlist:
    """A transposed-form FIR filter with programmable coefficients.

    Per tap: an array multiplier (input sample x coefficient) and an
    accumulating adder into the delay line — a register-rich, datapath-
    heavy block that exercises CTS and the dual-sided router very
    differently from the control-heavy RISC-V core.
    """
    if taps < 2 or width < 2:
        raise ValueError("need at least 2 taps and 2-bit samples")
    b = NetlistBuilder(name)
    x = [b.dff(bit) for bit in b.inputs("x", width)]
    coeffs = [b.inputs(f"c{t}", width) for t in range(taps)]
    acc_width = 2 * width + max(1, (taps - 1).bit_length())

    def multiply(a, c):
        acc = [b.and2(a[0], cj) for cj in c] + [b.tie(False)] * width
        for i in range(1, width):
            row = [b.and2(a[i], cj) for cj in c]
            summed, carry = b.ripple_adder(acc[i:i + width], row)
            acc[i:i + width] = summed
            acc[i + width] = carry
        return acc[:2 * width]

    def widen(word):
        pad = [b.tie(False)] * (acc_width - len(word))
        return list(word) + pad

    # Transposed form: y_t = x*c0 + z1; z_k = x*ck + z_{k+1}.
    carry_line = widen(multiply(x, coeffs[-1]))
    carry_line = [b.dff(bit) for bit in carry_line]
    for t in range(taps - 2, -1, -1):
        product = widen(multiply(x, coeffs[t]))
        summed, _ = b.fast_adder(carry_line, product)
        carry_line = [b.dff(bit) for bit in summed]
    b.outputs(carry_line, "y")
    return b.netlist
