"""Physical-verification checks on DEF views (a mini DRC/LVS-lite).

Catches flow bugs that the PPA numbers would silently absorb:

* routed segments must sit on layers that exist in the technology, be
  signal-routable, stay inside the die, and be axis-parallel;
* a per-side DEF must only use that side's layers;
* components must sit inside the die and reference known masters;
* special nets (PDN) must use power-capable layers;
* connectivity: every net in the DEF belongs to the netlist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cells import Library
from ..netlist import Netlist
from ..tech import LayerPurpose, Side
from .def_ import DefDesign


@dataclass(frozen=True)
class DrcViolation:
    """One physical-verification finding."""

    rule: str
    subject: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"[{self.rule}] {self.subject}: {self.detail}"


@dataclass
class DrcReport:
    """All findings of one check run."""

    violations: list[DrcViolation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def count(self, rule: str) -> int:
        return sum(1 for v in self.violations if v.rule == rule)

    def add(self, rule: str, subject: str, detail: str) -> None:
        self.violations.append(DrcViolation(rule, subject, detail))


def check_def(design: DefDesign, library: Library,
              netlist: Netlist | None = None,
              side: Side | None = None) -> DrcReport:
    """Run all checks; ``side`` restricts layers to one wafer side."""
    report = DrcReport()
    stackup = library.tech.stackup
    tolerance = 1.0  # nm slack for rounding at the die edge

    def inside(x: float, y: float) -> bool:
        return (-tolerance <= x <= design.die_width_nm + tolerance
                and -tolerance <= y <= design.die_height_nm + tolerance)

    known_masters = set(library.masters) | {"PTAP", "NTSV"}
    for comp in design.components.values():
        if comp.master not in known_masters:
            report.add("component.master", comp.name,
                       f"unknown master {comp.master}")
        if not inside(comp.x_nm, comp.y_nm):
            report.add("component.bounds", comp.name,
                       f"at ({comp.x_nm}, {comp.y_nm}) outside die")

    for net_name, segments in design.nets.items():
        if netlist is not None and net_name not in netlist.nets:
            report.add("net.unknown", net_name, "not in the netlist")
        for seg in segments:
            layer = stackup.get(seg.layer)
            if layer is None:
                report.add("wire.layer", net_name,
                           f"layer {seg.layer} not in stackup")
                continue
            if not layer.is_routable:
                report.add("wire.purpose", net_name,
                           f"layer {seg.layer} is not signal-routable")
            if side is not None and layer.side is not side:
                report.add("wire.side", net_name,
                           f"layer {seg.layer} is on the wrong wafer side")
            if seg.x1_nm != seg.x2_nm and seg.y1_nm != seg.y2_nm:
                report.add("wire.orthogonal", net_name,
                           "segment is not axis-parallel")
            for x, y in ((seg.x1_nm, seg.y1_nm), (seg.x2_nm, seg.y2_nm)):
                if not inside(x, y):
                    report.add("wire.bounds", net_name,
                               f"endpoint ({x}, {y}) outside die")

    for net_name, segments in design.special_nets.items():
        for seg in segments:
            layer = stackup.get(seg.layer)
            if layer is None:
                report.add("pdn.layer", net_name,
                           f"layer {seg.layer} not in stackup")
                continue
            if layer.purpose not in (LayerPurpose.POWER, LayerPurpose.SIGNAL):
                report.add("pdn.purpose", net_name,
                           f"layer {seg.layer} cannot carry power")

    for layer_name, x0, y0, x1, y1 in design.blockages:
        layer = stackup.get(layer_name)
        if layer is None:
            report.add("blockage.layer", layer_name, "not in stackup")
            continue
        if side is not None and layer.side is not side:
            report.add("blockage.side", layer_name,
                       "blockage on the wrong wafer side")
        if not (inside(x0, y0) and inside(x1, y1)):
            report.add("blockage.bounds", layer_name,
                       f"rect ({x0}, {y0}) ({x1}, {y1}) outside die")
    return report


def check_connectivity(design: DefDesign, netlist: Netlist) -> DrcReport:
    """LVS-lite: the DEF must place exactly the netlist's instances."""
    report = DrcReport()
    placed = {name for name, comp in design.components.items()
              if comp.master not in ("PTAP", "NTSV")}
    missing = set(netlist.instances) - placed
    extra = placed - set(netlist.instances)
    for name in sorted(missing):
        report.add("lvs.missing", name, "instance not placed in the DEF")
    for name in sorted(extra):
        report.add("lvs.extra", name, "DEF component not in the netlist")
    return report
