"""DEF merging: combine the frontside and backside DEFs for extraction.

Section III.C: "we first merged the two DEFs into one DEF.  It contains
the P&R information of all the frontside and backside layers and is
used in the accurate dual-sided RC extraction."  Layer names are
side-qualified (``FM*`` / ``BM*``), so merging is a union of routed
segments per net plus a consistency check on the component lists.
"""

from __future__ import annotations

from ..core.errors import MergeError
from .def_ import DefDesign


def _routes_backside(design: DefDesign) -> bool:
    return any(layer.startswith("B") for layer in design.layers_used())


def merge_defs(front: DefDesign, back: DefDesign,
               name: str | None = None) -> DefDesign:
    """Merge the two per-side DEFs into one dual-sided design view.

    The arguments are oriented by the layers they actually route
    (``FM*`` vs ``BM*``), so the merge is symmetric: swapping the two
    DEFs yields the identical merged design.
    """
    if _routes_backside(front) and not _routes_backside(back):
        front, back = back, front
    front_masters = {c.name: c.master for c in front.components.values()}
    back_masters = {c.name: c.master for c in back.components.values()}
    if front_masters != back_masters:
        only_front = set(front_masters) - set(back_masters)
        only_back = set(back_masters) - set(front_masters)
        raise MergeError(
            "front/back DEF component mismatch: "
            f"{len(only_front)} only-front, {len(only_back)} only-back",
            "def_merge",
        )
    front_layers = {l for l in front.layers_used() if l.startswith("B")}
    back_layers = {l for l in back.layers_used() if l.startswith("F")}
    if front_layers or back_layers:
        raise MergeError(
            f"side/layer mismatch: front uses {front_layers}, "
            f"back uses {back_layers}",
            "def_merge",
        )

    merged = DefDesign(
        name=name or front.name.removesuffix("_front"),
        die_width_nm=max(front.die_width_nm, back.die_width_nm),
        die_height_nm=max(front.die_height_nm, back.die_height_nm),
        components=dict(front.components),
    )
    for source in (front, back):
        for net_name, segments in source.nets.items():
            merged.nets.setdefault(net_name, []).extend(segments)
        for net_name, segments in source.special_nets.items():
            merged.special_nets.setdefault(net_name, []).extend(segments)
        for blockage in source.blockages:
            if blockage not in merged.blockages:
                merged.blockages.append(blockage)

    from ..core.telemetry import current_tracer
    tracer = current_tracer()
    tracer.gauge("merge.components", len(merged.components))
    tracer.gauge("merge.nets", len(merged.nets))
    return merged
