"""Minimal LEF writer/parser for the dual-sided cell libraries.

Standard LEF has no notion of wafer side; the paper modifies cell LEF
files to move pins between sides (Section III.A).  We encode the side
in the layer name of each pin's PORT rectangle: ``FM0`` for frontside
pins, ``BM0`` for backside pins — the same convention the FFET stackup
uses, so a dual-sided pin simply has one PORT per side.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..cells import Library
from ..tech import Side

_SIDE_LAYER = {Side.FRONT: "FM0", Side.BACK: "BM0"}
_LAYER_SIDE = {"FM0": Side.FRONT, "BM0": Side.BACK}


def write_lef(library: Library) -> str:
    """Serialize the library's physical abstract as LEF text."""
    tech = library.tech
    lines = [
        "VERSION 5.8 ;",
        "BUSBITCHARS \"[]\" ;",
        "DIVIDERCHAR \"/\" ;",
        f"UNITS DATABASE MICRONS 1000 ; END UNITS",
        "",
    ]
    for master in sorted(library.masters.values(), key=lambda m: m.name):
        width_um = master.width_cpp * tech.cpp_nm / 1000.0
        height_um = master.height_tracks * tech.track_pitch_nm / 1000.0
        is_block = getattr(master, "is_macro", False)
        offsets = getattr(master, "pin_offsets", None) or {}
        lines.append(f"MACRO {master.name}")
        lines.append(f"  CLASS {'BLOCK' if is_block else 'CORE'} ;")
        lines.append(f"  SIZE {width_um:.4f} BY {height_um:.4f} ;")
        lines.append("  ORIGIN 0 0 ;")
        for pin in sorted(master.pins.values(), key=lambda p: p.name):
            direction = "OUTPUT" if pin.is_output else "INPUT"
            use = "CLOCK" if pin.is_clock else "SIGNAL"
            lines.append(f"  PIN {pin.name}")
            lines.append(f"    DIRECTION {direction} ;")
            lines.append(f"    USE {use} ;")
            for side in sorted(pin.sides, key=lambda s: s.value):
                lines.append("    PORT")
                lines.append(f"      LAYER {_SIDE_LAYER[side]} ;")
                if pin.name in offsets:
                    # Macro pins: a point shape at the pin's offset from
                    # the macro center, in macro-origin coordinates.
                    dx, dy = offsets[pin.name]
                    x = width_um / 2 + dx / 1000.0
                    y = height_um / 2 + dy / 1000.0
                    lines.append(
                        f"      RECT {x:.4f} {y:.4f} {x + 0.014:.4f} "
                        f"{y + 0.014:.4f} ;"
                    )
                else:
                    x = (pin.track + 0.5) * tech.cpp_nm / 1000.0
                    x = min(x, width_um - 0.001)
                    lines.append(
                        f"      RECT {x:.4f} 0.0000 {x + 0.014:.4f} "
                        f"{height_um:.4f} ;"
                    )
                lines.append("    END")
            lines.append(f"  END {pin.name}")
        obstructions = getattr(master, "obstructions", ()) if is_block else ()
        if obstructions:
            lines.append("  OBS")
            for layer, x0, y0, x1, y1 in obstructions:
                lines.append(f"    LAYER {layer} ;")
                lines.append(
                    f"      RECT {x0 / 1000.0:.4f} {y0 / 1000.0:.4f} "
                    f"{x1 / 1000.0:.4f} {y1 / 1000.0:.4f} ;"
                )
            lines.append("  END")
        lines.append(f"END {master.name}")
        lines.append("")
    lines.append("END LIBRARY")
    return "\n".join(lines) + "\n"


@dataclass
class LefPin:
    name: str
    direction: str
    use: str
    sides: set[Side] = field(default_factory=set)


@dataclass
class LefMacro:
    name: str
    width_um: float
    height_um: float
    pins: dict[str, LefPin] = field(default_factory=dict)


def parse_lef(text: str) -> dict[str, LefMacro]:
    """Parse the subset written by :func:`write_lef`."""
    macros: dict[str, LefMacro] = {}
    macro: LefMacro | None = None
    pin: LefPin | None = None
    for raw in text.splitlines():
        line = raw.strip()
        if line.startswith("MACRO "):
            macro = LefMacro(line.split()[1], 0.0, 0.0)
            macros[macro.name] = macro
        elif line.startswith("SIZE ") and macro is not None:
            m = re.match(r"SIZE\s+([\d.]+)\s+BY\s+([\d.]+)", line)
            if m:
                macro.width_um = float(m.group(1))
                macro.height_um = float(m.group(2))
        elif line.startswith("PIN ") and macro is not None:
            pin = LefPin(line.split()[1], "INPUT", "SIGNAL")
            macro.pins[pin.name] = pin
        elif line.startswith("DIRECTION ") and pin is not None:
            pin.direction = line.split()[1]
        elif line.startswith("USE ") and pin is not None:
            pin.use = line.split()[1]
        elif line.startswith("LAYER ") and pin is not None:
            layer = line.split()[1]
            if layer in _LAYER_SIDE:
                pin.sides.add(_LAYER_SIDE[layer])
        elif line.startswith("END ") and pin is not None and \
                line.split()[1] == pin.name:
            pin = None
        elif line.startswith("END ") and macro is not None and \
                line.split()[1] == macro.name:
            macro = None
    return macros
