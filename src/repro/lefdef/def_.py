"""Minimal DEF writer/parser and construction from routing results.

The flow emits one DEF per wafer side after dual-sided routing (the two
files of Algorithm 1, line 10) and merges them for RC extraction
(Section III.C).  Layer names carry the side (``FM*`` / ``BM*``), so a
merged DEF is unambiguous.  Coordinates are database units of 1 nm.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..netlist import Netlist
from ..tech import Side
from ..pnr.geometry import Die
from ..pnr.placement import Placement
from ..pnr.powerplan import PowerPlan
from ..pnr.routing.layers import LayerAssignment
from ..pnr.routing.router import NetRoute, RoutingResult


@dataclass(frozen=True)
class RouteSegment:
    """One straight routed wire piece."""

    layer: str
    x1_nm: float
    y1_nm: float
    x2_nm: float
    y2_nm: float

    @property
    def length_nm(self) -> float:
        return abs(self.x2_nm - self.x1_nm) + abs(self.y2_nm - self.y1_nm)


@dataclass(frozen=True)
class DefComponent:
    name: str
    master: str
    x_nm: float
    y_nm: float
    fixed: bool = False


@dataclass
class DefDesign:
    """In-memory representation of one DEF file."""

    name: str
    die_width_nm: float
    die_height_nm: float
    components: dict[str, DefComponent] = field(default_factory=dict)
    nets: dict[str, list[RouteSegment]] = field(default_factory=dict)
    special_nets: dict[str, list[RouteSegment]] = field(default_factory=dict)
    #: Routing blockages over hard-macro obstructions:
    #: (layer, x0, y0, x1, y1) in nm.
    blockages: list[tuple[str, float, float, float, float]] = \
        field(default_factory=list)

    @property
    def total_wirelength_nm(self) -> float:
        return sum(seg.length_nm for segs in self.nets.values() for seg in segs)

    def layers_used(self) -> set[str]:
        return {seg.layer for segs in self.nets.values() for seg in segs}


def _segments_from_route(route: NetRoute, gcell_nm: float,
                         h_layer: str, v_layer: str,
                         max_x_nm: float | None = None,
                         max_y_nm: float | None = None) -> list[RouteSegment]:
    """Merge unit gcell edges into maximal straight segments.

    Coordinates are gcell centers, clamped to the die outline: the last
    gcell of a non-multiple die extends past the core, but wires may
    not.
    """
    h_runs: dict[int, list[int]] = {}
    v_runs: dict[int, list[int]] = {}
    for (c1, r1), (c2, r2) in route.edges:
        if r1 == r2:
            h_runs.setdefault(r1, []).append(min(c1, c2))
        else:
            v_runs.setdefault(c1, []).append(min(r1, r2))

    def center(i: int, limit: float | None) -> float:
        value = (i + 0.5) * gcell_nm
        return min(value, limit) if limit is not None else value

    def cx(i: int) -> float:
        return center(i, max_x_nm)

    def cy(i: int) -> float:
        return center(i, max_y_nm)

    segments: list[RouteSegment] = []
    for row, cols in h_runs.items():
        cols.sort()
        start = prev = cols[0]
        for c in cols[1:] + [None]:
            if c is not None and c == prev + 1:
                prev = c
                continue
            segments.append(RouteSegment(
                h_layer, cx(start), cy(row), cx(prev + 1), cy(row)
            ))
            if c is not None:
                start = prev = c
    for col, rows in v_runs.items():
        rows.sort()
        start = prev = rows[0]
        for r in rows[1:] + [None]:
            if r is not None and r == prev + 1:
                prev = r
                continue
            segments.append(RouteSegment(
                v_layer, cx(col), cy(start), cx(col), cy(prev + 1)
            ))
            if r is not None:
                start = prev = r
    return segments


def def_from_routing(netlist: Netlist, placement: Placement, die: Die,
                     result: RoutingResult, assignment: LayerAssignment,
                     powerplan: PowerPlan | None = None,
                     design_name: str | None = None) -> DefDesign:
    """Build the DEF view of one routed wafer side."""
    side = result.side
    design = DefDesign(
        name=design_name or f"{netlist.name}_{side.value}",
        die_width_nm=die.width_nm,
        die_height_nm=die.height_nm,
    )
    macro_names = {m.name for m in getattr(die, "macros", ())}
    for inst_name in sorted(netlist.instances):
        p = placement.locations[inst_name]
        design.components[inst_name] = DefComponent(
            inst_name, netlist.instances[inst_name].master, p.x_nm, p.y_nm,
            fixed=inst_name in macro_names,
        )
    for macro in getattr(die, "macros", ()):
        for layer, rect in macro.obstructions:
            if (side is Side.BACK) == layer.startswith("B"):
                design.blockages.append(
                    (layer, rect.x0_nm, rect.y0_nm, rect.x1_nm, rect.y1_nm)
                )
    if powerplan is not None:
        for tap in powerplan.tap_cells:
            design.components[tap.name] = DefComponent(
                tap.name, "PTAP",
                (tap.site + tap.width_sites / 2) * die.site_width_nm,
                (tap.row + 0.5) * die.row_height_nm,
                fixed=True,
            )
        for stripe in powerplan.stripes:
            if (side is Side.BACK) == stripe.layer.startswith("B"):
                design.special_nets.setdefault(stripe.net, []).append(
                    RouteSegment(stripe.layer, stripe.x_nm, 0.0,
                                 stripe.x_nm, die.height_nm)
                )
    for name, route in result.routes.items():
        tier = assignment.tier_of(name)
        design.nets[name] = _segments_from_route(
            route, result.grid.gcell_nm,
            tier.horizontal.name, tier.vertical.name,
            max_x_nm=die.width_nm, max_y_nm=die.height_nm,
        )
    return design


def write_def(design: DefDesign) -> str:
    """Serialize to DEF text (DBU = 1 nm)."""
    lines = [
        "VERSION 5.8 ;",
        f"DESIGN {design.name} ;",
        "UNITS DISTANCE MICRONS 1000 ;",
        f"DIEAREA ( 0 0 ) ( {int(design.die_width_nm)} "
        f"{int(design.die_height_nm)} ) ;",
        "",
        f"COMPONENTS {len(design.components)} ;",
    ]
    for comp in sorted(design.components.values(), key=lambda c: c.name):
        status = "FIXED" if comp.fixed else "PLACED"
        lines.append(
            f"- {comp.name} {comp.master} + {status} "
            f"( {int(comp.x_nm)} {int(comp.y_nm)} ) N ;"
        )
    lines.append("END COMPONENTS")
    lines.append("")

    if design.special_nets:
        lines.append(f"SPECIALNETS {len(design.special_nets)} ;")
        for net_name in sorted(design.special_nets):
            lines.append(f"- {net_name}")
            for seg in design.special_nets[net_name]:
                lines.append(
                    f"  + ROUTED {seg.layer} 200 ( {int(seg.x1_nm)} "
                    f"{int(seg.y1_nm)} ) ( {int(seg.x2_nm)} {int(seg.y2_nm)} )"
                )
            lines.append("  ;")
        lines.append("END SPECIALNETS")
        lines.append("")

    lines.append(f"NETS {len(design.nets)} ;")
    for net_name in sorted(design.nets):
        lines.append(f"- {net_name}")
        for seg in design.nets[net_name]:
            lines.append(
                f"  + ROUTED {seg.layer} ( {int(seg.x1_nm)} {int(seg.y1_nm)} )"
                f" ( {int(seg.x2_nm)} {int(seg.y2_nm)} )"
            )
        lines.append("  ;")
    lines.append("END NETS")
    lines.append("")
    if design.blockages:
        lines.append(f"BLOCKAGES {len(design.blockages)} ;")
        for layer, x0, y0, x1, y1 in design.blockages:
            lines.append(
                f"- LAYER {layer} RECT ( {int(x0)} {int(y0)} ) "
                f"( {int(x1)} {int(y1)} ) ;"
            )
        lines.append("END BLOCKAGES")
        lines.append("")
    lines.append("END DESIGN")
    return "\n".join(lines) + "\n"


_COMPONENT_RE = re.compile(
    r"-\s+(\S+)\s+(\S+)\s+\+\s+(PLACED|FIXED)\s+\(\s*(-?\d+)\s+(-?\d+)\s*\)"
)
_SEGMENT_RE = re.compile(
    r"\+\s+ROUTED\s+(\S+)(?:\s+\d+)?\s+\(\s*(-?\d+)\s+(-?\d+)\s*\)\s+"
    r"\(\s*(-?\d+)\s+(-?\d+)\s*\)"
)
_BLOCKAGE_RE = re.compile(
    r"-\s+LAYER\s+(\S+)\s+RECT\s+\(\s*(-?\d+)\s+(-?\d+)\s*\)\s+"
    r"\(\s*(-?\d+)\s+(-?\d+)\s*\)"
)


def parse_def(text: str) -> DefDesign:
    """Parse the subset written by :func:`write_def`."""
    name_match = re.search(r"DESIGN\s+(\S+)\s*;", text)
    die_match = re.search(
        r"DIEAREA\s+\(\s*\d+\s+\d+\s*\)\s+\(\s*(\d+)\s+(\d+)\s*\)", text
    )
    if name_match is None or die_match is None:
        raise ValueError("missing DESIGN or DIEAREA")
    design = DefDesign(
        name=name_match.group(1),
        die_width_nm=float(die_match.group(1)),
        die_height_nm=float(die_match.group(2)),
    )

    def section(header: str) -> str:
        m = re.search(rf"{header}\s+\d+\s*;(.*?)END {header}", text, re.DOTALL)
        return m.group(1) if m else ""

    for m in _BLOCKAGE_RE.finditer(section("BLOCKAGES")):
        design.blockages.append(
            (m.group(1), float(m.group(2)), float(m.group(3)),
             float(m.group(4)), float(m.group(5)))
        )

    for m in _COMPONENT_RE.finditer(section("COMPONENTS")):
        comp = DefComponent(
            m.group(1), m.group(2), float(m.group(4)), float(m.group(5)),
            fixed=m.group(3) == "FIXED",
        )
        design.components[comp.name] = comp

    for target, body in (
        (design.special_nets, section("SPECIALNETS")),
        (design.nets, section("NETS")),
    ):
        for chunk in re.split(r"\n-\s+", "\n" + body):
            chunk = chunk.strip()
            if not chunk:
                continue
            net_name = chunk.split()[0]
            segments = [
                RouteSegment(s.group(1), float(s.group(2)), float(s.group(3)),
                             float(s.group(4)), float(s.group(5)))
                for s in _SEGMENT_RE.finditer(chunk)
            ]
            target[net_name] = segments
    return design
