"""LEF/DEF infrastructure: writers, parsers and the dual-sided merge."""

from .def_ import (
    DefComponent,
    DefDesign,
    RouteSegment,
    def_from_routing,
    parse_def,
    write_def,
)
from .drc import DrcReport, DrcViolation, check_connectivity, check_def
from .lef import LefMacro, LefPin, parse_lef, write_lef
from .merge import merge_defs

__all__ = [
    "DefComponent",
    "DrcReport",
    "DrcViolation",
    "DefDesign",
    "LefMacro",
    "LefPin",
    "RouteSegment",
    "def_from_routing",
    "check_connectivity",
    "check_def",
    "merge_defs",
    "parse_def",
    "parse_lef",
    "write_def",
    "write_lef",
]
