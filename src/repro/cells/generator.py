"""Library generation: characterize every template for a tech node."""

from __future__ import annotations

from ..tech import TechNode
from .characterize import Characterizer
from .library import Library
from .templates import CellTemplate, standard_templates


def build_library(tech: TechNode,
                  templates: list[CellTemplate] | None = None) -> Library:
    """Characterize the full standard-cell library for ``tech``.

    FFET libraries come out with dual-sided output pins and all input
    pins on the frontside; apply
    :func:`repro.cells.redistribution.redistribute_input_pins` to move a
    fraction of the inputs to the backside (the ``FP_x BP_y`` DoEs).
    """
    characterizer = Characterizer(tech)
    library = Library(tech=tech)
    for template in templates or standard_templates():
        library.add(characterizer.characterize(template))
    return library


def cell_area_table(ffet_lib: Library, cfet_lib: Library) -> list[dict]:
    """Per-cell area comparison — the data behind Fig. 4.

    Returns one row per cell present in both libraries with absolute
    areas (nm^2) and the FFET-vs-CFET relative difference.
    """
    rows = []
    for name, ffet_cell in ffet_lib.masters.items():
        if ffet_cell.base_name is not None or name not in cfet_lib:
            continue
        cfet_cell = cfet_lib[name]
        a_ffet = ffet_cell.area_nm2(ffet_lib.tech)
        a_cfet = cfet_cell.area_nm2(cfet_lib.tech)
        rows.append(
            {
                "cell": name,
                "function": ffet_cell.function,
                "ffet_area_nm2": a_ffet,
                "cfet_area_nm2": a_cfet,
                "area_diff": a_ffet / a_cfet - 1.0,
            }
        )
    rows.sort(key=lambda r: r["cell"])
    return rows
