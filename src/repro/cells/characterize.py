"""Analytic switch-level characterization of standard cells.

The paper characterizes its FFET/CFET libraries with SPICE on a virtual
5 nm PDK; here an analytic RC switch model plays that role.  Both
technologies share the same intrinsic two-fin transistor (Section IV),
so all architecture differences enter through *intra-cell parasitics*:

* the **CFET** routes part of its p-logic on the frontside through
  supervias — a fixed series resistance and extra capacitance on output
  and internal nets, plus intra-cell wires that span the cell width;
* the **FFET** eliminates supervias; only the Drain Merge via remains on
  each output (a small resistance and a drive-proportional capacitance),
  and its symmetric stacking keeps internal stage-to-stage connections
  vertical and short.

These mechanisms reproduce the Table I signature: INV transition power
roughly unchanged (the Drain Merge offsets the wire savings), BUF
transition power and all timings clearly better on FFET, with the gap
growing with drive strength (the supervia does not scale with the
transistor), and identical leakage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..tech import Side, TechNode
from .cell import CellMaster
from .pins import Pin, PinDirection
from .templates import CellTemplate, StageSpec
from .timing import (
    DEFAULT_LOADS_FF,
    DEFAULT_SLEWS_PS,
    LookupTable,
    PowerModel,
    SequentialTiming,
    TimingArc,
)

#: Supply voltage of the virtual 5 nm node, volts.
VDD_V = 0.70

_LN2 = math.log(2.0)
_LN9 = math.log(9.0)

#: Fraction of the input slew that adds to stage delay (slew pushout).
_SLEW_DELAY_FRACTION = 0.12
#: Short-circuit energy per transition as a fraction of R-limited energy.
_SHORT_CIRCUIT_FRACTION = 0.06
#: Rise transitions are slower than falls (p-mobility deficit).
_RISE_RES_FACTOR = 1.12
_FALL_RES_FACTOR = 0.92


@dataclass(frozen=True)
class ArchParasitics:
    """Architecture-dependent intra-cell parasitics.

    Via resistances have a fixed part plus a part that shrinks with the
    stage drive (wider devices get more via cuts, but the via array does
    not scale as fast as the transistor) — this is what makes the
    FFET-vs-CFET timing gap grow with drive strength, as in Table I.

    The FFET's *rise* path keeps a via penalty: the pFET sits on the
    backside and reaches the frontside output track through the Drain
    Merge, so FFET rise arcs improve less than fall arcs — also visible
    in Table I.
    """

    #: Multipliers on intra-cell wire cap / res (FFET < 1: no supervias).
    wire_cap_factor: float
    wire_res_factor: float
    #: Series via resistance on every stage output: fixed + scaled/drive.
    via_res_fixed_kohm: float
    via_res_scaled_kohm: float
    #: Additional via resistance on the *rise* path only.
    rise_via_res_fixed_kohm: float
    rise_via_res_scaled_kohm: float
    #: Output capacitance per CPP of cell width (FFET Drain Merge row).
    output_cap_per_cpp_ff: float
    #: Internal-net extra capacitance: fixed + per stage drive.
    internal_cap_fixed_ff: float
    internal_cap_per_drive_ff: float
    #: True when internal wires detour across the cell (CFET supervias);
    #: False when stages connect vertically (FFET symmetric stacking).
    internal_wire_spans_cell: bool

    @classmethod
    def for_tech(cls, tech: TechNode) -> "ArchParasitics":
        dev = tech.device
        if tech.arch == "cfet":
            return cls(
                wire_cap_factor=dev.intra_cap_factor,
                wire_res_factor=dev.intra_res_factor,
                via_res_fixed_kohm=0.13,
                via_res_scaled_kohm=0.40,
                rise_via_res_fixed_kohm=0.0,
                rise_via_res_scaled_kohm=0.0,
                output_cap_per_cpp_ff=0.0,
                internal_cap_fixed_ff=0.0,
                internal_cap_per_drive_ff=0.072,
                internal_wire_spans_cell=True,
            )
        if tech.arch == "ffet":
            return cls(
                wire_cap_factor=dev.intra_cap_factor,
                wire_res_factor=dev.intra_res_factor,
                via_res_fixed_kohm=0.010,
                via_res_scaled_kohm=0.020,
                rise_via_res_fixed_kohm=0.050,
                rise_via_res_scaled_kohm=0.140,
                output_cap_per_cpp_ff=0.0083,
                internal_cap_fixed_ff=0.010,
                internal_cap_per_drive_ff=0.0,
                internal_wire_spans_cell=False,
            )
        raise ValueError(f"unknown architecture {tech.arch!r}")

    def via_res_kohm(self, drive: float, rise: bool) -> float:
        r = self.via_res_fixed_kohm + self.via_res_scaled_kohm / drive
        if rise:
            r += self.rise_via_res_fixed_kohm + self.rise_via_res_scaled_kohm / drive
        return r


@dataclass(frozen=True)
class _Stage:
    """Resolved electrical view of one CMOS stage inside a cell."""

    res_rise_kohm: float
    res_fall_kohm: float
    parasitic_ff: float          # cap on this stage's output net
    next_gate_ff: float          # gate cap of the following stage (0 = output)


class Characterizer:
    """Builds characterized :class:`CellMaster` objects for one tech node."""

    def __init__(self, tech: TechNode,
                 slews_ps=DEFAULT_SLEWS_PS, loads_ff=DEFAULT_LOADS_FF) -> None:
        self.tech = tech
        self.arch = ArchParasitics.for_tech(tech)
        self.slews_ps = tuple(slews_ps)
        self.loads_ff = tuple(loads_ff)

    # -- stage electrical model -------------------------------------------
    def _resolve_stages(self, template: CellTemplate) -> list[_Stage]:
        dev = self.tech.device
        arch = self.arch
        width_cpp = template.width_cpp(self.tech.arch)
        stages: list[_Stage] = []
        n = len(template.stages)
        for i, spec in enumerate(template.stages):
            is_last = i == n - 1
            r_base = dev.drive_resistance_kohm * spec.stack_factor / spec.drive
            r_rise = (r_base * _RISE_RES_FACTOR
                      + arch.via_res_kohm(spec.drive, rise=True))
            r_fall = (r_base * _FALL_RES_FACTOR
                      + arch.via_res_kohm(spec.drive, rise=False))

            parasitic = dev.drain_cap_ff * spec.drive * spec.stack_factor
            if is_last:
                # Output net: the pin wire spans part of the cell width in
                # both architectures; FFET adds the Drain Merge row cap.
                wire_cpp = 0.5 * width_cpp
                parasitic += (
                    dev.intra_cap_per_cpp_ff * wire_cpp * arch.wire_cap_factor
                )
                parasitic += arch.output_cap_per_cpp_ff * width_cpp
                next_gate = 0.0
            else:
                if arch.internal_wire_spans_cell:
                    # CFET: the p-logic detours over the frontside; the
                    # detour grows with the device width it must strap.
                    wire_cpp = min(0.45 * width_cpp * spec.drive, 0.9 * width_cpp)
                else:
                    wire_cpp = 0.5  # FFET: vertical stage-to-stage hop
                parasitic += (
                    dev.intra_cap_per_cpp_ff * wire_cpp * arch.wire_cap_factor
                )
                parasitic += (arch.internal_cap_fixed_ff
                              + arch.internal_cap_per_drive_ff * spec.drive)
                next_spec = template.stages[i + 1]
                next_gate = dev.gate_cap_ff * next_spec.drive
            stages.append(_Stage(r_rise, r_fall, parasitic, next_gate))
        return stages

    # -- delay / slew of a full input-to-output path -----------------------
    def _path_delay(self, stages: list[_Stage], slew_ps: float, load_ff: float,
                    rise_out: bool) -> tuple[float, float]:
        """(delay_ps, output_slew_ps) through all stages.

        Alternating stages invert, so the transition direction flips at
        every stage; ``rise_out`` fixes the direction at the output.
        """
        n = len(stages)
        total = 0.0
        slew = slew_ps
        for i, stage in enumerate(stages):
            # Direction at this stage's output.
            flips_after = n - 1 - i
            stage_rise = rise_out if flips_after % 2 == 0 else not rise_out
            r = stage.res_rise_kohm if stage_rise else stage.res_fall_kohm
            cap = stage.parasitic_ff + (load_ff if i == n - 1 else stage.next_gate_ff)
            total += _LN2 * r * cap + _SLEW_DELAY_FRACTION * slew
            slew = _LN9 * r * cap
        return total, slew

    def _switch_energy_fj(self, stages: list[_Stage], slew_ps: float,
                          load_ff: float, rise_out: bool) -> float:
        """Internal energy of one output transition (load excluded)."""
        energy = 0.0
        for i, stage in enumerate(stages):
            internal_cap = stage.parasitic_ff
            if i < len(stages) - 1:
                internal_cap += stage.next_gate_ff
            energy += internal_cap * VDD_V * VDD_V
            # Short-circuit: both networks conduct during the input slew.
            r = 0.5 * (stage.res_rise_kohm + stage.res_fall_kohm)
            drive_cap = internal_cap + (load_ff if i == len(stages) - 1 else 0.0)
            energy += _SHORT_CIRCUIT_FRACTION * drive_cap * VDD_V * VDD_V * (
                1.0 + 0.01 * slew_ps / max(r, 1e-6)
            )
        return energy

    # -- public API ------------------------------------------------------------
    def characterize(self, template: CellTemplate) -> CellMaster:
        """Produce a fully characterized cell master for this tech node."""
        stages = self._resolve_stages(template)
        dev = self.tech.device

        pins: dict[str, Pin] = {}
        for i, spec in enumerate(template.inputs):
            direction = PinDirection.CLOCK if spec.is_clock else PinDirection.INPUT
            pins[spec.name] = Pin(
                spec.name,
                direction,
                frozenset({Side.FRONT}),
                cap_ff=dev.gate_cap_ff * spec.cap_mult * template.drive_of_inputs,
                track=i,
            )
        if self.tech.dual_sided_pins:
            # Dual-sided output pin via the Drain Merge (Section III.A).
            out_sides = frozenset({Side.FRONT, Side.BACK})
        else:
            out_sides = frozenset({Side.FRONT})
        out_name = template.output
        pins[out_name] = Pin(out_name, PinDirection.OUTPUT, out_sides,
                             track=len(template.inputs))

        arcs = []
        unate = _UNATENESS.get(template.function, "x")
        for spec in template.inputs:
            if template.sequential is not None and not spec.is_clock:
                continue  # D -> Q is not a combinational arc
            if spec.is_clock and template.sequential is None:
                continue
            arc_unate = "x" if spec.is_clock else unate
            if template.function == "MUX2" and spec.name == "S":
                arc_unate = "x"  # the select can cause either edge
            arcs.append(self._make_arc(spec.name, out_name, stages,
                                       extra_delay_ps=spec.arc_extra_ps,
                                       unate=arc_unate))

        rise_energy = LookupTable.from_function(
            lambda s, c: self._switch_energy_fj(stages, s, c, rise_out=True),
            self.slews_ps, self.loads_ff,
        )
        fall_energy = LookupTable.from_function(
            lambda s, c: self._switch_energy_fj(stages, s, c, rise_out=False),
            self.slews_ps, self.loads_ff,
        )
        leakage = dev.leakage_nw * template.n_transistors / 2.0
        power = PowerModel(rise_energy, fall_energy, leakage)

        sequential = None
        if template.sequential is not None:
            base_stage_ps = _LN2 * dev.drive_resistance_kohm * (
                dev.gate_cap_ff + dev.drain_cap_ff
            )
            sequential = SequentialTiming(
                setup_ps=template.sequential.setup_stage_delays * base_stage_ps,
                hold_ps=template.sequential.hold_stage_delays * base_stage_ps,
            )

        return CellMaster(
            name=template.name,
            function=template.function,
            drive=template.drive,
            width_cpp=template.width_cpp(self.tech.arch),
            height_tracks=self.tech.cell_height_tracks,
            pins=pins,
            arcs=arcs,
            power=power,
            sequential=sequential,
            n_transistors=template.n_transistors,
            logic_fn=template.logic,
        )

    def _make_arc(self, from_pin: str, to_pin: str, stages: list[_Stage],
                  extra_delay_ps: float = 0.0, unate: str = "-") -> TimingArc:
        def table(rise: bool, transition: bool) -> LookupTable:
            def fn(slew_ps: float, load_ff: float) -> float:
                delay, out_slew = self._path_delay(stages, slew_ps, load_ff, rise)
                return out_slew if transition else delay + extra_delay_ps

            return LookupTable.from_function(fn, self.slews_ps, self.loads_ff)

        return TimingArc(
            from_pin=from_pin,
            to_pin=to_pin,
            rise_delay=table(rise=True, transition=False),
            fall_delay=table(rise=False, transition=False),
            rise_transition=table(rise=True, transition=True),
            fall_transition=table(rise=False, transition=True),
            unate=unate,
        )


#: Liberty-style unateness by cell function.
_UNATENESS = {
    "INV": "-", "NAND2": "-", "NAND3": "-", "NOR2": "-", "NOR3": "-",
    "AOI21": "-", "AOI22": "-", "OAI21": "-", "OAI22": "-",
    "BUF": "+", "CLKBUF": "+", "AND2": "+", "OR2": "+",
    "XOR2": "x", "XNOR2": "x", "MUX2": "+", "DFF": "x",
    "TIEHI": "+", "TIELO": "+",
}
