"""Standard-cell library container and library-level queries."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..tech import Side, TechNode
from .cell import CellMaster


@dataclass
class Library:
    """A characterized standard-cell library bound to one tech node."""

    tech: TechNode
    masters: dict[str, CellMaster] = field(default_factory=dict)

    # -- container protocol ---------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self.masters

    def __getitem__(self, name: str) -> CellMaster:
        try:
            return self.masters[name]
        except KeyError:
            raise KeyError(f"library {self.tech.name} has no cell {name!r}") from None

    def __iter__(self):
        return iter(self.masters.values())

    def __len__(self) -> int:
        return len(self.masters)

    def add(self, master: CellMaster) -> None:
        if master.name in self.masters:
            raise ValueError(f"duplicate cell {master.name!r}")
        self.masters[master.name] = master

    # -- queries ----------------------------------------------------------------
    def cells_of(self, function: str) -> list[CellMaster]:
        """Base masters implementing ``function``, sorted by drive."""
        found = [
            m for m in self.masters.values()
            if m.function == function and m.base_name is None
        ]
        return sorted(found, key=lambda m: m.drive)

    def cell(self, function: str, drive: float = 1) -> CellMaster:
        """The base master for ``function`` at exactly ``drive``."""
        for master in self.cells_of(function):
            if master.drive == drive:
                return master
        raise KeyError(f"no {function} at drive {drive} in {self.tech.name}")

    def strongest(self, function: str) -> CellMaster:
        cells = self.cells_of(function)
        if not cells:
            raise KeyError(f"no cells of function {function!r}")
        return cells[-1]

    def next_drive_up(self, master: CellMaster) -> CellMaster | None:
        """The same function one drive step stronger, or None at the top."""
        base = self.masters.get(master.base_name) if master.base_name else master
        siblings = self.cells_of(base.function)
        stronger = [m for m in siblings if m.drive > base.drive]
        return min(stronger, key=lambda m: m.drive) if stronger else None

    def functions(self) -> set[str]:
        return {m.function for m in self.masters.values() if m.base_name is None}

    # -- aggregate statistics ------------------------------------------------
    def total_area_nm2(self, counts: dict[str, int]) -> float:
        """Area of an instance mix, ``counts`` mapping cell name to count."""
        return sum(self[name].area_nm2(self.tech) * n for name, n in counts.items())

    def mean_pin_density(self, side: Side) -> float:
        """Average pin shapes per CPP across base masters on one side."""
        bases = [m for m in self.masters.values() if m.base_name is None]
        if not bases:
            return 0.0
        return sum(m.pin_density(side) for m in bases) / len(bases)

    def backside_input_fraction(self) -> float:
        """Fraction of input pins located on the backside.

        This is the library-level realization of the paper's ``FP_x BP_y``
        input-pin density knob.
        """
        total = 0
        backside = 0
        for master in self.masters.values():
            if master.base_name is not None:
                continue
            for pin in master.input_pins + master.clock_pins:
                total += 1
                if pin.on_side(Side.BACK) and not pin.on_side(Side.FRONT):
                    backside += 1
        return backside / total if total else 0.0
