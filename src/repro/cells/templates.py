"""Cell templates: the structural recipes the characterizer consumes.

A template is technology-independent; it records the CMOS stage
topology, input pins, transistor count, the boolean function, and the
footprint in CPP for *each* architecture.  The per-architecture widths
encode the paper's Fig. 4:

* most cells have the same CPP count in both technologies, so the 3.5T
  FFET wins exactly the 12.5 % height scaling over the 4T CFET;
* MUX- and DFF-class cells are narrower in FFET thanks to the **Split
  Gate** (complementary clock pairs stack vertically, saving CPPs);
* AOI22/OAI22 need an extra Drain Merge in FFET and waste some area
  (Section II.B), eroding most of the height gain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping


@dataclass(frozen=True)
class StageSpec:
    """One CMOS stage: relative drive and worst-case stack factor."""

    drive: float
    stack_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.drive <= 0 or self.stack_factor < 1.0:
            raise ValueError("invalid stage spec")


@dataclass(frozen=True)
class InputSpec:
    """One input pin: name, relative gate cap, clock flag, arc adder."""

    name: str
    cap_mult: float = 1.0
    is_clock: bool = False
    #: Extra fixed delay on arcs from this pin (e.g. late select inputs).
    arc_extra_ps: float = 0.0


@dataclass(frozen=True)
class SeqSpec:
    """Sequential constraints in units of one FO1 stage delay."""

    setup_stage_delays: float = 8.0
    hold_stage_delays: float = 1.0


@dataclass(frozen=True)
class CellTemplate:
    name: str
    function: str
    drive: float
    inputs: tuple[InputSpec, ...]
    stages: tuple[StageSpec, ...]
    cfet_width_cpp: float
    ffet_width_cpp: float
    n_transistors: int
    output: str = "Z"
    sequential: SeqSpec | None = None
    logic: Callable[[Mapping[str, bool]], bool] | None = None
    uses_split_gate: bool = False
    #: Relative drive seen by the inputs (first stage drive).
    drive_of_inputs: float = 1.0

    def width_cpp(self, arch: str) -> float:
        if arch == "cfet":
            return self.cfet_width_cpp
        if arch == "ffet":
            return self.ffet_width_cpp
        raise ValueError(f"unknown architecture {arch!r}")


# --------------------------------------------------------------------------
# Boolean functions (used by functional tests and netlist simulation).
# --------------------------------------------------------------------------
def _inv(v):
    return not v["A"]


def _buf(v):
    return bool(v["A"])


def _nand2(v):
    return not (v["A"] and v["B"])


def _nor2(v):
    return not (v["A"] or v["B"])


def _nand3(v):
    return not (v["A"] and v["B"] and v["C"])


def _nor3(v):
    return not (v["A"] or v["B"] or v["C"])


def _and2(v):
    return v["A"] and v["B"]


def _or2(v):
    return v["A"] or v["B"]


def _xor2(v):
    return bool(v["A"]) != bool(v["B"])


def _xnor2(v):
    return bool(v["A"]) == bool(v["B"])


def _aoi21(v):
    return not ((v["A1"] and v["A2"]) or v["B"])


def _oai21(v):
    return not ((v["A1"] or v["A2"]) and v["B"])


def _aoi22(v):
    return not ((v["A1"] and v["A2"]) or (v["B1"] and v["B2"]))


def _oai22(v):
    return not ((v["A1"] or v["A2"]) and (v["B1"] or v["B2"]))


def _mux2(v):
    return bool(v["B"] if v["S"] else v["A"])


def _tiehi(v):
    return True


def _tielo(v):
    return False


# --------------------------------------------------------------------------
# Template construction helpers.
# --------------------------------------------------------------------------
def _ins(*names: str, cap_mult: float = 1.0) -> tuple[InputSpec, ...]:
    return tuple(InputSpec(n, cap_mult=cap_mult) for n in names)


def _inv_template(drive: float, width: float) -> CellTemplate:
    return CellTemplate(
        name=f"INVD{_d(drive)}", function="INV", drive=drive,
        inputs=_ins("A"), stages=(StageSpec(drive),),
        cfet_width_cpp=width, ffet_width_cpp=width,
        n_transistors=int(2 * drive), output="ZN", logic=_inv,
        drive_of_inputs=drive,
    )


def _buf_template(drive: float, width: float, clock: bool = False) -> CellTemplate:
    prefix = "CLKBUF" if clock else "BUF"
    first = max(drive / 2.0, 0.5)
    return CellTemplate(
        name=f"{prefix}D{_d(drive)}", function=prefix, drive=drive,
        inputs=(InputSpec("A", is_clock=False),),
        stages=(StageSpec(first), StageSpec(drive)),
        cfet_width_cpp=width, ffet_width_cpp=width,
        n_transistors=int(2 * (first + drive)), output="Z", logic=_buf,
        drive_of_inputs=first,
    )


def _d(drive: float) -> str:
    return str(int(drive)) if float(drive).is_integer() else str(drive)


def standard_templates() -> list[CellTemplate]:
    """The full cell list of Fig. 4, plus drive variants."""
    templates: list[CellTemplate] = []

    for drive, width in ((1, 2), (2, 3), (4, 5), (8, 9)):
        templates.append(_inv_template(drive, width))
    for drive, width in ((1, 4), (2, 5), (4, 7), (8, 11)):
        templates.append(_buf_template(drive, width))
    for drive, width in ((2, 5), (4, 7), (8, 11)):
        templates.append(_buf_template(drive, width, clock=True))

    def gate(name, function, drive, inputs, stack, cfet_w, ffet_w, ntr, logic,
             stages=None, output="ZN", split=False, cap_mult=1.0):
        templates.append(
            CellTemplate(
                name=name, function=function, drive=drive,
                inputs=_ins(*inputs, cap_mult=cap_mult),
                stages=stages or (StageSpec(drive, stack),),
                cfet_width_cpp=cfet_w, ffet_width_cpp=ffet_w,
                n_transistors=ntr, output=output, logic=logic,
                uses_split_gate=split, drive_of_inputs=drive,
            )
        )

    gate("NAND2D1", "NAND2", 1, ("A", "B"), 1.25, 3, 3, 4, _nand2)
    gate("NAND2D2", "NAND2", 2, ("A", "B"), 1.25, 5, 5, 8, _nand2)
    gate("NOR2D1", "NOR2", 1, ("A", "B"), 1.40, 3, 3, 4, _nor2)
    gate("NOR2D2", "NOR2", 2, ("A", "B"), 1.40, 5, 5, 8, _nor2)
    gate("NAND3D1", "NAND3", 1, ("A", "B", "C"), 1.55, 4, 4, 6, _nand3)
    gate("NOR3D1", "NOR3", 1, ("A", "B", "C"), 1.80, 4, 4, 6, _nor3)
    gate("AND2D1", "AND2", 1, ("A", "B"), 1.0, 4, 4, 6, _and2,
         stages=(StageSpec(0.5, 1.25), StageSpec(1)), output="Z")
    gate("OR2D1", "OR2", 1, ("A", "B"), 1.0, 4, 4, 6, _or2,
         stages=(StageSpec(0.5, 1.40), StageSpec(1)), output="Z")
    gate("XOR2D1", "XOR2", 1, ("A", "B"), 1.0, 6, 6, 10, _xor2,
         stages=(StageSpec(0.5, 1.3), StageSpec(1, 1.6)), output="Z",
         cap_mult=1.8)
    gate("XNOR2D1", "XNOR2", 1, ("A", "B"), 1.0, 6, 6, 10, _xnor2,
         stages=(StageSpec(0.5, 1.3), StageSpec(1, 1.6)), output="Z",
         cap_mult=1.8)
    gate("AOI21D1", "AOI21", 1, ("A1", "A2", "B"), 1.50, 4, 4, 6, _aoi21)
    gate("OAI21D1", "OAI21", 1, ("A1", "A2", "B"), 1.50, 4, 4, 6, _oai21)
    # Extra Drain Merge wastes area in the FFET versions (Section II.B).
    gate("AOI22D1", "AOI22", 1, ("A1", "A2", "B1", "B2"), 1.70, 5, 5.75, 8, _aoi22)
    gate("OAI22D1", "OAI22", 1, ("A1", "A2", "B1", "B2"), 1.70, 5, 5.75, 8, _oai22)
    # Split Gate saves CPPs in transmission-gate based cells (Fig. 3).
    gate("MUX2D1", "MUX2", 1, ("A", "B", "S"), 1.0, 7, 6, 12, _mux2,
         stages=(StageSpec(0.7, 1.5), StageSpec(1)), output="Z", split=True)
    gate("MUX2D2", "MUX2", 2, ("A", "B", "S"), 1.0, 9, 8, 16, _mux2,
         stages=(StageSpec(1.2, 1.5), StageSpec(2)), output="Z", split=True)

    for drive, cfet_w, ffet_w in ((1, 13, 11), (2, 14, 12)):
        templates.append(
            CellTemplate(
                name=f"DFFD{drive}", function="DFF", drive=drive,
                inputs=(InputSpec("D", cap_mult=1.2),
                        InputSpec("CK", cap_mult=1.5, is_clock=True)),
                stages=(StageSpec(0.7, 1.5), StageSpec(0.8, 1.3),
                        StageSpec(drive)),
                cfet_width_cpp=cfet_w, ffet_width_cpp=ffet_w,
                n_transistors=24, output="Q",
                sequential=SeqSpec(),
                uses_split_gate=True,
            )
        )

    gate("TIEHI", "TIEHI", 1, (), 1.0, 2, 2, 2, _tiehi, output="Z")
    gate("TIELO", "TIELO", 1, (), 1.0, 2, 2, 2, _tielo, output="Z")
    return templates
