"""Input-pin redistribution: the paper's ``FP_x BP_y`` library knob.

Section III.A: every input pin of every FFET cell "could be freely
adjusted to the frontside or backside thanks to the enough resource of
M0 signal tracks in 3.5T FFET".  A DoE like ``FP0.7 BP0.3`` means 70 %
of the library's input pins sit on the frontside and 30 % on the
backside.  The assignment is done here deterministically (seeded
shuffle + error diffusion) so a given ``(fraction, seed)`` always
yields the same modified library — the stand-in for the paper's
hand-modified LEF files.
"""

from __future__ import annotations

import random
from dataclasses import replace

from ..tech import Side
from .library import Library


def pin_density_label(backside_fraction: float) -> str:
    """Format the paper's DoE label, e.g. 0.3 -> ``FP0.7BP0.3``."""
    front = 1.0 - backside_fraction
    return f"FP{front:g}BP{backside_fraction:g}"


def parse_pin_density_label(label: str) -> float:
    """Inverse of :func:`pin_density_label`; returns backside fraction."""
    if not label.startswith("FP") or "BP" not in label:
        raise ValueError(f"bad pin-density label {label!r}")
    front_str, back_str = label[2:].split("BP")
    front, back = float(front_str), float(back_str)
    if abs(front + back - 1.0) > 1e-6:
        raise ValueError(f"label {label!r}: fractions must sum to 1")
    return back


def redistribute_input_pins(library: Library, backside_fraction: float,
                            seed: int = 0) -> Library:
    """A new library with ``backside_fraction`` of input pins on the back.

    Only legal for technologies with dual-sided pins (FFET).  Clock pins
    participate like any other input, matching the paper's library-wide
    density definition.  Geometry, timing and power are shared with the
    original masters (Section IV assumption).
    """
    if not library.tech.dual_sided_pins:
        raise ValueError(
            f"{library.tech.name} has no backside pins; redistribution "
            "applies to FFET libraries only"
        )
    if not 0.0 <= backside_fraction <= 1.0:
        raise ValueError("backside_fraction must lie in [0, 1]")

    # Stable global ordering of all (cell, pin) input pins, then a seeded
    # shuffle so the backside pins are spread across functions.
    slots = []
    for master in sorted(library.masters.values(), key=lambda m: m.name):
        if master.base_name is not None:
            continue
        for pin in sorted(master.input_pins + master.clock_pins,
                          key=lambda p: p.name):
            slots.append((master.name, pin.name))
    rng = random.Random(seed)
    rng.shuffle(slots)

    assignment: dict[tuple[str, str], Side] = {}
    assigned_back = 0
    for i, slot in enumerate(slots):
        # Error diffusion: go backside whenever we are behind the target.
        if assigned_back < backside_fraction * (i + 1) - 1e-9:
            assignment[slot] = Side.BACK
            assigned_back += 1
        else:
            assignment[slot] = Side.FRONT

    new_lib = Library(tech=library.tech)
    for name, master in library.masters.items():
        moves = {
            pin.name: assignment[(name, pin.name)]
            for pin in master.input_pins + master.clock_pins
            if (name, pin.name) in assignment
        }
        if moves:
            new_pins = dict(master.pins)
            for pin_name, side in moves.items():
                new_pins[pin_name] = master.pins[pin_name].moved_to(side)
            new_lib.add(replace(master, pins=new_pins))
        else:
            new_lib.add(master)
    return new_lib


def single_sided_output_library(library: Library) -> Library:
    """An FFET library variant *without* dual-sided output pins.

    Ablation: removes the Drain Merge's dual-sided reach from every
    output, so backside sinks can only be served through bridging
    cells.  A dedicated ``BRIDGE`` cell (a buffer whose output remains
    dual-sided, i.e. a via-through cell) is added for that purpose.
    """
    if not library.tech.dual_sided_pins:
        raise ValueError("ablation applies to FFET libraries only")
    new_lib = Library(tech=library.tech)
    for master in library.masters.values():
        new_pins = {
            name: (pin.moved_to(Side.FRONT) if pin.is_output else pin)
            for name, pin in master.pins.items()
        }
        new_lib.add(replace(master, pins=new_pins))
    buf = library["BUFD2"]
    new_lib.add(replace(buf, name="BRIDGE", base_name="BUFD2"))
    return new_lib


def widen_input_pins(library: Library) -> Library:
    """Make every input pin dual-sided (Gate Merge) — ablation only.

    This is the *dual-sided input pin* alternative the paper rejects:
    it doubles the pin shapes per cell, which the routability model
    punishes, demonstrating why the dual-sided *output* pin is "the only
    reasonable solution" (Section III.A).
    """
    if not library.tech.dual_sided_pins:
        raise ValueError("dual-sided input pins require an FFET library")
    new_lib = Library(tech=library.tech)
    for master in library.masters.values():
        new_pins = {
            name: (pin.widened() if pin.is_input else pin)
            for name, pin in master.pins.items()
        }
        new_lib.add(replace(master, pins=new_pins))
    return new_lib
