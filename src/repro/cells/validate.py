"""Library QA: the checks a library release flow runs before sign-off."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..tech import Side
from .library import Library


@dataclass
class LibraryQaReport:
    """Findings of one library validation run."""

    issues: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.issues

    def add(self, cell: str, message: str) -> None:
        self.issues.append(f"{cell}: {message}")


def validate_library(library: Library) -> LibraryQaReport:
    """Check structural and electrical sanity of every cell."""
    report = LibraryQaReport()
    tech = library.tech
    for master in library:
        if master.width_cpp <= 0:
            report.add(master.name, "non-positive width")
        if master.height_tracks != tech.cell_height_tracks:
            report.add(master.name, "height differs from the tech node")

        outs = master.output_pins
        if master.function not in ("TIEHI", "TIELO") and not outs:
            report.add(master.name, "no output pin")
        for pin in master.pins.values():
            if pin.is_input and pin.cap_ff <= 0:
                report.add(master.name, f"input {pin.name} has no cap")
            if not tech.dual_sided_pins and pin.on_side(Side.BACK):
                report.add(master.name,
                           f"pin {pin.name} on the backside of a "
                           "single-sided technology")

        if master.is_sequential:
            if not master.clock_pins:
                report.add(master.name, "sequential cell without a clock pin")
            if master.sequential.setup_ps <= 0:
                report.add(master.name, "non-positive setup time")
        expected_arcs = 0 if master.function in ("TIEHI", "TIELO") else 1
        if len(master.arcs) < expected_arcs:
            report.add(master.name, "missing timing arcs")

        for arc in master.arcs:
            if arc.from_pin not in master.pins:
                report.add(master.name, f"arc from unknown pin {arc.from_pin}")
            for label, table in (("rise_delay", arc.rise_delay),
                                 ("fall_delay", arc.fall_delay)):
                values = table.values
                if np.any(values <= 0):
                    report.add(master.name, f"{label} has non-positive values")
                # Monotone in load at fixed slew.
                if np.any(np.diff(values, axis=1) < -1e-9):
                    report.add(master.name,
                               f"{label} not monotone in load")
            if arc.unate not in ("+", "-", "x"):
                report.add(master.name, f"bad unateness {arc.unate!r}")

        if master.power is not None:
            if master.power.leakage_nw < 0:
                report.add(master.name, "negative leakage")
            if np.any(master.power.rise_energy.values < 0):
                report.add(master.name, "negative rise energy")
    return report
