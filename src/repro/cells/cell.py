"""Cell masters: the library view of one standard cell."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping

from ..tech import Side, TechNode
from .pins import Pin, PinDirection
from .timing import PowerModel, SequentialTiming, TimingArc


@dataclass
class CellMaster:
    """One standard cell in a library.

    A master owns geometry (width in CPP, height in tracks), pins,
    characterized timing arcs and power data.  Input-pin redistribution
    produces *variants* of a master that share everything except the pin
    sides (the paper's Section IV assumption: "the characteristics of
    the same cell remain the same across different input pin
    configurations").
    """

    name: str
    function: str                     # e.g. "INV", "NAND2", "DFF"
    drive: float                      # relative drive strength (1, 2, 4, ...)
    width_cpp: float
    height_tracks: float
    pins: dict[str, Pin]
    arcs: list[TimingArc] = field(default_factory=list)
    power: PowerModel | None = None
    sequential: SequentialTiming | None = None
    n_transistors: int = 0
    #: Optional boolean function for functional verification in tests:
    #: maps {input pin name: bool} -> bool for the (single) output.
    logic_fn: Callable[[Mapping[str, bool]], bool] | None = None
    #: Name of the master this cell is a pin-variant of (None for bases).
    base_name: str | None = None

    def __post_init__(self) -> None:
        if self.width_cpp <= 0:
            raise ValueError(f"{self.name}: width must be positive")
        for pin_name, pin in self.pins.items():
            if pin_name != pin.name:
                raise ValueError(f"{self.name}: pin dict key {pin_name!r} != {pin.name!r}")

    # -- pin queries ---------------------------------------------------------
    @property
    def input_pins(self) -> list[Pin]:
        return [p for p in self.pins.values() if p.is_input and not p.is_clock]

    @property
    def clock_pins(self) -> list[Pin]:
        return [p for p in self.pins.values() if p.is_clock]

    @property
    def output_pins(self) -> list[Pin]:
        return [p for p in self.pins.values() if p.is_output]

    @property
    def output(self) -> Pin:
        outs = self.output_pins
        if len(outs) != 1:
            raise ValueError(f"{self.name}: expected one output, has {len(outs)}")
        return outs[0]

    @property
    def is_sequential(self) -> bool:
        return self.sequential is not None

    def pin(self, name: str) -> Pin:
        try:
            return self.pins[name]
        except KeyError:
            raise KeyError(f"cell {self.name} has no pin {name!r}") from None

    def input_cap_ff(self, pin_name: str) -> float:
        return self.pin(pin_name).cap_ff

    # -- geometry --------------------------------------------------------------
    def area_nm2(self, tech: TechNode) -> float:
        return self.width_cpp * tech.cpp_nm * self.height_tracks * tech.track_pitch_nm

    def width_nm(self, tech: TechNode) -> float:
        return self.width_cpp * tech.cpp_nm

    def pin_count_on(self, side: Side) -> int:
        """Physical pin shapes on one side (dual-sided pins count on both)."""
        return sum(1 for p in self.pins.values() if p.on_side(side))

    def pin_density(self, side: Side) -> float:
        """Pin shapes per CPP of cell width on one wafer side."""
        return self.pin_count_on(side) / self.width_cpp

    # -- timing ----------------------------------------------------------------
    def arcs_to(self, output_pin: str) -> list[TimingArc]:
        return [a for a in self.arcs if a.to_pin == output_pin]

    def arc(self, from_pin: str, to_pin: str) -> TimingArc:
        for a in self.arcs:
            if a.from_pin == from_pin and a.to_pin == to_pin:
                return a
        raise KeyError(f"{self.name}: no arc {from_pin} -> {to_pin}")

    # -- variants ----------------------------------------------------------------
    def with_input_sides(self, sides: Mapping[str, Side], suffix: str) -> "CellMaster":
        """A pin variant with each listed input pin moved to a given side.

        Timing, power and geometry are shared with the base master (the
        M0-only structural change barely affects intra-cell parasitics,
        per Section IV of the paper).
        """
        new_pins = dict(self.pins)
        for pin_name, side in sides.items():
            pin = self.pin(pin_name)
            if not pin.is_input:
                raise ValueError(f"{self.name}: {pin_name} is not an input pin")
            new_pins[pin_name] = pin.moved_to(side)
        return replace(
            self,
            name=f"{self.name}{suffix}",
            pins=new_pins,
            base_name=self.base_name or self.name,
        )

    def with_dual_sided_inputs(self) -> "CellMaster":
        """Variant with every input pin present on both sides (Gate Merge).

        This is the *dual-sided input pin* alternative the paper rejects
        for its pin-density explosion; kept for the ablation study.
        """
        new_pins = {
            name: (pin.widened() if pin.is_input else pin)
            for name, pin in self.pins.items()
        }
        return replace(
            self,
            name=f"{self.name}_DSIN",
            pins=new_pins,
            base_name=self.base_name or self.name,
        )
