"""Standard cells: pins, masters, timing models, libraries, generators."""

from .cell import CellMaster
from .characterize import VDD_V, ArchParasitics, Characterizer
from .compare import (
    TABLE_I_CELLS,
    TABLE_I_KPIS,
    CellKpis,
    cell_kpis,
    format_kpi_table,
    library_kpi_diff,
)
from .generator import build_library, cell_area_table
from .liberty import parse_liberty, write_liberty
from .library import Library
from .pins import Pin, PinDirection, dual_pin, front_pin
from .redistribution import (
    parse_pin_density_label,
    pin_density_label,
    redistribute_input_pins,
    single_sided_output_library,
    widen_input_pins,
)
from .validate import LibraryQaReport, validate_library
from .templates import CellTemplate, InputSpec, SeqSpec, StageSpec, standard_templates
from .timing import (
    DEFAULT_LOADS_FF,
    DEFAULT_SLEWS_PS,
    LookupTable,
    PowerModel,
    SequentialTiming,
    TimingArc,
)

__all__ = [
    "ArchParasitics",
    "CellKpis",
    "CellMaster",
    "CellTemplate",
    "Characterizer",
    "DEFAULT_LOADS_FF",
    "DEFAULT_SLEWS_PS",
    "InputSpec",
    "Library",
    "LookupTable",
    "Pin",
    "PinDirection",
    "PowerModel",
    "SeqSpec",
    "SequentialTiming",
    "StageSpec",
    "TABLE_I_CELLS",
    "TABLE_I_KPIS",
    "TimingArc",
    "VDD_V",
    "build_library",
    "cell_area_table",
    "cell_kpis",
    "dual_pin",
    "format_kpi_table",
    "front_pin",
    "library_kpi_diff",
    "parse_liberty",
    "parse_pin_density_label",
    "pin_density_label",
    "redistribute_input_pins",
    "single_sided_output_library",
    "standard_templates",
    "widen_input_pins",
    "LibraryQaReport",
    "validate_library",
    "write_liberty",
]
