"""Library-level KPI comparison between two characterized libraries.

Produces the data behind the paper's Table I: per-cell relative
differences of transition power, leakage power, rise/fall timing and
rise/fall transition, FFET w.r.t. CFET, averaged over the NLDM grid.
"""

from __future__ import annotations

from dataclasses import dataclass

from .library import Library

#: KPI names in Table I order.
TABLE_I_KPIS = (
    "transition_power",
    "leakage_power",
    "rise_timing",
    "fall_timing",
    "rise_transition",
    "fall_transition",
)

#: Cells reported in Table I.
TABLE_I_CELLS = ("INVD1", "INVD2", "INVD4", "BUFD1", "BUFD2", "BUFD4")


@dataclass(frozen=True)
class CellKpis:
    """Grid-averaged KPIs of one cell."""

    transition_power: float   # fJ per rise+fall pair
    leakage_power: float      # nW
    rise_timing: float        # ps
    fall_timing: float        # ps
    rise_transition: float    # ps
    fall_transition: float    # ps

    def diff_vs(self, other: "CellKpis") -> dict[str, float]:
        """Relative difference of each KPI w.r.t. ``other`` (the baseline)."""
        out = {}
        for kpi in TABLE_I_KPIS:
            mine = getattr(self, kpi)
            base = getattr(other, kpi)
            out[kpi] = (mine - base) / base if base else 0.0
        return out


def cell_kpis(library: Library, cell_name: str) -> CellKpis:
    """Grid-averaged KPIs for one cell of a library."""
    master = library[cell_name]
    if master.power is None or not master.arcs:
        raise ValueError(f"{cell_name} is not characterized")
    arc = master.arcs[0]
    rise_e = master.power.rise_energy.mean()
    fall_e = master.power.fall_energy.mean()
    return CellKpis(
        transition_power=rise_e + fall_e,
        leakage_power=master.power.leakage_nw,
        rise_timing=arc.rise_delay.mean(),
        fall_timing=arc.fall_delay.mean(),
        rise_transition=arc.rise_transition.mean(),
        fall_transition=arc.fall_transition.mean(),
    )


def library_kpi_diff(
    library: Library,
    baseline: Library,
    cells: tuple[str, ...] = TABLE_I_CELLS,
) -> dict[str, dict[str, float]]:
    """Table I: KPI diffs of ``library`` w.r.t. ``baseline`` per cell.

    Returns ``{cell: {kpi: relative_diff}}``.
    """
    table: dict[str, dict[str, float]] = {}
    for cell_name in cells:
        mine = cell_kpis(library, cell_name)
        base = cell_kpis(baseline, cell_name)
        table[cell_name] = mine.diff_vs(base)
    return table


def format_kpi_table(table: dict[str, dict[str, float]]) -> str:
    """Render a Table-I-style text table (percentages)."""
    cells = list(table)
    lines = ["KPI Diff of FFET Libraries w.r.t CFET"]
    header = f"{'KPI':<18}" + "".join(f"{c:>9}" for c in cells)
    lines.append(header)
    for kpi in TABLE_I_KPIS:
        row = f"{kpi:<18}"
        for cell_name in cells:
            row += f"{table[cell_name][kpi] * 100:>+8.1f}%"
        lines.append(row)
    return "\n".join(lines)
