"""Liberty (.lib) writer and parser for characterized libraries.

The paper's flow consumes characterized libraries in Liberty format
(Table I comes from such a characterization).  This module serializes
a :class:`~repro.cells.library.Library` to the NLDM subset of Liberty —
``cell``/``pin``/``timing`` groups with ``cell_rise``/``rise_transition``
tables, ``internal_power``, ``leakage_power`` and flip-flop ``ff``
groups — and parses that subset back, enabling library interchange and
golden-file testing.

Units: time in ps, capacitance in fF, power (energy) in fJ — declared
in the library header.
"""

from __future__ import annotations

import re

import numpy as np

from ..tech import Side
from .cell import CellMaster
from .library import Library
from .pins import Pin, PinDirection
from .timing import LookupTable, PowerModel, SequentialTiming, TimingArc

_UNATE = {"+": "positive_unate", "-": "negative_unate", "x": "non_unate"}
_UNATE_BACK = {v: k for k, v in _UNATE.items()}


def _format_table(name: str, table: LookupTable, indent: str) -> str:
    lines = [f'{indent}{name} (nldm_template) {{']
    lines.append(
        f'{indent}  index_1 ("'
        + ", ".join(f"{v:g}" for v in table.slews_ps) + '");'
    )
    lines.append(
        f'{indent}  index_2 ("'
        + ", ".join(f"{v:g}" for v in table.loads_ff) + '");'
    )
    lines.append(f"{indent}  values ( \\")
    for i, row in enumerate(table.values):
        sep = ", \\" if i < len(table.values) - 1 else " \\"
        lines.append(
            f'{indent}    "' + ", ".join(f"{v:.5f}" for v in row) + f'"{sep}'
        )
    lines.append(f"{indent}  );")
    lines.append(f"{indent}}}")
    return "\n".join(lines)


def write_liberty(library: Library, name: str | None = None) -> str:
    """Serialize the library as Liberty text."""
    lib_name = name or library.tech.name.replace(" ", "_").replace(".", "p")
    out = [
        f"library ({lib_name}) {{",
        '  delay_model : "table_lookup";',
        '  time_unit : "1ps";',
        '  capacitive_load_unit (1, ff);',
        '  leakage_power_unit : "1nW";',
        "",
        "  lu_table_template (nldm_template) {",
        "    variable_1 : input_net_transition;",
        "    variable_2 : total_output_net_capacitance;",
        "  }",
        "",
    ]
    for master in sorted(library.masters.values(), key=lambda m: m.name):
        out.append(_format_cell(library, master))
    out.append("}")
    return "\n".join(out) + "\n"


def _format_cell(library: Library, master: CellMaster) -> str:
    tech = library.tech
    lines = [f"  cell ({master.name}) {{"]
    area_um2 = master.area_nm2(tech) / 1e6
    lines.append(f"    area : {area_um2:.6f};")
    if master.power is not None:
        lines.append(f"    cell_leakage_power : {master.power.leakage_nw:.4f};")
    if master.is_sequential:
        seq = master.sequential
        lines.append('    ff (IQ, IQN) {')
        lines.append('      clocked_on : "CK";')
        lines.append('      next_state : "D";')
        lines.append("    }")

    for pin in sorted(master.pins.values(), key=lambda p: p.name):
        lines.append(f"    pin ({pin.name}) {{")
        direction = "output" if pin.is_output else "input"
        lines.append(f"      direction : {direction};")
        if pin.is_clock:
            lines.append("      clock : true;")
        if pin.is_input:
            lines.append(f"      capacitance : {pin.cap_ff:.5f};")
        sides = "+".join(sorted(s.value for s in pin.sides))
        lines.append(f'      wafer_side : "{sides}";')  # FFET extension
        if pin.is_output:
            for arc in master.arcs_to(pin.name):
                lines.append("      timing () {")
                lines.append(f'        related_pin : "{arc.from_pin}";')
                lines.append(f"        timing_sense : {_UNATE[arc.unate]};")
                for label, table in (
                    ("cell_rise", arc.rise_delay),
                    ("cell_fall", arc.fall_delay),
                    ("rise_transition", arc.rise_transition),
                    ("fall_transition", arc.fall_transition),
                ):
                    lines.append(_format_table(label, table, "        "))
                lines.append("      }")
            if master.power is not None:
                lines.append("      internal_power () {")
                lines.append(_format_table("rise_power",
                                           master.power.rise_energy,
                                           "        "))
                lines.append(_format_table("fall_power",
                                           master.power.fall_energy,
                                           "        "))
                lines.append("      }")
        if pin.is_input and master.is_sequential and pin.name == "D":
            seq = master.sequential
            lines.append("      timing () {")
            lines.append('        related_pin : "CK";')
            lines.append("        timing_type : setup_rising;")
            lines.append(f"        setup : {seq.setup_ps:.4f};")
            lines.append(f"        hold : {seq.hold_ps:.4f};")
            lines.append("      }")
        lines.append("    }")
    lines.append("  }")
    lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Parser (for the subset written above).
# ---------------------------------------------------------------------------
_NUMS = re.compile(r"-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?")


def _find_groups(text: str, keyword: str):
    """Yield (argument, body) for each `keyword (arg) { body }` group."""
    pattern = re.compile(rf"{keyword}\s*\(([^)]*)\)\s*\{{")
    pos = 0
    while True:
        match = pattern.search(text, pos)
        if match is None:
            return
        depth = 1
        i = match.end()
        while depth and i < len(text):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
            i += 1
        yield match.group(1).strip(), text[match.end():i - 1]
        pos = i


def _attribute(body: str, name: str) -> str | None:
    match = re.search(rf"{name}\s*:\s*([^;]+);", body)
    return match.group(1).strip().strip('"') if match else None


def _parse_table(body: str, name: str) -> LookupTable | None:
    for arg, group in _find_groups(body, name):
        idx1 = _NUMS.findall(re.search(r"index_1\s*\(([^)]*)\)", group).group(1))
        idx2 = _NUMS.findall(re.search(r"index_2\s*\(([^)]*)\)", group).group(1))
        values_text = re.search(r"values\s*\((.*?)\);", group, re.DOTALL).group(1)
        values = [float(v) for v in _NUMS.findall(values_text)]
        slews = [float(v) for v in idx1]
        loads = [float(v) for v in idx2]
        array = np.array(values).reshape(len(slews), len(loads))
        return LookupTable(np.array(slews), np.array(loads), array)
    return None


def parse_liberty(text: str, library: Library) -> Library:
    """Parse Liberty text written by :func:`write_liberty`.

    Geometry that Liberty does not carry (width in CPP, transistor
    count, logic functions) is recovered from the template ``library``,
    which must contain the same cell names.
    """
    from dataclasses import replace

    parsed = Library(tech=library.tech)
    for cell_name, cell_body in _find_groups(text, "cell"):
        template = library[cell_name]
        leakage = float(_attribute(cell_body, "cell_leakage_power") or 0.0)

        pins: dict[str, Pin] = {}
        arcs: list[TimingArc] = []
        rise_energy = fall_energy = None
        setup = hold = None
        for pin_name, pin_body in _find_groups(cell_body, "pin"):
            direction = _attribute(pin_body, "direction")
            is_clock = _attribute(pin_body, "clock") == "true"
            cap = float(_attribute(pin_body, "capacitance") or 0.0)
            sides_attr = _attribute(pin_body, "wafer_side") or "front"
            sides = frozenset(
                Side.FRONT if s == "front" else Side.BACK
                for s in sides_attr.split("+")
            )
            if direction == "output":
                pin_dir = PinDirection.OUTPUT
            elif is_clock:
                pin_dir = PinDirection.CLOCK
            else:
                pin_dir = PinDirection.INPUT
            pins[pin_name] = Pin(pin_name, pin_dir, sides, cap_ff=cap,
                                 track=template.pin(pin_name).track)

            for _arg, timing_body in _find_groups(pin_body, "timing"):
                related = _attribute(timing_body, "related_pin")
                if _attribute(timing_body, "timing_type") == "setup_rising":
                    setup = float(_attribute(timing_body, "setup"))
                    hold = float(_attribute(timing_body, "hold"))
                    continue
                sense = _attribute(timing_body, "timing_sense")
                arcs.append(TimingArc(
                    from_pin=related,
                    to_pin=pin_name,
                    rise_delay=_parse_table(timing_body, "cell_rise"),
                    fall_delay=_parse_table(timing_body, "cell_fall"),
                    rise_transition=_parse_table(timing_body,
                                                 "rise_transition"),
                    fall_transition=_parse_table(timing_body,
                                                 "fall_transition"),
                    unate=_UNATE_BACK.get(sense, "x"),
                ))
            for _arg, power_body in _find_groups(pin_body, "internal_power"):
                rise_energy = _parse_table(power_body, "rise_power")
                fall_energy = _parse_table(power_body, "fall_power")

        power = None
        if rise_energy is not None and fall_energy is not None:
            power = PowerModel(rise_energy, fall_energy, leakage)
        sequential = None
        if setup is not None:
            sequential = SequentialTiming(setup_ps=setup, hold_ps=hold or 0.0)

        parsed.add(replace(
            template, pins=pins, arcs=arcs, power=power,
            sequential=sequential,
        ))
    return parsed
