"""NLDM-style lookup-table timing and power models.

Each combinational arc carries four tables indexed by (input slew,
output load): rise delay, fall delay, rise transition, fall transition —
the same shape a Liberty NLDM ``cell_rise``/``rise_transition`` group
has.  Sequential cells add clock-to-Q arcs plus setup/hold constraint
values.  Table lookups use bilinear interpolation with clamped
extrapolation, as commercial STA engines do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Default characterization grid (input slew in ps, output load in fF).
DEFAULT_SLEWS_PS: tuple[float, ...] = (2.0, 6.0, 15.0, 35.0, 80.0)
DEFAULT_LOADS_FF: tuple[float, ...] = (0.5, 2.0, 6.0, 15.0, 40.0)


@dataclass
class LookupTable:
    """A 2-D lookup table over (input slew, output load)."""

    slews_ps: np.ndarray
    loads_ff: np.ndarray
    values: np.ndarray  # shape (len(slews), len(loads))

    def __post_init__(self) -> None:
        self.slews_ps = np.asarray(self.slews_ps, dtype=float)
        self.loads_ff = np.asarray(self.loads_ff, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.values.shape != (len(self.slews_ps), len(self.loads_ff)):
            raise ValueError(
                f"table shape {self.values.shape} does not match axes "
                f"({len(self.slews_ps)}, {len(self.loads_ff)})"
            )
        if np.any(np.diff(self.slews_ps) <= 0) or np.any(np.diff(self.loads_ff) <= 0):
            raise ValueError("table axes must be strictly increasing")
        # Plain-Python mirrors for the hot scalar-lookup path (STA calls
        # this millions of times; numpy scalar ops are ~20x slower).
        self._slews = self.slews_ps.tolist()
        self._loads = self.loads_ff.tolist()
        self._rows = self.values.tolist()

    def __call__(self, slew_ps: float, load_ff: float) -> float:
        """Bilinear interpolation, clamped at the grid edges."""
        from bisect import bisect_right

        slews, loads, rows = self._slews, self._loads, self._rows
        s = slew_ps
        if s <= slews[0]:
            s = slews[0]
        elif s >= slews[-1]:
            s = slews[-1]
        c = load_ff
        if c <= loads[0]:
            c = loads[0]
        elif c >= loads[-1]:
            c = loads[-1]
        i = bisect_right(slews, s) - 1
        if i > len(slews) - 2:
            i = len(slews) - 2
        j = bisect_right(loads, c) - 1
        if j > len(loads) - 2:
            j = len(loads) - 2
        s0, s1 = slews[i], slews[i + 1]
        c0, c1 = loads[j], loads[j + 1]
        ts = (s - s0) / (s1 - s0)
        tc = (c - c0) / (c1 - c0)
        r0, r1 = rows[i], rows[i + 1]
        top = r0[j] * (1 - tc) + r0[j + 1] * tc
        bottom = r1[j] * (1 - tc) + r1[j + 1] * tc
        return top * (1 - ts) + bottom * ts

    def mean(self) -> float:
        """Average table value — used for library-level KPI comparisons."""
        return float(self.values.mean())

    @classmethod
    def from_function(cls, fn, slews_ps=DEFAULT_SLEWS_PS,
                      loads_ff=DEFAULT_LOADS_FF) -> "LookupTable":
        """Build a table by sampling ``fn(slew_ps, load_ff)`` on a grid."""
        slews = np.asarray(slews_ps, dtype=float)
        loads = np.asarray(loads_ff, dtype=float)
        values = np.array([[fn(s, c) for c in loads] for s in slews])
        return cls(slews, loads, values)


@dataclass
class TimingArc:
    """A combinational (or clock-to-Q) timing arc ``from_pin -> to_pin``.

    ``unate`` follows Liberty semantics: ``"+"`` (positive unate: a
    rising input causes a rising output), ``"-"`` (negative unate) or
    ``"x"`` (non-unate: either input edge can cause either output edge).
    """

    from_pin: str
    to_pin: str
    rise_delay: LookupTable
    fall_delay: LookupTable
    rise_transition: LookupTable
    fall_transition: LookupTable
    unate: str = "-"

    def input_edges_for(self, rise_out: bool) -> tuple[bool, ...]:
        """Which input edges can cause the given output edge."""
        if self.unate == "+":
            return (rise_out,)
        if self.unate == "-":
            return (not rise_out,)
        return (True, False)

    def delay(self, slew_ps: float, load_ff: float, rise: bool) -> float:
        table = self.rise_delay if rise else self.fall_delay
        return table(slew_ps, load_ff)

    def transition(self, slew_ps: float, load_ff: float, rise: bool) -> float:
        table = self.rise_transition if rise else self.fall_transition
        return table(slew_ps, load_ff)

    def worst_delay(self, slew_ps: float, load_ff: float) -> float:
        return max(
            self.rise_delay(slew_ps, load_ff),
            self.fall_delay(slew_ps, load_ff),
        )


@dataclass
class PowerModel:
    """Cell-level power data.

    ``rise_energy`` / ``fall_energy`` are internal switching energies
    (fJ) per output transition, tabulated like delays.  ``leakage_nw``
    is state-averaged leakage in nW.
    """

    rise_energy: LookupTable
    fall_energy: LookupTable
    leakage_nw: float

    def transition_energy_fj(self, slew_ps: float, load_ff: float) -> float:
        """Rise + fall internal energy — the paper's 'transition power' KPI."""
        return self.rise_energy(slew_ps, load_ff) + self.fall_energy(slew_ps, load_ff)


@dataclass
class SequentialTiming:
    """Constraint data for flip-flops."""

    setup_ps: float
    hold_ps: float
    #: Minimum clock pulse width, ps.
    min_pulse_ps: float = 20.0

    def __post_init__(self) -> None:
        if self.setup_ps < 0 or self.min_pulse_ps < 0:
            raise ValueError("setup and pulse width must be non-negative")
