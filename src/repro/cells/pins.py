"""Standard-cell pins, including the FFET's dual-sided pin constructs.

Section III.A of the paper distinguishes:

* the **dual-sided output pin** — every logic output is an n-p common
  drain made by the Drain Merge, reachable from both frontside and
  backside M0 tracks (``sides = {FRONT, BACK}``); and
* single-sided **input pins**, whose side is chosen at library-prep
  time by the input-pin redistribution step (``FP_x BP_y`` DoEs).

The rejected alternative (dual-sided *input* pins via Gate Merge) is
representable too — :mod:`repro.cells.redistribution` uses it for the
ablation study — but doubles pin density, which is why the paper
discards it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from ..tech import Side


class PinDirection(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"
    CLOCK = "clock"  # clock inputs are kept distinct for CTS


@dataclass(frozen=True)
class Pin:
    """One logical pin of a cell master.

    Attributes
    ----------
    name:
        Pin name, e.g. ``"A"``, ``"ZN"``, ``"CK"``.
    direction:
        Input / output / clock.
    sides:
        Wafer sides on which the physical pin shape exists.  CFET pins
        are always ``{FRONT}``; FFET output pins are ``{FRONT, BACK}``
        (Drain Merge); FFET input pins carry whichever side the
        redistribution assigned.
    cap_ff:
        Input capacitance (0 for outputs).
    track:
        M0 track offset inside the cell used by the pin shape; only
        needed by the LEF writer and pin-density accounting.
    """

    name: str
    direction: PinDirection
    sides: frozenset[Side] = frozenset({Side.FRONT})
    cap_ff: float = 0.0
    track: int = 0

    def __post_init__(self) -> None:
        if not self.sides:
            raise ValueError(f"pin {self.name}: needs at least one side")
        if self.cap_ff < 0:
            raise ValueError(f"pin {self.name}: negative capacitance")

    @property
    def is_input(self) -> bool:
        return self.direction in (PinDirection.INPUT, PinDirection.CLOCK)

    @property
    def is_output(self) -> bool:
        return self.direction is PinDirection.OUTPUT

    @property
    def is_clock(self) -> bool:
        return self.direction is PinDirection.CLOCK

    @property
    def is_dual_sided(self) -> bool:
        return len(self.sides) == 2

    def on_side(self, side: Side) -> bool:
        return side in self.sides

    @property
    def side(self) -> Side:
        """The single side of a single-sided pin.

        Raises ``ValueError`` for dual-sided pins, where the router must
        choose a side per connection instead.
        """
        if self.is_dual_sided:
            raise ValueError(f"pin {self.name} is dual-sided; no unique side")
        return next(iter(self.sides))

    def moved_to(self, side: Side) -> "Pin":
        """Copy of this pin relocated to a single wafer side."""
        return replace(self, sides=frozenset({side}))

    def widened(self) -> "Pin":
        """Copy of this pin present on both sides (Gate Merge)."""
        return replace(self, sides=frozenset({Side.FRONT, Side.BACK}))


def front_pin(name: str, direction: PinDirection, cap_ff: float = 0.0,
              track: int = 0) -> Pin:
    """Convenience constructor for a frontside-only pin."""
    return Pin(name, direction, frozenset({Side.FRONT}), cap_ff, track)


def dual_pin(name: str, direction: PinDirection, cap_ff: float = 0.0,
             track: int = 0) -> Pin:
    """Convenience constructor for a dual-sided pin (Drain/Gate Merge)."""
    return Pin(name, direction, frozenset({Side.FRONT, Side.BACK}), cap_ff, track)
