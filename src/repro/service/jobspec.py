"""Job specifications: what clients POST to ``/jobs``.

A job spec is a small JSON document naming a *workload* (one flow run,
a sweep, or a Monte-Carlo study), the *design* to run it on, the
:class:`~repro.core.config.FlowConfig` knobs, and the job's *priority*
and *quota*.  Validation happens entirely here — the scheduler and the
HTTP layer only ever see a fully-expanded :class:`JobSpec` whose run
items are plain ``(label, FlowConfig)`` pairs — so a malformed spec is
a structured 400 response, never a worker-side crash.

Example::

    {
      "kind": "sweep",
      "axis": "layers",
      "splits": ["9:3", "8:4", "7:5"],
      "design": {"type": "riscv", "xlen": 16, "nregs": 16},
      "config": {"arch": "ffet", "utilization": 0.7},
      "priority": 5,
      "quota": {"retries": 2, "timeout_s": 120}
    }

The split between spec and execution follows rad_gen's ``asic_dse``
orchestration: specs are declarative and fully validated up front;
execution machinery (:mod:`repro.service.scheduler`) never parses.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from ..core.config import FlowConfig
from ..core.runner import RetryPolicy

#: Spec kinds a server accepts.
KINDS = ("run", "sweep", "mc")

#: Sweep axes, mirroring ``repro sweep``.
AXES = ("utilization", "frequency", "layers", "cts")

#: Designs a spec can name.  Factories must be picklable (they cross
#: the worker process pool), hence the module-level classes below.
#: ``riscv``/``multiplier`` take size parameters; the portfolio names
#: (:data:`repro.synth.designs.PORTFOLIO`) run with their own defaults.
DESIGN_TYPES = ("riscv", "multiplier", "rv16_sram", "rv16_cache",
                "rv16_tile", "counter", "fir")

#: Priority bounds; higher runs earlier.
PRIORITY_MIN, PRIORITY_MAX = -100, 100


class JobSpecError(ValueError):
    """A spec failed validation; ``str(exc)`` is the client message."""


@dataclass(frozen=True)
class DesignSpec:
    """A picklable netlist factory built from the spec's ``design``."""

    type: str = "riscv"
    xlen: int = 16
    nregs: int = 16
    bits: int = 4

    def __call__(self):
        if self.type == "multiplier":
            from ..synth import generate_multiplier
            return generate_multiplier(self.bits)
        if self.type != "riscv":
            from ..synth.designs import PORTFOLIO
            return PORTFOLIO[self.type]()
        from ..synth import RiscvConfig, generate_riscv_core
        return generate_riscv_core(RiscvConfig(
            xlen=self.xlen, nregs=self.nregs, name=f"rv{self.xlen}"))

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class RunItemSpec:
    """One expanded unit of work: a labeled flow config."""

    label: str
    config: FlowConfig


@dataclass(frozen=True)
class McParams:
    """Monte-Carlo knobs for ``kind == "mc"`` jobs."""

    samples: int = 32
    seed: int = 0
    overlay_sigma_nm: float = 2.0
    cd_sigma: float = 0.03
    rc_sigma: float = 0.04

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class JobSpec:
    """A validated, fully-expanded job: ready for the scheduler."""

    kind: str
    design: DesignSpec
    items: tuple[RunItemSpec, ...]
    priority: int = 0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    mc: McParams | None = None
    #: Free-form client annotation, echoed in every status response.
    tag: str = ""
    #: The raw client document, journaled verbatim so a resumed server
    #: re-expands the exact same items.
    raw: dict = field(default_factory=dict, compare=False)

    def fingerprint(self) -> str:
        """Content hash of the raw spec (dedup/debug aid, not identity)."""
        blob = json.dumps(self.raw, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise JobSpecError(message)


def _typed(doc: dict, key: str, types, default):
    value = doc.get(key, default)
    _require(isinstance(value, types) and not isinstance(value, bool)
             or (bool in (types if isinstance(types, tuple) else (types,))
                 and isinstance(value, bool)),
             f"field {key!r} must be of type "
             f"{getattr(types, '__name__', types)}")
    return value


def _parse_design(doc: dict) -> DesignSpec:
    raw = doc.get("design", {})
    _require(isinstance(raw, dict), "field 'design' must be an object")
    dtype = raw.get("type", "riscv")
    _require(dtype in DESIGN_TYPES,
             f"unknown design type {dtype!r} (one of {DESIGN_TYPES})")
    try:
        design = DesignSpec(
            type=dtype,
            xlen=int(raw.get("xlen", 16)),
            nregs=int(raw.get("nregs", 16)),
            bits=int(raw.get("bits", 4)),
        )
    except (TypeError, ValueError) as exc:
        raise JobSpecError(f"invalid design: {exc}")
    _require(2 <= design.bits <= 64, "design bits must be in [2, 64]")
    _require(4 <= design.xlen <= 64, "design xlen must be in [4, 64]")
    _require(4 <= design.nregs <= 64, "design nregs must be in [4, 64]")
    return design


def _parse_config(doc: dict, overrides: dict | None = None) -> FlowConfig:
    raw = dict(doc.get("config", {}))
    _require(isinstance(doc.get("config", {}), dict),
             "field 'config' must be an object")
    if overrides:
        raw.update(overrides)
    known = {f.name for f in dataclasses.fields(FlowConfig)}
    unknown = set(raw) - known
    _require(not unknown,
             f"unknown config fields {sorted(unknown)} "
             f"(known: {sorted(known)})")
    try:
        return FlowConfig(**raw)
    except (TypeError, ValueError) as exc:
        raise JobSpecError(f"invalid config: {exc}")


def _parse_split(text) -> tuple[int, int]:
    if (isinstance(text, (list, tuple)) and len(text) == 2
            and all(isinstance(v, int) for v in text)):
        return int(text[0]), int(text[1])
    if isinstance(text, str):
        front, sep, back = text.partition(":")
        if sep:
            try:
                return int(front), int(back)
            except ValueError:
                pass
    raise JobSpecError(
        f"invalid layer split {text!r} (expected 'FRONT:BACK' or [F, B])")


def _number_list(doc: dict, key: str, default: list) -> list[float]:
    values = doc.get(key, default)
    _require(isinstance(values, (list, tuple)) and values
             and all(isinstance(v, (int, float))
                     and not isinstance(v, bool) for v in values),
             f"field {key!r} must be a non-empty list of numbers")
    return [float(v) for v in values]


def _expand_sweep(doc: dict) -> list[RunItemSpec]:
    axis = doc.get("axis")
    _require(axis in AXES, f"unknown sweep axis {axis!r} (one of {AXES})")
    items: list[RunItemSpec] = []
    if axis == "utilization":
        for util in _number_list(doc, "points",
                                 [0.5, 0.6, 0.7, 0.76, 0.8, 0.86]):
            cfg = _parse_config(doc, {"utilization": util})
            items.append(RunItemSpec(f"u{util:g}", cfg))
    elif axis == "frequency":
        for ghz in _number_list(doc, "targets",
                                [0.5, 1.0, 1.5, 2.0, 2.5, 3.0]):
            cfg = _parse_config(doc, {"target_frequency_ghz": ghz})
            items.append(RunItemSpec(f"f{ghz:g}", cfg))
    elif axis == "layers":
        splits = doc.get("splits", ["9:3", "8:4", "7:5", "6:6"])
        _require(isinstance(splits, (list, tuple)) and splits,
                 "field 'splits' must be a non-empty list")
        for split in splits:
            front, back = _parse_split(split)
            cfg = _parse_config(doc, {"front_layers": front,
                                      "back_layers": back})
            items.append(RunItemSpec(f"FM{front}BM{back}", cfg))
    else:  # cts
        utils = _number_list(doc, "points", [0.5, 0.7])
        splits = [_parse_split(s)
                  for s in doc.get("splits", ["12:12", "6:6"])]
        for util in utils:
            for front, back in splits:
                for mode in ("single", "dual"):
                    cfg = _parse_config(doc, {
                        "utilization": util, "front_layers": front,
                        "back_layers": back, "cts_mode": mode})
                    items.append(RunItemSpec(
                        f"FM{front}BM{back} u{util:g} cts={mode}", cfg))
    return items


def _parse_quota(doc: dict, default_retry: RetryPolicy) -> RetryPolicy:
    raw = doc.get("quota", {})
    _require(isinstance(raw, dict), "field 'quota' must be an object")
    patch = {}
    retries = raw.get("retries")
    if retries is not None:
        _require(isinstance(retries, int) and 1 <= retries <= 10,
                 "quota retries must be an int in [1, 10]")
        patch["max_attempts"] = retries
    timeout = raw.get("timeout_s")
    if timeout is not None:
        _require(isinstance(timeout, (int, float)) and timeout > 0,
                 "quota timeout_s must be a positive number")
        patch["timeout_s"] = float(timeout)
    return dataclasses.replace(default_retry, **patch) if patch \
        else default_retry


def parse_jobspec(doc: dict, max_runs: int = 256,
                  default_retry: RetryPolicy | None = None) -> JobSpec:
    """Validate one client document into a :class:`JobSpec`.

    ``max_runs`` is the server-side per-job quota: a spec expanding to
    more run items is rejected up front (the client sees exactly why).
    Raises :class:`JobSpecError` with a client-presentable message on
    any problem.
    """
    _require(isinstance(doc, dict), "job spec must be a JSON object")
    kind = doc.get("kind")
    _require(kind in KINDS, f"unknown job kind {kind!r} (one of {KINDS})")
    design = _parse_design(doc)
    priority = doc.get("priority", 0)
    _require(isinstance(priority, int)
             and PRIORITY_MIN <= priority <= PRIORITY_MAX,
             f"priority must be an int in "
             f"[{PRIORITY_MIN}, {PRIORITY_MAX}]")
    tag = doc.get("tag", "")
    _require(isinstance(tag, str) and len(tag) <= 200,
             "tag must be a string of at most 200 characters")
    retry = _parse_quota(doc, default_retry if default_retry is not None
                         else RetryPolicy.from_env())

    mc = None
    if kind == "run":
        items = [RunItemSpec("run", _parse_config(doc))]
    elif kind == "sweep":
        items = _expand_sweep(doc)
    else:  # mc
        raw_mc = doc.get("mc", {})
        _require(isinstance(raw_mc, dict), "field 'mc' must be an object")
        try:
            mc = McParams(
                samples=int(raw_mc.get("samples", 32)),
                seed=int(raw_mc.get("seed", 0)),
                overlay_sigma_nm=float(raw_mc.get("overlay_sigma_nm", 2.0)),
                cd_sigma=float(raw_mc.get("cd_sigma", 0.03)),
                rc_sigma=float(raw_mc.get("rc_sigma", 0.04)),
            )
        except (TypeError, ValueError) as exc:
            raise JobSpecError(f"invalid mc parameters: {exc}")
        _require(1 <= mc.samples <= 4096,
                 "mc samples must be in [1, 4096]")
        items = [RunItemSpec("mc", _parse_config(doc))]

    _require(len(items) <= max_runs,
             f"job expands to {len(items)} runs, over the per-job quota "
             f"of {max_runs} (REPRO_SERVE_MAX_RUNS)")
    return JobSpec(kind=kind, design=design, items=tuple(items),
                   priority=priority, retry=retry, mc=mc, tag=tag,
                   raw=doc)
