"""Pure-python client for a ``repro serve`` daemon.

``http.client`` only — importable anywhere the package is, no
dependency on the server's asyncio machinery.  One connection per
request (the server closes after each response), so a client object is
cheap, stateless and safe to share across threads.

    client = ReproClient("http://127.0.0.1:8642")
    job = client.submit({"kind": "sweep", "axis": "layers", ...})
    final = client.wait(job["id"])
"""

from __future__ import annotations

import http.client
import json
import os
import time
from urllib.parse import urlsplit

#: Environment variable naming the default server URL.
URL_ENV = "REPRO_SERVE_URL"
DEFAULT_URL = "http://127.0.0.1:8642"


class ServiceError(RuntimeError):
    """A non-2xx response; carries the HTTP status and server message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ReproClient:
    """Blocking JSON-over-HTTP client for the job API."""

    def __init__(self, url: str | None = None,
                 timeout_s: float = 30.0) -> None:
        self.url = (url or os.environ.get(URL_ENV, "").strip()
                    or DEFAULT_URL)
        split = urlsplit(self.url)
        if split.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme in {self.url!r}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 8642
        self.timeout_s = timeout_s

    # -- transport -----------------------------------------------------------
    def _request(self, method: str, path: str, doc: dict | None = None,
                 timeout_s: float | None = None) -> dict:
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=timeout_s if timeout_s is not None else self.timeout_s)
        try:
            body = json.dumps(doc).encode() if doc is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                payload = json.loads(raw.decode() or "null")
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = {"error": raw[:200].decode("latin-1")}
            if response.status >= 300:
                message = payload.get("error", "") \
                    if isinstance(payload, dict) else str(payload)
                raise ServiceError(response.status, message)
            return payload
        finally:
            conn.close()

    # -- API -----------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def submit(self, spec: dict) -> dict:
        """POST one job spec; returns the job summary (with ``id``)."""
        return self._request("POST", "/jobs", spec)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")

    def wait(self, job_id: str, timeout_s: float | None = None) -> dict:
        """Block until the job settles; returns its final status.

        Follows the ``/events`` NDJSON stream (no polling); falls back
        to 0.2 s polling if the stream drops mid-job (e.g. the server
        restarted).  Raises :class:`TimeoutError` on deadline.
        """
        deadline = None if timeout_s is None else time.time() + timeout_s
        terminal = ("completed", "failed", "cancelled")
        last: dict | None = None
        while True:
            remaining = None if deadline is None \
                else max(0.1, deadline - time.time())
            try:
                last = self._stream_until_terminal(job_id, remaining)
            except (OSError, http.client.HTTPException):
                last = None
            if last is not None and last.get("state") in terminal:
                return last
            if deadline is not None and time.time() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still "
                    f"{(last or {}).get('state', 'unknown')} after "
                    f"{timeout_s:g}s")
            time.sleep(0.2)
            status = self.status(job_id)
            if status.get("state") in terminal:
                return status

    def _stream_until_terminal(self, job_id: str,
                               timeout_s: float | None) -> dict | None:
        terminal = ("completed", "failed", "cancelled")
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout_s)
        last = None
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 300:
                raise ServiceError(response.status,
                                   response.read()[:200].decode("latin-1"))
            for line in response:
                line = line.strip()
                if not line:
                    continue
                try:
                    last = json.loads(line.decode())
                except (UnicodeDecodeError, json.JSONDecodeError):
                    continue
                if last.get("state") in terminal:
                    break
        finally:
            conn.close()
        return last
