"""``repro serve``: an async job server over the flow machinery.

Clients POST job specs (one run, a sweep, a Monte-Carlo study) to
``/jobs`` and poll or stream the results; the scheduler executes them
through the exact runner/cache/single-flight stack the CLI and the
sweep scripts use, so concurrent jobs share stage work and results are
byte-identical to serial runs.  See ``docs/service.md``.
"""

from .client import DEFAULT_URL, URL_ENV, ReproClient, ServiceError
from .jobspec import JobSpec, JobSpecError, parse_jobspec
from .journal import JobJournal
from .scheduler import Job, Scheduler
from .server import ReproServer

__all__ = [
    "DEFAULT_URL",
    "URL_ENV",
    "Job",
    "JobJournal",
    "JobSpec",
    "JobSpecError",
    "ReproClient",
    "ReproServer",
    "Scheduler",
    "ServiceError",
    "parse_jobspec",
]
