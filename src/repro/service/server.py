"""A stdlib-only asyncio HTTP/1.1 front end for the scheduler.

Deliberately tiny: request-line + headers + Content-Length body, one
request per connection (every response carries ``Connection: close``),
JSON in and out.  No ``http.server``, no threads — every handler runs
on the same event loop that owns the scheduler, so route handlers can
touch scheduler state without locks.

Routes::

    GET  /healthz            liveness + queue depth
    GET  /stats              counters, pool and job-state breakdown
    GET  /jobs               job summaries (most recent last)
    POST /jobs               submit a spec -> 201 {"id": ...}
    GET  /jobs/<id>          full status including settled runs
    POST /jobs/<id>/cancel   cancel (running items finish)
    GET  /jobs/<id>/events   NDJSON snapshots until the job settles
    POST /shutdown           graceful stop
"""

from __future__ import annotations

import asyncio
import json

from .jobspec import JobSpecError
from .scheduler import TERMINAL, Scheduler

#: Largest accepted request body (a spec is a few KiB; 4 MiB is lots).
MAX_BODY_BYTES = 4 << 20
#: Largest accepted request line + header block.
MAX_HEAD_BYTES = 64 << 10

_REASONS = {200: "OK", 201: "Created", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            413: "Payload Too Large", 500: "Internal Server Error",
            503: "Service Unavailable"}


def _json_bytes(doc: dict) -> bytes:
    return (json.dumps(doc, sort_keys=True, separators=(",", ":"))
            + "\n").encode()


class HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ReproServer:
    """Bind, accept, route; owns one :class:`Scheduler`."""

    def __init__(self, scheduler: Scheduler, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._stopped = asyncio.Event()

    async def start(self) -> None:
        await self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.scheduler.stop()
        self._stopped.set()

    # -- plumbing ------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except HttpError as exc:
                await self._respond(writer, exc.status,
                                    {"error": str(exc)})
                return
            except (asyncio.IncompleteReadError, ConnectionError,
                    asyncio.LimitOverrunError, ValueError):
                return
            try:
                await self._route(writer, method, path, body)
            except HttpError as exc:
                await self._respond(writer, exc.status,
                                    {"error": str(exc)})
            except ConnectionError:
                pass
            except Exception as exc:  # route bug: report, don't wedge
                await self._respond(writer, 500, {
                    "error": f"{type(exc).__name__}: {exc}"})
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> tuple[str, str, bytes]:
        head = await reader.readuntil(b"\r\n\r\n")
        if len(head) > MAX_HEAD_BYTES:
            raise HttpError(413, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise HttpError(400, f"malformed request line {lines[0]!r}")
        method, path = parts[0].upper(), parts[1]
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise HttpError(400, "bad Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body over {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       doc: dict) -> None:
        payload = _json_bytes(doc)
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head + payload)
        await writer.drain()

    # -- routing -------------------------------------------------------------
    async def _route(self, writer, method: str, path: str,
                     body: bytes) -> None:
        sched = self.scheduler
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            await self._respond(writer, 200, {
                "ok": True,
                "jobs": len(sched.jobs),
                "queued_items": len(sched._heap),
                "workers": sched.workers,
            })
        elif path == "/stats" and method == "GET":
            await self._respond(writer, 200, sched.stats())
        elif path == "/jobs" and method == "GET":
            await self._respond(writer, 200, {
                "jobs": [job.to_dict(full=False)
                         for job in sched.jobs.values()]})
        elif path == "/jobs" and method == "POST":
            try:
                doc = json.loads(body.decode() or "null")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise HttpError(400, f"body is not JSON: {exc}")
            try:
                job = sched.submit(doc)
            except JobSpecError as exc:
                raise HttpError(400, str(exc))
            await self._respond(writer, 201, job.to_dict(full=False))
        elif path == "/shutdown" and method == "POST":
            await self._respond(writer, 200, {"ok": True})
            asyncio.get_running_loop().call_soon(
                lambda: asyncio.ensure_future(self.stop()))
        elif path.startswith("/jobs/"):
            await self._route_job(writer, method, path)
        else:
            raise HttpError(404 if method in ("GET", "POST") else 405,
                            f"no route for {method} {path}")

    def _job(self, job_id: str):
        job = self.scheduler.jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"no such job {job_id!r}")
        return job

    async def _route_job(self, writer, method: str, path: str) -> None:
        parts = path.split("/")  # ['', 'jobs', <id>, ...]
        if len(parts) == 3 and method == "GET":
            await self._respond(writer, 200, self._job(parts[2]).to_dict())
        elif len(parts) == 4 and parts[3] == "cancel" and method == "POST":
            self._job(parts[2])
            job = self.scheduler.cancel(parts[2])
            await self._respond(writer, 200, job.to_dict(full=False))
        elif len(parts) == 4 and parts[3] == "events" and method == "GET":
            await self._stream_events(writer, self._job(parts[2]))
        else:
            raise HttpError(404, f"no route for {method} {path}")

    async def _stream_events(self, writer, job) -> None:
        """NDJSON job snapshots: one line per change, close at terminal."""
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        seen = -1
        while True:
            if job.version != seen:
                seen = job.version
                writer.write(_json_bytes(job.to_dict()))
                await writer.drain()
                if job.state in TERMINAL:
                    return
            async with self.scheduler.changed:
                await self.scheduler.changed.wait_for(
                    lambda: job.version != seen)
