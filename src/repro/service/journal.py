"""The server's crash-safe job journal.

A :class:`~repro.core.journal.JsonlJournal` bound to one code version:
every accepted job, every settled run and every terminal state change
is an fsync'd line, so ``repro serve --resume`` after a SIGKILL
reconstructs the queue bit-for-bit — terminal jobs come back as
history, settled runs of interrupted jobs are *not* recomputed, and
only the genuinely unfinished items re-enter the scheduler.

The journal identity is the code fingerprint plus the kernel mode:
flow results are content-addressed by both, so a journal written by a
different code version (or under the other kernel) must not replay —
``begin`` detects the header mismatch and starts fresh.

Event grammar (one JSON object per line, after the header)::

    {"ev": "job",   "id": "j0001", "spec": {...}, "t": ...}
    {"ev": "run",   "job": "j0001", "index": 3, "record": {...}}
    {"ev": "state", "job": "j0001", "state": "completed"}
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..core.cache import code_fingerprint
from ..core.journal import JsonlJournal
from ..core.kernels import kernel_mode

#: Default journal filename (inside the cache directory).
DEFAULT_BASENAME = "service-journal.jsonl"


@dataclass
class ReplayedJob:
    """One job reconstructed from the journal, pre-scheduler."""

    id: str
    spec_doc: dict
    #: Settled run records by item index (journaled presentation dicts).
    records: dict[int, dict] = field(default_factory=dict)
    #: Terminal state from a ``state`` event, or "" if still open.
    state: str = ""
    submitted_s: float = 0.0


class JobJournal:
    """Append-only job log with :meth:`replay` for ``--resume``."""

    VERSION = 1

    def __init__(self, path: str | os.PathLike, resume: bool = True) -> None:
        self._journal = JsonlJournal(path, "serve", self.VERSION,
                                     resume=resume)
        self._resume = resume
        self._begun = False

    @property
    def path(self):
        return self._journal.path

    @staticmethod
    def identity() -> dict:
        return {"code": code_fingerprint(), "kernel": kernel_mode()}

    @staticmethod
    def _accept(payload: dict) -> bool:
        ev = payload.get("ev")
        if ev == "job":
            return isinstance(payload.get("id"), str) \
                and isinstance(payload.get("spec"), dict)
        if ev == "run":
            return isinstance(payload.get("job"), str) \
                and isinstance(payload.get("index"), int) \
                and isinstance(payload.get("record"), dict)
        if ev == "state":
            return isinstance(payload.get("job"), str) \
                and isinstance(payload.get("state"), str)
        return True

    def replay(self) -> list[ReplayedJob]:
        """Open the journal; returns the jobs it held, in submit order.

        Events for unknown job ids (a torn ``job`` line lost to a
        crash while later lines survived fsync reordering cannot
        actually happen — appends are fsync'd in order — but be
        defensive) are dropped.
        """
        events = self._journal.begin(self.identity(), accept=self._accept)
        self._begun = True
        jobs: dict[str, ReplayedJob] = {}
        for payload in events:
            ev = payload.get("ev")
            if ev == "job":
                jid = payload["id"]
                jobs[jid] = ReplayedJob(
                    id=jid, spec_doc=payload["spec"],
                    submitted_s=float(payload.get("t", 0.0)))
            elif ev == "run":
                job = jobs.get(payload["job"])
                if job is not None:
                    job.records[payload["index"]] = payload["record"]
            elif ev == "state":
                job = jobs.get(payload["job"])
                if job is not None:
                    job.state = payload["state"]
        return list(jobs.values())

    # -- append API (all fsync'd; durable once they return) -----------------
    def job_submitted(self, job_id: str, spec_doc: dict,
                      submitted_s: float) -> None:
        self._append({"ev": "job", "id": job_id, "spec": spec_doc,
                      "t": submitted_s})

    def run_settled(self, job_id: str, index: int, record: dict) -> None:
        self._append({"ev": "run", "job": job_id, "index": index,
                      "record": record})

    def job_state(self, job_id: str, state: str) -> None:
        self._append({"ev": "state", "job": job_id, "state": state})

    def _append(self, event: dict) -> None:
        if not self._begun:
            self.replay()
        self._journal.append(event)

    def close(self) -> None:
        self._journal.close()
