"""Priority scheduler and worker pool behind ``repro serve``.

One asyncio dispatch loop owns a priority heap of run items (higher
``priority`` first, FIFO within a priority, items of one job in
order).  Items are settled through a strict cheapest-first ladder:

1. **result cache** — the content-addressed
   :class:`~repro.core.cache.FlowCache` is consulted at dispatch time,
   so anything any previous run/sweep/job computed is served for free;
2. **in-flight dedup** — if another job's identical item (same
   content-addressed result key) is already executing, this item
   *waits on its future* instead of consuming a worker, and both jobs
   settle from one computation;
3. **execute** — a worker slot runs the item through the runner's own
   :func:`~repro.core.runner._timed_run` in a process pool, with the
   same retry/timeout/quarantine policy as ``SweepRunner``.  Workers
   build a :class:`~repro.core.stages.StageStore` on the shared cache,
   so *partially* overlapping items (e.g. two layer-split sweeps that
   share the placement prefix) still single-flight per stage across
   concurrent jobs — the cross-job generalization of PR 8's
   cross-process stage dedup.

Every settled run and terminal job transition is journaled (fsync'd)
before clients can observe it, which is what makes kill -9 + ``repro
serve --resume`` replay-exact.  All mutation happens on the event
loop; workers only compute.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from concurrent import futures
from dataclasses import dataclass, field

from ..core import telemetry
from ..core.cache import FlowCache, cache_key, netlist_fingerprint
from ..core.io import result_to_dict
from ..core.ppa import FailedRun
from ..core.runner import (
    RetryPolicy,
    _failed_from_transient,
    _timed_run,
    _TransientFailure,
)
from .jobspec import DesignSpec, JobSpec, JobSpecError, McParams, parse_jobspec
from .journal import JobJournal

#: Job lifecycle states.
QUEUED, RUNNING, COMPLETED, FAILED, CANCELLED = \
    "queued", "running", "completed", "failed", "cancelled"
TERMINAL = (COMPLETED, FAILED, CANCELLED)

#: How each settled run was obtained.
VIA_EXECUTED, VIA_CACHE, VIA_DEDUP, VIA_RESUMED = \
    "executed", "cache", "dedup", "resumed"


def _mc_worker(factory, config, mc: McParams, cache: FlowCache | None,
               jobs: int = 1) -> dict:
    # Module-level so the process pool can pickle it.  One MC study is
    # a single scheduler item; its internal sample fan-out stays
    # bounded (``jobs``) so MC jobs cannot starve flow jobs of workers.
    from ..variation import VariationModel, run_monte_carlo, signoff
    model = VariationModel.for_arch(
        config.arch, overlay_sigma_nm=mc.overlay_sigma_nm,
        cd_sigma=mc.cd_sigma, rc_sigma=mc.rc_sigma)
    study = run_monte_carlo(factory, config, model=model,
                            samples=mc.samples, seed=mc.seed or None,
                            jobs=jobs, cache=cache)
    report = signoff(study).to_dict()
    report["failed_samples"] = len(study.failed)
    report["nominal_cached"] = study.nominal_cached
    return report


@dataclass
class Job:
    """One accepted job and everything a status response needs."""

    id: str
    spec: JobSpec
    state: str = QUEUED
    #: Settled presentation records by item index.
    records: dict[int, dict] = field(default_factory=dict)
    submitted_s: float = 0.0
    #: Bumped on every observable change; event streams wait on it.
    version: int = 0
    error: str = ""

    @property
    def done(self) -> int:
        return len(self.records)

    @property
    def total(self) -> int:
        return len(self.spec.items)

    def to_dict(self, full: bool = True) -> dict:
        doc = {
            "id": self.id,
            "kind": self.spec.kind,
            "tag": self.spec.tag,
            "priority": self.spec.priority,
            "state": self.state,
            "done": self.done,
            "total": self.total,
            "fingerprint": self.spec.fingerprint(),
            "submitted_s": self.submitted_s,
            "version": self.version,
        }
        if self.error:
            doc["error"] = self.error
        if full:
            doc["runs"] = [self.records.get(i) for i in range(self.total)]
        return doc


class Scheduler:
    """Owns the queue, the worker pool, the journal and the counters.

    Construction is cheap and loop-free; :meth:`start` must run on the
    event loop before the first :meth:`submit`.
    """

    def __init__(self, cache: FlowCache | None = None, workers: int = 2,
                 journal: JobJournal | None = None,
                 retry: RetryPolicy | None = None,
                 max_runs: int = 256) -> None:
        self.cache = cache
        self.workers = max(1, workers)
        self.journal = journal
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        self.max_runs = max_runs
        self.jobs: dict[str, Job] = {}
        self.counters: dict[str, float] = {}
        self.started_s = time.time()
        self._seq = itertools.count(1)
        self._order = itertools.count()
        self._heap: list[tuple[int, int, int, str]] = []
        self._job_seq: dict[str, int] = {}
        self._inflight: dict[str, asyncio.Future] = {}
        self._fingerprints: dict[DesignSpec, str] = {}
        self._tasks: set[asyncio.Task] = set()
        self._pool: futures.Executor | None = None
        self._pool_kind = "none"
        self._stopping = False

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> None:
        """Bind to the running loop, build the pool, replay the journal."""
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self.changed = asyncio.Condition()
        self._idle = self.workers
        self._make_pool()
        if self.journal is not None:
            self._replay()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def stop(self) -> None:
        """Drain nothing — cancel the dispatcher and the pool."""
        self._stopping = True
        self._dispatcher.cancel()
        for task in list(self._tasks):
            task.cancel()
        await asyncio.gather(self._dispatcher, *self._tasks,
                             return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        if self.journal is not None:
            self.journal.close()

    def _make_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        try:
            self._pool = futures.ProcessPoolExecutor(
                max_workers=self.workers)
            self._pool_kind = "process"
        except (OSError, ImportError):
            # No usable multiprocessing on this host: threads still
            # give correct (if GIL-bound) service; the per-run alarm
            # degrades to the parent-side timeout in _timed_run.
            self._pool = futures.ThreadPoolExecutor(
                max_workers=self.workers)
            self._pool_kind = "thread"

    def _replay(self) -> None:
        """Rebuild jobs from the journal; requeue the unfinished."""
        for replayed in self.journal.replay():
            try:
                spec = parse_jobspec(replayed.spec_doc,
                                     max_runs=self.max_runs,
                                     default_retry=self.retry)
            except JobSpecError as exc:
                # The identity header makes this near-impossible (same
                # code replays the same expansion), but never crash a
                # resume over one bad line.
                job = Job(id=replayed.id,
                          spec=JobSpec(kind="run", design=DesignSpec(),
                                       items=(), raw=replayed.spec_doc),
                          state=FAILED,
                          error=f"spec no longer parses: {exc}")
                self.jobs[job.id] = job
                continue
            job = Job(id=replayed.id, spec=spec,
                      submitted_s=replayed.submitted_s)
            job.records = {i: rec for i, rec in replayed.records.items()
                           if 0 <= i < job.total}
            self._count("service.runs.resumed", len(job.records))
            if replayed.state in TERMINAL:
                job.state = replayed.state
            elif job.done >= job.total:
                # Crash landed between the last run line and the state
                # line: finish the transition now (journaled again).
                job.state = COMPLETED if self._all_ok(job) else FAILED
                self.journal.job_state(job.id, job.state)
            else:
                job.state = QUEUED
                self._count("service.jobs.resumed")
                self._enqueue(job, only_missing=True)
            self.jobs[job.id] = job
        # Seed the id counter past everything replayed.
        used = [int(jid[1:]) for jid in self.jobs
                if jid.startswith("j") and jid[1:].isdigit()]
        self._seq = itertools.count(max(used, default=0) + 1)

    # -- submission / query (event-loop only) --------------------------------
    def submit(self, doc: dict) -> Job:
        """Validate, journal and enqueue one client document."""
        if self._stopping:
            raise JobSpecError("server is shutting down")
        spec = parse_jobspec(doc, max_runs=self.max_runs,
                             default_retry=self.retry)
        job = Job(id=f"j{next(self._seq):04d}", spec=spec,
                  submitted_s=time.time())
        self.jobs[job.id] = job
        if self.journal is not None:
            self.journal.job_submitted(job.id, spec.raw, job.submitted_s)
        self._count("service.jobs.submitted")
        self._enqueue(job)
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a job; already-running items finish but stop counting."""
        job = self.jobs[job_id]
        if job.state not in TERMINAL:
            job.state = CANCELLED
            if self.journal is not None:
                self.journal.job_state(job.id, CANCELLED)
            self._count("service.jobs.cancelled")
            self._bump(job)
        return job

    def stats(self) -> dict:
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "workers": self.workers,
            "pool": self._pool_kind,
            "idle": self._idle,
            "queued_items": len(self._heap),
            "inflight_keys": len(self._inflight),
            "runs_settled": telemetry.counter_total(self.counters,
                                                    "service.runs"),
            "jobs": states,
            "uptime_s": round(time.time() - self.started_s, 3),
            "counters": {k: self.counters[k]
                         for k in sorted(self.counters)},
        }

    # -- dispatch ------------------------------------------------------------
    def _enqueue(self, job: Job, only_missing: bool = False) -> None:
        seq = self._job_seq.setdefault(job.id, next(self._order))
        for index in range(job.total):
            if only_missing and index in job.records:
                continue
            heapq.heappush(self._heap,
                           (-job.spec.priority, seq, index, job.id))
        self._wake.set()

    def _fingerprint(self, design: DesignSpec) -> str:
        fp = self._fingerprints.get(design)
        if fp is None:
            fp = netlist_fingerprint(design())
            self._fingerprints[design] = fp
        return fp

    def _result_key(self, job: Job, index: int) -> str:
        config = job.spec.items[index].config
        version = self.cache.version if self.cache is not None else None
        key = cache_key(config, self._fingerprint(job.spec.design),
                        version=version)
        if job.spec.kind == "mc":
            # MC studies are not in the result cache; give them their
            # own in-flight dedup namespace.
            key = f"mc-{job.spec.mc.samples}-{job.spec.mc.seed}-{key}"
        return key

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._heap:
                _prio, _seq, index, job_id = self._heap[0]
                job = self.jobs.get(job_id)
                if job is None or job.state == CANCELLED \
                        or index in job.records:
                    heapq.heappop(self._heap)
                    continue
                key = self._result_key(job, index)
                if key in self._inflight:
                    heapq.heappop(self._heap)
                    self._spawn(self._await_inflight(job, index, key))
                    continue
                hit = None
                if job.spec.kind != "mc" and self.cache is not None:
                    hit = self.cache.get(key)
                if hit is not None:
                    heapq.heappop(self._heap)
                    self._settle(job, index, self._record(
                        job, index, hit, 0.0, VIA_CACHE))
                    continue
                if self._idle <= 0:
                    break  # strict priority: nothing jumps the queue
                heapq.heappop(self._heap)
                self._idle -= 1
                self._inflight[key] = self._loop.create_future()
                if job.state == QUEUED:
                    job.state = RUNNING
                    self._bump(job)
                self._spawn(self._execute(job, index, key))

    def _spawn(self, coro) -> None:
        task = asyncio.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _await_inflight(self, job: Job, index: int, key: str) -> None:
        record = dict(await self._inflight[key])
        record["via"] = VIA_DEDUP
        record["label"] = job.spec.items[index].label
        self._settle(job, index, record)

    async def _execute(self, job: Job, index: int, key: str) -> None:
        """Run one item on a worker with the full retry policy."""
        spec, config = job.spec, job.spec.items[index].config
        retry = spec.retry
        attempt, delay = 1, 0.0
        record: dict | None = None
        try:
            while True:
                try:
                    if spec.kind == "mc":
                        report = await self._loop.run_in_executor(
                            self._pool, _mc_worker, spec.design, config,
                            spec.mc, self.cache)
                        record = {
                            "label": spec.items[index].label, "ok": True,
                            "result": report, "wall_s": 0.0,
                            "via": VIA_EXECUTED, "attempts": attempt,
                        }
                        break
                    outcome = await self._loop.run_in_executor(
                        self._pool, _timed_run, spec.design, config,
                        False, retry.timeout_s, attempt, delay,
                        self.cache)
                except futures.process.BrokenProcessPool:
                    self._make_pool()
                    outcome = (_TransientFailure(
                        stage="", cause="WorkerDied",
                        message="worker process died"), 0.0, None, {})
                except (OSError, RuntimeError) as exc:
                    outcome = (_TransientFailure(
                        stage="", cause=type(exc).__name__,
                        message=str(exc)), 0.0, None, {})
                result, wall = outcome[0], outcome[1]
                if len(outcome) > 3 and outcome[3]:
                    telemetry.merge_counters(self.counters, outcome[3])
                if isinstance(result, _TransientFailure):
                    if result.cause == "RunTimeout":
                        self._count("service.runs.timeouts")
                    if attempt < retry.max_attempts:
                        self._count("service.runs.retries")
                        delay = retry.backoff_s(attempt)
                        attempt += 1
                        continue
                    result = _failed_from_transient(config, result, attempt)
                if self.cache is not None and not (
                        isinstance(result, FailedRun)
                        and result.quarantined):
                    self.cache.put(key, result)
                if isinstance(result, FailedRun) and result.quarantined:
                    self._count("service.runs.quarantined")
                record = self._record(job, index, result, wall,
                                      VIA_EXECUTED, attempts=attempt)
                break
        except asyncio.CancelledError:
            record = None
            raise
        except Exception as exc:  # never lose a worker slot to a bug
            record = {
                "label": spec.items[index].label, "ok": False,
                "result": {"failure": f"{type(exc).__name__}: {exc}"},
                "wall_s": 0.0, "via": VIA_EXECUTED, "attempts": attempt,
            }
        finally:
            self._idle += 1
            future = self._inflight.pop(key, None)
            if future is not None and not future.done():
                if record is None:
                    future.cancel()
                else:
                    future.set_result(record)
            self._wake.set()
        self._settle(job, index, record)

    # -- settlement ----------------------------------------------------------
    def _record(self, job: Job, index: int, result, wall_s: float,
                via: str, attempts: int = 1) -> dict:
        return {
            "label": job.spec.items[index].label,
            "ok": not isinstance(result, FailedRun),
            "result": result_to_dict(result),
            "wall_s": round(wall_s, 6),
            "via": via,
            "attempts": attempts,
        }

    @staticmethod
    def _all_ok(job: Job) -> bool:
        return all(rec.get("ok") for rec in job.records.values())

    def _settle(self, job: Job, index: int, record: dict) -> None:
        if index in job.records:
            return  # cancelled-then-requeued duplicates settle once
        job.records[index] = record
        self._count(f"service.runs.{record['via']}")
        if self.journal is not None:
            self.journal.run_settled(job.id, index, record)
        if job.state not in TERMINAL and job.done >= job.total:
            job.state = COMPLETED if self._all_ok(job) else FAILED
            if self.journal is not None:
                self.journal.job_state(job.id, job.state)
            self._count(f"service.jobs.{job.state}")
        self._bump(job)

    def _bump(self, job: Job) -> None:
        job.version += 1
        self._spawn(self._notify())

    async def _notify(self) -> None:
        async with self.changed:
            self.changed.notify_all()

    def _count(self, name: str, value: float = 1) -> None:
        if value:
            self.counters[name] = self.counters.get(name, 0) + value
