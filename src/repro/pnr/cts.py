"""Clock tree synthesis: buffered recursive bisection, single- or dual-sided.

The paper uses the conventional frontside CTS stage unchanged (Section
III.C); the companion work by the same group — Jiang et al., "A
Systematic Approach for Multi-objective Double-side Clock Tree
Synthesis" (arXiv:2503.12512) — shows that on a dual-sided wafer the
clock distribution itself should exploit both metal stacks.  This
module implements both:

* **Topology** (both modes): sinks are recursively bisected along the
  wider dimension until clusters fit a leaf buffer's fanout budget,
  buffers are inserted at cluster centroids, and upper levels are
  buffered the same way until a single root buffer remains.  The tree
  is materialized as real instances and nets, so routing, RC
  extraction, STA (skew, insertion delay) and power all see it.

* **Side partitioning** (``mode="dual"``): every tree net (a clock
  buffer's output) is assigned to the frontside (FM*) or backside
  (BM*) metal stack.  Candidate partitions assign the top ``k`` tree
  levels — the long trunk wires — to the backside, for every ``k``,
  and are scored with a multi-objective cost over (a) estimated global
  skew, (b) switched clock wire capacitance (the clock-power proxy),
  and (c) deviation from the requested backside wirelength fraction.
  The winning assignment is recorded in the report's ``net_sides`` and
  honored by routing (``decompose_nets`` side overrides), so backside
  clock wires really land on BM* layers in the merged DEF, pick up BM
  RC in extraction, and inherit the FFET overlay sensitivity in the
  Monte-Carlo variation model.

The estimation delay model is deliberately independent of the
configured routing-layer counts (it prices wires at the fixed
:data:`CLOCK_ESTIMATION_LEVEL` of the full Table II stackup), so the
CTS stage's artifact is a pure function of its declared config slice
and layer-split sweeps still replay the shared placement+CTS prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cells import Library
from ..netlist import Netlist
from ..tech import Side, TechNode
from .geometry import Point
from .placement import Placement

LEAF_BUFFER = "CLKBUFD4"
TRUNK_BUFFER = "CLKBUFD8"

#: Metal level used to price clock wires in the estimation model, per
#: side.  Fixed against the *full* Table II stackup — never the
#: configured ``front_layers``/``back_layers`` limits, which first
#: enter the stage-key chain at routing — so the CTS artifact depends
#: only on the CTS config slice.
CLOCK_ESTIMATION_LEVEL = 6
#: Intrinsic stage delay of one clock buffer in the estimation model, ps.
BUFFER_DELAY_PS = 12.0

#: Multi-objective weights of the dual-sided partitioner: estimated
#: skew, switched clock wire capacitance (power proxy), and deviation
#: from the requested backside wirelength fraction.
SKEW_WEIGHT = 1.0
POWER_WEIGHT = 0.5
FRACTION_WEIGHT = 4.0

#: Valid values of the ``mode`` argument / ``FlowConfig.cts_mode``.
CTS_MODES = ("single", "dual")


@dataclass(frozen=True)
class ClockTreeReport:
    """Summary of the synthesized tree, with per-side breakdowns."""

    sinks: int
    buffers: int
    levels: int
    root_buffer: str
    #: ``"single"`` (all-frontside) or ``"dual"`` (partitioned).
    mode: str = "single"
    #: Buffers whose output net routes on each side.
    front_buffers: int = 0
    back_buffers: int = 0
    #: Estimated (star-model) clock wirelength per side, nm.
    front_wirelength_nm: float = 0.0
    back_wirelength_nm: float = 0.0
    #: Estimated global skew and insertion-delay extremes, ps.
    skew_est_ps: float = 0.0
    max_insertion_ps: float = 0.0
    min_insertion_ps: float = 0.0
    #: Estimated insertion delay per sink, ``(instance, pin) -> ps``.
    sink_insertion_ps: dict = field(default_factory=dict)
    #: Side assignment per tree net, ``net -> "front" | "back"``.
    #: Routing honors the ``"back"`` entries via decomposition overrides.
    net_sides: dict = field(default_factory=dict)

    @property
    def total_wirelength_nm(self) -> float:
        return self.front_wirelength_nm + self.back_wirelength_nm

    @property
    def back_fraction(self) -> float:
        """Share of the estimated clock wirelength on backside metal."""
        total = self.total_wirelength_nm
        return self.back_wirelength_nm / total if total > 0 else 0.0


def emit_cts_gauges(tracer, report: ClockTreeReport) -> None:
    """Publish the ``cts.*`` gauges (docs/observability.md) for one tree.

    Called both when the CTS stage executes and when it is replayed
    from the stage store, so traces always carry the tree telemetry.
    """
    tracer.gauge("cts.sinks", report.sinks)
    tracer.gauge("cts.buffers", report.buffers)
    tracer.gauge("cts.levels", report.levels)
    tracer.gauge("cts.front_buffers", report.front_buffers)
    tracer.gauge("cts.back_buffers", report.back_buffers)
    tracer.gauge("cts.front_wirelength_nm", report.front_wirelength_nm)
    tracer.gauge("cts.back_wirelength_nm", report.back_wirelength_nm)
    tracer.gauge("cts.back_fraction", report.back_fraction)
    tracer.gauge("cts.skew_est_ps", report.skew_est_ps)


def clock_layer_rc(tech: TechNode, side: Side) -> tuple[float, float]:
    """(resistance kOhm/um, capacitance fF/um) of the clock layer on
    ``side`` — the fixed :data:`CLOCK_ESTIMATION_LEVEL` metal."""
    layer = tech.stackup.metal(side, CLOCK_ESTIMATION_LEVEL)
    return layer.resistance_kohm_per_um, layer.capacitance_ff_per_um


def clock_wire_delay_ps(tech: TechNode, side: Side, length_nm: float,
                        sink_cap_ff: float = 0.0) -> float:
    """First-order delay of one clock tree edge on ``side``, ps.

    Distributed-wire Elmore (``0.5 R C L^2``) plus the wire resistance
    driving the sink pin capacitance.
    """
    r, c = clock_layer_rc(tech, side)
    length_um = length_nm / 1000.0
    return 0.5 * r * c * length_um * length_um + r * length_um * sink_cap_ff


def _source_point(netlist: Netlist, placement: Placement,
                  net_name: str) -> Point | None:
    """Where a clock (sub)net is driven from: buffer location or IO pad."""
    driver = netlist.nets[net_name].driver
    if driver is not None:
        return placement.locations[driver[0]]
    return placement.io_pins.get(net_name)


def _edge_length_nm(src: Point | None, dst: Point) -> float:
    if src is None:
        return 0.0
    return abs(src.x_nm - dst.x_nm) + abs(src.y_nm - dst.y_nm)


def estimate_insertion_delays(netlist: Netlist, library: Library,
                              placement: Placement, clock_net: str = "clk",
                              net_sides: dict | None = None
                              ) -> dict[tuple[str, str], float]:
    """Estimated insertion delay to every sequential clock sink, ps.

    Walks the buffered tree from ``clock_net`` down, accumulating
    :data:`BUFFER_DELAY_PS` per buffer stage and
    :func:`clock_wire_delay_ps` per tree edge, pricing each net on the
    side ``net_sides`` assigns it (frontside by default).  This is the
    model the dual-sided partitioner optimizes and the report's
    ``skew_est_ps`` is derived from; signoff skew still comes from STA
    on the extracted parasitics.
    """
    tech = library.tech
    sides = net_sides or {}
    arrivals: dict[tuple[str, str], float] = {}
    frontier: list[tuple[str, float]] = [(clock_net, 0.0)]
    while frontier:
        net_name, at = frontier.pop()
        side = Side.BACK if sides.get(net_name) == "back" else Side.FRONT
        src = _source_point(netlist, placement, net_name)
        for inst_name, pin_name in netlist.nets[net_name].sinks:
            inst = netlist.instances[inst_name]
            master = library[inst.master]
            length = _edge_length_nm(src, placement.locations[inst_name])
            t = at + clock_wire_delay_ps(tech, side, length,
                                         master.pin(pin_name).cap_ff)
            if master.is_sequential:
                arrivals[(inst_name, pin_name)] = t
            else:
                out_net = inst.connections[master.output.name]
                frontier.append((out_net, t + BUFFER_DELAY_PS))
    return arrivals


def _tree_nets(netlist: Netlist, placement: Placement, clock_net: str,
               buffers: dict[str, int]) -> list[tuple[str, int, float]]:
    """Tree nets as (net, depth of driving buffer, star wirelength nm).

    Depth 1 is the root buffer's output; ``clock_net`` itself (the
    primary-input stub into the root buffer) is not listed — it always
    stays frontside.
    """
    rows: list[tuple[str, int, float]] = []
    for buf_name, depth in buffers.items():
        out_net = netlist.instances[buf_name].connections["Z"]
        src = placement.locations[buf_name]
        length = sum(
            _edge_length_nm(src, placement.locations[inst])
            for inst, _pin in netlist.nets[out_net].sinks
        )
        rows.append((out_net, depth, length))
    return rows


def _partition_sides(netlist: Netlist, library: Library,
                     placement: Placement, clock_net: str,
                     buffers: dict[str, int], levels: int,
                     back_fraction: float) -> dict[str, str]:
    """Choose a front/back assignment for every tree net.

    Candidates assign the top ``k`` levels (the trunk, whose wires are
    the longest and benefit most from the wide backside metal) to BM*
    for ``k = 0 .. levels`` and are scored by the weighted-sum cost
    described in the module docstring.  Deterministic: ties keep the
    smallest ``k``.
    """
    rows = _tree_nets(netlist, placement, clock_net, buffers)
    total_len = sum(length for _net, _depth, length in rows)

    def candidate(k: int) -> dict[str, str]:
        return {net: ("back" if depth <= k else "front")
                for net, depth, _length in rows}

    def objectives(sides: dict[str, str]) -> tuple[float, float, float]:
        delays = estimate_insertion_delays(netlist, library, placement,
                                           clock_net, net_sides=sides)
        spread = (max(delays.values()) - min(delays.values())) \
            if delays else 0.0
        cap = 0.0
        back_len = 0.0
        for net, _depth, length in rows:
            side = Side.BACK if sides[net] == "back" else Side.FRONT
            _r, c = clock_layer_rc(library.tech, side)
            cap += c * length / 1000.0
            if sides[net] == "back":
                back_len += length
        frac = back_len / total_len if total_len > 0 else 0.0
        return spread, cap, frac

    skew0, cap0, _frac0 = objectives(candidate(0))
    skew_ref = max(skew0, 1.0)
    cap_ref = max(cap0, 1e-9)

    best_sides: dict[str, str] = candidate(0)
    best_cost = float("inf")
    for k in range(levels + 1):
        sides = candidate(k)
        skew, cap, frac = objectives(sides)
        cost = (SKEW_WEIGHT * skew / skew_ref
                + POWER_WEIGHT * cap / cap_ref
                + FRACTION_WEIGHT * abs(frac - back_fraction))
        if cost < best_cost:
            best_cost = cost
            best_sides = sides
    return best_sides


def synthesize_clock_tree(netlist: Netlist, library: Library,
                          placement: Placement, clock_net: str = "clk",
                          max_fanout: int = 16, mode: str = "single",
                          back_fraction: float = 0.5) -> ClockTreeReport:
    """Build the buffered clock tree in place.

    Modifies ``netlist`` (buffer instances, new clock subnets) and
    ``placement`` (buffer locations at cluster centroids; the flow
    re-legalizes afterwards).  ``mode="dual"`` additionally partitions
    the tree nets between front and back metal (see the module
    docstring); the assignment is returned in the report's
    ``net_sides`` for routing to honor.  Returns a summary report.
    """
    if mode not in CTS_MODES:
        raise ValueError(f"unknown CTS mode {mode!r} (expected one of "
                         f"{CTS_MODES})")
    if clock_net not in netlist.nets:
        raise KeyError(f"no clock net {clock_net!r}")
    root_net = netlist.nets[clock_net]
    sinks = list(root_net.sinks)
    if not sinks:
        raise ValueError(f"clock net {clock_net!r} has no sinks")

    counter = {"buf": 0, "net": 0, "levels": 0}
    #: Buffer name -> depth below the root (root buffer = 1), filled in
    #: bottom-up during construction and rebased afterwards.
    subtree_height: dict[str, int] = {}

    def fresh_buffer() -> str:
        counter["buf"] += 1
        return f"ctsbuf_{counter['buf']}"

    def fresh_net() -> str:
        counter["net"] += 1
        return f"ctsnet_{counter['net']}"

    def centroid(points: list[Point]) -> Point:
        n = len(points)
        return Point(sum(p.x_nm for p in points) / n,
                     sum(p.y_nm for p in points) / n)

    def build(cluster: list[tuple[str, str]]) -> tuple[str, Point, int]:
        """Insert buffers driving ``cluster``; returns (buffer, loc, depth)."""
        points = [placement.locations[inst] for inst, _pin in cluster]
        if len(cluster) <= max_fanout:
            buf_name = fresh_buffer()
            out_net = fresh_net()
            loc = centroid(points)
            netlist.add_instance(buf_name, LEAF_BUFFER,
                                 {"A": fresh_net(), "Z": out_net})
            for inst, pin in cluster:
                netlist.instances[inst].connections[pin] = out_net
            placement.locations[buf_name] = loc
            subtree_height[buf_name] = 1
            return buf_name, loc, 1

        # Split along the wider dimension at the median.
        xs = [p.x_nm for p in points]
        ys = [p.y_nm for p in points]
        horizontal = (max(xs) - min(xs)) >= (max(ys) - min(ys))
        key = (lambda item: placement.locations[item[0]].x_nm) if horizontal \
            else (lambda item: placement.locations[item[0]].y_nm)
        ordered = sorted(cluster, key=key)
        half = len(ordered) // 2
        children = [build(ordered[:half]), build(ordered[half:])]

        buf_name = fresh_buffer()
        out_net = fresh_net()
        loc = centroid([c[1] for c in children])
        netlist.add_instance(buf_name, TRUNK_BUFFER,
                             {"A": fresh_net(), "Z": out_net})
        for child_buf, _loc, _depth in children:
            netlist.instances[child_buf].connections["A"] = out_net
        placement.locations[buf_name] = loc
        depth = 1 + max(c[2] for c in children)
        subtree_height[buf_name] = depth
        return buf_name, loc, depth

    root_buf, _root_loc, depth = build(sinks)
    counter["levels"] = depth
    netlist.instances[root_buf].connections["A"] = clock_net

    # Rebind so drivers/sinks reflect the rewired tree.
    netlist.bind(library)

    # Depth from the root: the root buffer carries the full subtree
    # height, so depth = levels - height + 1.
    buffer_depths = {name: depth - height + 1
                     for name, height in subtree_height.items()}

    if mode == "dual":
        net_sides = _partition_sides(netlist, library, placement, clock_net,
                                     buffer_depths, depth, back_fraction)
    else:
        net_sides = {netlist.instances[name].connections["Z"]: "front"
                     for name in buffer_depths}

    front_wl = back_wl = 0.0
    front_bufs = back_bufs = 0
    for buf_name in buffer_depths:
        out_net = netlist.instances[buf_name].connections["Z"]
        src = placement.locations[buf_name]
        length = sum(
            _edge_length_nm(src, placement.locations[inst])
            for inst, _pin in netlist.nets[out_net].sinks
        )
        if net_sides.get(out_net) == "back":
            back_wl += length
            back_bufs += 1
        else:
            front_wl += length
            front_bufs += 1

    delays = estimate_insertion_delays(netlist, library, placement,
                                       clock_net, net_sides=net_sides)
    max_ins = max(delays.values()) if delays else 0.0
    min_ins = min(delays.values()) if delays else 0.0

    report = ClockTreeReport(
        sinks=len(sinks),
        buffers=counter["buf"],
        levels=counter["levels"],
        root_buffer=root_buf,
        mode=mode,
        front_buffers=front_bufs,
        back_buffers=back_bufs,
        front_wirelength_nm=front_wl,
        back_wirelength_nm=back_wl,
        skew_est_ps=max_ins - min_ins,
        max_insertion_ps=max_ins,
        min_insertion_ps=min_ins,
        sink_insertion_ps=delays,
        net_sides=net_sides,
    )
    from ..core.telemetry import current_tracer
    emit_cts_gauges(current_tracer(), report)
    return report
