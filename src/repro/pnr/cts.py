"""Clock tree synthesis: buffered recursive bisection (H-tree style).

The paper uses the conventional CTS stage unchanged (Section III.C); we
implement a standard geometric clustering tree: sinks are recursively
bisected along the wider dimension until clusters fit a leaf buffer's
fanout budget, buffers are inserted at cluster centroids, and upper
levels are buffered the same way until a single root buffer remains.
The tree is materialized as real instances and nets, so routing, RC
extraction, STA (skew, insertion delay) and power all see it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cells import Library
from ..netlist import Netlist
from .geometry import Point
from .placement import Placement

LEAF_BUFFER = "CLKBUFD4"
TRUNK_BUFFER = "CLKBUFD8"


@dataclass(frozen=True)
class ClockTreeReport:
    """Summary of the synthesized tree."""

    sinks: int
    buffers: int
    levels: int
    root_buffer: str


def synthesize_clock_tree(netlist: Netlist, library: Library,
                          placement: Placement, clock_net: str = "clk",
                          max_fanout: int = 16) -> ClockTreeReport:
    """Build the buffered clock tree in place.

    Modifies ``netlist`` (buffer instances, new clock subnets) and
    ``placement`` (buffer locations at cluster centroids; the flow
    re-legalizes afterwards).  Returns a summary report.
    """
    if clock_net not in netlist.nets:
        raise KeyError(f"no clock net {clock_net!r}")
    root_net = netlist.nets[clock_net]
    sinks = list(root_net.sinks)
    if not sinks:
        raise ValueError(f"clock net {clock_net!r} has no sinks")

    counter = {"buf": 0, "net": 0, "levels": 0}

    def fresh_buffer() -> str:
        counter["buf"] += 1
        return f"ctsbuf_{counter['buf']}"

    def fresh_net() -> str:
        counter["net"] += 1
        return f"ctsnet_{counter['net']}"

    def centroid(points: list[Point]) -> Point:
        n = len(points)
        return Point(sum(p.x_nm for p in points) / n,
                     sum(p.y_nm for p in points) / n)

    def build(cluster: list[tuple[str, str]]) -> tuple[str, Point, int]:
        """Insert buffers driving ``cluster``; returns (buffer, loc, depth)."""
        points = [placement.locations[inst] for inst, _pin in cluster]
        if len(cluster) <= max_fanout:
            buf_name = fresh_buffer()
            out_net = fresh_net()
            loc = centroid(points)
            netlist.add_instance(buf_name, LEAF_BUFFER,
                                 {"A": fresh_net(), "Z": out_net})
            for inst, pin in cluster:
                netlist.instances[inst].connections[pin] = out_net
            placement.locations[buf_name] = loc
            return buf_name, loc, 1

        # Split along the wider dimension at the median.
        xs = [p.x_nm for p in points]
        ys = [p.y_nm for p in points]
        horizontal = (max(xs) - min(xs)) >= (max(ys) - min(ys))
        key = (lambda item: placement.locations[item[0]].x_nm) if horizontal \
            else (lambda item: placement.locations[item[0]].y_nm)
        ordered = sorted(cluster, key=key)
        half = len(ordered) // 2
        children = [build(ordered[:half]), build(ordered[half:])]

        buf_name = fresh_buffer()
        out_net = fresh_net()
        loc = centroid([c[1] for c in children])
        netlist.add_instance(buf_name, TRUNK_BUFFER,
                             {"A": fresh_net(), "Z": out_net})
        for child_buf, _loc, _depth in children:
            netlist.instances[child_buf].connections["A"] = out_net
        placement.locations[buf_name] = loc
        return buf_name, loc, 1 + max(c[2] for c in children)

    root_buf, _root_loc, depth = build(sinks)
    counter["levels"] = depth
    netlist.instances[root_buf].connections["A"] = clock_net

    # Rebind so drivers/sinks reflect the rewired tree.
    netlist.bind(library)
    report = ClockTreeReport(
        sinks=len(sinks),
        buffers=counter["buf"],
        levels=counter["levels"],
        root_buffer=root_buf,
    )
    from ..core.telemetry import current_tracer
    tracer = current_tracer()
    tracer.gauge("cts.sinks", report.sinks)
    tracer.gauge("cts.buffers", report.buffers)
    tracer.gauge("cts.levels", report.levels)
    return report
