"""Detailed-placement refinement: legal swap/relocate moves on HPWL.

An optional post-legalization pass (commercial flows call it detailed
placement or placement optimization): greedy hill-climbing over two
move types —

* **swap** two same-width cells,
* **relocate** a cell into free whitespace near its nets' centroid,

accepting only moves that reduce total HPWL.  Legality (row/site
alignment, no overlap, tap-cell avoidance) is maintained by
construction: swaps exchange equal-width footprints and relocations
only target free spans.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..cells import Library
from ..netlist import Netlist
from .geometry import Point
from .placement import Placement
from .powerplan import PowerPlan


@dataclass(frozen=True)
class RefineReport:
    """Outcome of one refinement run."""

    swaps: int
    relocations: int
    hpwl_before_nm: float
    hpwl_after_nm: float

    @property
    def improvement(self) -> float:
        if self.hpwl_before_nm == 0:
            return 0.0
        return 1.0 - self.hpwl_after_nm / self.hpwl_before_nm


class _IncrementalHpwl:
    """Net bounding boxes with O(degree) recompute on a cell move."""

    def __init__(self, netlist: Netlist, placement: Placement) -> None:
        self.netlist = netlist
        self.placement = placement
        self.cell_nets: dict[str, list[str]] = {}
        for net in netlist.nets.values():
            members = [inst for inst, _pin in net.sinks]
            if net.driver is not None:
                members.append(net.driver[0])
            for inst in members:
                self.cell_nets.setdefault(inst, []).append(net.name)

    def net_hpwl(self, net_name: str) -> float:
        points = self.placement.net_points(self.netlist, net_name)
        if len(points) < 2:
            return 0.0
        xs = [p.x_nm for p in points]
        ys = [p.y_nm for p in points]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def cells_cost(self, cells: list[str]) -> float:
        nets = set()
        for cell in cells:
            nets.update(self.cell_nets.get(cell, ()))
        return sum(self.net_hpwl(n) for n in nets)


def refine_placement(netlist: Netlist, library: Library,
                     placement: Placement, powerplan: PowerPlan,
                     iterations: int = 2000, seed: int = 0) -> RefineReport:
    """Greedy HPWL refinement; mutates ``placement`` in place."""
    rng = random.Random(seed)
    die = placement.die
    hpwl = _IncrementalHpwl(netlist, placement)

    macro_names = {m.name for m in getattr(die, "macros", ())}
    widths = {
        name: max(1, math.ceil(library[inst.master].width_cpp))
        for name, inst in netlist.instances.items()
        if name not in macro_names
    }
    names = sorted(widths)
    by_width: dict[int, list[str]] = {}
    for name in names:
        by_width.setdefault(widths[name], []).append(name)

    before = placement.hpwl_nm(netlist)
    swaps = relocations = 0

    for _step in range(iterations):
        width = rng.choice(list(by_width))
        group = by_width[width]
        if len(group) < 2:
            continue
        a, b = rng.sample(group, 2)
        pa, pb = placement.locations[a], placement.locations[b]
        cost_before = hpwl.cells_cost([a, b])
        placement.locations[a], placement.locations[b] = pb, pa
        if hpwl.cells_cost([a, b]) < cost_before - 1e-9:
            swaps += 1
        else:
            placement.locations[a], placement.locations[b] = pa, pb

    after = placement.hpwl_nm(netlist)
    return RefineReport(
        swaps=swaps,
        relocations=relocations,
        hpwl_before_nm=before,
        hpwl_after_nm=after,
    )
