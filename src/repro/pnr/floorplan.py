"""Floorplanning: target utilization and aspect ratio to a die outline."""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cells import Library
from ..netlist import Netlist
from .geometry import Die


@dataclass(frozen=True)
class FloorplanSpec:
    """User intent for the floorplan stage (Section III.C)."""

    utilization: float = 0.70
    aspect_ratio: float = 1.0  # height / width

    def __post_init__(self) -> None:
        if not 0.05 < self.utilization <= 1.0:
            raise ValueError("utilization must be in (0.05, 1]")
        if self.aspect_ratio <= 0:
            raise ValueError("aspect ratio must be positive")


def plan_floor(netlist: Netlist, library: Library,
               spec: FloorplanSpec = FloorplanSpec()) -> Die:
    """Size the core so placed cells hit the target utilization.

    The die snaps to whole rows and sites, so the achieved utilization
    can be marginally below the target; it is never above.
    """
    tech = library.tech
    cell_area = netlist.total_cell_area_nm2(library)
    if cell_area <= 0:
        raise ValueError("netlist has no placeable area")
    core_area = cell_area / spec.utilization
    height = math.sqrt(core_area * spec.aspect_ratio)
    width = core_area / height

    rows = max(1, math.ceil(height / tech.cell_height_nm))
    sites = max(1, math.ceil(width / tech.cpp_nm))
    # Snapping shrinks utilization slightly; grow sites until we are at
    # or below the requested utilization.
    while rows * sites * tech.site_area_nm2 < cell_area / spec.utilization:
        sites += 1
    return Die(
        rows=rows,
        sites_per_row=sites,
        site_width_nm=tech.cpp_nm,
        row_height_nm=tech.cell_height_nm,
    )


def achieved_utilization(netlist: Netlist, library: Library, die: Die) -> float:
    """Placed-cell area over core area for a given die."""
    return netlist.total_cell_area_nm2(library) / die.area_nm2
