"""Floorplanning: target utilization and aspect ratio to a die outline.

With hard macros in the netlist (``repro.macros``), the floorplanner
also fixes each macro's position: macros stack along the left die edge
on the site/row grid, wrapped in a halo keep-out that placement and
legalization must respect.  Die sizing then solves for the *standard-
cell* utilization over the area left after subtracting the macro
keep-outs, so a utilization sweep over a macro design means the same
thing it means for a pure standard-cell one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cells import Library
from ..netlist import Netlist
from .geometry import Die, MacroSite, Rect


@dataclass(frozen=True)
class FloorplanSpec:
    """User intent for the floorplan stage (Section III.C)."""

    utilization: float = 0.70
    aspect_ratio: float = 1.0  # height / width
    #: Keep-out margin around each hard macro, in CPP.
    macro_halo_cpp: int = 2

    def __post_init__(self) -> None:
        if not 0.05 < self.utilization <= 1.0:
            raise ValueError("utilization must be in (0.05, 1]")
        if self.aspect_ratio <= 0:
            raise ValueError("aspect ratio must be positive")
        if self.macro_halo_cpp < 0:
            raise ValueError("macro halo must be non-negative")


def _macro_instances(netlist: Netlist, library: Library):
    """(instance name, macro master) pairs, in deterministic name order."""
    found = []
    for name in sorted(netlist.instances):
        master = library[netlist.instances[name].master]
        if getattr(master, "is_macro", False):
            found.append((name, master))
    return found


def plan_floor(netlist: Netlist, library: Library,
               spec: FloorplanSpec = FloorplanSpec()) -> Die:
    """Size the core so placed cells hit the target utilization.

    The die snaps to whole rows and sites, so the achieved utilization
    can be marginally below the target; it is never above.  Hard macros
    are placed along the left edge bottom-to-top with halo spacing and
    recorded in ``Die.macros``; the utilization target then applies to
    the standard cells over the non-reserved area.
    """
    tech = library.tech
    cell_area = netlist.total_cell_area_nm2(library)
    if cell_area <= 0:
        raise ValueError("netlist has no placeable area")
    macros = _macro_instances(netlist, library)

    if not macros:
        core_area = cell_area / spec.utilization
        height = math.sqrt(core_area * spec.aspect_ratio)
        width = core_area / height

        rows = max(1, math.ceil(height / tech.cell_height_nm))
        sites = max(1, math.ceil(width / tech.cpp_nm))
        # Snapping shrinks utilization slightly; grow sites until we are
        # at or below the requested utilization.
        while rows * sites * tech.site_area_nm2 < cell_area / spec.utilization:
            sites += 1
        return Die(
            rows=rows,
            sites_per_row=sites,
            site_width_nm=tech.cpp_nm,
            row_height_nm=tech.cell_height_nm,
        )

    cpp = tech.cpp_nm
    row_nm = tech.cell_height_nm
    halo_nm = spec.macro_halo_cpp * cpp
    halo_sites = spec.macro_halo_cpp
    halo_rows = math.ceil(halo_nm / row_nm) if halo_nm > 0 else 0

    # Stack macros on the grid along the left edge, bottom to top.
    sites_list: list[MacroSite] = []
    row_cursor = halo_rows
    min_sites = 1
    for inst_name, master in macros:
        x0 = halo_sites * cpp
        y0 = row_cursor * row_nm
        rect = Rect(x0, y0,
                    x0 + master.width_sites * cpp,
                    y0 + master.height_rows * row_nm)
        obstructions = tuple(
            (layer, Rect(x0 + ox0, y0 + oy0, x0 + ox1, y0 + oy1))
            for layer, ox0, oy0, ox1, oy1 in master.obstructions
        )
        sites_list.append(MacroSite(inst_name, master.name, rect,
                                    halo_nm=halo_nm,
                                    obstructions=obstructions))
        min_sites = max(min_sites, 2 * halo_sites + master.width_sites + 1)
        row_cursor += master.height_rows + max(halo_rows, 1)
    min_rows = row_cursor - max(halo_rows, 1) + halo_rows

    macro_area = sum(s.rect.area_nm2 for s in sites_list)
    reserve_area = sum(s.keepout().area_nm2 for s in sites_list)
    std_area = max(cell_area - macro_area, 0.0)

    core_area = std_area / spec.utilization + reserve_area
    height = math.sqrt(core_area * spec.aspect_ratio)
    width = core_area / height
    rows = max(min_rows, math.ceil(height / row_nm))
    sites = max(min_sites, math.ceil(width / cpp))
    while (rows * sites * tech.site_area_nm2 - reserve_area
           < std_area / spec.utilization):
        sites += 1
    return Die(
        rows=rows,
        sites_per_row=sites,
        site_width_nm=cpp,
        row_height_nm=row_nm,
        macros=tuple(sites_list),
    )


def achieved_utilization(netlist: Netlist, library: Library, die: Die) -> float:
    """Standard-cell area over the non-reserved core area.

    For macro-free dies this is simply placed-cell area over core area;
    with macros, both the macro footprints (numerator) and their halo
    keep-outs (denominator) are excluded, so the figure stays in (0, 1]
    instead of silently overshooting when macros dominate the die.
    """
    cell_area = netlist.total_cell_area_nm2(library)
    macros = getattr(die, "macros", ())
    if not macros:
        return cell_area / die.area_nm2
    macro_area = sum(s.rect.area_nm2 for s in macros)
    reserve_area = sum(s.keepout().area_nm2 for s in macros)
    available = die.area_nm2 - reserve_area
    if available <= 0:
        raise ValueError("macro keep-outs cover the entire die")
    return (cell_area - macro_area) / available
