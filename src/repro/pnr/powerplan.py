"""Power planning: BSPDN stripes, Power Tap Cells (FFET) and nTSVs (CFET).

Section III.B of the paper:

* the power source sits on the wafer backside only (package bumps);
* backside VDD M0 rails connect directly to the BSPDN;
* frontside VSS M0 rails reach the backside through **Power Tap Cells**
  placed right above (i.e. aligned with) the backside VSS power
  stripes — these occupy placement sites and cap the achievable
  utilization (Fig. 8a);
* the CFET baseline uses BPR + nTSV to the same BSPDN; nTSVs must tap
  *both* the VDD and the VSS BPRs (the FFET only needs taps for the
  frontside VSS — its backside VDD rails touch the BSPDN directly), so
  the CFET loses twice as many placement sites per stripe;
* VSS and VDD stripes alternate ("interleaved pattern") with a 64 CPP
  stripe pitch (Section IV), so same-net stripes repeat every 128 CPP;
* the FFET's backside PDN lives on the highest *backside signal* layers
  and eats routing capacity there; the CFET's PDN uses BM1/BM2, which
  are PDN-only layers anyway (Table II footnote c).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..tech import Side, TechNode
from .geometry import Die

#: Placement-packing limit of the legalizer: above this the design
#: cannot be legalized even with no tap cells (whitespace fragmentation).
LEGALIZATION_PACK_LIMIT = 0.88

#: Width of one Power Tap Cell in placement sites (CPP).
TAP_CELL_WIDTH_SITES = 2

#: Fraction of routing tracks consumed by the PDN on the layer hosting
#: the power stripes, and on the layer one below (the mesh direction).
PDN_TOP_TRACK_FRACTION = 0.15
PDN_BELOW_TRACK_FRACTION = 0.10


@dataclass(frozen=True)
class PowerStripe:
    """One vertical PDN stripe."""

    net: str                    # "VDD" | "VSS"
    x_nm: float
    layer: str
    width_nm: float = 200.0


@dataclass(frozen=True)
class TapCell:
    """One Power Tap Cell instance (FFET only)."""

    name: str
    row: int
    site: int
    width_sites: int = TAP_CELL_WIDTH_SITES


@dataclass
class PowerPlan:
    """Result of the powerplan stage."""

    tech: TechNode
    die: Die
    stripes: list[PowerStripe] = field(default_factory=list)
    tap_cells: list[TapCell] = field(default_factory=list)
    #: Routing-capacity derating per layer name (1.0 = untouched).
    layer_capacity_factor: dict[str, float] = field(default_factory=dict)

    @property
    def tap_site_count(self) -> int:
        return sum(t.width_sites for t in self.tap_cells)

    @property
    def tap_site_fraction(self) -> float:
        return self.tap_site_count / self.die.total_sites

    @property
    def max_legal_utilization(self) -> float:
        """Highest cell-area utilization the legalizer can absorb.

        Power Tap Cells are fixed before placement, so their sites come
        straight out of the packing budget — the mechanism that caps the
        FFET at ~86 % utilization in Fig. 8(a).
        """
        return LEGALIZATION_PACK_LIMIT - self.tap_site_fraction

    def blocked_sites(self) -> np.ndarray:
        """Boolean (rows x sites) array of sites taken by tap cells."""
        blocked = np.zeros((self.die.rows, self.die.sites_per_row), dtype=bool)
        for tap in self.tap_cells:
            end = min(tap.site + tap.width_sites, self.die.sites_per_row)
            blocked[tap.row, tap.site:end] = True
        return blocked

    def capacity_factor(self, layer_name: str) -> float:
        return self.layer_capacity_factor.get(layer_name, 1.0)


@dataclass
class PowerPlanLayout:
    """The routing-layer-independent half of a power plan.

    Stripe positions, tap-cell placement and the utilization cap depend
    only on the die, the architecture and the stripe pitch — never on
    how many routing layers the config enables — so a layout computed
    once is shared across every front/back layer split of the same
    floorplan (the stage cache stores exactly this object; see
    docs/architecture.md).  :func:`bind_power_layers` attaches the
    layer-dependent part (stripe layer names, capacity derates).
    """

    die: Die
    #: ``(net, x_nm, width_nm)`` per stripe, in construction order.
    stripe_slots: list[tuple[str, float, float]] = field(default_factory=list)
    tap_cells: list[TapCell] = field(default_factory=list)


def plan_power_layout(tech: TechNode, die: Die,
                      stripe_pitch_cpp: int | None = None) -> PowerPlanLayout:
    """Place the BSPDN stripes and (for FFET) the Power Tap Cells.

    Uses only layer-count-invariant tech attributes (CPP, design rules,
    architecture), so the result is identical for every routing-layer
    split of the same node.
    """
    pitch_cpp = stripe_pitch_cpp or tech.rules.power_stripe_pitch_cpp
    pitch_nm = pitch_cpp * tech.cpp_nm
    layout = PowerPlanLayout(die=die)

    # Interleaved stripes: VSS at 0, VDD at pitch, VSS at 2*pitch, ...
    n_stripes = max(1, int(die.width_nm // pitch_nm) + 1)
    for k in range(n_stripes):
        net = "VSS" if k % 2 == 0 else "VDD"
        layout.stripe_slots.append((net, k * pitch_nm, 200.0))

    tap_index = 0
    for net, x_nm, _width in layout.stripe_slots:
        if tech.arch == "ffet":
            # One Power Tap Cell per row under every backside VSS
            # stripe (Fig. 6a); VDD rails reach the BSPDN directly.
            if net != "VSS":
                continue
            prefix = "ptap"
        else:
            # CFET: nTSV landing area per row under *every* stripe —
            # both BPR polarities need a through-silicon connection
            # (Fig. 6c), which blocks the sites above it.
            prefix = "ntsv"
        site = die.site_of(x_nm)
        site = min(site, die.sites_per_row - TAP_CELL_WIDTH_SITES)
        for row in range(die.rows):
            layout.tap_cells.append(
                TapCell(name=f"{prefix}_{tap_index}", row=row, site=site)
            )
            tap_index += 1
    return layout


def bind_power_layers(layout: PowerPlanLayout, tech: TechNode) -> PowerPlan:
    """Attach the layer-dependent PDN details to a stripe layout."""
    plan = PowerPlan(tech=tech, die=layout.die,
                     tap_cells=list(layout.tap_cells))

    if tech.arch == "ffet":
        back_signal = tech.routing_layers(Side.BACK)
        if back_signal:
            top = back_signal[-1]
            stripe_layer = top.name
            plan.layer_capacity_factor[top.name] = 1.0 - PDN_TOP_TRACK_FRACTION
            if len(back_signal) >= 2:
                below = back_signal[-2]
                plan.layer_capacity_factor[below.name] = (
                    1.0 - PDN_BELOW_TRACK_FRACTION
                )
        else:
            # Frontside-only FFET: PDN uses low backside metals freely.
            stripe_layer = "BM2"
    else:
        stripe_layer = "BM2"  # CFET PDN-only layers; no signal impact

    for net, x_nm, width_nm in layout.stripe_slots:
        plan.stripes.append(
            PowerStripe(net=net, x_nm=x_nm, layer=stripe_layer,
                        width_nm=width_nm)
        )
    return plan


def plan_power(tech: TechNode, die: Die,
               stripe_pitch_cpp: int | None = None) -> PowerPlan:
    """Build the BSPDN and (for FFET) place the Power Tap Cells."""
    return bind_power_layers(plan_power_layout(tech, die, stripe_pitch_cpp),
                             tech)
