"""Shared geometry types for placement and routing."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    x_nm: float
    y_nm: float

    def manhattan(self, other: "Point") -> float:
        return abs(self.x_nm - other.x_nm) + abs(self.y_nm - other.y_nm)


@dataclass(frozen=True)
class Rect:
    x0_nm: float
    y0_nm: float
    x1_nm: float
    y1_nm: float

    def __post_init__(self) -> None:
        if self.x1_nm < self.x0_nm or self.y1_nm < self.y0_nm:
            raise ValueError("malformed rectangle")

    @property
    def width_nm(self) -> float:
        return self.x1_nm - self.x0_nm

    @property
    def height_nm(self) -> float:
        return self.y1_nm - self.y0_nm

    @property
    def area_nm2(self) -> float:
        return self.width_nm * self.height_nm

    @property
    def center(self) -> Point:
        return Point((self.x0_nm + self.x1_nm) / 2, (self.y0_nm + self.y1_nm) / 2)

    def contains(self, p: Point) -> bool:
        return (self.x0_nm <= p.x_nm <= self.x1_nm
                and self.y0_nm <= p.y_nm <= self.y1_nm)

    def overlaps(self, other: "Rect") -> bool:
        return not (other.x0_nm >= self.x1_nm or other.x1_nm <= self.x0_nm
                    or other.y0_nm >= self.y1_nm or other.y1_nm <= self.y0_nm)


@dataclass(frozen=True)
class MacroSite:
    """One hard macro fixed on the die.

    ``rect`` is the macro footprint in absolute die coordinates;
    ``halo_nm`` is the keep-out margin legalization enforces around it.
    ``obstructions`` are ``(layer_name, Rect)`` pairs, also absolute,
    that the routing grid derates capacity over and the DEF writer
    emits as BLOCKAGES.
    """

    name: str                 # netlist instance name
    master: str               # macro master name in the library
    rect: Rect
    halo_nm: float = 0.0
    obstructions: tuple = ()

    @property
    def center(self) -> Point:
        return self.rect.center

    def keepout(self) -> Rect:
        """Footprint expanded by the halo."""
        return Rect(self.rect.x0_nm - self.halo_nm,
                    self.rect.y0_nm - self.halo_nm,
                    self.rect.x1_nm + self.halo_nm,
                    self.rect.y1_nm + self.halo_nm)


@dataclass(frozen=True)
class Die:
    """The placeable core region: a grid of rows and sites.

    ``macros`` lists the hard macros fixed by the floorplanner; empty
    for pure standard-cell designs, where every consumer reduces to the
    original macro-free behavior.
    """

    rows: int
    sites_per_row: int
    site_width_nm: float
    row_height_nm: float
    macros: tuple = ()

    def __post_init__(self) -> None:
        if self.rows < 1 or self.sites_per_row < 1:
            raise ValueError("die must have at least one row and site")

    @property
    def width_nm(self) -> float:
        return self.sites_per_row * self.site_width_nm

    @property
    def height_nm(self) -> float:
        return self.rows * self.row_height_nm

    @property
    def area_nm2(self) -> float:
        return self.width_nm * self.height_nm

    @property
    def area_um2(self) -> float:
        return self.area_nm2 / 1e6

    @property
    def total_sites(self) -> int:
        return self.rows * self.sites_per_row

    def row_of(self, y_nm: float) -> int:
        row = int(y_nm // self.row_height_nm)
        return min(max(row, 0), self.rows - 1)

    def site_of(self, x_nm: float) -> int:
        site = int(x_nm // self.site_width_nm)
        return min(max(site, 0), self.sites_per_row - 1)

    def bounds(self) -> Rect:
        return Rect(0.0, 0.0, self.width_nm, self.height_nm)
