"""Physical implementation: floorplan, powerplan, placement, CTS, routing."""

from .cts import ClockTreeReport, synthesize_clock_tree
from .dualside import NetDecomposition, decompose_nets
from .floorplan import FloorplanSpec, achieved_utilization, plan_floor
from .geometry import Die, MacroSite, Point, Rect
from .irdrop import IrDropReport, analyze_ir_drop
from .placement import (
    Placement,
    PlacementError,
    global_place,
    legalize,
    pin_point,
    place,
)
from .refine import RefineReport, refine_placement
from .powerplan import (
    LEGALIZATION_PACK_LIMIT,
    TAP_CELL_WIDTH_SITES,
    PowerPlan,
    PowerPlanLayout,
    PowerStripe,
    TapCell,
    bind_power_layers,
    plan_power,
    plan_power_layout,
)
from .routing import (
    GlobalRouter,
    LayerAssignment,
    NetRoute,
    NetSpec,
    RoutingGrid,
    RoutingResult,
    assign_layers,
    build_grid,
    pin_count_map,
)

__all__ = [
    "ClockTreeReport",
    "Die",
    "FloorplanSpec",
    "GlobalRouter",
    "LEGALIZATION_PACK_LIMIT",
    "LayerAssignment",
    "MacroSite",
    "NetDecomposition",
    "NetRoute",
    "NetSpec",
    "Placement",
    "PlacementError",
    "Point",
    "PowerPlan",
    "PowerPlanLayout",
    "PowerStripe",
    "Rect",
    "RoutingGrid",
    "RoutingResult",
    "TAP_CELL_WIDTH_SITES",
    "TapCell",
    "IrDropReport",
    "achieved_utilization",
    "RefineReport",
    "analyze_ir_drop",
    "refine_placement",
    "assign_layers",
    "build_grid",
    "decompose_nets",
    "global_place",
    "legalize",
    "pin_point",
    "place",
    "pin_count_map",
    "plan_floor",
    "bind_power_layers",
    "plan_power",
    "plan_power_layout",
    "synthesize_clock_tree",
]
