"""Placement: global placement, spreading and legalization.

The global placer pulls each cell toward the centroid of its nets
(Gauss-Seidel quadratic relaxation with IO pads as fixed anchors), then
spreads cells with a recursive area bisection so no region is overfull,
and finally legalizes to rows and sites while respecting the Power Tap
Cell blockages from the powerplan.  Legalization failure is how a
too-aggressive utilization manifests — the paper's "placement
violations between standard cells and Power Tap Cells".
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

import numpy as np

from ..cells import Library
from ..core import kernels, telemetry
from ..core.errors import FatalError
from ..netlist import Netlist
from .geometry import Die, Point
from .powerplan import PowerPlan


class PlacementError(FatalError):
    """The design cannot be legally placed on the given die.

    Deterministic for a given (netlist, config): the sweep runner never
    retries it, recording a quarantined
    :class:`~repro.core.ppa.FailedRun` instead.
    """


@dataclass
class Placement:
    """Cell-center coordinates plus IO pad locations."""

    die: Die
    locations: dict[str, Point] = field(default_factory=dict)
    io_pins: dict[str, Point] = field(default_factory=dict)  # net -> pad

    def location(self, instance: str) -> Point:
        return self.locations[instance]

    def pin_location(self, instance: str, pin_track: int = 0) -> Point:
        """Pin positions coincide with the cell center at this abstraction."""
        return self.locations[instance]

    def hpwl_nm(self, netlist: Netlist) -> float:
        """Total half-perimeter wirelength over all nets."""
        total = 0.0
        for net in netlist.nets.values():
            points = self.net_points(netlist, net.name)
            if len(points) < 2:
                continue
            xs = [p.x_nm for p in points]
            ys = [p.y_nm for p in points]
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total

    def net_points(self, netlist: Netlist, net_name: str) -> list[Point]:
        net = netlist.nets[net_name]
        points = []
        if net.driver is not None:
            points.append(self.locations[net.driver[0]])
        for inst, _pin in net.sinks:
            points.append(self.locations[inst])
        if (net.is_primary_input or net.is_primary_output) and net_name in self.io_pins:
            points.append(self.io_pins[net_name])
        return points


def pin_point(placement: Placement, master, instance: str,
              pin_name: str) -> Point:
    """Physical location of one pin of a placed instance.

    Standard-cell pins coincide with the cell center (the exact same
    ``Point`` object, preserving float identity for the macro-free
    paths); hard macros carry per-pin boundary offsets from the macro
    center (:class:`repro.macros.MacroMaster.pin_offsets`).
    """
    base = placement.locations[instance]
    offsets = getattr(master, "pin_offsets", None)
    if not offsets:
        return base
    dx, dy = offsets.get(pin_name, (0.0, 0.0))
    return Point(base.x_nm + dx, base.y_nm + dy)


def _io_pad_positions(netlist: Netlist, die: Die) -> dict[str, Point]:
    """Deterministically spread IO nets around the die periphery.

    Pads are ordered by a name hash rather than alphabetically so the
    bits of one bus land on different die edges — alphabetical ordering
    would funnel whole buses through one corner of the core.
    """
    import hashlib

    def pad_key(name: str) -> str:
        return hashlib.md5(name.encode()).hexdigest()

    io_nets = sorted(
        (n.name for n in netlist.nets.values()
         if n.is_primary_input or n.is_primary_output),
        key=pad_key,
    )
    pads: dict[str, Point] = {}
    if not io_nets:
        return pads
    perimeter = 2 * (die.width_nm + die.height_nm)
    for i, name in enumerate(io_nets):
        d = (i + 0.5) * perimeter / len(io_nets)
        if d < die.width_nm:
            pads[name] = Point(d, 0.0)
        elif d < die.width_nm + die.height_nm:
            pads[name] = Point(die.width_nm, d - die.width_nm)
        elif d < 2 * die.width_nm + die.height_nm:
            pads[name] = Point(2 * die.width_nm + die.height_nm - d, die.height_nm)
        else:
            pads[name] = Point(0.0, perimeter - d)
    return pads


def global_place(netlist: Netlist, library: Library, die: Die,
                 seed: int = 0, iterations: int = 96) -> Placement:
    """Quadratic relaxation followed by bisection spreading.

    The relaxation is a vectorized Jacobi iteration on the star net
    model: each net's centroid is the mean of its member cells (plus an
    IO-pad anchor when it has one), and each cell moves to the mean of
    its nets' centroids.  Net weights de-emphasize very high fanout
    nets, which would otherwise collapse their entire cone to one spot.
    """
    rng = random.Random(seed)
    names = sorted(netlist.instances)
    index = {name: i for i, name in enumerate(names)}
    n = len(names)
    if n == 0:
        raise PlacementError("empty netlist")

    xs = np.array([rng.uniform(0, die.width_nm) for _ in range(n)])
    ys = np.array([rng.uniform(0, die.height_nm) for _ in range(n)])

    pads = _io_pad_positions(netlist, die)

    # Flattened (net_id, cell_id) incidence for vectorized scatter-adds.
    entry_net: list[int] = []
    entry_cell: list[int] = []
    anchor_x: list[float] = []
    anchor_y: list[float] = []
    anchor_mask: list[bool] = []
    net_weight: list[float] = []
    n_nets = 0
    for net in netlist.nets.values():
        members = set()
        if net.driver is not None:
            members.add(index[net.driver[0]])
        for inst, _pin in net.sinks:
            members.add(index[inst])
        if not members:
            continue
        net_id = n_nets
        n_nets += 1
        for m in members:
            entry_net.append(net_id)
            entry_cell.append(m)
        pad = pads.get(net.name)
        anchor_mask.append(pad is not None)
        anchor_x.append(pad.x_nm if pad else 0.0)
        anchor_y.append(pad.y_nm if pad else 0.0)
        # High-fanout nets (clock, resets, decoded controls) should not
        # glue their whole cone together.
        net_weight.append(1.0 / max(1.0, len(members) - 1.0) ** 0.5)

    e_net = np.asarray(entry_net, dtype=np.intp)
    e_cell = np.asarray(entry_cell, dtype=np.intp)
    a_x = np.asarray(anchor_x)
    a_y = np.asarray(anchor_y)
    a_mask = np.asarray(anchor_mask, dtype=bool)
    w_net = np.asarray(net_weight)

    net_size = np.zeros(n_nets)
    np.add.at(net_size, e_net, 1.0)
    net_size += a_mask  # anchors count as one member
    cell_weight = np.zeros(n)
    np.add.at(cell_weight, e_cell, w_net[e_net])

    movable = cell_weight > 0

    # Hard macros are fixed by the floorplan: pin them at their die
    # positions so they act as anchors (like IO pads) instead of
    # floating with the relaxation.
    macro_ids: list[int] = []
    for m in getattr(die, "macros", ()):
        i = index.get(m.name)
        if i is None:
            continue
        macro_ids.append(i)
        xs[i] = m.center.x_nm
        ys[i] = m.center.y_nm
        movable[i] = False

    def _rescale() -> None:
        # Re-expand to fill the die: pure relaxation collapses to a
        # point, which loses all ordering information.  Keeping the
        # spread makes the iteration behave like a spectral method.
        # Shared by both kernel modes: the reductions (mean/std) use
        # numpy's pairwise summation, which a scalar re-implementation
        # could not reproduce bit-for-bit.
        for arr, extent in ((xs, die.width_nm), (ys, die.height_nm)):
            std = arr[movable].std()
            if std > 1e-9:
                arr[movable] = (
                    (arr[movable] - arr[movable].mean())
                    * (0.28 * extent / std) + extent / 2.0
                )
            np.clip(arr, 0.0, extent, out=arr)

    if kernels.use_numpy_kernels():
        def sweep(rescale: bool) -> None:
            net_sx = np.where(a_mask, a_x, 0.0).astype(float)
            net_sy = np.where(a_mask, a_y, 0.0).astype(float)
            np.add.at(net_sx, e_net, xs[e_cell])
            np.add.at(net_sy, e_net, ys[e_cell])
            cx = net_sx / net_size
            cy = net_sy / net_size
            pull_x = np.zeros(n)
            pull_y = np.zeros(n)
            np.add.at(pull_x, e_cell, (w_net * cx)[e_net])
            np.add.at(pull_y, e_cell, (w_net * cy)[e_net])
            xs[movable] = pull_x[movable] / cell_weight[movable]
            ys[movable] = pull_y[movable] / cell_weight[movable]
            if rescale:
                _rescale()
    else:
        # Reference kernel: the same accumulations as explicit loops
        # over the incidence list, in identical entry order — scatter
        # adds are sequential in both paths, so the modes agree
        # bit-for-bit.
        net_size_l = net_size.tolist()
        cell_weight_l = cell_weight.tolist()
        movable_l = movable.tolist()
        n_entries = len(entry_net)

        def sweep(rescale: bool) -> None:
            xs_l = xs.tolist()
            ys_l = ys.tolist()
            net_sx = [anchor_x[i] if anchor_mask[i] else 0.0
                      for i in range(n_nets)]
            net_sy = [anchor_y[i] if anchor_mask[i] else 0.0
                      for i in range(n_nets)]
            for k in range(n_entries):
                i = entry_net[k]
                net_sx[i] += xs_l[entry_cell[k]]
                net_sy[i] += ys_l[entry_cell[k]]
            cx = [net_sx[i] / net_size_l[i] for i in range(n_nets)]
            cy = [net_sy[i] / net_size_l[i] for i in range(n_nets)]
            pull_x = [0.0] * n
            pull_y = [0.0] * n
            for k in range(n_entries):
                i = entry_net[k]
                c = entry_cell[k]
                pull_x[c] += net_weight[i] * cx[i]
                pull_y[c] += net_weight[i] * cy[i]
            for c in range(n):
                if movable_l[c]:
                    xs_l[c] = pull_x[c] / cell_weight_l[c]
                    ys_l[c] = pull_y[c] / cell_weight_l[c]
            xs[:] = xs_l
            ys[:] = ys_l
            if rescale:
                _rescale()

    # Spectral-like phase with rescaling, then a short pure relaxation
    # to pull connected cells tight around the structure found.
    tracer = telemetry.current_tracer()
    relax_iters = iterations + max(4, iterations // 12)
    with tracer.span("kernel.place.field"):
        for _ in range(iterations):
            sweep(rescale=True)
        for _ in range(max(4, iterations // 12)):
            sweep(rescale=False)
    if tracer.enabled:
        tracer.count("kernel.place.sweeps", relax_iters)
        tracer.gauge("kernel.place.entries", float(len(entry_net)))

    # Min-cut recursive bisection, seeded by the spectral ordering and
    # refined with FM-style boundary moves at every level.  Weighting by
    # cell area keeps regions at uniform density so legalization barely
    # moves anything.
    weights = np.ones(n)
    for name, i in index.items():
        weights[i] = max(1.0, library[netlist.instances[name].master].width_cpp)
    partitioner = _MinCutPartitioner(e_net, e_cell, n, weights)
    if macro_ids:
        fixed = set(macro_ids)
        partitioner.place(xs, ys, die.width_nm, die.height_nm,
                          cells=[c for c in range(n) if c not in fixed])
        for m in getattr(die, "macros", ()):
            i = index.get(m.name)
            if i is not None:
                xs[i] = m.center.x_nm
                ys[i] = m.center.y_nm
    else:
        partitioner.place(xs, ys, die.width_nm, die.height_nm)

    placement = Placement(die=die, io_pins=pads)
    for name, i in index.items():
        placement.locations[name] = Point(float(xs[i]), float(ys[i]))
    return placement


class _MinCutPartitioner:
    """Recursive min-cut bisection with FM-style refinement.

    Each region's cells are split into two halves; the initial split
    comes from the spectral ordering, then greedy gain passes move
    boundary cells to reduce the number of cut nets while keeping the
    halves balanced.  Recursion alternates the cut axis and terminates
    at small leaves, scattering cells inside their final region.
    """

    LEAF_SIZE = 4
    PASSES = 3
    BALANCE = 0.54  # max fraction of the region's area on one side

    def __init__(self, e_net: np.ndarray, e_cell: np.ndarray, n_cells: int,
                 weights: np.ndarray | None = None):
        self.n_cells = n_cells
        self.weights = weights if weights is not None else np.ones(n_cells)
        # cell -> list of net ids / net -> list of cell ids (deduplicated).
        pairs = sorted(set(zip(e_cell.tolist(), e_net.tolist())))
        self.cell_nets: list[list[int]] = [[] for _ in range(n_cells)]
        net_cells: dict[int, list[int]] = {}
        for cell, net in pairs:
            self.cell_nets[cell].append(net)
            net_cells.setdefault(net, []).append(cell)
        # Keep only nets small enough to matter for cut minimization.
        self.net_cells = {
            net: cells for net, cells in net_cells.items() if len(cells) <= 24
        }

    def place(self, xs: np.ndarray, ys: np.ndarray,
              width: float, height: float,
              cells: list[int] | None = None) -> None:
        if cells is None:
            cells = list(range(self.n_cells))
        self._split(xs, ys, cells,
                    0.0, 0.0, width, height, horizontal=True)

    # -- recursion ---------------------------------------------------------
    def _split(self, xs, ys, cells, x0, y0, x1, y1, horizontal) -> None:
        if len(cells) <= self.LEAF_SIZE:
            # Mini-grid scatter: spreading in y as well keeps per-row
            # demand uniform for the legalizer.
            k = len(cells)
            cols = max(1, int(np.ceil(np.sqrt(k))))
            rows = max(1, int(np.ceil(k / cols)))
            for j, c in enumerate(sorted(cells, key=lambda c: (xs[c], ys[c]))):
                fx = (j % cols + 0.5) / cols
                fy = (j // cols + 0.5) / rows
                xs[c] = x0 + fx * (x1 - x0)
                ys[c] = y0 + fy * (y1 - y0)
            return
        if horizontal:
            cells.sort(key=lambda c: xs[c])
        else:
            cells.sort(key=lambda c: ys[c])
        # Split at half the *area*, not half the cell count.
        total_w = float(sum(self.weights[c] for c in cells))
        acc = 0.0
        half = len(cells) // 2
        for i, c in enumerate(cells):
            acc += self.weights[c]
            if acc >= total_w / 2.0:
                half = max(1, min(i + 1, len(cells) - 1))
                break
        side = {c: (0 if i < half else 1) for i, c in enumerate(cells)}
        self._refine(cells, side, total_w)
        lo = [c for c in cells if side[c] == 0]
        hi = [c for c in cells if side[c] == 1]
        frac = float(sum(self.weights[c] for c in lo)) / total_w
        if horizontal:
            xm = x0 + frac * (x1 - x0)
            self._split(xs, ys, lo, x0, y0, xm, y1, not horizontal)
            self._split(xs, ys, hi, xm, y0, x1, y1, not horizontal)
        else:
            ym = y0 + frac * (y1 - y0)
            self._split(xs, ys, lo, x0, y0, x1, ym, not horizontal)
            self._split(xs, ys, hi, x0, ym, x1, y1, not horizontal)

    # -- FM-style greedy refinement -----------------------------------------
    def _refine(self, cells: list[int], side: dict[int, int],
                total_weight: float) -> None:
        # Per net: member count on each side (members inside this region).
        counts: dict[int, list[int]] = {}
        for c in cells:
            for net in self.cell_nets[c]:
                if net not in self.net_cells:
                    continue
                if net not in counts:
                    counts[net] = [0, 0]
                counts[net][side[c]] += 1

        max_side = self.BALANCE * total_weight
        size = [float(sum(self.weights[c] for c in cells if side[c] == 0)), 0.0]
        size[1] = total_weight - size[0]

        for _pass in range(self.PASSES):
            moved = 0
            for c in cells:
                s = side[c]
                if size[1 - s] + self.weights[c] > max_side:
                    continue
                gain = 0
                for net in self.cell_nets[c]:
                    cnt = counts.get(net)
                    if cnt is None:
                        continue
                    if cnt[1 - s] == 0:
                        gain -= 1          # net becomes cut
                    elif cnt[s] == 1:
                        gain += 1          # net leaves the cut
                if gain > 0:
                    side[c] = 1 - s
                    size[s] -= self.weights[c]
                    size[1 - s] += self.weights[c]
                    for net in self.cell_nets[c]:
                        cnt = counts.get(net)
                        if cnt is not None:
                            cnt[s] -= 1
                            cnt[1 - s] += 1
                    moved += 1
            if moved == 0:
                break


def legalize(placement: Placement, netlist: Netlist, library: Library,
             powerplan: PowerPlan) -> Placement:
    """Snap cells to legal row/site positions around tap-cell blockages.

    Raises :class:`PlacementError` when some cell cannot be placed —
    the utilization ceiling of Fig. 8(a).
    """
    die = placement.die
    blocked = powerplan.blocked_sites()

    # Hard macro footprints + halos are first-class blockages, exactly
    # like the tap-cell sites: their rows/sites are carved out of the
    # free segments below and the macros re-commit at their floorplan
    # positions.
    macros = getattr(die, "macros", ())
    macro_names = {m.name for m in macros}
    if macros:
        blocked = blocked.copy()
        for m in macros:
            ko = m.keepout()
            r0 = max(0, int(math.floor(ko.y0_nm / die.row_height_nm)))
            r1 = min(die.rows, int(math.ceil(ko.y1_nm / die.row_height_nm)))
            s0 = max(0, int(math.floor(ko.x0_nm / die.site_width_nm)))
            s1 = min(die.sites_per_row,
                     int(math.ceil(ko.x1_nm / die.site_width_nm)))
            blocked[r0:r1, s0:s1] = True

    # Free segments (start, end) per row, excluding blocked sites.
    segments: list[list[list[int]]] = []
    for row in range(die.rows):
        row_segments = []
        start = None
        for site in range(die.sites_per_row):
            if blocked[row, site]:
                if start is not None:
                    row_segments.append([start, site])
                    start = None
            elif start is None:
                start = site
        if start is not None:
            row_segments.append([start, die.sites_per_row])
        segments.append(row_segments)
    # Segment boundaries waste a little space in dense packing; keep a
    # two-site margin per boundary so the strict pass cannot overflow.
    capacity = [
        max(0, sum(e - s for s, e in segs) - 2 * max(0, len(segs) - 1))
        for segs in segments
    ]

    widths = {
        name: max(1, math.ceil(library[inst.master].width_cpp))
        for name, inst in netlist.instances.items()
        if name not in macro_names
    }
    total_width = sum(widths.values())
    if total_width > sum(capacity):
        raise PlacementError(
            f"design needs {total_width} sites but only {sum(capacity)} "
            "are free after tap-cell placement"
        )

    # Assign cells to rows near their global y.  A soft per-row cap a
    # little above the average load keeps rows evenly filled (a row
    # stuffed to 100 % forces huge x displacements when packed); the
    # hard capacity is the fallback when the soft caps are exhausted.
    order = sorted(widths,
                   key=lambda name: (placement.locations[name].y_nm,
                                     placement.locations[name].x_nm))
    max_width = max(widths.values()) if widths else 1
    mean_load = total_width / die.rows
    soft_cap = [
        min(cap, int(mean_load + max_width + 2)) for cap in capacity
    ]
    row_load = [0] * die.rows
    row_cells: list[list[str]] = [[] for _ in range(die.rows)]
    for name in order:
        target = die.row_of(placement.locations[name].y_nm)
        chosen = None
        for caps in (soft_cap, capacity):
            for offset in range(die.rows):
                for row in (target - offset, target + offset):
                    if 0 <= row < die.rows and (
                        row_load[row] + widths[name] <= caps[row]
                    ):
                        chosen = row
                        break
                if chosen is not None:
                    break
            if chosen is not None:
                break
        if chosen is None:
            raise PlacementError(
                f"no row can host {name} (width {widths[name]} sites)"
            )
        row_load[chosen] += widths[name]
        row_cells[chosen].append(name)

    # Pack each row left-to-right around the blockages.  A first pass
    # respects the global-placement x targets; if its gaps overflow the
    # row, a strict first-fit-decreasing pass packs densely.  Cells that
    # still do not fit spill to other rows' residual free space; only
    # when no row can host a spilled cell is the placement infeasible.
    legal = Placement(die=die, io_pins=dict(placement.io_pins))
    residual: list[list[list[int]]] = [[] for _ in range(die.rows)]
    leftovers: list[str] = []

    def commit(name: str, row: int, start: int) -> None:
        x = (start + widths[name] / 2.0) * die.site_width_nm
        y = (row + 0.5) * die.row_height_nm
        legal.locations[name] = Point(x, y)

    for row in range(die.rows):
        cells = sorted(row_cells[row],
                       key=lambda name: placement.locations[name].x_nm)
        if not cells:
            residual[row] = [list(seg) for seg in segments[row]]
            continue
        if not segments[row]:
            raise PlacementError(f"row {row} fully blocked")
        starts, spilled = _pack_row(cells, segments[row], widths,
                                    placement, die)
        leftovers.extend(spilled)
        for name, start in starts.items():
            commit(name, row, start)
        residual[row] = _free_intervals(segments[row], starts, widths)

    for name in sorted(leftovers, key=lambda n: -widths[n]):
        w = widths[name]
        home = die.row_of(placement.locations[name].y_nm)
        placed = False
        for offset in range(die.rows):
            for row in {home - offset, home + offset}:
                if not 0 <= row < die.rows:
                    continue
                for interval in residual[row]:
                    if interval[1] - interval[0] >= w:
                        commit(name, row, interval[0])
                        interval[0] += w
                        placed = True
                        break
                if placed:
                    break
            if placed:
                break
        if not placed:
            raise PlacementError(
                f"no free span for {name} (width {w} sites): placement "
                "violation between standard cells and Power Tap Cells"
            )
    for m in macros:
        legal.locations[m.name] = m.rect.center
    return legal


def _free_intervals(row_segments: list[list[int]], starts: dict[str, int],
                    widths: dict[str, int]) -> list[list[int]]:
    """Free intervals of a row after packing ``starts`` into it."""
    occupied = sorted((s, s + widths[n]) for n, s in starts.items())
    intervals: list[list[int]] = []
    for seg_start, seg_end in row_segments:
        cursor = seg_start
        for a, b in occupied:
            if b <= cursor or a >= seg_end:
                continue
            if a > cursor:
                intervals.append([cursor, a])
            cursor = max(cursor, b)
        if cursor < seg_end:
            intervals.append([cursor, seg_end])
    return intervals


def _pack_row(cells: list[str], row_segments: list[list[int]],
              widths: dict[str, int], placement: Placement,
              die: Die) -> tuple[dict[str, int], list[str]]:
    """Abacus-style row packing around blockages.

    Cells are assigned to the free segment nearest their global-
    placement target (falling back to any segment with space), then
    packed inside each segment with a two-pass clamp that perturbs the
    target x positions as little as possible.  Returns (starts, spilled
    cells that did not fit anywhere in this row).
    """
    free = [e - s for s, e in row_segments]
    members: list[list[str]] = [[] for _ in row_segments]
    spilled: list[str] = []

    def target_site(name: str) -> int:
        return die.site_of(placement.locations[name].x_nm)

    for name in sorted(cells, key=target_site):
        w = widths[name]
        target = target_site(name)
        home = 0
        for i, (s_start, s_end) in enumerate(row_segments):
            if target >= s_start:
                home = i
        order = list(range(home, len(row_segments))) +             list(range(home - 1, -1, -1))
        slot = next((i for i in order if free[i] >= w), None)
        if slot is None:
            spilled.append(name)
            continue
        free[slot] -= w
        members[slot].append(name)

    starts: dict[str, int] = {}
    for (seg_start, seg_end), group in zip(row_segments, members):
        group.sort(key=target_site)
        # Forward pass: honour targets, push right when overlapping.
        positions = []
        cursor = seg_start
        for name in group:
            pos = max(cursor, min(target_site(name), seg_end - widths[name]))
            positions.append(pos)
            cursor = pos + widths[name]
        # Backward pass: pull back anything shoved past the segment end.
        limit = seg_end
        for i in range(len(group) - 1, -1, -1):
            positions[i] = min(positions[i], limit - widths[group[i]])
            limit = positions[i]
        for name, pos in zip(group, positions):
            starts[name] = pos
    return starts, spilled


def place(netlist: Netlist, library: Library, die: Die,
          powerplan: PowerPlan, seed: int = 0) -> Placement:
    """Global placement + legalization in one call."""
    from ..core.telemetry import current_tracer

    rough = global_place(netlist, library, die, seed=seed)
    placement = legalize(rough, netlist, library, powerplan)
    tracer = current_tracer()
    tracer.gauge("placement.cells", len(placement.locations))
    tracer.gauge("placement.io_pads", len(placement.io_pins))
    return placement

