"""Dual-sided signal routing — the paper's Algorithm 1.

Every FFET output pin is dual-sided (Drain Merge), so a net's source
can feed either wafer side.  Each net is decomposed into a frontside
net (the source plus all sinks whose input pins sit on the frontside)
and a backside net (the source plus the backside sinks); the two sets
are routed independently on their own grids, producing two DEFs.

Bridging cells are supported but not needed for FFET (Section III.A):
when a technology's output pins cannot reach a sink's side (CFET with a
hypothetical backside sink), a buffer is inserted next to the driver to
carry the signal across — at an area and delay cost, which is exactly
why the paper's native dual-sided pins win.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cells import Library
from ..core.errors import DecompositionError
from ..netlist import Netlist
from ..tech import Side
from .placement import Placement, pin_point
from .routing.grid import RoutingGrid
from .routing.router import NetSpec


@dataclass
class NetDecomposition:
    """Result of Algorithm 1's net-splitting step."""

    #: Routing requests per side.
    specs: dict[Side, list[NetSpec]] = field(default_factory=dict)
    #: (net, side) -> sink pins routed on that side.
    side_sinks: dict[tuple[str, Side], list[tuple[str, str]]] = \
        field(default_factory=dict)
    #: Names of inserted bridging buffer instances (normally empty).
    bridges: list[str] = field(default_factory=list)

    def sinks_on(self, net: str, side: Side) -> list[tuple[str, str]]:
        return self.side_sinks.get((net, side), [])


def _sink_side(library: Library, netlist: Netlist,
               inst_name: str, pin_name: str) -> Side:
    """The wafer side a sink pin must be reached on."""
    pin = library[netlist.instances[inst_name].master].pin(pin_name)
    if pin.is_dual_sided:
        # Dual-sided input pins (Gate Merge ablation): route frontside.
        return Side.FRONT
    return pin.side


def decompose_nets(netlist: Netlist, library: Library, placement: Placement,
                   grids: dict[Side, RoutingGrid],
                   allow_bridging: bool = False,
                   side_overrides: dict[str, Side] | None = None
                   ) -> NetDecomposition:
    """Split nets by sink pin side and build per-side routing requests.

    Follows Algorithm 1: for every net, initialize a front and a back
    net with the source, assign each sink by its pin's side, and emit
    the non-trivial subnets for independent routing.  Raises when a
    sink lies on an unroutable side and bridging is disabled.

    ``side_overrides`` forces whole nets onto one side regardless of
    their sink pins' declared sides — how dual-sided CTS steers clock
    subtrees onto backside metal (FFET sinks are reachable from either
    side through the dual-sided source and clock TSVs).  Overridden
    nets still pass the decomposition guard: every sink is covered,
    just on the hinted side.

    Bridging mutates the netlist, so decomposition restarts until it
    converges (bridged nets then route natively).
    """
    from ..core.telemetry import current_tracer

    all_bridges: list[str] = []
    while True:
        decomp = _decompose_once(netlist, library, placement, grids,
                                 allow_bridging, len(all_bridges),
                                 side_overrides or {})
        if not decomp.bridges:
            decomp.bridges = all_bridges
            tracer = current_tracer()
            for side, specs in decomp.specs.items():
                tracer.gauge(f"decompose.nets.{side.value}", len(specs))
            tracer.gauge("decompose.bridges", len(all_bridges))
            return decomp
        all_bridges.extend(decomp.bridges)


def _decompose_once(netlist: Netlist, library: Library, placement: Placement,
                    grids: dict[Side, RoutingGrid],
                    allow_bridging: bool,
                    bridge_counter: int,
                    side_overrides: dict[str, Side]) -> NetDecomposition:
    tech = library.tech
    available = set(grids)
    decomp = NetDecomposition(specs={side: [] for side in available})
    for net_name in sorted(netlist.nets):
        net = netlist.nets[net_name]
        sinks_by_side: dict[Side, list[tuple[str, str]]] = {
            Side.FRONT: [], Side.BACK: [],
        }
        forced = side_overrides.get(net_name)
        for inst_name, pin_name in net.sinks:
            side = forced if forced is not None else \
                _sink_side(library, netlist, inst_name, pin_name)
            sinks_by_side[side].append((inst_name, pin_name))

        # Which sides can the source feed?  Dual-sided output pins (or
        # primary inputs entering through IO vias) reach both sides in
        # FFET; CFET sources are frontside-only.
        if net.driver is None:
            source_sides = available if tech.dual_sided_pins else {Side.FRONT}
            source_point = placement.io_pins.get(net_name)
        else:
            drv_inst, drv_pin = net.driver
            drv_master = library[netlist.instances[drv_inst].master]
            source_sides = set(drv_master.pin(drv_pin).sides)
            source_point = pin_point(placement, drv_master, drv_inst, drv_pin)

        for side in (Side.FRONT, Side.BACK):
            side_sinks = sinks_by_side[side]
            if not side_sinks and not (side is Side.FRONT and net.is_primary_output):
                continue
            if side not in available:
                raise DecompositionError(
                    f"net {net_name}: sink on {side} but no {side} routing "
                    f"layers in {tech.name}",
                    "routing",
                )
            if side not in source_sides:
                if not allow_bridging:
                    raise DecompositionError(
                        f"net {net_name}: source cannot reach {side} "
                        "(enable bridging or use dual-sided output pins)",
                        "routing",
                    )
                bridge_counter += 1
                decomp.bridges.append(
                    _insert_bridge(netlist, library, placement, net_name,
                                   side, side_sinks, bridge_counter)
                )
                continue

            grid = grids[side]
            terminals = []
            if source_point is not None:
                terminals.append(grid.gcell_of(source_point.x_nm,
                                               source_point.y_nm))
            for inst_name, pin_name in side_sinks:
                master = library[netlist.instances[inst_name].master]
                p = pin_point(placement, master, inst_name, pin_name)
                terminals.append(grid.gcell_of(p.x_nm, p.y_nm))
            if net.is_primary_output and side is Side.FRONT:
                pad = placement.io_pins.get(net_name)
                if pad is not None:
                    terminals.append(grid.gcell_of(pad.x_nm, pad.y_nm))
            decomp.side_sinks[(net_name, side)] = side_sinks
            if len(set(terminals)) < 2:
                # Entire subnet inside one gcell: zero global wire.
                decomp.specs[side].append(
                    NetSpec(net_name, side, terminals or [(0, 0)])
                )
            else:
                decomp.specs[side].append(NetSpec(net_name, side, terminals))
    return decomp


def _insert_bridge(netlist: Netlist, library: Library, placement: Placement,
                   net_name: str, side: Side,
                   side_sinks: list[tuple[str, str]], counter: int) -> str:
    """Insert a bridging buffer carrying ``net_name`` to ``side``.

    The bridge sits at the driver's location; its output feeds the
    stranded sinks through a new net.  The caller must re-bind the
    netlist and re-run decomposition afterwards.
    """
    bridge_name = f"bridge_{counter}"
    bridged_net = f"{net_name}__{side.value}"
    netlist.add_net(bridged_net)
    master = "BRIDGE" if "BRIDGE" in library else "BUFD2"
    netlist.add_instance(bridge_name, master, {"A": net_name, "Z": bridged_net})
    for inst_name, pin_name in side_sinks:
        netlist.instances[inst_name].connections[pin_name] = bridged_net
    net = netlist.nets[net_name]
    source = net.driver
    if source is not None:
        placement.locations[bridge_name] = placement.locations[source[0]]
    else:
        placement.locations[bridge_name] = placement.io_pins[net_name]
    netlist.bind(library)
    return bridge_name
