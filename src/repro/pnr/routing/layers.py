"""Layer assignment: map routed nets onto metal-layer tiers.

Global routing happens on a per-direction capacity abstraction; this
pass assigns every net to a (horizontal, vertical) layer pair — short
nets to the low, fine-pitch tiers, long nets to the tall, fast tiers —
filling each tier proportionally to its track capacity, the way
commercial layer assignment balances congestion.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...tech import Layer
from .router import RoutingResult

#: Fraction of the lowest tier's tracks available to inter-cell routes
#: (the rest serves pin access and intra-gcell stubs).
LOW_TIER_ASSIGNMENT_SHARE = 0.2


@dataclass(frozen=True)
class Tier:
    """A consecutive pair of routing layers (one per direction)."""

    index: int
    horizontal: Layer
    vertical: Layer
    #: Vias needed to climb from the cell pin (M0) to this tier.
    via_stack: int


@dataclass
class LayerAssignment:
    """Per-net tier assignment for one routing side."""

    tiers: list[Tier]
    net_tier: dict[str, Tier]

    def tier_of(self, net_name: str) -> Tier:
        return self.net_tier[net_name]


def build_tiers(layers: list[Layer]) -> list[Tier]:
    """Pair up routable layers into (H, V) tiers, bottom-up."""
    if not layers:
        raise ValueError("no routing layers to tier")
    tiers = []
    i = 0
    while i < len(layers):
        pair = layers[i:i + 2]
        hs = [l for l in pair if l.direction.value == "H"]
        vs = [l for l in pair if l.direction.value == "V"]
        horizontal = hs[0] if hs else pair[0]
        vertical = vs[0] if vs else pair[-1]
        tiers.append(
            Tier(index=len(tiers), horizontal=horizontal, vertical=vertical,
                 via_stack=i + 1)
        )
        i += 2
    return tiers


def assign_layers(result: RoutingResult) -> LayerAssignment:
    """Distribute nets over tiers by length, respecting capacity shares."""
    tiers = build_tiers(result.grid.layers)
    gcell_nm = result.grid.gcell_nm

    # Capacity share per tier (tracks per gcell in both directions).
    # The lowest tier (M1/M2) is mostly consumed by pin escapes and
    # short stubs, so only a fraction of it is available to inter-cell
    # routes — without this, long nets get forced onto the most
    # resistive metals, which no real flow would do.
    def tier_tracks(tier: Tier) -> float:
        tracks = gcell_nm / tier.horizontal.pitch_nm
        if tier.vertical is not tier.horizontal:
            tracks += gcell_nm / tier.vertical.pitch_nm
        if tier.index == 0:
            tracks *= LOW_TIER_ASSIGNMENT_SHARE
        return tracks

    shares = [tier_tracks(t) for t in tiers]
    total_share = sum(shares)

    routes = sorted(result.routes.values(),
                    key=lambda r: (r.wirelength_gcells, r.name))
    total_wl = sum(r.wirelength_gcells for r in routes) or 1

    net_tier: dict[str, Tier] = {}
    tier_idx = 0
    filled = 0.0
    budget = shares[0] / total_share * total_wl
    for route in routes:
        while filled >= budget and tier_idx < len(tiers) - 1:
            tier_idx += 1
            budget += shares[tier_idx] / total_share * total_wl
        net_tier[route.name] = tiers[tier_idx]
        filled += route.wirelength_gcells
    return LayerAssignment(tiers=tiers, net_tier=net_tier)
