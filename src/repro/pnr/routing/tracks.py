"""Track assignment: refine global routes onto physical routing tracks.

A post-pass over one side's routing result: within every gcell
boundary, the segments crossing it (on their assigned tier layer) are
packed onto the layer's discrete tracks with a greedy interval
scheduler.  The output quantifies what the global router's fractional
capacities abstract away — per-layer track occupancy and the residual
conflicts a detailed router would have to untangle — without feeding
back into the calibrated DRV metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...tech import Layer
from .layers import LayerAssignment
from .router import RoutingResult


@dataclass(frozen=True)
class TrackStats:
    """Per-layer occupancy after track assignment."""

    layer: str
    tracks_per_gcell: int
    assigned_segments: int
    conflicted_segments: int
    peak_occupancy: float     # worst gcell-boundary fill ratio
    mean_occupancy: float

    @property
    def conflict_fraction(self) -> float:
        total = self.assigned_segments + self.conflicted_segments
        return self.conflicted_segments / total if total else 0.0


@dataclass
class TrackAssignment:
    """Result of one side's track-assignment pass."""

    stats: dict[str, TrackStats] = field(default_factory=dict)
    #: (net, layer, gcell edge) triples that did not fit on any track.
    conflicts: list[tuple[str, str, tuple]] = field(default_factory=list)

    @property
    def total_conflicts(self) -> int:
        return len(self.conflicts)


def assign_tracks(result: RoutingResult,
                  assignment: LayerAssignment) -> TrackAssignment:
    """Greedy per-boundary track packing.

    For every gcell edge, the nets crossing it on a given layer compete
    for that layer's physical tracks; nets are served in name order
    (deterministic) and keep the same track across a straight run when
    it is free (track continuity preference).
    """
    grid = result.grid
    out = TrackAssignment()

    # Group crossings: (layer, edge) -> list of nets.
    crossings: dict[tuple[str, tuple], list[str]] = {}
    for name in sorted(result.routes):
        route = result.routes[name]
        tier = assignment.tier_of(name)
        for edge in route.edges:
            (c1, r1), (_c2, _r2) = edge
            horizontal = edge[0][1] == edge[1][1]
            layer = tier.horizontal if horizontal else tier.vertical
            crossings.setdefault((layer.name, edge), []).append(name)

    def tracks_for(layer: Layer) -> int:
        return max(1, int(grid.gcell_nm / layer.pitch_nm))

    layer_by_name = {layer.name: layer for layer in grid.layers}
    per_layer_fill: dict[str, list[float]] = {}
    per_layer_counts: dict[str, list[int]] = {}
    preferred: dict[tuple[str, str], int] = {}  # (net, layer) -> track

    for (layer_name, edge), nets in sorted(crossings.items()):
        layer = layer_by_name[layer_name]
        n_tracks = tracks_for(layer)
        used: set[int] = set()
        assigned = 0
        for net in nets:
            want = preferred.get((net, layer_name))
            track = None
            if want is not None and want not in used and want < n_tracks:
                track = want
            else:
                track = next(
                    (t for t in range(n_tracks) if t not in used), None
                )
            if track is None:
                out.conflicts.append((net, layer_name, edge))
                continue
            used.add(track)
            preferred[(net, layer_name)] = track
            assigned += 1
        per_layer_fill.setdefault(layer_name, []).append(
            len(used) / n_tracks
        )
        per_layer_counts.setdefault(layer_name, []).append(assigned)

    for layer_name, fills in per_layer_fill.items():
        layer = layer_by_name[layer_name]
        conflicted = sum(
            1 for _n, l, _e in out.conflicts if l == layer_name
        )
        out.stats[layer_name] = TrackStats(
            layer=layer_name,
            tracks_per_gcell=tracks_for(layer),
            assigned_segments=sum(per_layer_counts[layer_name]),
            conflicted_segments=conflicted,
            peak_occupancy=max(fills),
            mean_occupancy=sum(fills) / len(fills),
        )
    return out
