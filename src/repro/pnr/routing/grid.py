"""GCell routing grid with per-layer, per-direction capacities.

Capacity comes straight from the Table II pitches: a layer with pitch
``p`` contributes ``gcell_size / p`` tracks per gcell in its preferred
direction.  Two deratings apply:

* the PDN occupies a fraction of the stripe-hosting layers
  (:mod:`repro.pnr.powerplan`), and
* **pin density**: every physical pin shape in a gcell blocks part of
  the lowest routing layers for through-traffic.  This is the mechanism
  behind the paper's routability story — the FFET's smaller cells pack
  more pins per area (bad for single-sided routing, Fig. 8c), and
  dual-sided pins split that density across the two wafer sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...tech import Layer, Side, TechNode
from ..geometry import Die
from ..powerplan import PowerPlan

#: Fraction of raw tracks usable by global routing (detour/blockage slack).
GLOBAL_ROUTING_EFFICIENCY = 1.25

#: Routing tracks blocked per physical pin shape in a gcell.
PIN_BLOCK_TRACKS = 0.20

#: Default gcell edge length, in M2 tracks (30 nm each).
DEFAULT_GCELL_TRACKS = 16

#: Pin-access limit: pin shapes per um^2 of one wafer side that the
#: M0/M1 levels can still connect cleanly, averaged over the core.
#: Densities above this produce pin-access DRVs in proportion to the
#: excess pin count — the paper's "very high pin density, thus worse
#: routability" mechanism that caps the FFET FM12 at 76 % utilization
#: while the dual-sided FFET (pins split over two wafer sides) and the
#: CFET (larger cells) stay below the limit.
PIN_ACCESS_CAP_PER_UM2 = 79.5


@dataclass
class RoutingGrid:
    """One wafer side's global-routing grid."""

    side: Side
    cols: int
    rows: int
    gcell_nm: float
    layers: list[Layer]
    #: Horizontal-edge capacity, shape (rows, cols - 1).
    cap_h: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: Vertical-edge capacity, shape (rows - 1, cols).
    cap_v: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: GCells whose pin density exceeds the pin-access limit.
    pin_access_drvs: int = 0

    def __post_init__(self) -> None:
        if self.cap_h is None:
            self.cap_h = np.zeros((self.rows, max(self.cols - 1, 0)))
        if self.cap_v is None:
            self.cap_v = np.zeros((max(self.rows - 1, 0), self.cols))

    # -- coordinate mapping -----------------------------------------------
    def gcell_of(self, x_nm: float, y_nm: float) -> tuple[int, int]:
        col = min(max(int(x_nm // self.gcell_nm), 0), self.cols - 1)
        row = min(max(int(y_nm // self.gcell_nm), 0), self.rows - 1)
        return col, row

    def center_of(self, col: int, row: int) -> tuple[float, float]:
        return ((col + 0.5) * self.gcell_nm, (row + 0.5) * self.gcell_nm)

    @property
    def horizontal_layers(self) -> list[Layer]:
        return [l for l in self.layers if l.direction.value == "H"]

    @property
    def vertical_layers(self) -> list[Layer]:
        return [l for l in self.layers if l.direction.value == "V"]

    def total_capacity(self) -> float:
        return float(self.cap_h.sum() + self.cap_v.sum())


def build_grid(tech: TechNode, die: Die, side: Side, powerplan: PowerPlan,
               pin_counts: np.ndarray | None = None,
               gcell_tracks: int = DEFAULT_GCELL_TRACKS) -> RoutingGrid:
    """Construct the routing grid for one wafer side.

    ``pin_counts`` is an optional (rows, cols) array of physical pin
    shapes per gcell on this side; it derates the two lowest layers.
    """
    layers = tech.routing_layers(side)
    if not layers:
        raise ValueError(f"{tech.name} has no routing layers on {side}")
    gcell_nm = gcell_tracks * tech.rules.track_pitch_nm
    cols = max(1, int(np.ceil(die.width_nm / gcell_nm)))
    rows = max(1, int(np.ceil(die.height_nm / gcell_nm)))
    grid = RoutingGrid(side=side, cols=cols, rows=rows,
                       gcell_nm=gcell_nm, layers=layers)

    def layer_tracks(layer: Layer) -> float:
        raw = gcell_nm / layer.pitch_nm
        return raw * powerplan.capacity_factor(layer.name) * GLOBAL_ROUTING_EFFICIENCY

    h_total = sum(layer_tracks(l) for l in grid.horizontal_layers)
    v_total = sum(layer_tracks(l) for l in grid.vertical_layers)
    # Tracks on the two lowest layers, the ones pins eat into.
    low_layers = layers[:2]
    h_low = sum(layer_tracks(l) for l in low_layers if l.direction.value == "H")
    v_low = sum(layer_tracks(l) for l in low_layers if l.direction.value == "V")

    node_h = np.full((rows, cols), float(h_total))
    node_v = np.full((rows, cols), float(v_total))
    if pin_counts is not None:
        if pin_counts.shape != (rows, cols):
            raise ValueError(
                f"pin_counts shape {pin_counts.shape} != grid ({rows}, {cols})"
            )
        core_area_um2 = die.width_nm * die.height_nm / 1e6
        mean_density = pin_counts.sum() / core_area_um2
        excess = max(0.0, mean_density - PIN_ACCESS_CAP_PER_UM2)
        grid.pin_access_drvs = int(round(excess * core_area_um2))
        blocked = pin_counts * PIN_BLOCK_TRACKS
        low = h_low + v_low
        if low > 0:
            h_share = h_low / low
            v_share = v_low / low
            node_h -= np.minimum(blocked * h_share, h_low)
            node_v -= np.minimum(blocked * v_share, v_low)
    macros = getattr(die, "macros", ())
    if macros:
        layer_by_name = {l.name: l for l in layers}
        for macro in macros:
            for layer_name, rect in macro.obstructions:
                layer = layer_by_name.get(layer_name)
                if layer is None:
                    continue  # obstruction lives on the other wafer side
                tracks = layer_tracks(layer)
                target = node_h if layer.direction.value == "H" else node_v
                c0 = min(max(int(rect.x0_nm // gcell_nm), 0), cols - 1)
                c1 = min(max(int(np.ceil(rect.x1_nm / gcell_nm)), c0 + 1), cols)
                r0 = min(max(int(rect.y0_nm // gcell_nm), 0), rows - 1)
                r1 = min(max(int(np.ceil(rect.y1_nm / gcell_nm)), r0 + 1), rows)
                for r in range(r0, r1):
                    y_lo, y_hi = r * gcell_nm, (r + 1) * gcell_nm
                    fy = (min(rect.y1_nm, y_hi) - max(rect.y0_nm, y_lo)) / gcell_nm
                    if fy <= 0:
                        continue
                    for c in range(c0, c1):
                        x_lo, x_hi = c * gcell_nm, (c + 1) * gcell_nm
                        fx = ((min(rect.x1_nm, x_hi) - max(rect.x0_nm, x_lo))
                              / gcell_nm)
                        if fx > 0:
                            target[r, c] -= tracks * fx * fy
    node_h = np.maximum(node_h, 0.5)
    node_v = np.maximum(node_v, 0.5)

    if cols > 1:
        grid.cap_h = np.minimum(node_h[:, :-1], node_h[:, 1:])
    if rows > 1:
        grid.cap_v = np.minimum(node_v[:-1, :], node_v[1:, :])
    return grid


def pin_count_map(instances_pins: list[tuple[float, float]], die: Die,
                  gcell_tracks: int, track_pitch_nm: float) -> np.ndarray:
    """Histogram pin locations into gcells; returns (rows, cols) counts."""
    gcell_nm = gcell_tracks * track_pitch_nm
    cols = max(1, int(np.ceil(die.width_nm / gcell_nm)))
    rows = max(1, int(np.ceil(die.height_nm / gcell_nm)))
    counts = np.zeros((rows, cols))
    for x_nm, y_nm in instances_pins:
        col = min(max(int(x_nm // gcell_nm), 0), cols - 1)
        row = min(max(int(y_nm // gcell_nm), 0), rows - 1)
        counts[row, col] += 1
    return counts
