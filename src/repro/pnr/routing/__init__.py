"""Global routing: grids, router, layer assignment."""

from .grid import (
    DEFAULT_GCELL_TRACKS,
    GLOBAL_ROUTING_EFFICIENCY,
    PIN_BLOCK_TRACKS,
    RoutingGrid,
    build_grid,
    pin_count_map,
)
from .layers import LayerAssignment, Tier, assign_layers, build_tiers
from .router import GlobalRouter, NetRoute, NetSpec, RoutingResult
from .rudy import peak_congestion_estimate, rudy_map
from .tracks import TrackAssignment, TrackStats, assign_tracks

__all__ = [
    "DEFAULT_GCELL_TRACKS",
    "GLOBAL_ROUTING_EFFICIENCY",
    "GlobalRouter",
    "LayerAssignment",
    "NetRoute",
    "NetSpec",
    "PIN_BLOCK_TRACKS",
    "RoutingGrid",
    "RoutingResult",
    "Tier",
    "TrackAssignment",
    "TrackStats",
    "assign_layers",
    "build_grid",
    "assign_tracks",
    "build_tiers",
    "peak_congestion_estimate",
    "pin_count_map",
    "rudy_map",
]
