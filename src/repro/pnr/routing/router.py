"""Congestion-driven global router with rip-up-and-reroute.

Each net is first routed as a Steiner-lite tree (Manhattan MST over its
terminals, each MST edge realized as the less congested of the two
L-shapes).  Overflowed nets are then ripped up and rerouted with a
maze router whose cost includes present congestion and a negotiated-
congestion history term, for a fixed number of iterations.

The maze search is a dual-implementation kernel selected by
``$REPRO_KERNEL`` (see :mod:`repro.core.kernels`).  Both modes compute
the *same* shortest-distance field over the net's search box — the
python reference settles it with a scalar Dijkstra, the numpy kernel
runs directional min-plus (fast-sweeping) relaxations to the same
fixed point — and a shared deterministic backtrack turns the field
into the route.  With strictly positive edge costs the two fixed
points are bit-identical (every distance is the minimum over paths of
the left-associated IEEE-754 sum of edge costs), so both modes produce
identical routes; ``tests/test_kernel_equivalence.py`` pins this.

The result keeps per-net trees (unit gcell edges), so RC extraction can
build a real RC tree per net, and reports overflow as a DRV count — the
paper's validity criterion is fewer than 10 DRVs (Section IV).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ...core import kernels
from ...core.errors import RoutingError
from ...core.telemetry import current_tracer
from ...tech import Side
from .grid import RoutingGrid

#: Cost multiplier for routing through an over-capacity edge.
OVERFLOW_PENALTY = 30.0
#: Weight of the accumulated history cost (negotiated congestion).
HISTORY_WEIGHT = 3.0
#: Rip-up-and-reroute iterations.
DEFAULT_RRR_ITERATIONS = 8

Coord = tuple[int, int]  # (col, row)
Edge = tuple[Coord, Coord]  # normalized: first < second


def _norm_edge(a: Coord, b: Coord) -> Edge:
    return (a, b) if a <= b else (b, a)


@dataclass
class NetSpec:
    """A routing request: one net on one wafer side."""

    name: str
    side: Side
    terminals: list[Coord]

    def __post_init__(self) -> None:
        self.terminals = sorted(set(self.terminals))


@dataclass
class NetRoute:
    """The routed tree of one net."""

    name: str
    side: Side
    terminals: list[Coord]
    edges: set[Edge] = field(default_factory=set)

    @property
    def wirelength_gcells(self) -> int:
        return len(self.edges)

    def h_steps(self) -> int:
        return sum(1 for (a, b) in self.edges if a[1] == b[1])

    def v_steps(self) -> int:
        return sum(1 for (a, b) in self.edges if a[0] == b[0])

    def bends(self) -> int:
        """Direction changes, a proxy for via count inside the tree."""
        by_node: dict[Coord, list[bool]] = {}
        for a, b in self.edges:
            horizontal = a[1] == b[1]
            by_node.setdefault(a, []).append(horizontal)
            by_node.setdefault(b, []).append(horizontal)
        return sum(
            1 for dirs in by_node.values()
            if len(set(dirs)) > 1
        )


@dataclass
class RoutingResult:
    """All routed nets on one side plus congestion statistics."""

    side: Side
    grid: RoutingGrid
    routes: dict[str, NetRoute]
    overflow_edges: int
    total_overflow: float
    iterations: int
    #: Final edge usage (same shapes as the grid capacity arrays).
    usage_h: np.ndarray | None = None
    usage_v: np.ndarray | None = None

    def congestion_of(self, net_name: str) -> float:
        """Mean usage/capacity ratio along one net's route (0 if empty)."""
        if self.usage_h is None or self.usage_v is None:
            return 0.0
        route = self.routes.get(net_name)
        if route is None or not route.edges:
            return 0.0
        total = 0.0
        for (c1, r1), (c2, r2) in route.edges:
            if r1 == r2:
                idx = (r1, min(c1, c2))
                total += self.usage_h[idx] / max(self.grid.cap_h[idx], 1e-6)
            else:
                idx = (min(r1, r2), c1)
                total += self.usage_v[idx] / max(self.grid.cap_v[idx], 1e-6)
        return total / len(route.edges)

    @property
    def drv_count(self) -> int:
        """DRV proxy: overflowed gcell edges plus pin-access violations."""
        return self.overflow_edges + self.grid.pin_access_drvs

    @property
    def total_wirelength_nm(self) -> float:
        return sum(r.wirelength_gcells for r in self.routes.values()) * \
            self.grid.gcell_nm


class GlobalRouter:
    """Routes a set of nets on one grid."""

    def __init__(self, grid: RoutingGrid,
                 rrr_iterations: int = DEFAULT_RRR_ITERATIONS) -> None:
        self.grid = grid
        self.rrr_iterations = rrr_iterations
        self.usage_h = np.zeros_like(grid.cap_h)
        self.usage_v = np.zeros_like(grid.cap_v)
        self.history_h = np.zeros_like(grid.cap_h)
        self.history_v = np.zeros_like(grid.cap_v)

    # -- edge bookkeeping ---------------------------------------------------
    def _edge_arrays(self, edge: Edge):
        (c1, r1), (c2, r2) = edge
        if r1 == r2:  # horizontal step
            return self.usage_h, self.grid.cap_h, self.history_h, (r1, min(c1, c2))
        return self.usage_v, self.grid.cap_v, self.history_v, (min(r1, r2), c1)

    def _edge_cost(self, edge: Edge) -> float:
        usage, cap, history, idx = self._edge_arrays(edge)
        cost = 1.0 + HISTORY_WEIGHT * history[idx]
        if usage[idx] + 1 > cap[idx]:
            cost += OVERFLOW_PENALTY * (usage[idx] + 1 - cap[idx])
        return cost

    def _commit(self, edges: set[Edge], delta: int) -> None:
        for edge in edges:
            usage, _cap, _hist, idx = self._edge_arrays(edge)
            usage[idx] += delta

    # -- initial pattern routing ----------------------------------------------
    def _mst_pairs(self, terminals: list[Coord]) -> list[tuple[Coord, Coord]]:
        """Prim's MST under Manhattan distance."""
        if len(terminals) < 2:
            return []
        in_tree = [terminals[0]]
        rest = set(terminals[1:])
        pairs = []
        best: dict[Coord, tuple[int, Coord]] = {
            t: (abs(t[0] - terminals[0][0]) + abs(t[1] - terminals[0][1]),
                terminals[0])
            for t in rest
        }
        while rest:
            t = min(rest, key=lambda t: best[t][0])
            dist, anchor = best[t]
            pairs.append((anchor, t))
            rest.remove(t)
            in_tree.append(t)
            for other in rest:
                d = abs(other[0] - t[0]) + abs(other[1] - t[1])
                if d < best[other][0]:
                    best[other] = (d, t)
        return pairs

    def _l_route(self, a: Coord, b: Coord) -> set[Edge]:
        """The cheaper of the two L-shaped connections a->b."""
        def path_edges(corner: Coord) -> set[Edge]:
            edges = set()
            for p, q in ((a, corner), (corner, b)):
                if p[0] == q[0]:
                    for r in range(min(p[1], q[1]), max(p[1], q[1])):
                        edges.add(_norm_edge((p[0], r), (p[0], r + 1)))
                else:
                    for c in range(min(p[0], q[0]), max(p[0], q[0])):
                        edges.add(_norm_edge((c, p[1]), (c + 1, p[1])))
            return edges

        option1 = path_edges((b[0], a[1]))
        option2 = path_edges((a[0], b[1]))
        if a[0] == b[0] or a[1] == b[1]:
            return option1
        cost1 = sum(self._edge_cost(e) for e in option1)
        cost2 = sum(self._edge_cost(e) for e in option2)
        return option1 if cost1 <= cost2 else option2

    def _initial_route(self, spec: NetSpec) -> NetRoute:
        route = NetRoute(spec.name, spec.side, spec.terminals)
        for a, b in self._mst_pairs(spec.terminals):
            route.edges |= self._l_route(a, b)
        return route

    # -- maze rerouting -----------------------------------------------------
    def _cost_fields(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-edge maze costs as dense arrays (same shapes as cap_h/v).

        Bit-compatible with :meth:`_edge_cost`: ``(1.0 + W*h) +
        P*((u+1)-cap)`` in that exact operation order, with the penalty
        term only where ``u+1 > cap`` (adding the ``0.0`` branch of the
        ``where`` preserves the base value exactly).
        """
        def one(usage: np.ndarray, cap: np.ndarray,
                history: np.ndarray) -> np.ndarray:
            base = 1.0 + HISTORY_WEIGHT * history
            lack = (usage + 1) - cap
            return base + np.where(lack > 0, OVERFLOW_PENALTY * lack, 0.0)

        return (one(self.usage_h, self.grid.cap_h, self.history_h),
                one(self.usage_v, self.grid.cap_v, self.history_v))

    def _maze_route(self, spec: NetSpec) -> NetRoute:
        """Grow a tree from the first terminal to all others.

        The search is bounded to the net's bounding box plus a detour
        margin, which keeps rip-up-and-reroute fast on large grids.
        """
        route = NetRoute(spec.name, spec.side, spec.terminals)
        xs = [t[0] for t in spec.terminals]
        ys = [t[1] for t in spec.terminals]
        margin = 6
        box = (max(min(xs) - margin, 0), max(min(ys) - margin, 0),
               min(max(xs) + margin, self.grid.cols - 1),
               min(max(ys) + margin, self.grid.rows - 1))
        # Usage and history are constant for the duration of one maze
        # route (commits happen outside), so the cost field is too.
        cost_h, cost_v = self._cost_fields()
        tree_nodes: set[Coord] = {spec.terminals[0]}
        for target in spec.terminals[1:]:
            if target in tree_nodes:
                continue
            path = self._wavefront(tree_nodes, target, box, cost_h, cost_v)
            for a, b in zip(path, path[1:]):
                route.edges.add(_norm_edge(a, b))
            tree_nodes.update(path)
        return route

    def _wavefront(self, sources: set[Coord], target: Coord,
                   box: tuple[int, int, int, int],
                   cost_h: np.ndarray, cost_v: np.ndarray) -> list[Coord]:
        """Multi-source shortest path inside ``box`` via a distance field.

        Both kernel modes settle the same field (see the module
        docstring for why the fixed points are bit-identical); the
        backtrack is shared and deterministic.
        """
        x0, y0, x1, y1 = box
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("kernel.route.searches")
            tracer.count("kernel.route.nodes",
                         (y1 - y0 + 1) * (x1 - x0 + 1))
        if kernels.use_numpy_kernels():
            dist = self._dist_field_numpy(sources, box, cost_h, cost_v,
                                          tracer)
        else:
            dist = self._dist_field_python(sources, box, cost_h, cost_v)
        if not np.isfinite(dist[target[1] - y0, target[0] - x0]):
            raise RoutingError(f"maze routing failed to reach {target}",
                               "routing")
        return self._backtrack(dist, target, box, cost_h, cost_v)

    def _dist_field_python(self, sources: set[Coord],
                           box: tuple[int, int, int, int],
                           cost_h: np.ndarray,
                           cost_v: np.ndarray) -> np.ndarray:
        """Reference kernel: scalar Dijkstra settled over the whole box."""
        x0, y0, x1, y1 = box
        dist = np.full((y1 - y0 + 1, x1 - x0 + 1), np.inf)
        heap: list[tuple[float, Coord]] = []
        for c, r in sources:
            if x0 <= c <= x1 and y0 <= r <= y1:
                dist[r - y0, c - x0] = 0.0
                heap.append((0.0, (c, r)))
        heapq.heapify(heap)
        while heap:
            d, (c, r) = heapq.heappop(heap)
            if d > dist[r - y0, c - x0]:
                continue
            for nxt in ((c + 1, r), (c - 1, r), (c, r + 1), (c, r - 1)):
                if not (x0 <= nxt[0] <= x1 and y0 <= nxt[1] <= y1):
                    continue
                if nxt[1] == r:
                    step = cost_h[r, min(c, nxt[0])]
                else:
                    step = cost_v[min(r, nxt[1]), c]
                nd = d + step
                if nd < dist[nxt[1] - y0, nxt[0] - x0]:
                    dist[nxt[1] - y0, nxt[0] - x0] = nd
                    heapq.heappush(heap, (nd, nxt))
        return dist

    def _dist_field_numpy(self, sources: set[Coord],
                          box: tuple[int, int, int, int],
                          cost_h: np.ndarray, cost_v: np.ndarray,
                          tracer) -> np.ndarray:
        """Numpy kernel: directional min-plus sweeps to the fixed point.

        Each pass relaxes whole rows/columns at once in the four sweep
        directions (the fast-sweeping method); paths with ``k``
        direction reversals converge within ``k`` passes, so congested
        detours typically settle in two or three.
        """
        x0, y0, x1, y1 = box
        h = y1 - y0 + 1
        w = x1 - x0 + 1
        dist = np.full((h, w), np.inf)
        for c, r in sources:
            if x0 <= c <= x1 and y0 <= r <= y1:
                dist[r - y0, c - x0] = 0.0
        ch = cost_h[y0:y1 + 1, x0:x1]    # (h, w - 1)
        cv = cost_v[y0:y1, x0:x1 + 1]    # (h - 1, w)
        sweeps = 0
        while True:
            before = dist.copy()
            for c in range(1, w):        # west -> east
                np.minimum(dist[:, c], dist[:, c - 1] + ch[:, c - 1],
                           out=dist[:, c])
            for c in range(w - 2, -1, -1):   # east -> west
                np.minimum(dist[:, c], dist[:, c + 1] + ch[:, c],
                           out=dist[:, c])
            for r in range(1, h):        # south -> north
                np.minimum(dist[r], dist[r - 1] + cv[r - 1],
                           out=dist[r])
            for r in range(h - 2, -1, -1):   # north -> south
                np.minimum(dist[r], dist[r + 1] + cv[r],
                           out=dist[r])
            sweeps += 1
            if np.array_equal(before, dist):
                break
        if tracer.enabled:
            tracer.count("kernel.route.sweeps", sweeps)
        return dist

    def _backtrack(self, dist: np.ndarray, target: Coord,
                   box: tuple[int, int, int, int],
                   cost_h: np.ndarray, cost_v: np.ndarray) -> list[Coord]:
        """Walk the settled field from ``target`` back to a source.

        Deterministic in both kernel modes: neighbors are probed in a
        fixed order and accepted on *exact* float equality ``dist[u] +
        cost == dist[v]`` — always satisfiable at the fixed point, and
        strictly decreasing, so the walk terminates at a zero-distance
        source.
        """
        x0, y0, x1, y1 = box
        path = [target]
        node = target
        while dist[node[1] - y0, node[0] - x0] != 0.0:
            c, r = node
            here = dist[r - y0, c - x0]
            for nxt in ((c + 1, r), (c - 1, r), (c, r + 1), (c, r - 1)):
                if not (x0 <= nxt[0] <= x1 and y0 <= nxt[1] <= y1):
                    continue
                there = dist[nxt[1] - y0, nxt[0] - x0]
                if not np.isfinite(there):
                    continue
                if nxt[1] == r:
                    step = cost_h[r, min(c, nxt[0])]
                else:
                    step = cost_v[min(r, nxt[1]), c]
                if there + step == here:
                    node = nxt
                    path.append(node)
                    break
            else:  # pragma: no cover - fixed-point invariant violated
                raise RoutingError(
                    f"backtrack stuck at {node} routing to {target}",
                    "routing")
        return list(reversed(path))

    # -- top level ------------------------------------------------------------
    def route_all(self, specs: list[NetSpec]) -> RoutingResult:
        # Short nets first: they have the least flexibility.
        ordered = sorted(
            specs,
            key=lambda s: (_hpwl(s.terminals), s.name),
        )
        routes: dict[str, NetRoute] = {}
        for spec in ordered:
            route = self._initial_route(spec)
            self._commit(route.edges, +1)
            routes[spec.name] = route
        spec_by_name = {s.name: s for s in specs}

        tracer = current_tracer()
        iterations = 0
        with tracer.span("kernel.route.search"):
            for iteration in range(self.rrr_iterations):
                overflow_edges = self._overflowed_edges()
                if not overflow_edges:
                    break
                if iteration >= 2 and len(overflow_edges) > 100:
                    # Hopelessly over capacity: the run is invalid whatever
                    # further negotiation does; do not burn minutes on it.
                    iterations = iteration
                    break
                iterations = iteration + 1
                self.history_h += np.maximum(self.usage_h - self.grid.cap_h, 0) * 0.5
                self.history_v += np.maximum(self.usage_v - self.grid.cap_v, 0) * 0.5
                victims = [
                    name for name, route in routes.items()
                    if route.edges & overflow_edges
                ]
                # Longest victims reroute first: they have the most detours.
                victims.sort(key=lambda n: -len(routes[n].edges))
                for name in victims:
                    self._commit(routes[name].edges, -1)
                    new_route = self._maze_route(spec_by_name[name])
                    self._commit(new_route.edges, +1)
                    routes[name] = new_route

        over_h = np.maximum(self.usage_h - self.grid.cap_h, 0)
        over_v = np.maximum(self.usage_v - self.grid.cap_v, 0)
        result = RoutingResult(
            side=self.grid.side,
            grid=self.grid,
            routes=routes,
            overflow_edges=int((over_h > 0).sum() + (over_v > 0).sum()),
            total_overflow=float(over_h.sum() + over_v.sum()),
            iterations=iterations,
            usage_h=self.usage_h,
            usage_v=self.usage_v,
        )
        if tracer.enabled:
            side = self.grid.side.value
            tracer.gauge(f"route.{side}.nets", len(routes))
            tracer.gauge(f"route.{side}.wirelength_um",
                         result.total_wirelength_nm / 1000.0)
            tracer.gauge(f"route.{side}.drv", result.drv_count)
            tracer.gauge(f"route.{side}.overflow_edges", result.overflow_edges)
            tracer.gauge(f"route.{side}.rrr_iterations", iterations)
        return result

    def _overflowed_edges(self) -> set[Edge]:
        edges: set[Edge] = set()
        over_h = self.usage_h > self.grid.cap_h
        for r, c in zip(*np.nonzero(over_h)):
            edges.add(_norm_edge((int(c), int(r)), (int(c) + 1, int(r))))
        over_v = self.usage_v > self.grid.cap_v
        for r, c in zip(*np.nonzero(over_v)):
            edges.add(_norm_edge((int(c), int(r)), (int(c), int(r) + 1)))
        return edges


def _hpwl(terminals: list[Coord]) -> int:
    xs = [t[0] for t in terminals]
    ys = [t[1] for t in terminals]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))
