"""Congestion-driven global router with rip-up-and-reroute.

Each net is first routed as a Steiner-lite tree (Manhattan MST over its
terminals, each MST edge realized as the less congested of the two
L-shapes).  Overflowed nets are then ripped up and rerouted with an
A*-based maze router whose cost includes present congestion and a
negotiated-congestion history term, for a fixed number of iterations.

The result keeps per-net trees (unit gcell edges), so RC extraction can
build a real RC tree per net, and reports overflow as a DRV count — the
paper's validity criterion is fewer than 10 DRVs (Section IV).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ...core.errors import RoutingError
from ...tech import Side
from .grid import RoutingGrid

#: Cost multiplier for routing through an over-capacity edge.
OVERFLOW_PENALTY = 30.0
#: Weight of the accumulated history cost (negotiated congestion).
HISTORY_WEIGHT = 3.0
#: Rip-up-and-reroute iterations.
DEFAULT_RRR_ITERATIONS = 8

Coord = tuple[int, int]  # (col, row)
Edge = tuple[Coord, Coord]  # normalized: first < second


def _norm_edge(a: Coord, b: Coord) -> Edge:
    return (a, b) if a <= b else (b, a)


@dataclass
class NetSpec:
    """A routing request: one net on one wafer side."""

    name: str
    side: Side
    terminals: list[Coord]

    def __post_init__(self) -> None:
        self.terminals = sorted(set(self.terminals))


@dataclass
class NetRoute:
    """The routed tree of one net."""

    name: str
    side: Side
    terminals: list[Coord]
    edges: set[Edge] = field(default_factory=set)

    @property
    def wirelength_gcells(self) -> int:
        return len(self.edges)

    def h_steps(self) -> int:
        return sum(1 for (a, b) in self.edges if a[1] == b[1])

    def v_steps(self) -> int:
        return sum(1 for (a, b) in self.edges if a[0] == b[0])

    def bends(self) -> int:
        """Direction changes, a proxy for via count inside the tree."""
        by_node: dict[Coord, list[bool]] = {}
        for a, b in self.edges:
            horizontal = a[1] == b[1]
            by_node.setdefault(a, []).append(horizontal)
            by_node.setdefault(b, []).append(horizontal)
        return sum(
            1 for dirs in by_node.values()
            if len(set(dirs)) > 1
        )


@dataclass
class RoutingResult:
    """All routed nets on one side plus congestion statistics."""

    side: Side
    grid: RoutingGrid
    routes: dict[str, NetRoute]
    overflow_edges: int
    total_overflow: float
    iterations: int
    #: Final edge usage (same shapes as the grid capacity arrays).
    usage_h: np.ndarray | None = None
    usage_v: np.ndarray | None = None

    def congestion_of(self, net_name: str) -> float:
        """Mean usage/capacity ratio along one net's route (0 if empty)."""
        if self.usage_h is None or self.usage_v is None:
            return 0.0
        route = self.routes.get(net_name)
        if route is None or not route.edges:
            return 0.0
        total = 0.0
        for (c1, r1), (c2, r2) in route.edges:
            if r1 == r2:
                idx = (r1, min(c1, c2))
                total += self.usage_h[idx] / max(self.grid.cap_h[idx], 1e-6)
            else:
                idx = (min(r1, r2), c1)
                total += self.usage_v[idx] / max(self.grid.cap_v[idx], 1e-6)
        return total / len(route.edges)

    @property
    def drv_count(self) -> int:
        """DRV proxy: overflowed gcell edges plus pin-access violations."""
        return self.overflow_edges + self.grid.pin_access_drvs

    @property
    def total_wirelength_nm(self) -> float:
        return sum(r.wirelength_gcells for r in self.routes.values()) * \
            self.grid.gcell_nm


class GlobalRouter:
    """Routes a set of nets on one grid."""

    def __init__(self, grid: RoutingGrid,
                 rrr_iterations: int = DEFAULT_RRR_ITERATIONS) -> None:
        self.grid = grid
        self.rrr_iterations = rrr_iterations
        self.usage_h = np.zeros_like(grid.cap_h)
        self.usage_v = np.zeros_like(grid.cap_v)
        self.history_h = np.zeros_like(grid.cap_h)
        self.history_v = np.zeros_like(grid.cap_v)

    # -- edge bookkeeping ---------------------------------------------------
    def _edge_arrays(self, edge: Edge):
        (c1, r1), (c2, r2) = edge
        if r1 == r2:  # horizontal step
            return self.usage_h, self.grid.cap_h, self.history_h, (r1, min(c1, c2))
        return self.usage_v, self.grid.cap_v, self.history_v, (min(r1, r2), c1)

    def _edge_cost(self, edge: Edge) -> float:
        usage, cap, history, idx = self._edge_arrays(edge)
        cost = 1.0 + HISTORY_WEIGHT * history[idx]
        if usage[idx] + 1 > cap[idx]:
            cost += OVERFLOW_PENALTY * (usage[idx] + 1 - cap[idx])
        return cost

    def _commit(self, edges: set[Edge], delta: int) -> None:
        for edge in edges:
            usage, _cap, _hist, idx = self._edge_arrays(edge)
            usage[idx] += delta

    # -- initial pattern routing ----------------------------------------------
    def _mst_pairs(self, terminals: list[Coord]) -> list[tuple[Coord, Coord]]:
        """Prim's MST under Manhattan distance."""
        if len(terminals) < 2:
            return []
        in_tree = [terminals[0]]
        rest = set(terminals[1:])
        pairs = []
        best: dict[Coord, tuple[int, Coord]] = {
            t: (abs(t[0] - terminals[0][0]) + abs(t[1] - terminals[0][1]),
                terminals[0])
            for t in rest
        }
        while rest:
            t = min(rest, key=lambda t: best[t][0])
            dist, anchor = best[t]
            pairs.append((anchor, t))
            rest.remove(t)
            in_tree.append(t)
            for other in rest:
                d = abs(other[0] - t[0]) + abs(other[1] - t[1])
                if d < best[other][0]:
                    best[other] = (d, t)
        return pairs

    def _l_route(self, a: Coord, b: Coord) -> set[Edge]:
        """The cheaper of the two L-shaped connections a->b."""
        def path_edges(corner: Coord) -> set[Edge]:
            edges = set()
            for p, q in ((a, corner), (corner, b)):
                if p[0] == q[0]:
                    for r in range(min(p[1], q[1]), max(p[1], q[1])):
                        edges.add(_norm_edge((p[0], r), (p[0], r + 1)))
                else:
                    for c in range(min(p[0], q[0]), max(p[0], q[0])):
                        edges.add(_norm_edge((c, p[1]), (c + 1, p[1])))
            return edges

        option1 = path_edges((b[0], a[1]))
        option2 = path_edges((a[0], b[1]))
        if a[0] == b[0] or a[1] == b[1]:
            return option1
        cost1 = sum(self._edge_cost(e) for e in option1)
        cost2 = sum(self._edge_cost(e) for e in option2)
        return option1 if cost1 <= cost2 else option2

    def _initial_route(self, spec: NetSpec) -> NetRoute:
        route = NetRoute(spec.name, spec.side, spec.terminals)
        for a, b in self._mst_pairs(spec.terminals):
            route.edges |= self._l_route(a, b)
        return route

    # -- maze rerouting -----------------------------------------------------
    def _maze_route(self, spec: NetSpec) -> NetRoute:
        """Grow a tree from the first terminal to all others with A*.

        The search is bounded to the net's bounding box plus a detour
        margin, which keeps rip-up-and-reroute fast on large grids.
        """
        route = NetRoute(spec.name, spec.side, spec.terminals)
        xs = [t[0] for t in spec.terminals]
        ys = [t[1] for t in spec.terminals]
        margin = 6
        box = (max(min(xs) - margin, 0), max(min(ys) - margin, 0),
               min(max(xs) + margin, self.grid.cols - 1),
               min(max(ys) + margin, self.grid.rows - 1))
        tree_nodes: set[Coord] = {spec.terminals[0]}
        for target in spec.terminals[1:]:
            if target in tree_nodes:
                continue
            path = self._astar(tree_nodes, target, box)
            for a, b in zip(path, path[1:]):
                route.edges.add(_norm_edge(a, b))
            tree_nodes.update(path)
        return route

    def _astar(self, sources: set[Coord], target: Coord,
               box: tuple[int, int, int, int] | None = None) -> list[Coord]:
        if box is None:
            box = (0, 0, self.grid.cols - 1, self.grid.rows - 1)
        x0, y0, x1, y1 = box

        def heuristic(node: Coord) -> float:
            return abs(node[0] - target[0]) + abs(node[1] - target[1])

        open_heap = [(heuristic(s), 0.0, s) for s in sources]
        heapq.heapify(open_heap)
        best_cost = {s: 0.0 for s in sources}
        parent: dict[Coord, Coord] = {}
        while open_heap:
            _f, g, node = heapq.heappop(open_heap)
            if node == target:
                break
            if g > best_cost.get(node, float("inf")):
                continue
            c, r = node
            for nxt in ((c + 1, r), (c - 1, r), (c, r + 1), (c, r - 1)):
                if not (x0 <= nxt[0] <= x1 and y0 <= nxt[1] <= y1):
                    continue
                ng = g + self._edge_cost(_norm_edge(node, nxt))
                if ng < best_cost.get(nxt, float("inf")):
                    best_cost[nxt] = ng
                    parent[nxt] = node
                    heapq.heappush(open_heap, (ng + heuristic(nxt), ng, nxt))
        if target not in best_cost:
            raise RoutingError(f"maze routing failed to reach {target}",
                               "routing")
        path = [target]
        while path[-1] in parent:
            path.append(parent[path[-1]])
        return list(reversed(path))

    # -- top level ------------------------------------------------------------
    def route_all(self, specs: list[NetSpec]) -> RoutingResult:
        # Short nets first: they have the least flexibility.
        ordered = sorted(
            specs,
            key=lambda s: (_hpwl(s.terminals), s.name),
        )
        routes: dict[str, NetRoute] = {}
        for spec in ordered:
            route = self._initial_route(spec)
            self._commit(route.edges, +1)
            routes[spec.name] = route
        spec_by_name = {s.name: s for s in specs}

        iterations = 0
        for iteration in range(self.rrr_iterations):
            overflow_edges = self._overflowed_edges()
            if not overflow_edges:
                break
            if iteration >= 2 and len(overflow_edges) > 100:
                # Hopelessly over capacity: the run is invalid whatever
                # further negotiation does; do not burn minutes on it.
                iterations = iteration
                break
            iterations = iteration + 1
            self.history_h += np.maximum(self.usage_h - self.grid.cap_h, 0) * 0.5
            self.history_v += np.maximum(self.usage_v - self.grid.cap_v, 0) * 0.5
            victims = [
                name for name, route in routes.items()
                if route.edges & overflow_edges
            ]
            # Longest victims reroute first: they have the most detours.
            victims.sort(key=lambda n: -len(routes[n].edges))
            for name in victims:
                self._commit(routes[name].edges, -1)
                new_route = self._maze_route(spec_by_name[name])
                self._commit(new_route.edges, +1)
                routes[name] = new_route

        over_h = np.maximum(self.usage_h - self.grid.cap_h, 0)
        over_v = np.maximum(self.usage_v - self.grid.cap_v, 0)
        result = RoutingResult(
            side=self.grid.side,
            grid=self.grid,
            routes=routes,
            overflow_edges=int((over_h > 0).sum() + (over_v > 0).sum()),
            total_overflow=float(over_h.sum() + over_v.sum()),
            iterations=iterations,
            usage_h=self.usage_h,
            usage_v=self.usage_v,
        )
        from ...core.telemetry import current_tracer
        tracer = current_tracer()
        if tracer.enabled:
            side = self.grid.side.value
            tracer.gauge(f"route.{side}.nets", len(routes))
            tracer.gauge(f"route.{side}.wirelength_um",
                         result.total_wirelength_nm / 1000.0)
            tracer.gauge(f"route.{side}.drv", result.drv_count)
            tracer.gauge(f"route.{side}.overflow_edges", result.overflow_edges)
            tracer.gauge(f"route.{side}.rrr_iterations", iterations)
        return result

    def _overflowed_edges(self) -> set[Edge]:
        edges: set[Edge] = set()
        over_h = self.usage_h > self.grid.cap_h
        for r, c in zip(*np.nonzero(over_h)):
            edges.add(_norm_edge((int(c), int(r)), (int(c) + 1, int(r))))
        over_v = self.usage_v > self.grid.cap_v
        for r, c in zip(*np.nonzero(over_v)):
            edges.add(_norm_edge((int(c), int(r)), (int(c), int(r) + 1)))
        return edges


def _hpwl(terminals: list[Coord]) -> int:
    xs = [t[0] for t in terminals]
    ys = [t[1] for t in terminals]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))
