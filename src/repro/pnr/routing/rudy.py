"""RUDY: pre-route congestion estimation from a placement.

Rectangular Uniform wire DensitY (Spindler & Johannes): each net
spreads its expected wirelength uniformly over its bounding box, and
the per-gcell sum predicts routing demand before any routing runs.
Used for early feedback (e.g. to compare pin-density DoEs cheaply) and
validated in the tests against the real router's usage map.
"""

from __future__ import annotations

import numpy as np

from ...cells import Library
from ...netlist import Netlist
from ..geometry import Die
from ..placement import Placement


def rudy_map(netlist: Netlist, placement: Placement, die: Die,
             gcell_nm: float = 480.0) -> np.ndarray:
    """(rows, cols) array of estimated routing demand per gcell."""
    cols = max(1, int(np.ceil(die.width_nm / gcell_nm)))
    rows = max(1, int(np.ceil(die.height_nm / gcell_nm)))
    demand = np.zeros((rows, cols))

    for net_name in netlist.nets:
        points = placement.net_points(netlist, net_name)
        if len(points) < 2:
            continue
        x0 = min(p.x_nm for p in points)
        x1 = max(p.x_nm for p in points)
        y0 = min(p.y_nm for p in points)
        y1 = max(p.y_nm for p in points)
        hpwl = (x1 - x0) + (y1 - y0)
        if hpwl == 0:
            continue
        width = max(x1 - x0, gcell_nm)
        height = max(y1 - y0, gcell_nm)
        density = hpwl / (width * height)  # wire per unit area

        c0 = int(x0 // gcell_nm)
        c1 = min(int(x1 // gcell_nm), cols - 1)
        r0 = int(y0 // gcell_nm)
        r1 = min(int(y1 // gcell_nm), rows - 1)
        demand[r0:r1 + 1, c0:c1 + 1] += density * gcell_nm
    return demand


def peak_congestion_estimate(netlist: Netlist, placement: Placement,
                             die: Die, capacity_tracks: float,
                             gcell_nm: float = 480.0) -> float:
    """Worst RUDY demand over capacity — a quick routability screen."""
    demand = rudy_map(netlist, placement, die, gcell_nm)
    if demand.size == 0 or capacity_tracks <= 0:
        return 0.0
    return float(demand.max() / capacity_tracks)
