"""Static IR-drop analysis of the backside power delivery network.

Section III.B: the powerplan must "ensure the power integrity and the
even distribution of power supply across both sides of the chip".
This module checks that: the BSPDN is modeled as vertical stripes
feeding horizontal M0 rails (one per row), each rail a resistive line
tapped at every stripe crossing; cell currents (from leakage plus
dynamic power at an operating point) load the rails, and the worst
voltage drop is solved row by row.

For the FFET's frontside VSS rails the current additionally crosses the
Power Tap Cell resistance; for the CFET's BPR it crosses the nTSV.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cells import VDD_V, Library
from ..netlist import Netlist
from .placement import Placement
from .powerplan import PowerPlan

#: Resistance of one M0 power-rail segment per micron, kOhm.
RAIL_RES_KOHM_PER_UM = 0.45
#: Resistance of a PDN stripe per micron (thick backside metal), kOhm.
STRIPE_RES_KOHM_PER_UM = 0.010
#: Power Tap Cell / nTSV series resistance, kOhm.
TAP_RES_KOHM = 0.050


@dataclass(frozen=True)
class IrDropReport:
    """Worst-case static IR drop of one supply net."""

    net: str
    worst_drop_mv: float
    mean_drop_mv: float
    worst_row: int
    total_current_ma: float

    @property
    def worst_drop_fraction(self) -> float:
        return self.worst_drop_mv / (VDD_V * 1000.0)

    @property
    def ok(self) -> bool:
        """Common sign-off bound: below 5 % of the supply."""
        return self.worst_drop_fraction < 0.05


def analyze_ir_drop(netlist: Netlist, library: Library,
                    placement: Placement, powerplan: PowerPlan,
                    total_power_mw: float, net: str = "VSS") -> IrDropReport:
    """Solve the per-row rail drops for one supply net.

    Cell currents are apportioned from ``total_power_mw`` by cell area
    (a standard static-IR approximation).  Each row's rail is a
    resistive line with taps at the stripe positions; between two taps
    the worst point is mid-span, solved with the standard distributed-
    load formula.
    """
    die = placement.die
    tap_xs = sorted({
        (tap.site + tap.width_sites / 2.0) * die.site_width_nm
        for tap in powerplan.tap_cells
    })
    if not tap_xs:
        # Backside VDD rails tap the stripes directly below them.
        tap_xs = sorted({s.x_nm for s in powerplan.stripes if s.net == net})
    if not tap_xs:
        raise ValueError(f"powerplan has no taps or stripes for {net}")

    total_area = netlist.total_cell_area_nm2(library)
    total_current_ma = total_power_mw / VDD_V  # I = P / V

    # Current per row, by placed area.
    row_current = np.zeros(die.rows)
    for name, inst in netlist.instances.items():
        area = library[inst.master].area_nm2(library.tech)
        row = die.row_of(placement.locations[name].y_nm)
        row_current[row] += total_current_ma * area / total_area

    worst = 0.0
    worst_row = 0
    drops = []
    for row in range(die.rows):
        current = row_current[row]
        if current <= 0:
            drops.append(0.0)
            continue
        # Uniform current density along the row; each span between taps
        # sees its share.  Worst point of a span fed from both ends with
        # uniform load: I_span * R_span / 8; end spans (fed one side):
        # I_span * R_span / 2.
        row_drop = 0.0
        boundaries = [0.0] + tap_xs + [die.width_nm]
        for i, (x0, x1) in enumerate(zip(boundaries, boundaries[1:])):
            span_nm = x1 - x0
            if span_nm <= 0:
                continue
            span_current = current * span_nm / die.width_nm
            span_res = RAIL_RES_KOHM_PER_UM * span_nm / 1000.0
            both_ends = 0 < i < len(boundaries) - 2
            factor = 1.0 / 8.0 if both_ends else 1.0 / 2.0
            drop = span_current * span_res * factor * 1000.0  # mA*kOhm=V -> mV
            row_drop = max(row_drop, drop)
        # Series tap and stripe contribution (stripe feeds die.rows rows;
        # the row current splits over the row's taps).
        tap_drop = current / max(len(tap_xs), 1) * TAP_RES_KOHM * 1000.0
        stripe_res = STRIPE_RES_KOHM_PER_UM * die.height_nm / 1000.0 / 2.0
        stripe_drop = (total_current_ma / max(len(tap_xs), 1)) * \
            stripe_res * 1000.0 / die.rows
        total_drop = row_drop + tap_drop + stripe_drop
        drops.append(total_drop)
        if total_drop > worst:
            worst = total_drop
            worst_row = row

    return IrDropReport(
        net=net,
        worst_drop_mv=worst,
        mean_drop_mv=float(np.mean(drops)),
        worst_row=worst_row,
        total_current_ma=total_current_ma,
    )
