"""FFET dual-sided physical implementation and block-level PPA framework.

Reproduction of "A Tale of Two Sides of Wafer: Physical Implementation
and Block-Level PPA on Flip FET with Dual-Sided Signals" (DATE 2025).

Quickstart::

    from repro import make_ffet_node, make_cfet_node, build_library

    ffet = build_library(make_ffet_node())
    cfet = build_library(make_cfet_node())
"""

from .tech import Side, TechNode, make_cfet_node, make_ffet_node
from .cells import (
    Library,
    build_library,
    cell_area_table,
    library_kpi_diff,
    pin_density_label,
    redistribute_input_pins,
)

__version__ = "1.0.0"

__all__ = [
    "Library",
    "Side",
    "TechNode",
    "__version__",
    "build_library",
    "cell_area_table",
    "library_kpi_diff",
    "make_cfet_node",
    "make_ffet_node",
    "pin_density_label",
    "redistribute_input_pins",
]
