"""Dual-sided RC extraction from the merged DEF (Section III.C).

Per net, the routed segments (frontside and backside layers together)
form an RC graph: each segment contributes resistance and capacitance
from its layer's Table-II-derived constants, plus via resistance where
the net climbs from the cell pins (M0) to its routing tier.  Sinks
attach at their cell locations with their pin capacitance; the driver
is the root.  The result feeds STA (Elmore wire delays, driver loads)
and power (switched capacitance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..cells import Library
from ..core import kernels
from ..core.telemetry import current_tracer
from ..lefdef.def_ import DefDesign, RouteSegment
from ..netlist import Netlist
from ..pnr.placement import Placement, pin_point
from ..tech import Side, Stackup
from .rc import NetParasitics, RCTree, elmore_forest

#: Resistance of one via cut between adjacent metal levels, kOhm.
VIA_RES_KOHM = 0.035


def _layer_level(layer_name: str) -> int:
    return int(layer_name[2:])


@dataclass
class Extraction:
    """All per-net parasitics of a design."""

    nets: dict[str, NetParasitics] = field(default_factory=dict)

    def __getitem__(self, net: str) -> NetParasitics:
        return self.nets[net]

    def __contains__(self, net: str) -> bool:
        return net in self.nets

    @property
    def total_wire_cap_ff(self) -> float:
        return sum(p.wire_cap_ff for p in self.nets.values())

    @property
    def total_wirelength_nm(self) -> float:
        return sum(p.wirelength_nm for p in self.nets.values())


def _net_pins(netlist: Netlist, library: Library, net_name: str,
              cap_memo: dict[tuple[str, str], float] | None = None):
    """Driver (inst, pin) or None, and [(inst, pin, cap_ff)] sinks.

    ``cap_memo`` caches pin capacitance per (master, pin) across nets
    of one extraction call — the values are identical either way.
    """
    net = netlist.nets[net_name]
    sinks = []
    for inst_name, pin_name in net.sinks:
        master_name = netlist.instances[inst_name].master
        if cap_memo is None:
            cap = library[master_name].pin(pin_name).cap_ff
        else:
            key = (master_name, pin_name)
            cap = cap_memo.get(key)
            if cap is None:
                cap = library[master_name].pin(pin_name).cap_ff
                cap_memo[key] = cap
        sinks.append((inst_name, pin_name, cap))
    return net.driver, sinks


@dataclass
class _NetBuild:
    """One net's RC tree plus everything needed to finalize it."""

    net: str
    tree: RCTree
    sink_keys: dict[tuple[str, str], tuple]
    pin_cap_total: float
    wire_res: float
    wirelength: float
    back_wirelength: float
    via_count: int


def _prepare_net(net_name: str, segments: list[RouteSegment],
                 stackup: Stackup, driver_xy: tuple[float, float] | None,
                 sinks: list[tuple[str, str, float, tuple[float, float]]],
                 rc_scale: float = 1.0) -> _NetBuild:
    """Build one net's RC tree (everything except the Elmore solve)."""
    root = ("root",)
    tree = RCTree(root=root)

    endpoints: list[tuple[float, float]] = []
    wirelength = 0.0
    back_wirelength = 0.0
    via_count = 0
    max_level = 0
    for seg in segments:
        layer = stackup[seg.layer]
        max_level = max(max_level, layer.index)
        length_um = seg.length_nm / 1000.0
        wirelength += seg.length_nm
        if seg.layer.startswith("BM"):
            back_wirelength += seg.length_nm
        r = layer.resistance_kohm_per_um * length_um * rc_scale
        c = layer.capacitance_ff_per_um * length_um * rc_scale
        a = (round(seg.x1_nm), round(seg.y1_nm))
        b = (round(seg.x2_nm), round(seg.y2_nm))
        tree.add_cap(a, c / 2.0)
        tree.add_cap(b, c / 2.0)
        if a != b:
            tree.add_edge(a, b, max(r, 1e-6))
        endpoints.append((seg.x1_nm, seg.y1_nm))
        endpoints.append((seg.x2_nm, seg.y2_nm))

    if len(endpoints) >= 32 and kernels.use_numpy_kernels():
        # Vectorized nearest-endpoint search, worthwhile only on nets
        # with many segments.  ``np.argmin`` returns the first minimum,
        # exactly like the scalar ``min`` over indices, and the
        # Manhattan distances are the same IEEE-754 expressions — so
        # both modes pick the same endpoint at any threshold.
        ex = np.array([e[0] for e in endpoints])
        ey = np.array([e[1] for e in endpoints])

        def nearest(xy: tuple[float, float]):
            best = int(np.argmin(np.abs(ex - xy[0]) + np.abs(ey - xy[1])))
            e = endpoints[best]
            return (round(e[0]), round(e[1]))
    else:
        def nearest(xy: tuple[float, float]):
            if not endpoints:
                return None
            best = min(
                range(len(endpoints)),
                key=lambda i: abs(endpoints[i][0] - xy[0]) + abs(endpoints[i][1] - xy[1]),
            )
            e = endpoints[best]
            return (round(e[0]), round(e[1]))

    # Via stack from the pins (M0) up to the routing tier.
    stack_r = VIA_RES_KOHM * max(max_level, 1) if segments else 0.0

    if driver_xy is not None and endpoints:
        tree.add_edge(root, nearest(driver_xy), stack_r)

    sink_keys: dict[tuple[str, str], tuple] = {}
    pin_cap_total = 0.0
    for i, (inst, pin, cap, xy) in enumerate(sinks):
        pin_cap_total += cap
        key = ("sink", i)
        attach = nearest(xy) if endpoints else root
        tree.add_edge(attach if attach is not None else root, key, stack_r)
        tree.add_cap(key, cap)
        sink_keys[(inst, pin)] = key
        via_count += max_level if segments else 0

    wire_res = rc_scale * sum(
        stackup[seg.layer].resistance_kohm_per_um * seg.length_nm / 1000.0
        for seg in segments
    )
    return _NetBuild(
        net=net_name,
        tree=tree,
        sink_keys=sink_keys,
        pin_cap_total=pin_cap_total,
        wire_res=wire_res,
        wirelength=wirelength,
        back_wirelength=back_wirelength,
        via_count=via_count,
    )


def _finalize_net(build: _NetBuild, delays: dict) -> NetParasitics:
    """Turn a built tree plus its Elmore solution into parasitics."""
    sink_elmore = {}
    for (inst, pin), key in build.sink_keys.items():
        sink_elmore[(inst, pin)] = delays.get(key, 0.0)
    wire_cap = build.tree.total_cap_ff - build.pin_cap_total
    return NetParasitics(
        net=build.net,
        wire_cap_ff=wire_cap,
        wire_res_kohm=build.wire_res,
        pin_cap_ff=build.pin_cap_total,
        sink_elmore_ps=sink_elmore,
        wirelength_nm=build.wirelength,
        via_count=build.via_count,
        back_wirelength_nm=build.back_wirelength,
    )


def extract_net(net_name: str, segments: list[RouteSegment],
                stackup: Stackup, driver_xy: tuple[float, float] | None,
                sinks: list[tuple[str, str, float, tuple[float, float]]],
                rc_scale: float = 1.0) -> NetParasitics:
    """Extract one net from its routed segments.

    ``sinks`` rows are (instance, pin, pin cap, (x, y)).  ``rc_scale``
    derates wire R and C for congestion (detailed-routing detours and
    coupling in crowded regions).
    """
    build = _prepare_net(net_name, segments, stackup, driver_xy, sinks,
                         rc_scale)
    return _finalize_net(build, build.tree.elmore_ps())


def extract_design(merged: DefDesign, netlist: Netlist, library: Library,
                   placement: Placement,
                   rc_derates: dict[str, float] | None = None) -> Extraction:
    """Extract every net of a routed design from its merged DEF.

    ``rc_derates`` maps net names to congestion derate factors >= 1
    (see :func:`congestion_derates`).
    """
    stackup = library.tech.stackup
    extraction = Extraction()
    rc_derates = rc_derates or {}
    tracer = current_tracer()
    cap_memo: dict[tuple[str, str], float] = {}
    builds: list[_NetBuild] = []
    for net_name in netlist.nets:
        driver, sink_pins = _net_pins(netlist, library, net_name, cap_memo)
        if driver is not None:
            drv_master = library[netlist.instances[driver[0]].master]
            p = pin_point(placement, drv_master, driver[0], driver[1])
            driver_xy = (p.x_nm, p.y_nm)
        else:
            pad = placement.io_pins.get(net_name)
            driver_xy = (pad.x_nm, pad.y_nm) if pad else None
        sinks = []
        for inst, pin, cap in sink_pins:
            master = library[netlist.instances[inst].master]
            p = pin_point(placement, master, inst, pin)
            sinks.append((inst, pin, cap, (p.x_nm, p.y_nm)))
        segments = merged.nets.get(net_name, [])
        builds.append(_prepare_net(
            net_name, segments, stackup, driver_xy, sinks,
            rc_scale=rc_derates.get(net_name, 1.0),
        ))
    # Elmore solve: one batched forest pass (numpy kernel) or the
    # per-tree scalar reference — bit-equal either way.
    with tracer.span("kernel.extract.elmore"):
        if kernels.use_numpy_kernels():
            all_delays = elmore_forest(
                [b.tree for b in builds],
                wanted=[list(b.sink_keys.values()) for b in builds])
        else:
            all_delays = [b.tree.elmore_ps() for b in builds]
    for build, delays in zip(builds, all_delays):
        extraction.nets[build.net] = _finalize_net(build, delays)
    if tracer.enabled:
        tracer.count("kernel.extract.nets", len(builds))
        tracer.count("kernel.extract.nodes",
                     sum(len(b.tree.cap_ff) for b in builds))
        tracer.gauge("extract.nets", len(extraction.nets))
        tracer.gauge("extract.derated_nets", len(rc_derates))
        tracer.gauge("extract.total_wire_cap_ff", extraction.total_wire_cap_ff)
    return extraction


#: Congestion level below which detailed routing is unaffected.
CONGESTION_DERATE_FLOOR = 0.25
#: Wire RC increase per unit of congestion above the floor.
CONGESTION_DERATE_SLOPE = 2.0


def congestion_derates(routing_results: dict) -> dict[str, float]:
    """Per-net RC derates from global-routing congestion.

    Detailed routing in crowded regions detours and suffers coupling;
    commercial extraction sees that as higher wire RC.  The derate is
    linear in the mean usage/capacity along the net's route, above a
    floor, taking the worst of the two wafer sides.
    """
    derates: dict[str, float] = {}
    for result in routing_results.values():
        for net_name in result.routes:
            ratio = result.congestion_of(net_name)
            factor = 1.0 + CONGESTION_DERATE_SLOPE * max(
                0.0, ratio - CONGESTION_DERATE_FLOOR)
            if factor > derates.get(net_name, 1.0):
                derates[net_name] = factor
    return derates


def estimate_parasitics(netlist: Netlist, library: Library,
                        placement: Placement | None = None,
                        cap_per_um_ff: float = 0.22,
                        res_per_um_kohm: float = 0.55,
                        fanout_length_um: float = 0.70) -> Extraction:
    """Pre-route wireload estimate (for synthesis-time sizing).

    With a placement, net length is estimated from HPWL; without one, a
    fanout-based wireload model is used, like synthesis tools do.
    """
    extraction = Extraction()
    cap_memo: dict[tuple[str, str], float] = {}
    for net_name, net in netlist.nets.items():
        driver, sink_pins = _net_pins(netlist, library, net_name, cap_memo)
        if placement is not None:
            points = placement.net_points(netlist, net_name)
            if len(points) >= 2:
                xs = [p.x_nm for p in points]
                ys = [p.y_nm for p in points]
                length_um = ((max(xs) - min(xs)) + (max(ys) - min(ys))) / 1000.0
            else:
                length_um = 0.0
        else:
            length_um = fanout_length_um * max(len(sink_pins), 1)
        wire_cap = cap_per_um_ff * length_um
        wire_res = res_per_um_kohm * length_um
        pin_cap = sum(cap for _i, _p, cap in sink_pins)
        # Lumped-pi estimate: every sink sees half the wire RC.
        elmore = 0.5 * wire_res * (wire_cap + pin_cap)
        extraction.nets[net_name] = NetParasitics(
            net=net_name,
            wire_cap_ff=wire_cap,
            wire_res_kohm=wire_res,
            pin_cap_ff=pin_cap,
            sink_elmore_ps={(i, p): elmore for i, p, _c in sink_pins},
            wirelength_nm=length_um * 1000.0,
        )
    return extraction


def estimate_loads(netlist: Netlist, library: Library,
                   cap_per_um_ff: float = 0.22,
                   fanout_length_um: float = 0.70) -> dict[str, float]:
    """Driver loads only, under the fanout wireload model.

    Bit-equal to ``estimate_parasitics(netlist, library)[net]
    .total_cap_ff`` for every net (the same operations in the same
    order: ``cap_per_um * length + sum(pin caps in sink order)``) but
    without building any :class:`NetParasitics`.  The sizing loop's
    overloaded-driver scan needs nothing else, and this is roughly half
    of its wireload-model cost.
    """
    loads: dict[str, float] = {}
    cap_memo: dict[tuple[str, str], float] = {}
    for net_name, net in netlist.nets.items():
        pin_cap = 0.0
        for inst_name, pin_name in net.sinks:
            key = (netlist.instances[inst_name].master, pin_name)
            cap = cap_memo.get(key)
            if cap is None:
                cap = library[key[0]].pin(pin_name).cap_ff
                cap_memo[key] = cap
            pin_cap += cap
        length_um = fanout_length_um * max(len(net.sinks), 1)
        loads[net_name] = cap_per_um_ff * length_um + pin_cap
    return loads
