"""SPEF writer: serialize extracted parasitics in IEEE 1481 style.

StarRC (the paper's extraction tool) emits SPEF for the STA engine; we
mirror that interface so downstream tools (or golden-file tests) can
consume the dual-sided extraction results.  The writer emits the lumped
summary form: ``*D_NET`` with total capacitance, ``*CONN`` sections and
a single lumped ``*RES`` per net (our RC trees live in
:class:`~repro.extract.rc.NetParasitics`; SPEF's distributed form adds
no information to the Elmore summaries we carry).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..netlist import Netlist
from .extract import Extraction

_HEADER = """*SPEF "IEEE 1481-1998"
*DESIGN "{design}"
*VENDOR "ffet-repro"
*PROGRAM "repro.extract.spef"
*DIVIDER /
*DELIMITER :
*BUS_DELIMITER [ ]
*T_UNIT 1 PS
*C_UNIT 1 FF
*R_UNIT 1 KOHM
*L_UNIT 1 HENRY
"""


def write_spef(netlist: Netlist, extraction: Extraction) -> str:
    """Serialize every extracted net as a SPEF ``*D_NET`` section."""
    out = [_HEADER.format(design=netlist.name)]
    for net_name in sorted(netlist.nets):
        if net_name not in extraction:
            continue
        p = extraction[net_name]
        net = netlist.nets[net_name]
        out.append(f"*D_NET {net_name} {p.total_cap_ff:.6f}")
        out.append("*CONN")
        if net.driver is not None:
            inst, pin = net.driver
            out.append(f"*I {inst}:{pin} O")
        elif net.is_primary_input:
            out.append(f"*P {net_name} I")
        for inst, pin in net.sinks:
            out.append(f"*I {inst}:{pin} I")
        out.append("*CAP")
        out.append(f"1 {net_name}:1 {p.wire_cap_ff:.6f}")
        out.append("*RES")
        out.append(f"1 {net_name}:1 {net_name}:2 {p.wire_res_kohm:.6f}")
        out.append("*END")
        out.append("")
    return "\n".join(out)


@dataclass
class SpefNet:
    """One parsed ``*D_NET`` section."""

    name: str
    total_cap_ff: float
    driver: tuple[str, str] | None = None
    sinks: list[tuple[str, str]] = field(default_factory=list)
    wire_cap_ff: float = 0.0
    wire_res_kohm: float = 0.0


def parse_spef(text: str) -> dict[str, SpefNet]:
    """Parse the subset written by :func:`write_spef`."""
    nets: dict[str, SpefNet] = {}
    current: SpefNet | None = None
    section = ""
    for raw in text.splitlines():
        line = raw.strip()
        if line.startswith("*D_NET"):
            _kw, name, cap = line.split()
            current = SpefNet(name=name, total_cap_ff=float(cap))
            nets[name] = current
            section = ""
        elif line in ("*CONN", "*CAP", "*RES"):
            section = line
        elif line == "*END":
            current = None
        elif current is None:
            continue
        elif section == "*CONN" and line.startswith("*I "):
            _kw, conn, direction = line.split()
            inst, pin = conn.split(":")
            if direction == "O":
                current.driver = (inst, pin)
            else:
                current.sinks.append((inst, pin))
        elif section == "*CAP" and re.match(r"\d+ ", line):
            current.wire_cap_ff = float(line.split()[-1])
        elif section == "*RES" and re.match(r"\d+ ", line):
            current.wire_res_kohm = float(line.split()[-1])
    return nets
