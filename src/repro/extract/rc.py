"""RC trees and Elmore delay computation.

:meth:`RCTree.elmore_ps` is the scalar reference; :func:`elmore_forest`
is the numpy kernel that evaluates *all* of a design's RC trees in one
level-ordered batch (see :mod:`repro.core.kernels`).  Both accumulate
each node's subtree capacitance over its children in BFS-discovery
order and each delay as ``delay[parent] + res * subtree_cap`` — the
identical IEEE-754 operations in the identical order — so the two are
bit-equal, which ``tests/test_kernel_equivalence.py`` pins.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable

import numpy as np


@dataclass
class RCTree:
    """A grounded-capacitance RC network rooted at the driver node.

    Built as a graph; loops (overlapping route segments) are tolerated —
    Elmore evaluation uses a BFS spanning tree from the root, which is
    the standard conservative treatment.
    """

    root: Hashable
    cap_ff: dict[Hashable, float] = field(default_factory=dict)
    adj: dict[Hashable, list[tuple[Hashable, float]]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.cap_ff.setdefault(self.root, 0.0)
        self.adj.setdefault(self.root, [])

    def add_node(self, node: Hashable, cap_ff: float = 0.0) -> None:
        self.cap_ff[node] = self.cap_ff.get(node, 0.0) + cap_ff
        self.adj.setdefault(node, [])

    def add_cap(self, node: Hashable, cap_ff: float) -> None:
        self.add_node(node, cap_ff)

    def add_edge(self, a: Hashable, b: Hashable, res_kohm: float) -> None:
        self.add_node(a)
        self.add_node(b)
        self.adj[a].append((b, res_kohm))
        self.adj[b].append((a, res_kohm))

    @property
    def total_cap_ff(self) -> float:
        return sum(self.cap_ff.values())

    def spanning_tree(self) -> dict[Hashable, tuple[Hashable, float]]:
        """BFS parents: node -> (parent, edge resistance)."""
        parents: dict[Hashable, tuple[Hashable, float]] = {}
        seen = {self.root}
        queue = deque([self.root])
        while queue:
            node = queue.popleft()
            for neighbor, res in self.adj[node]:
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                parents[neighbor] = (node, res)
                queue.append(neighbor)
        return parents

    def elmore_ps(self) -> dict[Hashable, float]:
        """Elmore delay (ps) from the root to every reachable node."""
        parents = self.spanning_tree()
        children: dict[Hashable, list[Hashable]] = {}
        for node, (parent, _res) in parents.items():
            children.setdefault(parent, []).append(node)

        # Post-order subtree capacitance.
        subtree_cap: dict[Hashable, float] = {}
        order: list[Hashable] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(children.get(node, ()))
        for node in reversed(order):
            cap = self.cap_ff.get(node, 0.0)
            for child in children.get(node, ()):
                cap += subtree_cap[child]
            subtree_cap[node] = cap

        # Pre-order delay accumulation.
        delay: dict[Hashable, float] = {self.root: 0.0}
        for node in order:
            for child in children.get(node, ()):
                _parent, res = parents[child]
                delay[child] = delay[node] + res * subtree_cap[child]
        return delay

    def is_connected(self, node: Hashable) -> bool:
        if node == self.root:
            return True
        return node in self.spanning_tree()


def elmore_forest(trees: list["RCTree"],
                  wanted: list[list[Hashable]] | None = None,
                  ) -> list[dict[Hashable, float]]:
    """Elmore delays for many trees at once (the numpy kernel).

    Flattens every tree's BFS spanning forest into level-indexed
    arrays, then runs one bottom-up subtree-capacitance pass and one
    top-down delay pass per depth level — each level a handful of
    vectorized scatter/gather operations across *all* trees.  Within a
    level, ``np.add.at`` applies updates in index order, which is BFS
    discovery order, i.e. exactly the per-parent child order the scalar
    :meth:`RCTree.elmore_ps` accumulates in — so results are bit-equal.

    Returns one ``{node: delay_ps}`` dict per input tree, covering the
    nodes reachable from each root (same contract as ``elmore_ps``).
    With ``wanted`` (one node list per tree), each dict is restricted
    to the listed nodes that are reachable — extraction only ever reads
    the sink taps, and skipping the full dict build is most of the
    kernel's win on small nets.
    """
    index_per_tree: list[dict[Hashable, int]] = []
    caps: list[float] = []
    par: list[int] = []
    res: list[float] = []
    depth: list[int] = []
    for tree in trees:
        base = len(caps)
        parents = tree.spanning_tree()
        nodes = [tree.root, *parents]    # BFS discovery order
        index = {node: base + i for i, node in enumerate(nodes)}
        index_per_tree.append(index)
        caps.append(tree.cap_ff.get(tree.root, 0.0))
        par.append(-1)
        res.append(0.0)
        depth.append(0)
        cap_ff = tree.cap_ff
        for node, (parent, edge_res) in parents.items():
            pi = index[parent]
            caps.append(cap_ff.get(node, 0.0))
            par.append(pi)
            res.append(edge_res)
            depth.append(depth[pi] + 1)

    cap_arr = np.array(caps, dtype=float)
    par_arr = np.array(par, dtype=np.intp)
    res_arr = np.array(res, dtype=float)
    dep_arr = np.array(depth, dtype=np.intp)
    max_depth = int(dep_arr.max()) if len(dep_arr) else 0
    levels = [np.flatnonzero(dep_arr == d) for d in range(max_depth + 1)]

    # Bottom-up: subtree capacitance (own cap, then children in BFS
    # discovery order — np.add.at preserves that order per parent).
    sub = cap_arr.copy()
    for d in range(max_depth, 0, -1):
        idx = levels[d]
        np.add.at(sub, par_arr[idx], sub[idx])

    # Top-down: delay[child] = delay[parent] + res * subtree_cap[child].
    delay = np.zeros(len(cap_arr))
    for d in range(1, max_depth + 1):
        idx = levels[d]
        delay[idx] = delay[par_arr[idx]] + res_arr[idx] * sub[idx]

    out: list[dict[Hashable, float]] = []
    if wanted is not None:
        for index, want in zip(index_per_tree, wanted):
            taps: dict[Hashable, float] = {}
            for node in want:
                i = index.get(node)
                if i is not None:
                    taps[node] = float(delay[i])
            out.append(taps)
        return out
    base = 0
    for index in index_per_tree:
        chunk = delay[base:base + len(index)].tolist()
        out.append(dict(zip(index, chunk)))
        base += len(index)
    return out


@dataclass(frozen=True)
class NetParasitics:
    """Extraction summary for one net."""

    net: str
    wire_cap_ff: float
    wire_res_kohm: float
    pin_cap_ff: float
    #: Wire-only Elmore delay to each sink, ps.
    sink_elmore_ps: dict[tuple[str, str], float]
    #: Total wirelength (all sides), nm.
    wirelength_nm: float
    via_count: int = 0
    #: Wirelength routed on backside (BM*) layers, nm.  Zero for
    #: single-sided nets and for every CFET net; the variation engine
    #: uses it to weight overlay-induced RC perturbations by how much
    #: of the net actually lives on the second patterned side.
    back_wirelength_nm: float = 0.0

    @property
    def total_cap_ff(self) -> float:
        """Load the driver sees: wire plus sink pin capacitance."""
        return self.wire_cap_ff + self.pin_cap_ff

    @property
    def back_fraction(self) -> float:
        """Share of this net's wirelength on backside layers, in [0, 1]."""
        if self.wirelength_nm <= 0:
            return 0.0
        return min(self.back_wirelength_nm / self.wirelength_nm, 1.0)

    def elmore_to(self, inst: str, pin: str) -> float:
        return self.sink_elmore_ps.get((inst, pin), 0.0)
