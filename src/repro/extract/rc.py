"""RC trees and Elmore delay computation."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable


@dataclass
class RCTree:
    """A grounded-capacitance RC network rooted at the driver node.

    Built as a graph; loops (overlapping route segments) are tolerated —
    Elmore evaluation uses a BFS spanning tree from the root, which is
    the standard conservative treatment.
    """

    root: Hashable
    cap_ff: dict[Hashable, float] = field(default_factory=dict)
    adj: dict[Hashable, list[tuple[Hashable, float]]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.cap_ff.setdefault(self.root, 0.0)
        self.adj.setdefault(self.root, [])

    def add_node(self, node: Hashable, cap_ff: float = 0.0) -> None:
        self.cap_ff[node] = self.cap_ff.get(node, 0.0) + cap_ff
        self.adj.setdefault(node, [])

    def add_cap(self, node: Hashable, cap_ff: float) -> None:
        self.add_node(node, cap_ff)

    def add_edge(self, a: Hashable, b: Hashable, res_kohm: float) -> None:
        self.add_node(a)
        self.add_node(b)
        self.adj[a].append((b, res_kohm))
        self.adj[b].append((a, res_kohm))

    @property
    def total_cap_ff(self) -> float:
        return sum(self.cap_ff.values())

    def spanning_tree(self) -> dict[Hashable, tuple[Hashable, float]]:
        """BFS parents: node -> (parent, edge resistance)."""
        parents: dict[Hashable, tuple[Hashable, float]] = {}
        seen = {self.root}
        queue = deque([self.root])
        while queue:
            node = queue.popleft()
            for neighbor, res in self.adj[node]:
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                parents[neighbor] = (node, res)
                queue.append(neighbor)
        return parents

    def elmore_ps(self) -> dict[Hashable, float]:
        """Elmore delay (ps) from the root to every reachable node."""
        parents = self.spanning_tree()
        children: dict[Hashable, list[Hashable]] = {}
        for node, (parent, _res) in parents.items():
            children.setdefault(parent, []).append(node)

        # Post-order subtree capacitance.
        subtree_cap: dict[Hashable, float] = {}
        order: list[Hashable] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(children.get(node, ()))
        for node in reversed(order):
            cap = self.cap_ff.get(node, 0.0)
            for child in children.get(node, ()):
                cap += subtree_cap[child]
            subtree_cap[node] = cap

        # Pre-order delay accumulation.
        delay: dict[Hashable, float] = {self.root: 0.0}
        for node in order:
            for child in children.get(node, ()):
                _parent, res = parents[child]
                delay[child] = delay[node] + res * subtree_cap[child]
        return delay

    def is_connected(self, node: Hashable) -> bool:
        if node == self.root:
            return True
        return node in self.spanning_tree()


@dataclass(frozen=True)
class NetParasitics:
    """Extraction summary for one net."""

    net: str
    wire_cap_ff: float
    wire_res_kohm: float
    pin_cap_ff: float
    #: Wire-only Elmore delay to each sink, ps.
    sink_elmore_ps: dict[tuple[str, str], float]
    #: Total wirelength (all sides), nm.
    wirelength_nm: float
    via_count: int = 0
    #: Wirelength routed on backside (BM*) layers, nm.  Zero for
    #: single-sided nets and for every CFET net; the variation engine
    #: uses it to weight overlay-induced RC perturbations by how much
    #: of the net actually lives on the second patterned side.
    back_wirelength_nm: float = 0.0

    @property
    def total_cap_ff(self) -> float:
        """Load the driver sees: wire plus sink pin capacitance."""
        return self.wire_cap_ff + self.pin_cap_ff

    @property
    def back_fraction(self) -> float:
        """Share of this net's wirelength on backside layers, in [0, 1]."""
        if self.wirelength_nm <= 0:
            return 0.0
        return min(self.back_wirelength_nm / self.wirelength_nm, 1.0)

    def elmore_to(self, inst: str, pin: str) -> float:
        return self.sink_elmore_ps.get((inst, pin), 0.0)
