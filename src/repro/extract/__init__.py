"""Dual-sided RC extraction: RC trees, Elmore delay, DEF-based extraction."""

from .extract import (
    VIA_RES_KOHM,
    Extraction,
    congestion_derates,
    estimate_loads,
    estimate_parasitics,
    extract_design,
    extract_net,
)
from .rc import NetParasitics, RCTree, elmore_forest
from .spef import SpefNet, parse_spef, write_spef

__all__ = [
    "Extraction",
    "NetParasitics",
    "RCTree",
    "VIA_RES_KOHM",
    "congestion_derates",
    "elmore_forest",
    "estimate_loads",
    "estimate_parasitics",
    "extract_design",
    "extract_net",
    "parse_spef",
    "write_spef",
    "SpefNet",
]
