"""Static timing analysis: setup (max) and hold (min) checks."""

from .corners import CORNERS, Corner, analyze_corners, derate_report, worst_corner
from .hold import FAST_CORNER_DERATE, HoldReport, analyze_hold, fix_hold
from .paths import PathStage, TimingPath, format_path, report_critical_path
from .rc_scale import scale_extraction, scale_extraction_sided
from .sta import (
    PRIMARY_INPUT_SLEW_PS,
    PinTiming,
    TimingReport,
    analyze_timing,
)

__all__ = [
    "CORNERS",
    "Corner",
    "FAST_CORNER_DERATE",
    "HoldReport",
    "PRIMARY_INPUT_SLEW_PS",
    "PathStage",
    "PinTiming",
    "TimingReport",
    "analyze_corners",
    "analyze_hold",
    "TimingPath",
    "analyze_timing",
    "derate_report",
    "format_path",
    "report_critical_path",
    "scale_extraction",
    "scale_extraction_sided",
    "worst_corner",
    "fix_hold",
]
