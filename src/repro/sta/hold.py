"""Hold-time analysis: min-delay propagation at the fast corner.

Complements the setup analysis in :mod:`repro.sta.sta`.  Arrivals are
propagated as *minimum* delays (each gate's fastest edge, derated to a
fast process corner); the hold check at each flop compares the earliest
data arrival after a clock edge against the capture clock arrival plus
the library hold time.  Clock-tree skew is the usual hold hazard, and
the CTS tree built by :mod:`repro.pnr.cts` feeds straight into this.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cells import Library
from ..extract import Extraction
from ..netlist import Netlist
from .sta import PRIMARY_INPUT_SLEW_PS

#: Fast-corner delay derate applied to min-path delays.
FAST_CORNER_DERATE = 0.85

_INF = 1e18


@dataclass(frozen=True)
class HoldReport:
    """Result of one hold-analysis run."""

    worst_slack_ps: float
    worst_endpoint: str
    violations: int
    endpoint_count: int
    #: Instances whose D pin violates hold, worst first.
    violating_endpoints: tuple[str, ...] = ()

    @property
    def met(self) -> bool:
        return self.worst_slack_ps >= 0.0


def analyze_hold(netlist: Netlist, library: Library, extraction: Extraction,
                 clock: str = "clk",
                 input_delay_ps: float | None = None) -> HoldReport:
    """Min-delay hold check at every flop D pin.

    Primary inputs are assumed to come from registers on the same clock,
    so their earliest arrival is the clock network latency (or the
    explicit ``input_delay_ps``) — the standard input-delay constraint.
    """
    min_arrival: dict[str, float] = {}

    def wire_delay(net_name: str, inst: str, pin: str) -> float:
        if net_name not in extraction:
            return 0.0
        return extraction[net_name].elmore_to(inst, pin) * FAST_CORNER_DERATE

    def net_load(net_name: str) -> float:
        return extraction[net_name].total_cap_ff \
            if net_name in extraction else 0.0

    # Clock arrivals (min corner) through the buffer tree.
    clock_arrivals: dict[str, float] = {}
    if clock in netlist.nets:
        frontier = [(clock, 0.0)]
        while frontier:
            net_name, base = frontier.pop()
            for inst_name, pin_name in netlist.nets[net_name].sinks:
                inst = netlist.instances[inst_name]
                master = library[inst.master]
                at_pin = base + wire_delay(net_name, inst_name, pin_name)
                if master.is_sequential:
                    clock_arrivals[inst_name] = at_pin
                    continue
                out_net = inst.connections[master.output.name]
                arc = master.arcs[0]
                load = net_load(out_net)
                delay = min(arc.delay(PRIMARY_INPUT_SLEW_PS, load, True),
                            arc.delay(PRIMARY_INPUT_SLEW_PS, load, False))
                frontier.append((out_net, at_pin + delay * FAST_CORNER_DERATE))

    pi_arrival = input_delay_ps if input_delay_ps is not None else (
        max(clock_arrivals.values()) if clock_arrivals else 0.0
    )
    for net in netlist.nets.values():
        if net.is_primary_input:
            min_arrival[net.name] = 0.0 if net.is_clock else pi_arrival

    # Launch: earliest Q after the launching edge.
    for inst in netlist.sequential_instances(library):
        master = library[inst.master]
        out_net = inst.connections[master.output.name]
        arc = master.arcs[0]
        load = net_load(out_net)
        delay = min(arc.delay(PRIMARY_INPUT_SLEW_PS, load, True),
                    arc.delay(PRIMARY_INPUT_SLEW_PS, load, False))
        min_arrival[out_net] = clock_arrivals.get(inst.name, 0.0) + \
            delay * FAST_CORNER_DERATE

    for inst in netlist.topological_order(library):
        master = library[inst.master]
        outs = master.output_pins
        if not outs:
            continue
        out_net = inst.connections[outs[0].name]
        if master.function in ("TIEHI", "TIELO"):
            min_arrival.setdefault(out_net, 0.0)
            continue
        load = net_load(out_net)
        best = _INF
        for arc in master.arcs:
            in_net = inst.connections.get(arc.from_pin)
            if in_net is None or in_net not in min_arrival:
                continue
            arrival = min_arrival[in_net] + \
                wire_delay(in_net, inst.name, arc.from_pin)
            delay = min(arc.delay(PRIMARY_INPUT_SLEW_PS, load, True),
                        arc.delay(PRIMARY_INPUT_SLEW_PS, load, False))
            best = min(best, arrival + delay * FAST_CORNER_DERATE)
        min_arrival[out_net] = best if best < _INF else 0.0

    worst = _INF
    worst_endpoint = ""
    violators: list[tuple[float, str]] = []
    endpoints = 0
    for inst in netlist.sequential_instances(library):
        master = library[inst.master]
        d_net = inst.connections["D"]
        if d_net not in min_arrival:
            continue
        endpoints += 1
        arrival = min_arrival[d_net] + wire_delay(d_net, inst.name, "D")
        capture = clock_arrivals.get(inst.name, 0.0)
        slack = arrival - (capture + master.sequential.hold_ps)
        if slack < 0:
            violators.append((slack, inst.name))
        if slack < worst:
            worst = slack
            worst_endpoint = inst.name

    if endpoints == 0:
        raise ValueError("design has no hold endpoints")
    violators.sort()
    return HoldReport(
        worst_slack_ps=worst,
        worst_endpoint=worst_endpoint,
        violations=len(violators),
        endpoint_count=endpoints,
        violating_endpoints=tuple(name for _s, name in violators),
    )


def fix_hold(netlist: Netlist, library: Library, extraction: Extraction,
             clock: str = "clk", max_iterations: int = 10,
             placement=None) -> HoldReport:
    """Insert delay buffers until hold closes (or iterations run out).

    The standard post-route hold fix: a minimum-drive buffer is inserted
    in front of each violating flop's D pin, adding one gate's min
    delay per iteration.  Mutates the netlist (and, when a placement is
    given, places each buffer at its flop); returns the final report.
    """
    counter = 0
    report = analyze_hold(netlist, library, extraction, clock)
    for _iteration in range(max_iterations):
        if report.met:
            break
        for inst_name in report.violating_endpoints:
            counter += 1
            inst = netlist.instances[inst_name]
            old_net = inst.connections["D"]
            new_net = f"holdnet_{counter}"
            netlist.add_net(new_net)
            netlist.add_instance(f"holdbuf_{counter}", "BUFD1",
                                 {"A": old_net, "Z": new_net})
            inst.connections["D"] = new_net
            if placement is not None:
                placement.locations[f"holdbuf_{counter}"] = \
                    placement.locations[inst_name]
        netlist.bind(library)
        report = analyze_hold(netlist, library, extraction, clock)
    return report
