"""Critical-path reporting: per-stage timing breakdowns.

The PrimeTime-style ``report_timing`` view of the setup analysis: for
the worst endpoints, walk the arrival provenance and print each stage's
cell arc and wire contribution.  Used by the examples and by engineers
debugging why one architecture's achieved frequency differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cells import Library
from ..extract import Extraction
from ..netlist import Netlist
from .sta import PRIMARY_INPUT_SLEW_PS, analyze_timing


@dataclass(frozen=True)
class PathStage:
    """One hop of a reported path."""

    instance: str
    cell: str
    from_pin: str
    net: str
    cell_delay_ps: float
    wire_delay_ps: float
    load_ff: float

    @property
    def total_ps(self) -> float:
        return self.cell_delay_ps + self.wire_delay_ps


@dataclass(frozen=True)
class TimingPath:
    """The worst path to one endpoint."""

    endpoint: str
    slack_ps: float
    arrival_ps: float
    stages: tuple[PathStage, ...] = ()

    @property
    def cell_delay_ps(self) -> float:
        return sum(s.cell_delay_ps for s in self.stages)

    @property
    def wire_delay_ps(self) -> float:
        return sum(s.wire_delay_ps for s in self.stages)


def report_critical_path(netlist: Netlist, library: Library,
                         extraction: Extraction, period_ps: float,
                         clock: str = "clk") -> TimingPath:
    """Expand the setup run's worst path into per-stage contributions.

    Stage delays are re-derived with worst-edge lookups along the traced
    path, so the sum approximates (but does not exactly equal) the
    edge-aware arrival.
    """
    report = analyze_timing(netlist, library, extraction, period_ps, clock)
    stages: list[PathStage] = []

    # critical_path interleaves net names and "instance/pin" hops; both
    # may contain hierarchy slashes, so classify by instance lookup.
    slew = PRIMARY_INPUT_SLEW_PS
    for hop in report.critical_path:
        if "/" not in hop:
            continue
        inst_name, from_pin = hop.rsplit("/", 1)
        if inst_name not in netlist.instances:
            continue
        if from_pin == "CK":
            continue  # the launch flop is not a combinational stage
        inst = netlist.instances[inst_name]
        master = library[inst.master]
        out_net = inst.connections[master.output.name]
        load = extraction[out_net].total_cap_ff \
            if out_net in extraction else 0.0
        try:
            arc = master.arc(from_pin, master.output.name)
        except KeyError:
            continue
        cell_delay = arc.worst_delay(slew, load)
        slew = max(arc.transition(slew, load, True),
                   arc.transition(slew, load, False))
        in_net = inst.connections.get(from_pin, "")
        wire = 0.0
        if in_net in extraction:
            wire = extraction[in_net].elmore_to(inst_name, from_pin)
        stages.append(PathStage(
            instance=inst_name,
            cell=inst.master,
            from_pin=from_pin,
            net=out_net,
            cell_delay_ps=cell_delay,
            wire_delay_ps=wire,
            load_ff=load,
        ))

    return TimingPath(
        endpoint=report.worst_endpoint,
        slack_ps=report.wns_ps,
        arrival_ps=report.worst_arrival_ps,
        stages=tuple(stages),
    )


def format_path(path: TimingPath) -> str:
    """Render a path report as text."""
    lines = [
        f"endpoint: {path.endpoint}  slack: {path.slack_ps:+.1f} ps  "
        f"arrival: {path.arrival_ps:.1f} ps",
        f"{'instance':<28}{'cell':<10}{'pin':<6}"
        f"{'cell ps':>9}{'wire ps':>9}{'load fF':>9}",
    ]
    for stage in path.stages:
        lines.append(
            f"{stage.instance:<28}{stage.cell:<10}{stage.from_pin:<6}"
            f"{stage.cell_delay_ps:>9.2f}{stage.wire_delay_ps:>9.2f}"
            f"{stage.load_ff:>9.2f}"
        )
    lines.append(
        f"{'total':<44}{path.cell_delay_ps:>9.2f}"
        f"{path.wire_delay_ps:>9.2f}"
    )
    return "\n".join(lines)
