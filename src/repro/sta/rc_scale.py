"""Helpers: scale an extraction's wire RC by corner/variation derates."""

from __future__ import annotations

from dataclasses import replace

from ..extract import Extraction
from ..extract.rc import NetParasitics


def _scale_net(p: NetParasitics, factor: float) -> NetParasitics:
    """One net's parasitics with wire R, C and Elmore scaled."""
    return replace(
        p,
        wire_cap_ff=p.wire_cap_ff * factor,
        wire_res_kohm=p.wire_res_kohm * factor,
        sink_elmore_ps={
            key: value * factor for key, value in p.sink_elmore_ps.items()
        },
    )


def scale_extraction(extraction: Extraction, factor: float) -> Extraction:
    """A copy of ``extraction`` with wire R, C and Elmore scaled.

    Pin capacitances belong to the cells, not the wires, so they keep
    their nominal values; Elmore delays scale quadratically-ish with
    RC, but the single-factor linear scaling matches how commercial
    flows apply temperature-derate tables to SPEF.
    """
    if factor == 1.0:
        return extraction
    scaled = Extraction()
    for name, p in extraction.nets.items():
        scaled.nets[name] = _scale_net(p, factor)
    return scaled


def scale_extraction_sided(extraction: Extraction, front_factor: float,
                           back_factor: float) -> Extraction:
    """Scale wire RC with distinct frontside and backside derates.

    Each net gets an effective factor interpolated by its backside
    wirelength fraction (:attr:`NetParasitics.back_fraction`):
    ``front + frac * (back - front)``.  A purely frontside net (every
    CFET net) sees exactly ``front_factor``; equal factors reduce
    bit-for-bit to :func:`scale_extraction`.  This is how overlay- and
    per-side metal-variation perturbations reach the timing/power
    models without re-extraction.
    """
    if front_factor == 1.0 and back_factor == 1.0:
        return extraction
    scaled = Extraction()
    for name, p in extraction.nets.items():
        factor = front_factor + p.back_fraction * (back_factor - front_factor)
        scaled.nets[name] = _scale_net(p, factor) if factor != 1.0 else p
    return scaled
