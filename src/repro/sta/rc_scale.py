"""Helper: scale an extraction's wire RC by a corner derate."""

from __future__ import annotations

from dataclasses import replace

from ..extract import Extraction
from ..extract.rc import NetParasitics


def scale_extraction(extraction: Extraction, factor: float) -> Extraction:
    """A copy of ``extraction`` with wire R, C and Elmore scaled.

    Pin capacitances belong to the cells, not the wires, so they keep
    their nominal values; Elmore delays scale quadratically-ish with
    RC, but the single-factor linear scaling matches how commercial
    flows apply temperature-derate tables to SPEF.
    """
    if factor == 1.0:
        return extraction
    scaled = Extraction()
    for name, p in extraction.nets.items():
        scaled.nets[name] = replace(
            p,
            wire_cap_ff=p.wire_cap_ff * factor,
            wire_res_kohm=p.wire_res_kohm * factor,
            sink_elmore_ps={
                key: value * factor for key, value in p.sink_elmore_ps.items()
            },
        )
    return scaled
