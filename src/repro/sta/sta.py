"""Graph-based static timing analysis with NLDM + Elmore wire delays.

Single-clock setup analysis, the way the paper's power-performance
stage uses commercial STA: rise and fall arrivals/slews propagate
separately through arc unateness (an inverter's rising output is timed
from its falling input), wire delays come from the extracted Elmore
values, and setup is checked at every flop D pin and primary output.
``achieved frequency`` is the frequency at which the worst path just
closes — the paper's Figs. 9-11 metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cells import Library, TimingArc
from ..extract import Extraction
from ..netlist import Netlist

#: Slew assumed at primary inputs, ps.
PRIMARY_INPUT_SLEW_PS = 10.0
#: Wire slew degradation per ps of Elmore delay.
SLEW_DEGRADATION = 1.8

_NEG = -1e18


@dataclass
class PinTiming:
    """Rise/fall arrivals and slews at one net (at its driver pin)."""

    arrival_rise_ps: float = _NEG
    arrival_fall_ps: float = _NEG
    slew_rise_ps: float = PRIMARY_INPUT_SLEW_PS
    slew_fall_ps: float = PRIMARY_INPUT_SLEW_PS

    @classmethod
    def at_time(cls, t_ps: float, slew_ps: float = PRIMARY_INPUT_SLEW_PS):
        return cls(t_ps, t_ps, slew_ps, slew_ps)

    def arrival(self, rise: bool) -> float:
        return self.arrival_rise_ps if rise else self.arrival_fall_ps

    def slew(self, rise: bool) -> float:
        return self.slew_rise_ps if rise else self.slew_fall_ps

    def set_edge(self, rise: bool, arrival: float, slew: float) -> None:
        if rise:
            self.arrival_rise_ps = arrival
            self.slew_rise_ps = slew
        else:
            self.arrival_fall_ps = arrival
            self.slew_fall_ps = slew

    @property
    def worst_arrival_ps(self) -> float:
        return max(self.arrival_rise_ps, self.arrival_fall_ps)

    @property
    def worst_slew_ps(self) -> float:
        return max(self.slew_rise_ps, self.slew_fall_ps)

    def delayed(self, wire_ps: float) -> "PinTiming":
        """This timing seen after a wire segment of the given Elmore delay."""
        extra_slew = SLEW_DEGRADATION * wire_ps
        return PinTiming(
            self.arrival_rise_ps + wire_ps if self.arrival_rise_ps > _NEG / 2 else _NEG,
            self.arrival_fall_ps + wire_ps if self.arrival_fall_ps > _NEG / 2 else _NEG,
            self.slew_rise_ps + extra_slew,
            self.slew_fall_ps + extra_slew,
        )


@dataclass
class TimingReport:
    """Result of one setup-timing run."""

    period_ps: float
    wns_ps: float
    tns_ps: float
    worst_endpoint: str
    critical_path: list[str]
    clock_skew_ps: float
    insertion_delay_ps: float
    endpoint_count: int
    #: Arrival time of the worst data path, ps.
    worst_arrival_ps: float

    @property
    def achieved_period_ps(self) -> float:
        """Smallest period the design would meet, given this run."""
        return self.period_ps - self.wns_ps

    @property
    def achieved_frequency_ghz(self) -> float:
        return 1000.0 / self.achieved_period_ps

    @property
    def met(self) -> bool:
        return self.wns_ps >= 0.0


def _propagate_arc(arc: TimingArc, pt_in: PinTiming, load_ff: float,
                   out: PinTiming) -> bool:
    """Fold one arc's contribution into the output timing.

    Returns True when this arc set a new worst output arrival.
    """
    improved = False
    for rise_out in (True, False):
        for rise_in in arc.input_edges_for(rise_out):
            arrival_in = pt_in.arrival(rise_in)
            if arrival_in < _NEG / 2:
                continue
            slew_in = pt_in.slew(rise_in)
            delay = arc.delay(slew_in, load_ff, rise=rise_out)
            arrival = arrival_in + delay
            if arrival > out.arrival(rise_out):
                out.set_edge(rise_out, arrival,
                             arc.transition(slew_in, load_ff, rise=rise_out))
                improved = True
    return improved


def analyze_timing(netlist: Netlist, library: Library, extraction: Extraction,
                   period_ps: float, clock: str = "clk") -> TimingReport:
    """Run setup analysis at ``period_ps``; see :class:`TimingReport`."""
    net_timing: dict[str, PinTiming] = {}
    net_from: dict[str, tuple[str, str] | None] = {}

    for net in netlist.nets.values():
        if net.is_primary_input:
            net_timing[net.name] = PinTiming.at_time(0.0)
            net_from[net.name] = None

    def input_timing(net_name: str, inst: str, pin: str) -> PinTiming:
        base = net_timing[net_name]
        wire = extraction[net_name].elmore_to(inst, pin) \
            if net_name in extraction else 0.0
        return base.delayed(wire)

    def net_load(net_name: str) -> float:
        return extraction[net_name].total_cap_ff if net_name in extraction \
            else 0.0

    # Clock network first: propagate along clock tree (CLKBUF chains).
    clock_arrivals: dict[str, float] = {}  # flop instance -> CK arrival
    if clock in netlist.nets:
        _propagate_clock(netlist, library, extraction, clock,
                         net_timing, clock_arrivals)

    # Sequential launch points (CK -> Q).
    for inst in netlist.sequential_instances(library):
        master = library[inst.master]
        out_net = inst.connections[master.output.name]
        ck_arr = clock_arrivals.get(inst.name, 0.0)
        load = net_load(out_net)
        arc = master.arcs[0]
        out = PinTiming()
        _propagate_arc(arc, PinTiming.at_time(ck_arr), load, out)
        net_timing[out_net] = out
        net_from[out_net] = (inst.name, "CK")

    # Combinational propagation in topological order.
    for inst in netlist.topological_order(library):
        master = library[inst.master]
        out_pins = master.output_pins
        if not out_pins:
            continue
        out_net = inst.connections[out_pins[0].name]
        if master.function in ("TIEHI", "TIELO"):
            net_timing.setdefault(out_net, PinTiming.at_time(0.0))
            net_from.setdefault(out_net, None)
            continue
        load = net_load(out_net)
        out = PinTiming()
        from_pin = None
        for arc in master.arcs:
            in_net = inst.connections.get(arc.from_pin)
            if in_net is None or in_net not in net_timing:
                continue
            pt = input_timing(in_net, inst.name, arc.from_pin)
            if _propagate_arc(arc, pt, load, out):
                from_pin = arc.from_pin
        net_timing[out_net] = out
        net_from[out_net] = (inst.name, from_pin) if from_pin else None

    # Endpoint checks.
    wns = float("inf")
    tns = 0.0
    worst_endpoint = ""
    worst_net = ""
    worst_arrival = 0.0
    endpoints = 0
    for inst in netlist.sequential_instances(library):
        master = library[inst.master]
        d_net = inst.connections["D"]
        if d_net not in net_timing:
            continue
        endpoints += 1
        pt = input_timing(d_net, inst.name, "D")
        required = period_ps + clock_arrivals.get(inst.name, 0.0) \
            - master.sequential.setup_ps
        slack = required - pt.worst_arrival_ps
        tns += min(slack, 0.0)
        if slack < wns:
            wns = slack
            worst_endpoint = inst.name
            worst_net = d_net
            worst_arrival = pt.worst_arrival_ps
    for net in netlist.primary_outputs:
        if net.name not in net_timing or net.is_primary_input:
            continue
        pt = net_timing[net.name]
        if pt.worst_arrival_ps < _NEG / 2:
            continue
        endpoints += 1
        slack = period_ps - pt.worst_arrival_ps
        tns += min(slack, 0.0)
        if slack < wns:
            wns = slack
            worst_endpoint = f"PO:{net.name}"
            worst_net = net.name
            worst_arrival = pt.worst_arrival_ps

    if endpoints == 0:
        raise ValueError("design has no timing endpoints")

    path = _trace_path(netlist, net_from, worst_net)
    skews = list(clock_arrivals.values())
    from ..core.telemetry import current_tracer
    tracer = current_tracer()
    tracer.gauge("sta.endpoints", endpoints)
    tracer.gauge("sta.nets_timed", len(net_timing))
    return TimingReport(
        period_ps=period_ps,
        wns_ps=wns,
        tns_ps=tns,
        worst_endpoint=worst_endpoint,
        critical_path=path,
        clock_skew_ps=(max(skews) - min(skews)) if skews else 0.0,
        insertion_delay_ps=max(skews) if skews else 0.0,
        endpoint_count=endpoints,
        worst_arrival_ps=worst_arrival,
    )


def _propagate_clock(netlist: Netlist, library: Library,
                     extraction: Extraction, clock: str,
                     net_timing: dict[str, PinTiming],
                     clock_arrivals: dict[str, float]) -> None:
    """BFS down the clock tree, accumulating buffer and wire delays.

    Flops latch on the rising edge, so the capture arrival is the rise
    arrival at each CK pin.
    """
    frontier = [clock]
    net_timing.setdefault(clock, PinTiming.at_time(0.0))
    while frontier:
        net_name = frontier.pop()
        base = net_timing[net_name]
        for inst_name, pin_name in netlist.nets[net_name].sinks:
            inst = netlist.instances[inst_name]
            master = library[inst.master]
            wire = extraction[net_name].elmore_to(inst_name, pin_name) \
                if net_name in extraction else 0.0
            at_pin = base.delayed(wire)
            if master.is_sequential:
                clock_arrivals[inst_name] = at_pin.arrival(rise=True)
                continue
            # A clock buffer: propagate through it.
            out_net = inst.connections[master.output.name]
            load = extraction[out_net].total_cap_ff \
                if out_net in extraction else 0.0
            out = PinTiming()
            _propagate_arc(master.arcs[0], at_pin, load, out)
            net_timing[out_net] = out
            frontier.append(out_net)


def _trace_path(netlist: Netlist, net_from: dict[str, tuple[str, str] | None],
                end_net: str) -> list[str]:
    """Walk arrival provenance back to a launch point."""
    path: list[str] = []
    net_name = end_net
    seen = set()
    while net_name and net_name not in seen:
        seen.add(net_name)
        path.append(net_name)
        source = net_from.get(net_name)
        if source is None:
            break
        inst_name, from_pin = source
        path.append(f"{inst_name}/{from_pin}")
        if from_pin == "CK":
            break
        net_name = netlist.instances[inst_name].connections.get(from_pin, "")
    return list(reversed(path))
